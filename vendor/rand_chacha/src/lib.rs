//! Vendored ChaCha8-based RNG (see `rand_core` for why this exists).
//!
//! This is a genuine ChaCha8 block function keyed from the seed, so streams
//! are deterministic and high-quality; they are not bit-compatible with the
//! upstream `rand_chacha` word order, which nothing in this workspace needs.

pub use rand_core;
use rand_core::{RngCore, SeedableRng};

/// A ChaCha stream cipher RNG with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    next: usize,
}

#[inline]
fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut s: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let start = s;
        for _ in 0..4 {
            quarter(&mut s, 0, 4, 8, 12);
            quarter(&mut s, 1, 5, 9, 13);
            quarter(&mut s, 2, 6, 10, 14);
            quarter(&mut s, 3, 7, 11, 15);
            quarter(&mut s, 0, 5, 10, 15);
            quarter(&mut s, 1, 6, 11, 12);
            quarter(&mut s, 2, 7, 8, 13);
            quarter(&mut s, 3, 4, 9, 14);
        }
        for (w, init) in s.iter_mut().zip(start.iter()) {
            *w = w.wrapping_add(*init);
        }
        self.buf = s;
        self.counter = self.counter.wrapping_add(1);
        self.next = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.next >= 16 {
            self.refill();
        }
        let w = self.buf[self.next];
        self.next += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> ChaCha8Rng {
        let mut key = [0u32; 8];
        for (i, k) in key.iter_mut().enumerate() {
            *k = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            next: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = ChaCha8Rng::seed_from_u64(7);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = ChaCha8Rng::seed_from_u64(7);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = ChaCha8Rng::seed_from_u64(8);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Words within one stream should not repeat trivially.
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), a.len());
    }
}
