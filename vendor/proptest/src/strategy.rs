//! Value-generation strategies (no shrinking in this stand-in).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn gen(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe adapter so strategies can live behind `Arc<dyn …>`.
trait DynStrategy<V> {
    fn gen_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.gen(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Arc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn gen(&self, rng: &mut TestRng) -> V {
        self.0.gen_dyn(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `strategy.prop_map(f)` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn gen(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.gen(rng))
    }
}

/// Types with a canonical `any::<T>()` strategy.
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;

    fn arbitrary() -> Self::Strategy;
}

pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

#[derive(Clone, Copy, Debug)]
pub struct AnyOf<T>(PhantomData<T>);

impl Arbitrary for bool {
    type Strategy = AnyOf<bool>;

    fn arbitrary() -> AnyOf<bool> {
        AnyOf(PhantomData)
    }
}

impl Strategy for AnyOf<bool> {
    type Value = bool;

    fn gen(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = AnyOf<$t>;

            fn arbitrary() -> AnyOf<$t> {
                AnyOf(PhantomData)
            }
        }

        impl Strategy for AnyOf<$t> {
            type Value = $t;

            fn gen(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

any_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn gen(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = rng.below(span as u64) as i128;
                (self.start as i128 + v) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn gen(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = rng.below(span as u64) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn gen(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn gen(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Accepted length specifications for `prop::collection::vec`.
pub trait IntoSizeRange {
    /// Inclusive-lo, exclusive-hi bounds.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

impl IntoSizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        (self.start, self.end)
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end() + 1)
    }
}

#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    lo: usize,
    hi: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn gen(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(self.lo < self.hi, "empty size range for vec strategy");
        let span = (self.hi - self.lo) as u64;
        let len = self.lo
            + if span > 1 {
                rng.below(span) as usize
            } else {
                0
            };
        (0..len).map(|_| self.element.gen(rng)).collect()
    }
}

/// `prop::collection::vec(element, size)`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (lo, hi) = size.bounds();
    VecStrategy { element, lo, hi }
}

#[derive(Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn gen(&self, rng: &mut TestRng) -> Option<S::Value> {
        // Yield None for roughly a quarter of cases.
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.gen(rng))
        }
    }
}

/// `prop::option::of(strategy)`.
pub fn option_of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// Weighted union over same-valued strategies; built by `prop_oneof!`.
pub struct Union<V> {
    options: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
            total: self.total,
        }
    }
}

impl<V> Union<V> {
    pub fn new(options: Vec<(u32, BoxedStrategy<V>)>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        let total = options.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Union { options, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn gen(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.options {
            if pick < *w as u64 {
                return s.gen(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..500 {
            let v = (2usize..5).gen(&mut rng);
            assert!((2..5).contains(&v));
            let w = (-3i64..4).gen(&mut rng);
            assert!((-3..4).contains(&w));
            let x = (0u8..=255).gen(&mut rng);
            let _ = x;
        }
    }

    #[test]
    fn map_box_union_compose() {
        let mut rng = TestRng::from_seed(2);
        let s = crate::prop_oneof![
            2 => (0i64..10).prop_map(|v| v * 2),
            1 => Just(99i64),
        ];
        let b = s.boxed();
        let b2 = b.clone();
        for _ in 0..200 {
            let v = b2.gen(&mut rng);
            assert!(v == 99 || (v % 2 == 0 && (0..20).contains(&v)));
        }
    }

    #[test]
    fn vec_and_option() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..200 {
            let v = vec(0i64..5, 2usize..6).gen(&mut rng);
            assert!((2..6).contains(&v.len()));
            let fixed = vec(Just(1u8), 3usize).gen(&mut rng);
            assert_eq!(fixed.len(), 3);
            let o = option_of(0usize..4).gen(&mut rng);
            if let Some(x) = o {
                assert!(x < 4);
            }
        }
    }

    #[test]
    fn tuples_generate() {
        let mut rng = TestRng::from_seed(4);
        let (a, b, c) = (0i64..3, any::<bool>(), Just("s")).gen(&mut rng);
        assert!((0..3).contains(&a));
        let _ = (b, c);
    }
}
