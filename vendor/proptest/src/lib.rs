//! Vendored minimal property-testing harness exposing the `proptest` API
//! subset this workspace uses: `proptest!`, `prop_oneof!`, `Strategy` with
//! `prop_map`/`boxed`, `Just`, `any`, integer/float ranges, tuples,
//! `prop::collection::vec`, `prop::option::of`, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from upstream: no shrinking (failures report the panicking
//! assertion only), and case generation is seeded deterministically from
//! the test name (override with `PROPTEST_SEED`). The build environment has
//! no crates.io access, hence this stand-in.

pub mod strategy;
pub mod test_runner;

/// The `prop::` namespace (`prop::collection::vec`, `prop::option::of`).
pub mod prop {
    pub mod collection {
        pub use crate::strategy::vec;
    }

    pub mod option {
        pub use crate::strategy::option_of as of;
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Weighted choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Property assertion: like `assert!` (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Discard the current case when its inputs are out of scope.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::Reject);
        }
    };
}

/// Define property tests: each function runs `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (@with_config $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                while accepted < config.cases {
                    attempts += 1;
                    if attempts > config.cases.saturating_mul(20) + 1000 {
                        panic!(
                            "test `{}`: too many cases rejected by prop_assume! \
                             ({} accepted of {} wanted)",
                            stringify!($name), accepted, config.cases
                        );
                    }
                    $(let $arg = $crate::strategy::Strategy::gen(&$strat, &mut rng);)+
                    let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::Reject> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::test_runner::Reject) => {}
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}
