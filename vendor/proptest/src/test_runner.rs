//! Test configuration and deterministic RNG for the vendored harness.

/// Marker returned by `prop_assume!` when a generated case is discarded.
#[derive(Clone, Copy, Debug)]
pub struct Reject;

/// Runner configuration; only `cases` is meaningful in this stand-in.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// SplitMix64 generator, seeded per test so runs are reproducible.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from the test name (stable across runs); `PROPTEST_SEED`
    /// perturbs every test's stream at once for re-randomized runs.
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        if let Some(seed) = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
        {
            h ^= seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
        TestRng { state: h }
    }

    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("alpha");
        let mut c = TestRng::for_test("beta");
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn below_in_range() {
        let mut r = TestRng::from_seed(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
    }
}
