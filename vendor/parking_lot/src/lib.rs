//! Vendored `parking_lot` API subset layered over `std::sync`.
//!
//! The build environment has no crates.io access, so this provides the
//! non-poisoning `Mutex`/`Condvar` surface the workspace uses. Performance
//! characteristics are those of the std primitives.

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutex whose `lock()` returns the guard directly (no poisoning).
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard wrapper; holds an `Option` so `Condvar::wait_for` can take the
/// std guard by value and put it back.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.inner
            .try_lock()
            .ok()
            .map(|g| MutexGuard { guard: Some(g) })
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard taken")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`Mutex`].
#[derive(Default, Debug)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.guard.take().expect("guard taken");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(g);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.guard.take().expect("guard taken");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(0usize), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, c) = &*p2;
            let mut g = m.lock();
            *g = 7;
            drop(g);
            c.notify_all();
        });
        let (m, c) = &*pair;
        let mut g = m.lock();
        while *g != 7 {
            if c.wait_for(&mut g, Duration::from_secs(2)).timed_out() {
                panic!("timed out");
            }
        }
        h.join().unwrap();
        assert_eq!(*m.lock(), 7);
    }
}
