//! Minimal vendored subset of the `rand_core` API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of the `rand` family it actually uses. Only the
//! trait surface consumed by this repository is provided; the streams are
//! deterministic and self-consistent but are *not* bit-compatible with the
//! upstream crates.

/// A source of random `u32`/`u64` words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let w = self.next_u64().to_le_bytes();
            let take = (dest.len() - i).min(8);
            dest[i..i + take].copy_from_slice(&w[..take]);
            i += take;
        }
    }
}

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a 64-bit seed through SplitMix64 (same approach as upstream).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let take = chunk.len().min(8);
            chunk[..take].copy_from_slice(&bytes[..take]);
        }
        Self::from_seed(seed)
    }
}
