//! Vendored minimal Criterion-compatible benchmark harness.
//!
//! The build environment has no crates.io access; this stand-in implements
//! the API subset the workspace's benches use (`bench_function`,
//! `benchmark_group`, `bench_with_input`, `iter`, `iter_batched`) with a
//! simple calibrated timing loop and mean/min reporting. No statistics,
//! plots, or baselines — just honest wall-clock numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration batching mode (accepted for API compatibility; batches are
/// always sized one, which matches `PerIteration` semantics).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier for a parameterized benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    pub fn from_parameter(param: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The per-benchmark measurement driver.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Bencher {
        Bencher {
            samples: Vec::new(),
            budget,
        }
    }

    /// Time `routine` repeatedly until the budget is spent.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        loop {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if start.elapsed() >= self.budget || self.samples.len() >= 10_000 {
                break;
            }
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let start = Instant::now();
        loop {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
            if start.elapsed() >= self.budget || self.samples.len() >= 10_000 {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<48} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().unwrap();
        println!(
            "{name:<48} mean {:>12.3?}  min {:>12.3?}  ({} iters)",
            mean,
            min,
            self.samples.len()
        );
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) {
        let name = format!("{}/{}", self.name, id);
        self.criterion.run_one(&name, f);
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let name = format!("{}/{}", self.name, id);
        self.criterion.run_one(&name, |b| f(b, input));
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn finish(self) {}
}

/// The top-level harness handle.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // Keep full `cargo bench` runs quick; override with XDP_BENCH_MS.
        let ms = std::env::var("XDP_BENCH_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300u64);
        Criterion {
            budget: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    fn run_one(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        b.report(name);
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.run_one(name, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn configure_from_args(&mut self) -> &mut Self {
        self
    }

    pub fn final_summary(&self) {}
}

/// Declare a group of benchmark functions, as upstream Criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Generate `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench -- <filter>` / `--bench` flags are accepted and
            // ignored by this stand-in harness.
            $(
                $group();
            )+
        }
    };
}
