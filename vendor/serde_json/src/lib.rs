//! Vendored minimal `serde_json` subset: the `Value`/`Number`/`Map` data
//! model, a JSON serializer via `Display`, and a strict [`from_str`]
//! parser. No serde traits — the workspace constructs values, prints JSON
//! lines, and round-trips its own exports in tests.

use std::fmt;

/// A JSON number; integers and floats are distinguished (as upstream does).
#[derive(Clone, Debug, PartialEq)]
pub enum Number {
    I64(i64),
    U64(u64),
    F64(f64),
}

impl Number {
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::I64(v) => Some(v as f64),
            Number::U64(v) => Some(v as f64),
            Number::F64(v) => Some(v),
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::I64(v) => Some(v),
            Number::U64(v) => i64::try_from(v).ok(),
            Number::F64(_) => None,
        }
    }

    pub fn is_f64(&self) -> bool {
        matches!(self, Number::F64(_))
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::I64(v) => write!(f, "{v}"),
            Number::U64(v) => write!(f, "{v}"),
            Number::F64(v) => {
                if v.is_finite() {
                    write!(f, "{v}")
                } else {
                    write!(f, "null")
                }
            }
        }
    }
}

/// An insertion-ordered string-keyed map (upstream with `preserve_order`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl Map<String, Value> {
    pub fn new() -> Map<String, Value> {
        Map {
            entries: Vec::new(),
        }
    }

    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map<String, Value>),
}

impl Value {
    /// Member lookup on objects; `None` for every other variant.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U64(v)) => Some(*v),
            Value::Number(Number::I64(v)) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

macro_rules! from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::I64(v as i64))
            }
        }
    )*};
}

from_int!(i8, i16, i32, i64, isize);

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Number(Number::U64(v))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::Number(Number::U64(v as u64))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::F64(v))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

fn escape(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    f.write_str("\"")?;
    for ch in s.chars() {
        match ch {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => escape(s, f),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Error from [`from_str`], carrying a byte offset and a short message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    pub offset: usize,
    pub msg: &'static str,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for Error {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &'static str) -> Result<T, Error> {
        Err(Error {
            offset: self.pos,
            msg,
        })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, msg: &'static str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(msg)
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            self.err("invalid literal")
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected string")?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return self.err("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return self.err("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            let Some(cp) = hex else {
                                return self.err("bad \\u escape");
                            };
                            self.pos += 4;
                            // Surrogate pairs are not needed by our own
                            // exports; reject rather than mis-decode.
                            match char::from_u32(cp) {
                                Some(c) => s.push(c),
                                None => return self.err("surrogate \\u escape"),
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the lead byte.
                    let start = self.pos - 1;
                    let len = match b {
                        _ if b < 0x80 => 1,
                        _ if b >= 0xF0 => 4,
                        _ if b >= 0xE0 => 3,
                        _ if b >= 0xC0 => 2,
                        _ => return self.err("bad UTF-8"),
                    };
                    let Some(chunk) = self.bytes.get(start..start + len) else {
                        return self.err("bad UTF-8");
                    };
                    let Ok(txt) = std::str::from_utf8(chunk) else {
                        return self.err("bad UTF-8");
                    };
                    s.push_str(txt);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        if !float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(i)));
            }
        }
        match text.parse::<f64>() {
            Ok(f) => Ok(Value::Number(Number::F64(f))),
            Err(_) => self.err("invalid number"),
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > 128 {
            return self.err("nesting too deep");
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return self.err("expected , or ]"),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = Map::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':', "expected :")?;
                    let val = self.value(depth + 1)?;
                    map.insert(key, val);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(map));
                        }
                        _ => return self.err("expected , or }"),
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => self.err("expected value"),
        }
    }
}

/// Parse one JSON document; trailing whitespace is allowed, trailing
/// content is an error.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing content");
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_json() {
        let mut m = Map::new();
        m.insert("a".into(), Value::from(1i64));
        m.insert("b".into(), Value::from(2.5));
        m.insert("s".into(), Value::from("x\"y"));
        let v = Value::Object(m);
        assert_eq!(v.to_string(), r#"{"a":1,"b":2.5,"s":"x\"y"}"#);
    }

    #[test]
    fn insert_replaces() {
        let mut m = Map::new();
        assert!(m.insert("k".into(), Value::from(1i64)).is_none());
        assert_eq!(
            m.insert("k".into(), Value::from(2i64)),
            Some(Value::from(1i64))
        );
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn number_kinds() {
        assert!(Value::from(1.0) == Value::Number(Number::F64(1.0)));
        assert!(Number::I64(3).as_f64() == Some(3.0));
        assert!(!Number::I64(3).is_f64());
        assert!(Number::F64(3.0).is_f64());
    }

    #[test]
    fn parse_round_trips_own_output() {
        let mut m = Map::new();
        m.insert("a".into(), Value::from(1u64));
        m.insert("b".into(), Value::from(-2.5));
        m.insert("s".into(), Value::from("x\"y\n\\ π"));
        m.insert(
            "arr".into(),
            Value::Array(vec![Value::Null, Value::Bool(true), Value::from("z")]),
        );
        let v = Value::Object(m);
        let back = from_str(&v.to_string()).expect("round trip");
        assert_eq!(back, v);
    }

    #[test]
    fn parse_basics() {
        assert_eq!(from_str("  null ").unwrap(), Value::Null);
        assert_eq!(from_str("[1,2,3]").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(from_str("\"\\u0041\"").unwrap().as_str(), Some("A"));
        assert_eq!(from_str("-7").unwrap().as_i64(), Some(-7));
        assert_eq!(from_str("1e3").unwrap().as_f64(), Some(1000.0));
        let obj = from_str(r#"{"k": {"n": 42}}"#).unwrap();
        assert_eq!(
            obj.get("k")
                .and_then(|k| k.get("n"))
                .and_then(|n| n.as_u64()),
            Some(42)
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("12 34").is_err());
        assert!(from_str("{\"a\" 1}").is_err());
        assert!(from_str("\"unterminated").is_err());
    }
}
