//! Vendored minimal `serde_json` subset: the `Value`/`Number`/`Map` data
//! model and a JSON serializer via `Display`. No parsing, no serde traits —
//! the workspace only constructs values and prints JSON lines.

use std::fmt;

/// A JSON number; integers and floats are distinguished (as upstream does).
#[derive(Clone, Debug, PartialEq)]
pub enum Number {
    I64(i64),
    U64(u64),
    F64(f64),
}

impl Number {
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::I64(v) => Some(v as f64),
            Number::U64(v) => Some(v as f64),
            Number::F64(v) => Some(v),
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::I64(v) => Some(v),
            Number::U64(v) => i64::try_from(v).ok(),
            Number::F64(_) => None,
        }
    }

    pub fn is_f64(&self) -> bool {
        matches!(self, Number::F64(_))
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::I64(v) => write!(f, "{v}"),
            Number::U64(v) => write!(f, "{v}"),
            Number::F64(v) => {
                if v.is_finite() {
                    write!(f, "{v}")
                } else {
                    write!(f, "null")
                }
            }
        }
    }
}

/// An insertion-ordered string-keyed map (upstream with `preserve_order`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl Map<String, Value> {
    pub fn new() -> Map<String, Value> {
        Map {
            entries: Vec::new(),
        }
    }

    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map<String, Value>),
}

macro_rules! from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::I64(v as i64))
            }
        }
    )*};
}

from_int!(i8, i16, i32, i64, isize);

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Number(Number::U64(v))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::Number(Number::U64(v as u64))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::F64(v))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

fn escape(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    f.write_str("\"")?;
    for ch in s.chars() {
        match ch {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => escape(s, f),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_json() {
        let mut m = Map::new();
        m.insert("a".into(), Value::from(1i64));
        m.insert("b".into(), Value::from(2.5));
        m.insert("s".into(), Value::from("x\"y"));
        let v = Value::Object(m);
        assert_eq!(v.to_string(), r#"{"a":1,"b":2.5,"s":"x\"y"}"#);
    }

    #[test]
    fn insert_replaces() {
        let mut m = Map::new();
        assert!(m.insert("k".into(), Value::from(1i64)).is_none());
        assert_eq!(
            m.insert("k".into(), Value::from(2i64)),
            Some(Value::from(1i64))
        );
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn number_kinds() {
        assert!(Value::from(1.0) == Value::Number(Number::F64(1.0)));
        assert!(Number::I64(3).as_f64() == Some(3.0));
        assert!(!Number::I64(3).is_f64());
        assert!(Number::F64(3.0).is_f64());
    }
}
