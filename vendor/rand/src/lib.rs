//! Minimal vendored subset of the `rand` API (see `rand_core` for why).
//!
//! Provides `Rng::gen_range` over integer and float ranges and
//! `seq::SliceRandom::shuffle` — the only entry points this workspace uses.

pub use rand_core::{RngCore, SeedableRng};
use std::ops::Range;

/// Range types usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

/// The user-facing sampling trait, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}
