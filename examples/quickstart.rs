//! Quickstart: the paper's §2.2 running example, end to end.
//!
//! Builds `do i: A[i] = A[i] + B[i]` with misaligned distributions,
//! translates it to naive owner-computes IL+XDP, runs the paper's
//! optimization pipeline, and executes both versions on a simulated
//! 4-processor 1993-style multicomputer.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;
use xdp::prelude::*;

fn main() {
    let n = 16i64;
    let nprocs = 4;

    // --- sequential source with HPF-style distribution annotations -------
    let grid = ProcGrid::linear(nprocs);
    let mut seq = SeqProgram::new();
    let a = seq.declare(build::array(
        "A",
        ElemType::F64,
        vec![(1, n)],
        vec![DimDist::Block],
        grid.clone(),
    ));
    let b = seq.declare(build::array(
        "B",
        ElemType::F64,
        vec![(1, n)],
        vec![DimDist::Cyclic], // misaligned with A on purpose
        grid,
    ));
    let ai = build::sref(a, vec![build::at(build::iv("i"))]);
    let bi = build::sref(b, vec![build::at(build::iv("i"))]);
    seq.body = vec![SeqStmt::DoLoop {
        var: "i".into(),
        lo: build::c(1),
        hi: build::c(n),
        body: vec![SeqStmt::Assign {
            target: ai.clone(),
            rhs: build::val(ai).add(build::val(bi)),
        }],
    }];

    // --- naive owner-computes translation (§2.2) -------------------------
    let naive = xdp_compiler::lower_owner_computes(&seq, &xdp_compiler::FrontendOptions::default())
        .unwrap();
    println!("==== naive owner-computes IL+XDP ====\n");
    println!("{}", xdp_ir::pretty::program(&naive));

    // --- the paper's optimization pipeline --------------------------------
    let (optimized, log) = PassManager::paper_pipeline().run(&naive);
    println!("==== optimization log ====\n");
    for (name, r) in &log {
        println!(
            "pass {name}: {}",
            if r.changed { "changed" } else { "no change" }
        );
        for note in &r.notes {
            println!("  - {note}");
        }
    }
    println!("\n==== optimized IL+XDP ====\n");
    println!("{}", xdp_ir::pretty::program(&optimized));

    // --- execute both on the simulated machine ---------------------------
    let run = |p: &Program, label: &str| {
        let mut exec = SimExec::new(
            Arc::new(p.clone()),
            KernelRegistry::standard(),
            SimConfig::new(nprocs).with_timeline(),
        );
        exec.init_exclusive(a, |idx| Value::F64(idx[0] as f64));
        exec.init_exclusive(b, |idx| Value::F64(100.0 * idx[0] as f64));
        let report = exec.run().expect("execution");
        println!("==== {label} ====");
        println!(
            "  virtual time {:>10.1}   messages {:>3}   wire bytes {:>5}   symtab queries {:>4}",
            report.virtual_time,
            report.net.messages,
            report.net.wire_bytes,
            report.procs.iter().map(|p| p.symtab.queries).sum::<u64>(),
        );
        println!("{}", report.gantt(72));
        let g = exec.gather(a);
        for i in 1..=n {
            assert_eq!(g.get(&[i]).unwrap().as_f64(), 101.0 * i as f64);
        }
        report.virtual_time
    };
    let t0 = run(&naive, "naive execution");
    let t1 = run(&optimized, "optimized execution");
    println!("speedup: {:.2}x  (results verified identical)", t0 / t1);
}
