//! Figures 2 and 3, reproduced live: the run-time XDP symbol table for the
//! paper's two example arrays, the distributions/segmentations of a 4x8
//! array as seen by processor P3, and a segment-granular ownership
//! redistribution with its timeline.
//!
//! ```text
//! cargo run --example redistribute
//! ```

use std::sync::Arc;
use xdp::prelude::*;
use xdp_runtime::RtSymbolTable;

fn print_symtab(pid: usize, t: &RtSymbolTable) {
    println!("--- processor P{pid} run-time symbol table ---");
    println!(
        "{:<6} {:<6} {:<4} {:<10} {:<24} {:<10} {:<9}",
        "index", "name", "rank", "shape", "partitioning", "seg shape", "#segments"
    );
    for e in t.entries() {
        let shape: Vec<String> = e.bounds.iter().map(|b| b.count().to_string()).collect();
        let seg = e
            .segment_shape
            .as_ref()
            .map(|s| {
                format!(
                    "({})",
                    s.iter()
                        .map(|x| x.to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                )
            })
            .unwrap_or_else(|| "(rect)".into());
        println!(
            "{:<6} {:<6} {:<4} {:<10} {:<24} {:<10} {:<9}",
            e.var.index(),
            e.name,
            e.rank,
            format!("({})", shape.join(",")),
            e.partitioning.to_string(),
            seg,
            e.owned_segment_count(),
        );
        for (i, seg) in e.segments.iter().enumerate() {
            println!(
                "    segdesc[{i}]: status {:?}  bounds {}",
                seg.status, seg.section
            );
        }
    }
    println!();
}

fn main() {
    // ---- Figure 2: A[1:4,1:8] (*,BLOCK) and B[1:16,1:16] (BLOCK,CYCLIC) --
    println!("==== Figure 2: the XDP symbol table structure ====\n");
    let decls = vec![
        build::array_seg(
            "A",
            ElemType::F64,
            vec![(1, 4), (1, 8)],
            vec![DimDist::Star, DimDist::Block],
            ProcGrid::linear(4),
            vec![2, 1],
        ),
        build::array_seg(
            "B",
            ElemType::F64,
            vec![(1, 16), (1, 16)],
            vec![DimDist::Block, DimDist::Cyclic],
            ProcGrid::grid2(2, 2),
            vec![4, 2],
        ),
    ];
    for pid in [0, 3] {
        print_symtab(pid, &RtSymbolTable::build(pid, &decls));
    }

    // ---- Figure 3: distributions and segmentations seen from P3 ----------
    println!("==== Figure 3: 4x8 array distributions, from P3 ====\n");
    let bounds = vec![Triplet::range(1, 4), Triplet::range(1, 8)];
    let cases: Vec<(&str, Distribution, Vec<i64>)> = vec![
        (
            "(BLOCK,BLOCK) 2x1 segments",
            Distribution::new(vec![DimDist::Block, DimDist::Block], ProcGrid::grid2(2, 2)),
            vec![2, 1],
        ),
        (
            "(BLOCK,BLOCK) 1x2 segments",
            Distribution::new(vec![DimDist::Block, DimDist::Block], ProcGrid::grid2(2, 2)),
            vec![1, 2],
        ),
        (
            "(*,BLOCK) 4x1 segments",
            Distribution::new(vec![DimDist::Star, DimDist::Block], ProcGrid::linear(4)),
            vec![4, 1],
        ),
        (
            "(*,BLOCK) 2x2 segments",
            Distribution::new(vec![DimDist::Star, DimDist::Block], ProcGrid::linear(4)),
            vec![2, 2],
        ),
    ];
    for (label, dist, seg) in cases {
        println!("{label}:");
        // Map each element of the 4x8 array to its segment id on P3 ('.'
        // for elements P3 does not own).
        let rects = dist.owned_rects(&bounds, 3);
        let mut segid = std::collections::HashMap::new();
        let mut k = 0;
        for r in &rects {
            for sec in xdp_runtime::segment::segment_sections(r, Some(&seg)) {
                for idx in sec.iter() {
                    segid.insert(idx.clone(), k);
                }
                k += 1;
            }
        }
        for i in 1..=4 {
            print!("    ");
            for j in 1..=8 {
                match segid.get(&vec![i as i64, j as i64]) {
                    Some(s) => print!("{s} "),
                    None => print!(". "),
                }
            }
            println!();
        }
        println!();
    }

    // ---- a live ownership redistribution at segment granularity ----------
    println!("==== segment-granular redistribution (*,BLOCK) -> (BLOCK,*) ====\n");
    let n = 8i64;
    let nprocs = 4;
    let mut p = Program::new();
    let a = p.declare(build::array_seg(
        "A",
        ElemType::F64,
        vec![(1, n), (1, n)],
        vec![DimDist::Star, DimDist::Block],
        ProcGrid::linear(nprocs),
        vec![1, 1],
    ));
    let own = p.declare(build::array(
        "OWN",
        ElemType::I64,
        vec![(1, n)],
        vec![DimDist::Block],
        ProcGrid::linear(nprocs),
    ));
    let cell = build::sref(
        a,
        vec![build::at(build::iv("i")), build::at(build::iv("j"))],
    );
    let own_i = build::sref(own, vec![build::at(build::iv("i"))]);
    p.body = vec![
        // Column owners hand each element to its row's new owner.
        build::do_loop(
            "i",
            build::c(1),
            build::c(n),
            vec![build::do_loop(
                "j",
                build::c(1),
                build::c(n),
                vec![
                    build::guarded(
                        build::iown(cell.clone())
                            .and(BoolExpr::Not(Box::new(build::iown(own_i.clone())))),
                        vec![build::send_own_val(cell.clone())],
                    ),
                    build::guarded(
                        build::iown(own_i.clone())
                            .and(BoolExpr::Not(Box::new(build::iown(cell.clone())))),
                        vec![build::recv_own_val(cell.clone())],
                    ),
                ],
            )],
        ),
    ];
    let mut exec = SimExec::new(
        Arc::new(p),
        KernelRegistry::standard(),
        SimConfig::new(nprocs).with_timeline(),
    );
    exec.init_exclusive(a, |idx| Value::F64((idx[0] * 10 + idx[1]) as f64));
    let report = exec.run().expect("redistribute");
    let g = exec.gather(a);
    println!("owner map after redistribution (row -> owner):");
    for i in 1..=n {
        let owners: Vec<String> = (1..=n)
            .map(|j| {
                g.owner(&[i, j])
                    .map(|o| o.to_string())
                    .unwrap_or(".".into())
            })
            .collect();
        println!("  row {i}: {}", owners.join(" "));
    }
    println!(
        "\nmessages {} (off-owner elements only), peak storage {} B, slots reused {}",
        report.net.messages,
        report
            .procs
            .iter()
            .map(|p| p.symtab.peak_bytes)
            .max()
            .unwrap(),
        report
            .procs
            .iter()
            .map(|p| p.symtab.slots_reused)
            .sum::<u64>(),
    );
    println!("{}", report.gantt(72));
}
