//! The §2.7 load-balancing idiom: ownership-based self-scheduling.
//!
//! "Depending on the load at run-time, there might be multiple outstanding
//! sends or outstanding receives." The master publishes every task's cost
//! under one name; every processor claims an equal number of jobs, but in
//! *completion order* — so a processor that drew cheap jobs comes back for
//! the next one sooner. Compare against the static contiguous-block
//! assignment across a skew sweep.
//!
//! ```text
//! cargo run --example load_balance
//! ```

use std::sync::Arc;
use xdp::prelude::*;
use xdp_apps::farm::{build_farm, build_static, FarmConfig};
use xdp_apps::workloads;

fn run(p: Program, w: VarId, costs: &[u64], np: usize) -> ExecReport {
    let mut exec = SimExec::new(Arc::new(p), xdp_apps::app_kernels(), SimConfig::new(np));
    exec.init_exclusive(w, |idx| Value::F64(costs[(idx[0] - 1) as usize] as f64));
    exec.run().expect("farm run")
}

fn main() {
    let (tasks, np, scale) = (32usize, 4usize, 50i64);
    let cfg = FarmConfig {
        tasks,
        nprocs: np,
        scale,
    };
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>9} {:>12}",
        "skew", "static time", "farm time", "ideal bound", "speedup", "farm eff."
    );
    for skew in [0.0, 0.5, 1.0, 1.5, 2.0, 3.0] {
        let costs = workloads::zipf_costs(tasks, 200_000, skew);
        let (pf, vf) = build_farm(cfg);
        let farm = run(pf, vf.w, &costs, np);
        let (ps, vs) = build_static(cfg);
        let stat = run(ps, vs.w, &costs, np);
        // Ideal = perfectly balanced compute, in virtual time units.
        let ideal = workloads::ideal_makespan(&costs, np) as f64 * scale as f64 * 0.1;
        println!(
            "{:>6.1} {:>14.0} {:>14.0} {:>14.0} {:>8.2}x {:>11.1}%",
            skew,
            stat.virtual_time,
            farm.virtual_time,
            ideal,
            stat.virtual_time / farm.virtual_time,
            100.0 * ideal / farm.virtual_time,
        );
    }
    println!(
        "\n(static = contiguous block assignment; farm = §2.7 multiple\n\
         outstanding sends/receives on one name, claims in completion order)"
    );
}
