//! The paper's closing claim (§6): "The applicability of XDP is quite
//! general ... it can be used to optimize data transfers across different
//! levels of a memory hierarchy."
//!
//! Model: "processor" 0 is large slow memory; "processor" 1 is a small
//! fast memory attached to the compute engine. Exclusive ownership of a
//! tile means residency in fast memory; XDP ownership transfer is the
//! explicit staging traffic. The program streams T tiles: fetch a tile
//! (`<=-` into fast memory), compute on it, write it back (`-=>`), with
//! the compute rule machinery tracking residency exactly as it tracks
//! distributed ownership. Segment granularity = the tile.
//!
//! ```text
//! cargo run --example memory_hierarchy
//! ```

use std::sync::Arc;
use xdp::prelude::*;
use xdp_ir::IntExpr;

fn program(tiles: i64, tile: i64, flops_per_elem: i64) -> (Program, VarId) {
    let n = tiles * tile;
    let mut p = Program::new();
    // DATA lives wholly in slow memory (pid 0) initially; tile segments.
    let data = p.declare(Decl {
        name: "DATA".into(),
        elem: ElemType::F64,
        bounds: vec![Triplet::range(1, n)],
        ownership: Ownership::Exclusive,
        dist: Some(Distribution::collapsed(1, 2)),
        segment_shape: Some(vec![tile]),
    });
    let t0 = build::iv("t")
        .sub(build::c(1))
        .mul(build::c(tile))
        .add(build::c(1));
    let t1 = build::iv("t").mul(build::c(tile));
    let tile_sec = build::sref(data, vec![build::span(t0, t1)]);
    let slow = build::cmp(xdp_ir::CmpOp::Eq, build::mypid(), build::c(0));
    let fast = build::cmp(xdp_ir::CmpOp::Eq, build::mypid(), build::c(1));
    p.body = vec![build::do_loop(
        "t",
        build::c(1),
        build::c(tiles),
        vec![
            // Slow memory stages the tile out; fast memory fetches it.
            // Destinations are bound (`E -> S`): fetch and write-back share
            // the tile's name, so the rendezvous must be directed.
            build::guarded(
                slow.clone(),
                vec![build::send_own_val_to(tile_sec.clone(), vec![build::c(1)])],
            ),
            build::guarded(fast.clone(), vec![build::recv_own_val(tile_sec.clone())]),
            // Compute while resident in fast memory.
            build::guarded(
                build::await_(tile_sec.clone()),
                vec![build::kernel_with(
                    "work",
                    vec![tile_sec.clone()],
                    vec![build::c(flops_per_elem * tile)],
                )],
            ),
            // Write the tile back (residency released: §2.6's storage
            // reuse — fast memory's footprint stays one tile).
            build::guarded(
                fast.clone(),
                vec![build::send_own_val_to(tile_sec.clone(), vec![build::c(0)])],
            ),
            build::guarded(slow.clone(), vec![build::recv_own_val(tile_sec.clone())]),
        ],
    )];
    (p, data)
}

/// Double-buffered variant: fast memory preposts the fetch of tile t+1
/// before computing tile t, so staging overlaps compute (§3.2's "move the
/// receive statements as early as possible", applied to a memory
/// hierarchy). Peak fast-memory residency becomes two tiles.
fn program_double_buffered(tiles: i64, tile: i64, flops_per_elem: i64) -> (Program, VarId) {
    let n = tiles * tile;
    let mut p = Program::new();
    let data = p.declare(Decl {
        name: "DATA".into(),
        elem: ElemType::F64,
        bounds: vec![Triplet::range(1, n)],
        ownership: Ownership::Exclusive,
        dist: Some(Distribution::collapsed(1, 2)),
        segment_shape: Some(vec![tile]),
    });
    let sec_at = |t: IntExpr| {
        let t0 = t
            .clone()
            .sub(build::c(1))
            .mul(build::c(tile))
            .add(build::c(1));
        let t1 = t.mul(build::c(tile));
        build::sref(data, vec![build::span(t0, t1)])
    };
    let tile_t = sec_at(build::iv("t"));
    let tile_next = sec_at(build::iv("t").add(build::c(1)));
    let tile_first = sec_at(build::c(1));
    let slow = build::cmp(xdp_ir::CmpOp::Eq, build::mypid(), build::c(0));
    let fast = build::cmp(xdp_ir::CmpOp::Eq, build::mypid(), build::c(1));
    let not_last = build::cmp(xdp_ir::CmpOp::Lt, build::iv("t"), build::c(tiles));
    p.body = vec![
        // Prologue: fetch tile 1.
        build::guarded(
            slow.clone(),
            vec![build::send_own_val_to(
                tile_first.clone(),
                vec![build::c(1)],
            )],
        ),
        build::guarded(fast.clone(), vec![build::recv_own_val(tile_first)]),
        build::do_loop(
            "t",
            build::c(1),
            build::c(tiles),
            vec![
                // Stage tile t+1 while tile t computes.
                build::guarded(
                    slow.clone().and(not_last.clone()),
                    vec![build::send_own_val_to(tile_next.clone(), vec![build::c(1)])],
                ),
                build::guarded(
                    fast.clone().and(not_last.clone()),
                    vec![build::recv_own_val(tile_next.clone())],
                ),
                build::guarded(
                    build::await_(tile_t.clone()),
                    vec![build::kernel_with(
                        "work",
                        vec![tile_t.clone()],
                        vec![build::c(flops_per_elem * tile)],
                    )],
                ),
                build::guarded(
                    fast.clone(),
                    vec![build::send_own_val_to(tile_t.clone(), vec![build::c(0)])],
                ),
                build::guarded(slow.clone(), vec![build::recv_own_val(tile_t.clone())]),
            ],
        ),
    ];
    (p, data)
}

fn main() {
    // Fast<->slow staging cost: model the "interconnect" as a memory bus.
    let bus = CostModel {
        alpha: 30.0, // per-transfer setup
        beta: 0.05,  // per byte
        ..CostModel::default_1993()
    };
    println!("variant            tiles x tile  |  time      peak fast bytes  transfers");
    for (tiles, tile) in [(64i64, 4i64), (32, 8), (16, 16), (4, 64), (1, 256)] {
        for (label, (p, data)) in [
            ("single-buffered", program(tiles, tile, 60)),
            ("double-buffered", program_double_buffered(tiles, tile, 60)),
        ] {
            let mut exec = SimExec::new(
                Arc::new(p),
                KernelRegistry::standard(),
                SimConfig::new(2).with_cost(bus),
            );
            exec.init_exclusive(data, |idx| Value::F64(idx[0] as f64));
            let r = exec.run().expect("run");
            // Peak residency in "fast memory" = p1's symbol-table high water.
            let peak_fast = r.procs[1].symtab.peak_bytes;
            println!(
                "{label}  {:>7} x {:<4} | {:>9.1}  {:>10} B       {:>4}",
                tiles, tile, r.virtual_time, peak_fast, r.net.messages,
            );
            let g = exec.gather(data);
            // Every tile went through fast memory once (work adds 1 to the
            // first element of each tile) and returned to slow memory.
            for t in 0..tiles {
                let first = t * tile + 1;
                assert_eq!(g.owner(&[first]), Some(0), "tile {t} back in slow memory");
                assert_eq!(g.get(&[first]).unwrap().as_f64(), first as f64 + 1.0);
            }
        }
    }
    println!(
        "\nthe same XDP constructs that managed distributed ownership manage\n\
         residency: one tile of fast-memory footprint regardless of data size,\n\
         with the staging/compute overlap visible in the tile-size sweep."
    );
}
