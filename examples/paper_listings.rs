//! The paper's listings, parsed from their concrete syntax and executed.
//!
//! Two adaptations from the 1993 text, both noted in DESIGN.md: processor
//! ids are 0-based (`T[mypid]` with `T[0:3]`), and the paper's 1-based
//! processor grid means its `A[*,n,p]` FFT subscripts stay as written
//! because the loop variable `p` ranges over plane indices, not pids.
//!
//! ```text
//! cargo run --example paper_listings
//! ```

use std::sync::Arc;
use xdp::prelude::*;
use xdp_apps::fft3d::{cube_ordinal, input_cube};
use xdp_lang::parse_program;
use xdp_runtime::Complex;

/// §2.2, first listing: the straightforward owner-computes translation.
const SIMPLE: &str = r#"
real A[1:16] distribute (BLOCK) onto 4
real B[1:16] distribute (BLOCK) onto 4
real T[0:3] distribute (BLOCK) onto 4 segment (1)

do i = 1, 16
  iown(B[i]) : { B[i] -> }
  iown(A[i]) : {
    T[mypid] <- B[i]
    await(T[mypid]) : { A[i] = A[i] + T[mypid] }
  }
enddo
"#;

/// §2.2, second listing: the ownership-migration strategy.
const MIGRATE: &str = r#"
real A[1:16] distribute (BLOCK) onto 4 segment (1)
real B[1:16] distribute (CYCLIC) onto 4

do i = 1, 16
  iown(A[i]) : { A[i] -=> }
  iown(B[i]) : { A[i] <=- }
  await(A[i]) : { A[i] = A[i] + B[i] }
enddo
"#;

/// §4, first listing: the 3-D FFT with ownership redistribution
/// (4x4x4 on 4 processors — one plane each, exactly as printed).
const FFT: &str = r#"
complex A[1:4,1:4,1:4] distribute (*,*,BLOCK) onto 4 segment (4,1,1)

// Loop1: 1-D FFT in the j direction
do k = 1, 4
  iown(A[*,*,k]) : {
    do i = 1, 4
      fft1d(A[i,*,k])
    enddo
  }
enddo
// Loop2: 1-D FFT in the i direction
do k = 1, 4
  iown(A[*,*,k]) : {
    do j = 1, 4
      fft1d(A[*,j,k])
    enddo
  }
enddo
// Loop3: Redistribute A as (*,BLOCK,*)
do p = 1, 4
  iown(A[*,*,p]) : {
    do n = 1, 4
      A[*,n,p] -=>
    enddo
    do n = 1, 4
      A[*,p,n] <=-
    enddo
  }
enddo
// Loop4: 1-D FFT in the k direction
do j = 1, 4
  await(A[*,j,*]) : {
    do i = 1, 4
      fft1d(A[i,j,*])
    enddo
  }
enddo
"#;

fn main() {
    // ---- §2.2 owner-computes --------------------------------------------
    println!("==== §2.2 listing 1: owner-computes translation ====\n");
    let p = parse_program(SIMPLE).expect("parse simple");
    let a = p.lookup("A").unwrap();
    let b = p.lookup("B").unwrap();
    let mut exec = SimExec::new(Arc::new(p), KernelRegistry::standard(), SimConfig::new(4));
    exec.init_exclusive(a, |idx| Value::F64(idx[0] as f64));
    exec.init_exclusive(b, |idx| Value::F64(100.0 * idx[0] as f64));
    let r = exec.run().expect("simple");
    let g = exec.gather(a);
    for i in 1..=16 {
        assert_eq!(g.get(&[i]).unwrap().as_f64(), 101.0 * i as f64);
    }
    println!(
        "verified A[i] = A[i] + B[i] for all i; {} messages, t = {:.1}\n",
        r.net.messages, r.virtual_time
    );

    // ---- §2.2 ownership migration ----------------------------------------
    println!("==== §2.2 listing 2: ownership migration ====\n");
    let p = parse_program(MIGRATE).expect("parse migrate");
    let a = p.lookup("A").unwrap();
    let b = p.lookup("B").unwrap();
    let mut exec = SimExec::new(Arc::new(p), KernelRegistry::standard(), SimConfig::new(4));
    exec.init_exclusive(a, |idx| Value::F64(idx[0] as f64));
    exec.init_exclusive(b, |idx| Value::F64(100.0 * idx[0] as f64));
    let r = exec.run().expect("migrate");
    let g = exec.gather(a);
    for i in 1..=16i64 {
        assert_eq!(g.get(&[i]).unwrap().as_f64(), 101.0 * i as f64);
        assert_eq!(
            g.owner(&[i]),
            Some(((i - 1) % 4) as usize),
            "A[{i}] follows B"
        );
    }
    println!("verified results AND that A's ownership now follows B (cyclic);");
    println!(
        "{} ownership transfers, t = {:.1}\n",
        r.net.messages, r.virtual_time
    );

    // ---- §4 3-D FFT -------------------------------------------------------
    println!("==== §4 listing: 3-D FFT with redistribution ====\n");
    let p = parse_program(FFT).expect("parse fft");
    let a = p.lookup("A").unwrap();
    let n = 4i64;
    let input = input_cube(n, 99);
    let mut expect: Vec<Complex> = input.clone();
    xdp_apps::fft3d_seq(&mut expect, n as usize);
    let mut exec = SimExec::new(Arc::new(p), xdp_apps::app_kernels(), SimConfig::new(4));
    exec.init_exclusive(a, |idx| Value::C64(input[cube_ordinal(n, idx)]));
    let r = exec.run().expect("fft");
    let g = exec.gather(a);
    let mut max_err: f64 = 0.0;
    for i in 1..=n {
        for j in 1..=n {
            for k in 1..=n {
                let got = g.get(&[i, j, k]).unwrap().as_c64();
                let want = expect[cube_ordinal(n, &[i, j, k])];
                max_err = max_err.max((got - want).abs());
            }
        }
    }
    assert!(max_err < 1e-9);
    println!(
        "verified against sequential 3-D FFT (max error {max_err:.2e});\n\
         {} column transfers, t = {:.1}",
        r.net.messages, r.virtual_time
    );
}
