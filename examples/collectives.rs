//! The collectives subsystem: collective algorithms as explicit message
//! schedules, cost prediction across interconnects, and the redistribution
//! planner — from schedule construction down to an executed `redistribute`
//! statement.
//!
//! ```text
//! cargo run --example collectives
//! ```

use std::sync::Arc;
use xdp::collectives::{
    allgather_ring, allreduce, alltoall_bruck, alltoall_pairwise, broadcast_binomial, plan, run_sim,
};
use xdp::prelude::*;

fn main() {
    let nprocs = 8;
    let n = 64i64;

    // --- collective algorithms as schedules -------------------------------
    println!("==== collective schedules (P={nprocs}, n={n} f64) ====\n");
    let schedules = [
        (
            "broadcast (binomial)",
            broadcast_binomial(VarId(0), n, 8, nprocs, 0),
        ),
        (
            "allreduce (recursive doubling)",
            allreduce(VarId(0), n, 8, nprocs),
        ),
        ("allgather (ring)", allgather_ring(VarId(0), n, 8, nprocs)),
        (
            "all-to-all (pairwise)",
            alltoall_pairwise(VarId(0), n, 8, nprocs),
        ),
        ("all-to-all (Bruck)", alltoall_bruck(VarId(0), n, 8, nprocs)),
    ];
    let model = CostModel::default_1993();
    println!(
        "{:<32} {:>6} {:>9} {:>9} {:>12} {:>12}",
        "collective", "rounds", "messages", "bytes", "t(uniform)", "t(linear)"
    );
    for (name, s) in &schedules {
        println!(
            "{:<32} {:>6} {:>9} {:>9} {:>12.1} {:>12.1}",
            name,
            s.rounds.len(),
            s.message_count(),
            s.total_bytes(),
            s.predicted_cost(&model, &Topology::Uniform),
            s.predicted_cost(&model, &Topology::Linear),
        );
    }

    // Prediction vs discrete-event simulation for one of them.
    let bounds = Section::new(vec![Triplet::range(1, n)]);
    let bcast = &schedules[0].1;
    let mut data: Vec<Vec<f64>> = (0..nprocs)
        .map(|p| {
            if p == 0 {
                (1..=n).map(|i| i as f64).collect()
            } else {
                vec![0.0; n as usize]
            }
        })
        .collect();
    let (t_sim, stats) =
        run_sim(bcast, &bounds, &mut data, &model, &Topology::Uniform).expect("schedule replays");
    assert!(data.iter().all(|v| v[7] == 8.0), "broadcast delivered");
    println!(
        "\nbroadcast simulated: time {t_sim:.1}, {} messages, {} wire bytes\n",
        stats.messages, stats.wire_bytes
    );

    // --- the redistribution planner ---------------------------------------
    println!("==== redistribution planner ====\n");
    let src = Distribution::new(vec![DimDist::Block], ProcGrid::linear(nprocs));
    let dst = Distribution::new(vec![DimDist::Cyclic], ProcGrid::linear(nprocs));
    let tbounds = [Triplet::range(1, n)];
    for (label, cost, topo) in [
        (
            "cheap messages, uniform net",
            CostModel {
                alpha: 0.1,
                cpu_overhead: 0.1,
                ..CostModel::default_1993()
            },
            Topology::Uniform,
        ),
        (
            "dear messages, linear net",
            CostModel {
                alpha: 5000.0,
                ..CostModel::default_1993()
            },
            Topology::Linear,
        ),
    ] {
        let pl = plan(VarId(0), &tbounds, 8, &src, &dst, &cost, &topo, false);
        println!("BLOCK -> CYCLIC under {label}:");
        for (st, c) in &pl.alternatives {
            let mark = if *st == pl.strategy {
                "  <- chosen"
            } else {
                ""
            };
            println!("  {st:<16} predicted {c:>10.1}{mark}");
        }
    }

    // --- `redistribute` as an executed statement --------------------------
    // Each processor-pair's elements travel as ONE strided-section message
    // (here 32 elements per message), not one message per element.
    println!("\n==== redistribute statement on the simulator ====\n");
    let nn = 256i64;
    let mut p = Program::new();
    let a = p.declare(build::array(
        "A",
        ElemType::F64,
        vec![(1, nn)],
        vec![DimDist::Block],
        ProcGrid::linear(nprocs),
    ));
    p.body = vec![build::redistribute(a, dst)];
    println!("{}", xdp::ir::pretty::program(&p));
    let mut exec = SimExec::new(
        Arc::new(p),
        KernelRegistry::standard(),
        SimConfig::new(nprocs),
    );
    exec.init_exclusive(a, |idx| Value::F64(idx[0] as f64));
    let r = exec.run().expect("run");
    let g = exec.gather(a);
    for i in 1..=nn {
        assert_eq!(g.get(&[i]).expect("covered").as_f64(), i as f64);
    }
    println!(
        "executed: virtual time {:.1}, {} messages (vs {} moving elements one-by-one)",
        r.virtual_time,
        r.net.messages,
        nn - nn / nprocs as i64,
    );
}
