//! The paper's §4 walkthrough: a 3-D FFT with XDP ownership
//! redistribution, optimized stage by stage.
//!
//! Prints the IL+XDP for the paper's 4x4x4-on-4 configuration (including
//! the verbatim first listing), shows the compiler passes *deriving* the
//! optimized stages, executes every stage on the simulated machine
//! (verifying bit-level agreement with a sequential 3-D FFT), and renders
//! the timelines that make the communication/computation overlap visible.
//!
//! ```text
//! cargo run --example fft3d [n nprocs]
//! ```

use xdp::prelude::*;
use xdp_apps::fft3d::{self, Fft3dConfig, Stage};
use xdp_compiler::passes::{FuseLoops, LocalizeBounds, SinkAwait};
use xdp_compiler::Pass;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: i64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let nprocs: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let cfg = Fft3dConfig::new(n, nprocs);

    // --- the paper's first listing, verbatim shape (n == P only) ---------
    if n == nprocs as i64 {
        let (paper, _) = fft3d::paper_listing_v0(cfg);
        println!("==== §4 first listing (verbatim shape) ====\n");
        println!("{}", xdp_ir::pretty::program(&paper));
    }

    // --- pass-derived optimization of the naive stage ---------------------
    let (v0, _) = fft3d::build(cfg, Stage::V0Naive);
    println!("==== v0: naive guarded form ====\n");
    println!("{}", xdp_ir::pretty::program(&v0));

    let loc = LocalizeBounds.run(&v0);
    println!("==== compute-rule elimination (localize-bounds) ====");
    for note in &loc.notes {
        println!("  - {note}");
    }
    let fused = FuseLoops.run(&loc.program);
    println!("==== loop fusion ====");
    for note in &fused.notes {
        println!("  - {note}");
    }
    let sunk = SinkAwait.run(&fused.program);
    println!("==== await sinking ====");
    for note in &sunk.notes {
        println!("  - {note}");
    }
    println!("\n==== derived optimized program ====\n");
    println!("{}", xdp_ir::pretty::program(&sunk.program));

    // --- execute every stage with slow communication ----------------------
    println!("==== execution (alpha = 500, per-stage) ====\n");
    let slow = CostModel {
        alpha: 500.0,
        ..CostModel::default_1993()
    };
    let mut baseline = None;
    for stage in Stage::all() {
        let report = fft3d::run_stage(
            cfg,
            stage,
            SimConfig::new(nprocs).with_cost(slow).with_timeline(),
            42,
        )
        .expect("fft3d stage");
        let t = report.virtual_time;
        let speedup = baseline.map(|b: f64| b / t).unwrap_or(1.0);
        baseline = baseline.or(Some(t));
        println!(
            "{:>14}: time {:>12.1}  messages {:>4}  wait {:>12.1}  speedup vs v0 {:>5.2}x",
            stage.label(),
            t,
            report.net.messages,
            report.total_wait(),
            speedup,
        );
        println!("{}", report.gantt(72));
    }
    println!("(every stage verified against the sequential 3-D FFT)");
}
