//! The §2.6 debugger idea, demonstrated: "a debugger could allow the user
//! to input an ownership transfer command that moves exclusive ownership
//! of a variable (and hence the permission to execute certain SPMD code
//! segments ...) from one processor to another. Thus, processors can be
//! selectively monitored by simply transferring ownership of this
//! variable."
//!
//! `MON[0]` is the monitor token. Each phase, every processor runs its
//! work; the `iown(MON[0])`-guarded snapshot block executes only on the
//! token's owner, which records its pid into the trace array. Between
//! phases the token's ownership is handed to the next processor — the
//! "debugger command". The final trace proves exactly one processor was
//! monitored per phase, in the commanded order.
//!
//! ```text
//! cargo run --example debug_monitor
//! ```

use std::sync::Arc;
use xdp::prelude::*;

fn main() {
    let nprocs = 4usize;
    let np = nprocs as i64;
    let phases = np; // monitor each processor once, round-robin
    let mut p = Program::new();
    let grid = ProcGrid::linear(nprocs);
    let work = p.declare(build::array(
        "WORK",
        ElemType::F64,
        vec![(1, np * 4)],
        vec![DimDist::Block],
        grid.clone(),
    ));
    let mon = p.declare(Decl {
        name: "MON".into(),
        elem: ElemType::I64,
        bounds: vec![Triplet::range(0, 0)],
        ownership: Ownership::Exclusive,
        dist: Some(Distribution::collapsed(1, nprocs)), // token starts on p0
        segment_shape: Some(vec![1]),
    });
    let trace = p.declare(build::array(
        "TRACE",
        ElemType::I64,
        vec![(1, phases)],
        vec![DimDist::Cyclic], // phase t's slot owned by proc (t-1) % P
        grid,
    ));
    let mon0 = build::sref(mon, vec![build::at(build::c(0))]);
    let work_all = build::sref(work, vec![build::all()]);
    let mine = build::sref(
        work,
        vec![build::span(
            build::mylb(work_all.clone(), 1),
            build::myub(work_all, 1),
        )],
    );
    let trace_t = build::sref(trace, vec![build::at(build::iv("t"))]);
    p.body = vec![build::do_loop(
        "t",
        build::c(1),
        build::c(phases),
        vec![
            // Everybody computes.
            build::kernel_with("work", vec![mine.clone()], vec![build::c(500)]),
            // Only the monitored processor snapshots: it stamps its pid
            // into the phase's trace slot (which it may not own — but the
            // trace slot owner is exactly the monitored proc by
            // construction: slot t is cyclic-owned by (t-1) % P, and the
            // token visits processors in that same order).
            build::guarded(
                build::iown(mon0.clone()).and(build::iown(trace_t.clone())),
                vec![build::assign(
                    trace_t.clone(),
                    xdp_ir::ElemExpr::FromInt(build::mypid()),
                )],
            ),
            // The "debugger command": pass the token to the next processor.
            build::guarded(
                build::iown(mon0.clone()),
                vec![build::send_own_val(mon0.clone())],
            ),
            build::guarded(
                build::cmp(
                    xdp_ir::CmpOp::Eq,
                    build::mypid(),
                    xdp_ir::IntExpr::Bin(
                        xdp_ir::IntBinOp::Mod,
                        Box::new(build::iv("t")),
                        Box::new(build::c(np)),
                    ),
                ),
                vec![build::recv_own_val(mon0.clone())],
            ),
            build::guarded(build::await_(mon0.clone()), vec![]),
            Stmt::Barrier,
        ],
    )];

    let mut exec = SimExec::new(
        Arc::new(p),
        KernelRegistry::standard(),
        SimConfig::new(nprocs).with_timeline(),
    );
    let report = exec.run().expect("run");
    let g = exec.gather(trace);
    println!("phase -> monitored processor (token owner):");
    for t in 1..=phases {
        let who = g.get(&[t]).unwrap().as_i64();
        println!("  phase {t}: p{who}");
        assert_eq!(who, t - 1, "round-robin monitoring order");
    }
    let gm = exec.gather(mon);
    println!(
        "\ntoken finally rests on p{} after {} ownership hops ({} messages total)",
        gm.owner(&[0]).unwrap(),
        phases,
        report.net.messages,
    );
    println!("{}", report.gantt(72));
    println!(
        "only the token owner executed the monitored block each phase —\n\
         ownership as a debugging capability, exactly as §2.6 suggests."
    );
}
