//! Chaos conformance: every XDP program must produce bit-identical results
//! under injected transport faults (drops, duplicates, reordering, delays)
//! to its fault-free execution, on the virtual-time simulator, the
//! threaded machine, and the async task-per-processor machine — the
//! ack/retry delivery layer makes faults invisible to program semantics.
//! Permanently lost messages must be *diagnosed* as lost, never reported
//! as a deadlock or silent timeout. The async machine additionally runs
//! the suite at P=1024, far past thread-per-processor territory.

use std::sync::Arc;
use xdp::prelude::*;
use xdp_apps::fft3d::{Fft3dConfig, Stage};
use xdp_ir::CmpOp;

/// The standard chaos plan for these tests: every fault class enabled,
/// drop rate at the acceptance bar (10%).
fn chaos(seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::uniform(
        seed,
        LinkFault {
            drop: 0.10,
            dup: 0.10,
            reorder: 0.25,
            delay_p: 0.20,
            delay: 120.0,
        },
    );
    plan.rto = 500.0;
    plan
}

/// Deterministic per-element init for every exclusive array, matching the
/// element type (fft3d's cube is complex).
fn init_value(elem: ElemType, ord: i64) -> Value {
    match elem {
        ElemType::C64 => Value::C64(Complex::new((ord + 1) as f64, -(ord as f64) * 0.5)),
        _ => Value::F64((ord + 1) as f64),
    }
}

fn init_sim(exec: &mut SimExec, decls: &[Decl]) {
    for (i, d) in decls.iter().enumerate() {
        if d.is_exclusive() {
            let full = Section::new(d.bounds.clone());
            let elem = d.elem;
            exec.init_exclusive(VarId(i as u32), move |idx| {
                init_value(elem, full.ordinal_of(idx).unwrap_or(0))
            });
        }
    }
}

fn init_thr(exec: &mut ThreadExec, decls: &[Decl]) {
    for (i, d) in decls.iter().enumerate() {
        if d.is_exclusive() {
            let full = Section::new(d.bounds.clone());
            let elem = d.elem;
            exec.init_exclusive(VarId(i as u32), move |idx| {
                init_value(elem, full.ordinal_of(idx).unwrap_or(0))
            });
        }
    }
}

fn init_tasks(exec: &mut AsyncExec, decls: &[Decl]) {
    for (i, d) in decls.iter().enumerate() {
        if d.is_exclusive() {
            let full = Section::new(d.bounds.clone());
            let elem = d.elem;
            exec.init_exclusive(VarId(i as u32), move |idx| {
                init_value(elem, full.ordinal_of(idx).unwrap_or(0))
            });
        }
    }
}

/// The final global state of every exclusive array, as one map per array.
type State = Vec<std::collections::BTreeMap<Vec<i64>, (usize, Value)>>;

fn sim_state(
    program: &Program,
    kernels: KernelRegistry,
    nprocs: usize,
    faults: FaultPlan,
    trace: bool,
) -> (State, ExecReport) {
    let mut cfg = SimConfig::new(nprocs).with_faults(faults);
    if trace {
        cfg = cfg.with_trace(TraceConfig::full());
    }
    let decls = program.decls.clone();
    let mut exec = SimExec::new(Arc::new(program.clone()), kernels, cfg);
    init_sim(&mut exec, &decls);
    let report = exec.run().expect("sim run");
    let state = decls
        .iter()
        .enumerate()
        .filter(|(_, d)| d.is_exclusive())
        .map(|(i, _)| exec.gather(VarId(i as u32)).values)
        .collect();
    (state, report)
}

fn thr_state(
    program: &Program,
    kernels: KernelRegistry,
    nprocs: usize,
    faults: FaultPlan,
) -> State {
    let decls = program.decls.clone();
    let mut exec = ThreadExec::new(
        Arc::new(program.clone()),
        kernels,
        ThreadConfig::new(nprocs).with_faults(faults),
    );
    init_thr(&mut exec, &decls);
    exec.run().expect("threaded run");
    decls
        .iter()
        .enumerate()
        .filter(|(_, d)| d.is_exclusive())
        .map(|(i, _)| exec.gather(VarId(i as u32)).values)
        .collect()
}

fn tasks_state(
    program: &Program,
    kernels: KernelRegistry,
    nprocs: usize,
    faults: FaultPlan,
) -> State {
    let decls = program.decls.clone();
    let mut exec = AsyncExec::new(
        Arc::new(program.clone()),
        kernels,
        AsyncConfig::new(nprocs).with_faults(faults),
    );
    init_tasks(&mut exec, &decls);
    exec.run().expect("async run");
    decls
        .iter()
        .enumerate()
        .filter(|(_, d)| d.is_exclusive())
        .map(|(i, _)| exec.gather(VarId(i as u32)).values)
        .collect()
}

/// One conformance workload: (label, program, kernel registry, machine size).
type App = (&'static str, Program, fn() -> KernelRegistry, usize);

fn apps() -> Vec<App> {
    let (fft_v5, _) = xdp_apps::fft3d::build(Fft3dConfig::new(4, 4), Stage::V5Planned);
    let (fft_v6, _) = xdp_apps::fft3d::build(Fft3dConfig::new(4, 4), Stage::V6Auto);
    let (jacobi, _) = xdp_apps::halo2d::build_jacobi2d(8, 10, 4, 2);
    let (matvec, _) = xdp_apps::matvec::build_matvec(8, 4);
    vec![
        ("fft3d-v5", fft_v5, xdp_apps::app_kernels, 4),
        ("fft3d-v6", fft_v6, xdp_apps::app_kernels, 4),
        ("jacobi2d", jacobi, KernelRegistry::standard, 4),
        ("matvec", matvec, xdp_apps::matvec::matvec_kernels, 4),
    ]
}

#[test]
fn sim_chaos_is_bit_identical_and_fully_attributed() {
    for (label, program, kernels, nprocs) in apps() {
        let (clean, clean_report) =
            sim_state(&program, kernels(), nprocs, FaultPlan::none(), false);
        let (faulty, report) = sim_state(&program, kernels(), nprocs, chaos(11), true);
        assert_eq!(clean, faulty, "{label}: chaos changed the result");
        assert_eq!(
            clean_report.net.messages, report.net.messages,
            "{label}: dedup must keep the delivered-message count"
        );
        // Retry latency must be visible to — and fully attributed by —
        // the critical-path analyzer.
        let labels = std::collections::HashMap::new();
        let cp = report.trace.critical_path(&labels);
        assert!(report.virtual_time > 0.0, "{label}");
        assert!(
            (cp.attributed() - report.virtual_time).abs() <= 1e-6 * report.virtual_time,
            "{label}: attributed {:.3} of {:.3} under faults",
            cp.attributed(),
            report.virtual_time
        );
    }
}

#[test]
fn sim_chaos_injects_faults_on_every_app() {
    // A conformance pass that never injected anything proves nothing:
    // check the chaos plan actually bites on each communicating app's
    // traffic. (fft3d-v6 at this size auto-places to zero messages — a
    // program that sends nothing has nothing to fault.)
    let mut injected_somewhere = false;
    for (label, program, kernels, nprocs) in apps() {
        let (_, report) = sim_state(&program, kernels(), nprocs, chaos(11), false);
        if report.net.messages > 0 {
            assert!(
                report.faults.any_injected(),
                "{label}: no faults injected despite {} messages",
                report.net.messages
            );
            injected_somewhere = true;
        }
    }
    assert!(injected_somewhere, "every app serialized; suite is vacuous");
}

#[test]
fn threads_chaos_is_bit_identical() {
    for (label, program, kernels, nprocs) in apps() {
        let clean = thr_state(&program, kernels(), nprocs, FaultPlan::none());
        let faulty = thr_state(&program, kernels(), nprocs, chaos(23));
        assert_eq!(clean, faulty, "{label}: chaos changed the result");
    }
}

#[test]
fn tasks_chaos_is_bit_identical() {
    for (label, program, kernels, nprocs) in apps() {
        let clean = tasks_state(&program, kernels(), nprocs, FaultPlan::none());
        let faulty = tasks_state(&program, kernels(), nprocs, chaos(31));
        assert_eq!(clean, faulty, "{label}: chaos changed the result");
        // And the async machine agrees with the simulator on every app.
        let (sim, _) = sim_state(&program, kernels(), nprocs, FaultPlan::none(), false);
        assert_eq!(sim, clean, "{label}: async diverged from the simulator");
    }
}

/// A neighbour ring exchange with O(1) statements per processor: pid p
/// (except the last) sends its element of T; pid p (except the first)
/// receives the value of its left neighbour's element into U. Scales to
/// thousands of processors on the async machine.
fn ring_exchange(nprocs: usize) -> Program {
    let n = nprocs as i64;
    let grid = ProcGrid::linear(nprocs);
    let mut p = Program::new();
    let t = p.declare(build::array(
        "T",
        ElemType::F64,
        vec![(0, n - 1)],
        vec![DimDist::Block],
        grid.clone(),
    ));
    let u = p.declare(build::array(
        "U",
        ElemType::F64,
        vec![(0, n - 1)],
        vec![DimDist::Block],
        grid,
    ));
    let tm = build::sref(t, vec![build::at(build::mypid())]);
    let tprev = build::sref(t, vec![build::at(build::mypid().sub(build::c(1)))]);
    let um = build::sref(u, vec![build::at(build::mypid())]);
    p.body = vec![
        build::guarded(
            build::cmp(CmpOp::Lt, build::mypid(), build::c(n - 1)),
            vec![build::send(tm)],
        ),
        build::guarded(
            build::cmp(CmpOp::Gt, build::mypid(), build::c(0)),
            vec![
                build::recv_val(um.clone(), tprev),
                build::guarded(build::await_(um), vec![]),
            ],
        ),
    ];
    p
}

#[test]
fn tasks_chaos_at_p1024_matches_the_simulator() {
    let nprocs = 1024;
    let program = ring_exchange(nprocs);
    let (sim, report) = sim_state(
        &program,
        KernelRegistry::standard(),
        nprocs,
        FaultPlan::none(),
        false,
    );
    assert_eq!(
        report.net.messages,
        nprocs as u64 - 1,
        "one message per ring edge"
    );
    let clean = tasks_state(
        &program,
        KernelRegistry::standard(),
        nprocs,
        FaultPlan::none(),
    );
    assert_eq!(sim, clean, "async P=1024 diverged from the simulator");
    let mut plan = chaos(47);
    plan.rto = 5_000.0; // µs: the async machine's clock is wall time
    let faulty = tasks_state(&program, KernelRegistry::standard(), nprocs, plan);
    assert_eq!(clean, faulty, "chaos changed the result at P=1024");
}

#[test]
fn sim_permanent_loss_is_diagnosed() {
    let (program, _) = xdp_apps::matvec::build_matvec(8, 4);
    let mut plan = FaultPlan::none();
    plan.kill.push((0, 1));
    plan.rto = 200.0;
    plan.max_retries = 2;
    let decls = program.decls.clone();
    let mut exec = SimExec::new(
        Arc::new(program),
        xdp_apps::matvec::matvec_kernels(),
        SimConfig::new(4).with_faults(plan),
    );
    init_sim(&mut exec, &decls);
    match exec.run() {
        Err(RtError::MessageLost(d)) => {
            assert!(d.contains("permanently lost"), "{d}");
        }
        other => panic!("want MessageLost, got {other:?}"),
    }
}

#[test]
fn threads_permanent_loss_is_diagnosed() {
    let (program, _) = xdp_apps::matvec::build_matvec(8, 4);
    let mut plan = FaultPlan::none();
    plan.kill.push((0, 1));
    plan.rto = 2_000.0; // µs
    plan.max_retries = 2;
    let decls = program.decls.clone();
    let mut exec = ThreadExec::new(
        Arc::new(program),
        xdp_apps::matvec::matvec_kernels(),
        ThreadConfig::new(4).with_faults(plan),
    );
    init_thr(&mut exec, &decls);
    match exec.run() {
        Err(RtError::MessageLost(d)) => {
            assert!(d.contains("permanently lost"), "{d}");
        }
        other => panic!("want MessageLost, got {other:?}"),
    }
}

#[test]
fn tasks_permanent_loss_is_diagnosed() {
    let (program, _) = xdp_apps::matvec::build_matvec(8, 4);
    let mut plan = FaultPlan::none();
    plan.kill.push((0, 1));
    plan.rto = 2_000.0; // µs
    plan.max_retries = 2;
    let decls = program.decls.clone();
    let mut exec = AsyncExec::new(
        Arc::new(program),
        xdp_apps::matvec::matvec_kernels(),
        AsyncConfig::new(4).with_faults(plan),
    );
    init_tasks(&mut exec, &decls);
    match exec.run() {
        Err(RtError::MessageLost(d)) => {
            assert!(d.contains("permanently lost"), "{d}");
        }
        other => panic!("want MessageLost, got {other:?}"),
    }
}
