//! End-to-end tests of the `xdpc` command-line driver against the sample
//! programs in `xdp-programs/`.

use std::process::Command;

fn xdpc(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_xdpc"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("spawn xdpc");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn check_parses_and_prints() {
    let (stdout, _, ok) = xdpc(&["check", "xdp-programs/simple.xdp"]);
    assert!(ok);
    assert!(stdout.contains("T[mypid] <- B[i]"), "{stdout}");
    assert!(stdout.contains("await(T[mypid]) : {"), "{stdout}");
}

#[test]
fn run_simple_reports_traffic() {
    let (stdout, _, ok) = xdpc(&["run", "xdp-programs/simple.xdp"]);
    assert!(ok);
    assert!(stdout.contains("messages 16"), "{stdout}");
    assert!(stdout.contains("procs 4"), "{stdout}");
}

#[test]
fn run_migration_gathers_new_owners() {
    let (stdout, _, ok) = xdpc(&["run", "xdp-programs/migration.xdp", "--gather", "A"]);
    assert!(ok);
    // A[1] follows B (cyclic): owner p0, value 1 + 1 = 2.
    assert!(stdout.contains("A[1] =       2.0000   (p0)"), "{stdout}");
    assert!(stdout.contains("A[2] =       4.0000   (p1)"), "{stdout}");
}

#[test]
fn opt_reduces_messages_when_rerun() {
    let (optimized, stderr, ok) = xdpc(&["opt", "xdp-programs/simple.xdp"]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("vectorize-messages: changed"), "{stderr}");
    // The optimized text is itself valid input: write and run it.
    let dir = std::env::temp_dir().join("xdpc_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("opt.xdp");
    std::fs::write(&path, &optimized).unwrap();
    let (stdout, stderr2, ok2) = xdpc(&["run", path.to_str().unwrap()]);
    assert!(ok2, "{stderr2}");
    // 12 section messages instead of 16 element messages.
    assert!(stdout.contains("messages 12"), "{stdout}");
}

#[test]
fn run_fft_listing() {
    let (stdout, _, ok) = xdpc(&["run", "xdp-programs/fft3d.xdp"]);
    assert!(ok);
    assert!(stdout.contains("messages 16"), "{stdout}");
}

#[test]
fn errors_are_reported() {
    let dir = std::env::temp_dir().join("xdpc_test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.xdp");
    std::fs::write(&bad, "real A[1:4] distribute (WAT) onto 2\n").unwrap();
    let (_, stderr, ok) = xdpc(&["check", bad.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("unknown distribution"), "{stderr}");
}

#[test]
fn lower_translates_sequential_source() {
    let (stdout, _, ok) = xdpc(&["lower", "xdp-programs/seq_sum.xdp"]);
    assert!(ok);
    assert!(stdout.contains("iown(B[i]) : {"), "{stdout}");
    assert!(stdout.contains("_T0[mypid] <- B[i]"), "{stdout}");
    // Lowered output is valid input for `opt` and `run`.
    let dir = std::env::temp_dir().join("xdpc_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("lowered.xdp");
    std::fs::write(&path, &stdout).unwrap();
    let (out2, _, ok2) = xdpc(&["run", path.to_str().unwrap()]);
    assert!(ok2);
    assert!(out2.contains("messages 16"), "{out2}");
}

#[test]
fn lower_rejects_xdp_constructs() {
    let (_, stderr, ok) = xdpc(&["lower", "xdp-programs/migration.xdp"]);
    assert!(!ok);
    assert!(stderr.contains("not a sequential statement"), "{stderr}");
}

#[test]
fn plan_prints_strategy_table_and_schedule() {
    let (stdout, stderr, ok) = xdpc(&["plan", "xdp-programs/remap.xdp"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("== redistribution plans =="), "{stdout}");
    assert!(stdout.contains("staged-bruck"), "{stdout}");
    assert!(stdout.contains("<-"), "{stdout}");
    assert!(stdout.contains("schedule: 8 procs"), "{stdout}");
}

#[test]
fn place_reports_advisory_for_hand_migrated_fft() {
    // The paper's §4 listing migrates ownership by hand (`-=>`/`<=-`):
    // the search reports a placement but must not rewrite the program.
    let (stdout, stderr, ok) = xdpc(&["place", "xdp-programs/fft3d.xdp"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("anchor A group [A] on 4 procs"), "{stdout}");
    assert!(stdout.contains("== placement choices =="), "{stdout}");
    assert!(stdout.contains("placement is advisory"), "{stdout}");
}

#[test]
fn place_rewrites_two_phase_sweep_and_emits_valid_input() {
    let (stdout, stderr, ok) = xdpc(&["place", "xdp-programs/twophase.xdp", "--emit"]);
    assert!(ok, "{stderr}");
    // Both phases chosen and the transpose re-derived at the boundary.
    assert!(stdout.contains("simulated placed program"), "{stdout}");
    assert!(
        stdout.contains("redistribute A (BLOCK,*) onto 4"),
        "{stdout}"
    );
    // The emitted program (after the report) is itself valid xdpc input.
    let emitted = &stdout[stdout.find("real A").expect("emitted program")..];
    let dir = std::env::temp_dir().join("xdpc_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("placed.xdp");
    std::fs::write(&path, emitted).unwrap();
    let (out2, err2, ok2) = xdpc(&["run", path.to_str().unwrap()]);
    assert!(ok2, "{err2}");
    assert!(out2.contains("procs 4"), "{out2}");
}

#[test]
fn place_fails_when_no_placement_is_legal() {
    let (_, stderr, ok) = xdpc(&["place", "xdp-programs/remap.xdp"]);
    assert!(!ok);
    assert!(stderr.contains("no compute"), "{stderr}");
}

#[test]
fn tune_picks_a_middle_segment_shape() {
    let (stdout, stderr, ok) = xdpc(&[
        "tune",
        "xdp-programs/pipeline.xdp",
        "--array",
        "DST",
        "--segments",
        "1,16,64,256",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("<- best"), "{stdout}");
    // Neither extreme wins: the serialized whole-half segment and the
    // scan-heavy unit segment both lose to a middle shape.
    for line in stdout.lines() {
        if line.contains("<- best") {
            let seg = line.split_whitespace().next().unwrap();
            assert!(seg == "16" || seg == "64", "unexpected best: {line}");
        }
    }
}

/// Like [`xdpc`] but returns the raw exit code for tests that
/// distinguish usage errors (2) from failures (1).
fn xdpc_code(args: &[&str]) -> (String, String, i32) {
    let out = Command::new(env!("CARGO_BIN_EXE_xdpc"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("spawn xdpc");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().expect("exit code"),
    )
}

#[test]
fn no_arguments_prints_usage_naming_every_command() {
    let (_, stderr, code) = xdpc_code(&[]);
    assert_eq!(code, 2);
    assert!(stderr.starts_with("usage: xdpc <"), "{stderr}");
    for cmd in [
        "check", "lower", "opt", "run", "trace", "tune", "plan", "place", "fuzz",
    ] {
        assert!(
            stderr.lines().any(|l| l.trim_start().starts_with(cmd)),
            "usage missing `{cmd}`:\n{stderr}"
        );
    }
}

#[test]
fn unknown_command_and_missing_file_are_usage_errors() {
    let (_, stderr, code) = xdpc_code(&["frobnicate", "x.xdp"]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");
    // File-taking command without a file: usage, not a crash.
    let (_, stderr, code) = xdpc_code(&["run"]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn missing_file_is_one_diagnostic_and_exit_2_everywhere() {
    // Every file-taking subcommand reports a missing or unreadable
    // program file with the same diagnostic and usage-class exit code 2.
    for cmd in [
        "check", "lower", "opt", "run", "trace", "tune", "plan", "place",
    ] {
        let (_, stderr, code) = xdpc_code(&[cmd, "xdp-programs/does-not-exist.xdp"]);
        assert_eq!(code, 2, "{cmd}: {stderr}");
        assert!(
            stderr.contains("xdpc: error: cannot read xdp-programs/does-not-exist.xdp"),
            "{cmd}: {stderr}"
        );
    }
    // Unreadable (a directory, not a file) gets the same treatment.
    let (_, stderr, code) = xdpc_code(&["run", "xdp-programs"]);
    assert_eq!(code, 2, "{stderr}");
    assert!(
        stderr.contains("xdpc: error: cannot read xdp-programs"),
        "{stderr}"
    );
}

#[test]
fn bad_fault_specs_exit_2_everywhere() {
    for cmd in ["run", "trace"] {
        let (_, stderr, code) =
            xdpc_code(&[cmd, "xdp-programs/simple.xdp", "--faults", "drop=banana"]);
        assert_eq!(code, 2, "{cmd}: {stderr}");
        assert!(stderr.contains("bad --faults spec"), "{cmd}: {stderr}");
    }
    // `fuzz` takes no file but the same spec syntax.
    let (_, stderr, code) = xdpc_code(&["fuzz", "--count", "1", "--faults", "nope=1"]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("bad --faults spec"), "{stderr}");
}

#[test]
fn bad_mem_budget_is_one_line_and_exit_2_everywhere() {
    // Malformed and zero budgets are usage errors on every subcommand
    // that takes the flag: exactly one diagnostic line, exit code 2.
    for (cmd, file) in [
        ("plan", Some("xdp-programs/membound.xdp")),
        ("place", Some("xdp-programs/twophase.xdp")),
        ("run", Some("xdp-programs/simple.xdp")),
        ("fuzz", None),
    ] {
        for bad in ["banana", "0", "12q", "-5"] {
            let mut args = vec![cmd];
            args.extend(file);
            args.extend(["--mem-budget", bad]);
            let (_, stderr, code) = xdpc_code(&args);
            assert_eq!(code, 2, "{cmd} --mem-budget {bad}: {stderr}");
            assert_eq!(
                stderr.lines().count(),
                1,
                "{cmd} --mem-budget {bad}: {stderr}"
            );
            assert!(
                stderr.contains(&format!("bad --mem-budget `{bad}`")),
                "{cmd}: {stderr}"
            );
        }
    }
}

#[test]
fn plan_infeasible_budget_exits_nonzero_naming_smallest_feasible() {
    // A 1-byte budget fits no decomposition of membound.xdp's transpose:
    // `plan` must fail (an analysis failure, not a usage error) and name
    // the smallest budget that would have worked.
    let (_, stderr, code) = xdpc_code(&["plan", "xdp-programs/membound.xdp", "--mem-budget", "1"]);
    assert_eq!(code, 1, "{stderr}");
    assert!(
        stderr.contains("fits mem budget 1 B") && stderr.contains("smallest feasible budget:"),
        "{stderr}"
    );
    // The named budget really is feasible: planning at a generous budget
    // succeeds and shows the per-candidate peak column.
    let (stdout, stderr, code) =
        xdpc_code(&["plan", "xdp-programs/membound.xdp", "--mem-budget", "64k"]);
    assert_eq!(code, 0, "{stderr}");
    assert!(stdout.contains("peak_B"), "{stdout}");
    assert!(stdout.contains("frontier"), "{stdout}");
}

#[test]
fn run_with_faults_delivers_exactly_once() {
    let (stdout, stderr, code) = xdpc_code(&[
        "run",
        "xdp-programs/simple.xdp",
        "--faults",
        "drop=0.2,dup=0.2,seed=5",
    ]);
    assert_eq!(code, 0, "{stderr}");
    // Same message count as the lossless run: dedup + retry hide faults.
    assert!(stdout.contains("messages 16"), "{stdout}");
    assert!(stdout.contains("faults:"), "{stdout}");
}

#[test]
fn trace_writes_chrome_json_and_critical_path() {
    let dir = std::env::temp_dir().join("xdpc_test");
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("cli_trace.json");
    let (stdout, stderr, code) = xdpc_code(&[
        "trace",
        "xdp-programs/simple.xdp",
        "--out",
        out.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{stderr}");
    assert!(stdout.contains("virtual time"), "{stdout}");
    let json = std::fs::read_to_string(&out).unwrap();
    assert!(json.trim_start().starts_with('{'), "{json}");
}

#[test]
fn fuzz_smoke_passes_and_reports_oracles() {
    let (stdout, stderr, code) = xdpc_code(&["fuzz", "--count", "5", "--seed", "7"]);
    assert_eq!(code, 0, "{stdout}{stderr}");
    assert!(stdout.contains("ok: 5 programs"), "{stdout}");
    assert!(stdout.contains("sim+lockstep+vm+thread+async"), "{stdout}");
    assert!(stdout.contains("per-pass equivalence"), "{stdout}");
}

#[test]
fn fuzz_sim_only_skips_thread_and_chaos() {
    let (stdout, _, code) = xdpc_code(&["fuzz", "--count", "3", "--seed", "1", "--sim-only"]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("sim+lockstep"), "{stdout}");
    assert!(!stdout.contains("thread"), "{stdout}");
    assert!(!stdout.contains("chaos"), "{stdout}");
}

#[test]
fn fuzz_rejects_bad_options() {
    let (_, stderr, code) = xdpc_code(&["fuzz", "--count", "three"]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("bad --count"), "{stderr}");
    let (_, stderr, code) = xdpc_code(&["fuzz", "--procs", "1"]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("--procs >= 2"), "{stderr}");
}
