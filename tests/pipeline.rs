//! End-to-end integration: sequential source -> naive owner-computes
//! IL+XDP -> optimized IL+XDP -> simulated execution, verifying that every
//! optimization preserves results while reducing communication — the
//! central claim of the paper's methodology.

use std::sync::Arc;
use xdp::prelude::*;
use xdp_compiler::passes::{
    BindCommunication, ElideAccessibleChecks, ElideSameOwnerComm, LocalizeBounds, MigrateOwnership,
    VectorizeMessages,
};

/// do i = 1,n { A[i] = A[i] + B[i] } with chosen distributions.
fn source(n: i64, nprocs: usize, a_dist: DimDist, b_dist: DimDist) -> (SeqProgram, VarId, VarId) {
    let grid = ProcGrid::linear(nprocs);
    let mut s = SeqProgram::new();
    let a = s.declare(build::array(
        "A",
        ElemType::F64,
        vec![(1, n)],
        vec![a_dist],
        grid.clone(),
    ));
    let b = s.declare(build::array(
        "B",
        ElemType::F64,
        vec![(1, n)],
        vec![b_dist],
        grid,
    ));
    let ai = build::sref(a, vec![build::at(build::iv("i"))]);
    let bi = build::sref(b, vec![build::at(build::iv("i"))]);
    s.body = vec![SeqStmt::DoLoop {
        var: "i".into(),
        lo: build::c(1),
        hi: build::c(n),
        body: vec![SeqStmt::Assign {
            target: ai.clone(),
            rhs: build::val(ai).add(build::val(bi)),
        }],
    }];
    (s, a, b)
}

fn execute(p: &Program, a: VarId, b: VarId, nprocs: usize) -> (Gathered, ExecReport) {
    let mut exec = SimExec::new(
        Arc::new(p.clone()),
        KernelRegistry::standard(),
        SimConfig::new(nprocs),
    );
    exec.init_exclusive(a, |idx| Value::F64(idx[0] as f64));
    exec.init_exclusive(b, |idx| Value::F64(100.0 * idx[0] as f64));
    let report = exec.run().expect("run");
    (exec.gather(a), report)
}

fn check_result(g: &Gathered, n: i64) {
    for i in 1..=n {
        assert_eq!(
            g.get(&[i]).map(|v| v.as_f64()),
            Some(101.0 * i as f64),
            "A[{i}]"
        );
    }
}

#[test]
fn naive_translation_is_correct() {
    for (ad, bd) in [
        (DimDist::Block, DimDist::Block),
        (DimDist::Block, DimDist::Cyclic),
        (DimDist::Cyclic, DimDist::Block),
        (DimDist::Cyclic, DimDist::BlockCyclic(2)),
    ] {
        let (s, a, b) = source(16, 4, ad, bd);
        let naive = lower_owner_computes(&s, &FrontendOptions::default()).unwrap();
        let (g, r) = execute(&naive, a, b, 4);
        check_result(&g, 16);
        assert_eq!(r.net.messages, 16, "naive sends one message per element");
    }
}

#[test]
fn same_owner_elision_removes_all_messages_when_aligned() {
    let (s, a, b) = source(16, 4, DimDist::Block, DimDist::Block);
    let naive = lower_owner_computes(&s, &FrontendOptions::default()).unwrap();
    let r = ElideSameOwnerComm.run(&naive);
    assert!(r.changed);
    let (g, rep) = execute(&r.program, a, b, 4);
    check_result(&g, 16);
    assert_eq!(rep.net.messages, 0);
}

#[test]
fn vectorization_preserves_results_and_reduces_messages() {
    let (s, a, b) = source(32, 4, DimDist::Block, DimDist::Cyclic);
    let naive = lower_owner_computes(&s, &FrontendOptions::default()).unwrap();
    let (g0, r0) = execute(&naive, a, b, 4);
    check_result(&g0, 32);

    let v = VectorizeMessages.run(&naive);
    assert!(v.changed);
    let (g1, r1) = execute(&v.program, a, b, 4);
    check_result(&g1, 32);
    assert!(
        r1.net.messages < r0.net.messages,
        "vectorized {} < naive {}",
        r1.net.messages,
        r0.net.messages
    );
    // Cyclic->block over 4 procs: each sender p has runs to each other q.
    assert!(r1.net.messages <= 12);
    assert!(r1.virtual_time < r0.virtual_time);
}

#[test]
fn full_pipeline_preserves_results_and_wins() {
    let (s, a, b) = source(32, 4, DimDist::Block, DimDist::Cyclic);
    let naive = lower_owner_computes(&s, &FrontendOptions::default()).unwrap();
    let (opt, log) = PassManager::paper_pipeline().run(&naive);
    // At least vectorize + localize must have fired.
    let fired: Vec<&str> = log
        .iter()
        .filter(|(_, r)| r.changed)
        .map(|(n, _)| n.as_str())
        .collect();
    assert!(fired.contains(&"vectorize-messages"), "{fired:?}");
    assert!(fired.contains(&"localize-bounds"), "{fired:?}");

    let (g0, r0) = execute(&naive, a, b, 4);
    let (g1, r1) = execute(&opt, a, b, 4);
    check_result(&g0, 32);
    check_result(&g1, 32);
    assert!(r1.net.messages < r0.net.messages);
    assert!(r1.virtual_time < r0.virtual_time);
    // Localization removed the per-iteration ownership queries: far fewer
    // symbol-table operations.
    let q0: u64 = r0.procs.iter().map(|p| p.symtab.queries).sum();
    let q1: u64 = r1.procs.iter().map(|p| p.symtab.queries).sum();
    assert!(q1 < q0, "queries {q1} < {q0}");
}

#[test]
fn migration_strategy_correct_and_amortizes() {
    let n = 16;
    let nprocs = 4;
    let (s, a, b) = source(n, nprocs, DimDist::Block, DimDist::Cyclic);
    let naive = lower_owner_computes(&s, &FrontendOptions::default()).unwrap();
    let m = MigrateOwnership::default().run(&naive);
    assert!(m.changed);

    // Run the migrated loop TWICE (repeat the body) — second round must be
    // communication-free because ownership already moved.
    let mut twice = m.program.clone();
    let once_body = twice.body.clone();
    twice.body.extend(once_body);
    let mut exec = SimExec::new(
        Arc::new(twice),
        KernelRegistry::standard(),
        SimConfig::new(nprocs),
    );
    exec.init_exclusive(a, |idx| Value::F64(idx[0] as f64));
    exec.init_exclusive(b, |idx| Value::F64(100.0 * idx[0] as f64));
    let rep = exec.run().expect("run");
    let g = exec.gather(a);
    for i in 1..=n {
        // Two additions of B[i].
        assert_eq!(
            g.get(&[i]).map(|v| v.as_f64()),
            Some(i as f64 + 200.0 * i as f64),
            "A[{i}]"
        );
        // Ownership of A[i] now follows B[i] (cyclic).
        assert_eq!(g.owner(&[i]), Some(((i - 1) % nprocs as i64) as usize));
    }
    // Only the first round moved anything, and only the elements whose
    // owners actually differed (block vs cyclic over 4: 4 of 16 coincide).
    let migrated = (1..=n)
        .filter(|i| (i - 1) / (n / nprocs as i64) != (i - 1) % nprocs as i64)
        .count() as u64;
    assert_eq!(rep.net.messages, migrated);
    assert_eq!(migrated, 12);
}

#[test]
fn binding_preserves_results_and_sheds_wire_bytes() {
    let (s, a, b) = source(16, 4, DimDist::Block, DimDist::Cyclic);
    let naive = lower_owner_computes(&s, &FrontendOptions::default()).unwrap();
    let bound = BindCommunication.run(&naive);
    assert!(bound.changed);
    let (g0, r0) = execute(&naive, a, b, 4);
    let (g1, r1) = execute(&bound.program, a, b, 4);
    check_result(&g0, 16);
    check_result(&g1, 16);
    assert_eq!(r0.net.messages, r1.net.messages);
    assert!(
        r1.net.wire_bytes < r0.net.wire_bytes,
        "names elided from wire"
    );
    assert_eq!(r1.net.unbound_messages, 0);
    assert!(r1.virtual_time < r0.virtual_time);
}

#[test]
fn localization_after_elision_runs_guard_free() {
    let (s, a, b) = source(16, 4, DimDist::Block, DimDist::Block);
    let naive = lower_owner_computes(&s, &FrontendOptions::default()).unwrap();
    let (opt, _) = PassManager::new()
        .add(ElideSameOwnerComm)
        .add(LocalizeBounds)
        .add(ElideAccessibleChecks)
        .run(&naive);
    assert_eq!(
        opt.stmt_census().guards,
        0,
        "{}",
        xdp_ir::pretty::program(&opt)
    );
    let (g, rep) = execute(&opt, a, b, 4);
    check_result(&g, 16);
    assert_eq!(rep.net.messages, 0);
    // No run-time symbol table queries remain in steady state (mylb/myub
    // evaluate once per loop entry).
    let q: u64 = rep.procs.iter().map(|p| p.symtab.queries).sum();
    assert!(q <= 8, "only the bounds queries remain, got {q}");
}

#[test]
fn threaded_backend_agrees_with_simulator_after_optimization() {
    let (s, a, b) = source(24, 3, DimDist::Block, DimDist::Cyclic);
    let naive = lower_owner_computes(&s, &FrontendOptions::default()).unwrap();
    let (opt, _) = PassManager::paper_pipeline().run(&naive);

    let mut sim = SimExec::new(
        Arc::new(opt.clone()),
        KernelRegistry::standard(),
        SimConfig::new(3),
    );
    sim.init_exclusive(a, |idx| Value::F64(idx[0] as f64));
    sim.init_exclusive(b, |idx| Value::F64(0.5 * idx[0] as f64));
    sim.run().unwrap();

    let mut thr = ThreadExec::new(
        Arc::new(opt),
        KernelRegistry::standard(),
        ThreadConfig::new(3),
    );
    thr.init_exclusive(a, |idx| Value::F64(idx[0] as f64));
    thr.init_exclusive(b, |idx| Value::F64(0.5 * idx[0] as f64));
    thr.run().unwrap();

    let (gs, gt) = (sim.gather(a), thr.gather(a));
    for i in 1..=24 {
        assert_eq!(gs.get(&[i]), gt.get(&[i]), "i={i}");
    }
}

#[test]
fn every_generated_program_validates_cleanly() {
    // Frontend output, every optimizer output, and every app builder must
    // produce statically well-formed programs.
    let (s, _, _) = source(16, 4, DimDist::Block, DimDist::Cyclic);
    let naive = lower_owner_computes(&s, &FrontendOptions::default()).unwrap();
    assert!(
        xdp_ir::validate(&naive).is_empty(),
        "{:?}",
        xdp_ir::validate(&naive)
    );
    let (opt, _) = PassManager::paper_pipeline().run(&naive);
    assert!(
        xdp_ir::validate(&opt).is_empty(),
        "{:?}",
        xdp_ir::validate(&opt)
    );
    let mig = MigrateOwnership::default().run(&naive).program;
    assert!(
        xdp_ir::validate(&mig).is_empty(),
        "{:?}",
        xdp_ir::validate(&mig)
    );

    for stage in xdp_apps::fft3d::Stage::all() {
        let (p, _) = xdp_apps::fft3d::build(xdp_apps::fft3d::Fft3dConfig::new(8, 4), stage);
        assert!(
            xdp_ir::validate(&p).is_empty(),
            "{}: {:?}",
            stage.label(),
            xdp_ir::validate(&p)
        );
    }
    let (p, _) = xdp_apps::farm::build_farm(xdp_apps::farm::FarmConfig {
        tasks: 8,
        nprocs: 4,
        scale: 1,
    });
    assert!(
        xdp_ir::validate(&p).is_empty(),
        "{:?}",
        xdp_ir::validate(&p)
    );
    let (p, _) = xdp_apps::halo2d::build_jacobi2d(8, 10, 4, 2);
    assert!(
        xdp_ir::validate(&p).is_empty(),
        "{:?}",
        xdp_ir::validate(&p)
    );
    let (p, _) = xdp_apps::matvec::build_matvec(8, 4);
    assert!(
        xdp_ir::validate(&p).is_empty(),
        "{:?}",
        xdp_ir::validate(&p)
    );
    let (p, _) = xdp_apps::reduce::build_reduce(16, 4);
    assert!(
        xdp_ir::validate(&p).is_empty(),
        "{:?}",
        xdp_ir::validate(&p)
    );
}
