//! Cross-crate round trips: every program the compiler can produce must
//! survive pretty-print -> parse -> pretty-print unchanged, and the parsed
//! program must execute identically to the original.

use std::sync::Arc;
use xdp::prelude::*;
use xdp_compiler::passes::{BindCommunication, MigrateOwnership};
use xdp_ir::pretty;
use xdp_lang::parse_program;

fn source(n: i64, nprocs: usize, bd: DimDist) -> (SeqProgram, VarId, VarId) {
    let grid = ProcGrid::linear(nprocs);
    let mut s = SeqProgram::new();
    let a = s.declare(build::array(
        "A",
        ElemType::F64,
        vec![(1, n)],
        vec![DimDist::Block],
        grid.clone(),
    ));
    let b = s.declare(build::array(
        "B",
        ElemType::F64,
        vec![(1, n)],
        vec![bd],
        grid,
    ));
    let ai = build::sref(a, vec![build::at(build::iv("i"))]);
    let bi = build::sref(b, vec![build::at(build::iv("i"))]);
    s.body = vec![SeqStmt::DoLoop {
        var: "i".into(),
        lo: build::c(1),
        hi: build::c(n),
        body: vec![SeqStmt::Assign {
            target: ai.clone(),
            rhs: build::val(ai).add(build::val(bi)),
        }],
    }];
    (s, a, b)
}

fn assert_fixpoint_and_equivalent(p: &Program, a: VarId, b: VarId, nprocs: usize, n: i64) {
    let text1 = pretty::program(p);
    let reparsed = parse_program(&text1).unwrap_or_else(|e| panic!("reparse failed: {e}\n{text1}"));
    let text2 = pretty::program(&reparsed);
    assert_eq!(text1, text2, "pretty/parse fixpoint");

    let run = |prog: &Program| {
        let mut exec = SimExec::new(
            Arc::new(prog.clone()),
            KernelRegistry::standard(),
            SimConfig::new(nprocs),
        );
        exec.init_exclusive(a, |idx| Value::F64(idx[0] as f64));
        exec.init_exclusive(b, |idx| Value::F64(7.0 * idx[0] as f64));
        let r = exec.run().expect("run");
        let g = exec.gather(a);
        let vals: Vec<f64> = (1..=n).map(|i| g.get(&[i]).unwrap().as_f64()).collect();
        (vals, r.net.messages, r.virtual_time)
    };
    assert_eq!(run(p), run(&reparsed), "parsed program behaves identically");
}

#[test]
fn frontend_output_roundtrips() {
    let (s, a, b) = source(16, 4, DimDist::Cyclic);
    let naive = lower_owner_computes(&s, &FrontendOptions::default()).unwrap();
    assert_fixpoint_and_equivalent(&naive, a, b, 4, 16);
}

#[test]
fn optimized_output_roundtrips() {
    let (s, a, b) = source(16, 4, DimDist::Cyclic);
    let naive = lower_owner_computes(&s, &FrontendOptions::default()).unwrap();
    let (opt, _) = PassManager::paper_pipeline().run(&naive);
    assert_fixpoint_and_equivalent(&opt, a, b, 4, 16);
}

#[test]
fn bound_output_roundtrips() {
    let (s, a, b) = source(16, 4, DimDist::Cyclic);
    let naive = lower_owner_computes(&s, &FrontendOptions::default()).unwrap();
    let bound = BindCommunication.run(&naive).program;
    assert_fixpoint_and_equivalent(&bound, a, b, 4, 16);
}

#[test]
fn migrated_output_roundtrips() {
    let (s, a, b) = source(16, 4, DimDist::Cyclic);
    let naive = lower_owner_computes(&s, &FrontendOptions::default()).unwrap();
    let mig = MigrateOwnership::default().run(&naive).program;
    assert_fixpoint_and_equivalent(&mig, a, b, 4, 16);
}

#[test]
fn redistribute_statements_roundtrip() {
    // `redistribute` in both forms — a plain distribution and an aligned
    // one (as emitted by the placement search for co-placed arrays) —
    // must survive pretty -> parse and execute identically.
    let grid = ProcGrid::linear(4);
    let mut p = Program::new();
    let a = p.declare(build::array(
        "A",
        ElemType::F64,
        vec![(1, 16)],
        vec![DimDist::Block],
        grid.clone(),
    ));
    let b = p.declare(build::array(
        "B",
        ElemType::F64,
        vec![(1, 16)],
        vec![DimDist::Block],
        grid.clone(),
    ));
    // Guard with iown so the sweep is legal under any distribution the
    // redistributes below introduce (cyclic ownership is not contiguous).
    let sweep = |a: VarId, b: VarId| {
        let ai = build::sref(a, vec![build::at(build::iv("i"))]);
        let bi = build::sref(b, vec![build::at(build::iv("i"))]);
        build::do_loop(
            "i",
            build::c(1),
            build::c(16),
            vec![build::guarded(
                build::iown(ai.clone()),
                vec![build::assign(
                    ai.clone(),
                    build::val(ai).add(build::val(bi)),
                )],
            )],
        )
    };
    let cyc = Distribution::new(vec![DimDist::Cyclic], grid);
    p.body = vec![
        sweep(a, b),
        build::redistribute(a, cyc.clone()),
        build::redistribute(
            b,
            Distribution::aligned(cyc, vec![Triplet::range(1, 16)], vec![0]),
        ),
        sweep(a, b),
    ];
    assert!(xdp_ir::validate(&p).is_empty());
    assert_fixpoint_and_equivalent(&p, a, b, 4, 16);
}

#[test]
fn fft_stage_programs_roundtrip() {
    use xdp_apps::fft3d::{build, Fft3dConfig, Stage};
    for stage in Stage::all() {
        let (p, _) = build(Fft3dConfig::new(8, 4), stage);
        let text1 = pretty::program(&p);
        let reparsed = parse_program(&text1)
            .unwrap_or_else(|e| panic!("{}: reparse failed: {e}\n{text1}", stage.label()));
        assert_eq!(text1, pretty::program(&reparsed), "{}", stage.label());
    }
}

#[test]
fn farm_program_roundtrips() {
    use xdp_apps::farm::{build_farm, FarmConfig};
    let (p, _) = build_farm(FarmConfig {
        tasks: 8,
        nprocs: 4,
        scale: 3,
    });
    let text1 = pretty::program(&p);
    let reparsed = parse_program(&text1).expect("reparse farm");
    assert_eq!(text1, pretty::program(&reparsed));
}
