//! Executor high-water conformance for the redistribution planner's
//! peak-bytes dimension: for every `xdp-programs/` file that
//! redistributes an array, the *measured* redistribution high-water mark
//! (live staged bytes, tracked by the network layer via the salted
//! redistribution tags) must be positive and never exceed the planner's
//! *predicted* per-processor peak — on the virtual-time simulator and
//! the bytecode VM, budgeted and unbudgeted, and (receiver-side) on the
//! real threaded machine behind `AsyncExec`.

use std::path::PathBuf;
use xdp::prelude::*;
use xdp_collectives::plan;
use xdp_compiler::{compile, CompileOptions, Compiled, SeqMode};
use xdp_core::{AsyncConfig, AsyncExec, Processor};
use xdp_ir::Stmt;
use xdp_machine::{CostModel, Topology};
use xdp_vm::VmExec;

/// Every program in `xdp-programs/` whose compiled form redistributes.
fn redistributing_programs() -> Vec<(String, Compiled)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("xdp-programs");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("xdp-programs/ exists")
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "xdp"))
        .collect();
    files.sort();
    let out: Vec<(String, Compiled)> = files
        .into_iter()
        .filter_map(|path| {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let source = std::fs::read_to_string(&path).unwrap();
            let opts = CompileOptions::default().with_seq(SeqMode::Auto);
            let compiled =
                compile(&source, &opts).unwrap_or_else(|e| panic!("{name} must compile: {e}"));
            let mut redistributes = false;
            compiled.program.visit(&mut |s| {
                redistributes |= matches!(s, Stmt::Redistribute { .. });
            });
            redistributes.then_some((name, compiled))
        })
        .collect();
    assert!(
        out.iter().any(|(n, _)| n == "membound.xdp"),
        "the transpose corpus program must be present"
    );
    out
}

/// The planner's peak bound for a whole program: re-derive each
/// redistribute's plan exactly as the runtime does (tracking the current
/// distribution across statements) and sum the peaks — a safe bound even
/// if the executor overlaps consecutive redistributions.
fn predicted_peak(p: &Program, cost: &CostModel, topo: &Topology) -> u64 {
    let mut cur: std::collections::HashMap<VarId, Distribution> = std::collections::HashMap::new();
    let mut total = 0u64;
    p.visit(&mut |s| {
        let Stmt::Redistribute { var, dist } = s else {
            return;
        };
        let decl = p.decl(*var);
        let src = cur
            .get(var)
            .or(decl.dist.as_ref())
            .cloned()
            .expect("redistributed array is distributed");
        cur.insert(*var, dist.clone());
        let pl = plan(
            *var,
            &decl.bounds,
            decl.elem.size_bytes(),
            &src,
            dist,
            cost,
            topo,
            true,
        );
        total += pl.peak_bytes;
    });
    total
}

fn init<P: Processor>(exec: &mut SimExec<P>, decls: &[Decl]) {
    for (i, d) in decls.iter().enumerate() {
        if d.is_exclusive() {
            let full = Section::new(d.bounds.clone());
            exec.init_exclusive(VarId(i as u32), move |idx| {
                Value::F64((full.ordinal_of(idx).unwrap_or(0) + 1) as f64)
            });
        }
    }
}

fn measured_sim<P: Processor>(name: &str, mut exec: SimExec<P>, decls: &[Decl]) -> u64 {
    init(&mut exec, decls);
    let report = exec.run().unwrap_or_else(|e| panic!("{name}: {e}"));
    report.net.redist_peak_bytes
}

#[test]
fn simulated_high_water_stays_under_the_planned_peak() {
    for (name, compiled) in redistributing_programs() {
        for budgeted in [false, true] {
            let mut cfg = SimConfig::new(compiled.nprocs);
            if budgeted {
                // Half the unbounded bound forces a slimmer decomposition.
                let free = predicted_peak(&compiled.program, &cfg.cost, &cfg.topo);
                cfg.cost.mem_budget = Some((free / 2).max(1));
            }
            let predicted = predicted_peak(&compiled.program, &cfg.cost, &cfg.topo);
            for backend in ["interp", "vm"] {
                let measured = match backend {
                    "interp" => measured_sim(
                        &name,
                        SimExec::new(
                            compiled.program.clone(),
                            xdp_apps::app_kernels(),
                            cfg.clone(),
                        ),
                        &compiled.program.decls,
                    ),
                    _ => measured_sim(
                        &name,
                        VmExec::sim(
                            compiled.program.clone(),
                            xdp_apps::app_kernels(),
                            cfg.clone(),
                        ),
                        &compiled.program.decls,
                    ),
                };
                assert!(
                    measured > 0,
                    "{name} ({backend}, budgeted={budgeted}): no redistribution bytes measured"
                );
                assert!(
                    measured <= predicted,
                    "{name} ({backend}, budgeted={budgeted}): measured high-water {measured} B \
                     exceeds planned peak {predicted} B"
                );
            }
        }
    }
}

#[test]
fn threaded_high_water_stays_under_the_planned_peak() {
    for (name, compiled) in redistributing_programs() {
        // AsyncExec runs the real threaded network; its receiver-side
        // live-byte counter is a lower bound on the planner's two-sided
        // footprint, so the same inequality must hold.
        let cfg = AsyncConfig::new(compiled.nprocs);
        let sim_cfg = SimConfig::new(compiled.nprocs);
        let predicted = predicted_peak(&compiled.program, &sim_cfg.cost, &sim_cfg.topo);
        let mut exec = AsyncExec::new(compiled.program.clone(), xdp_apps::app_kernels(), cfg);
        for (i, d) in compiled.program.decls.iter().enumerate() {
            if d.is_exclusive() {
                let full = Section::new(d.bounds.clone());
                exec.init_exclusive(VarId(i as u32), move |idx| {
                    Value::F64((full.ordinal_of(idx).unwrap_or(0) + 1) as f64)
                });
            }
        }
        let report = exec.run().unwrap_or_else(|e| panic!("{name}: {e}"));
        let measured = report.net.redist_peak_bytes;
        assert!(
            measured > 0,
            "{name} (async): no redistribution bytes measured"
        );
        assert!(
            measured <= predicted,
            "{name} (async): measured high-water {measured} B exceeds planned peak {predicted} B"
        );
    }
}
