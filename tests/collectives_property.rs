//! Property-based tests for the collectives subsystem: for random
//! (source, destination) distribution pairs and grid shapes, the planned
//! redistribution delivers every element exactly once, the executed
//! `redistribute` statement leaves each processor owning exactly its
//! destination-distribution sections, and the simulator and the threaded
//! backend agree bit-for-bit.

use proptest::prelude::*;
use std::sync::Arc;
use xdp::collectives;
use xdp::prelude::*;
use xdp_runtime::symtab::SecState;

fn dist_strategy() -> impl Strategy<Value = DimDist> {
    prop_oneof![
        Just(DimDist::Block),
        Just(DimDist::Cyclic),
        (2i64..4).prop_map(DimDist::BlockCyclic),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The section algebra partitions the array: every element is in
    /// exactly one (src-owner, dst-owner) piece, and both planned schedules
    /// (packed and single-section) place every element on its destination.
    #[test]
    fn pieces_partition_and_plans_deliver(
        nprocs in 2usize..6,
        chunks in 2i64..5,
        ragged in 0i64..3,
        src_d in dist_strategy(),
        dst_d in dist_strategy(),
    ) {
        let n = nprocs as i64 * chunks + ragged;
        let bounds = [Triplet::range(1, n)];
        let grid = ProcGrid::linear(nprocs);
        let src = Distribution::new(vec![src_d], grid.clone());
        let dst = Distribution::new(vec![dst_d], grid);

        // Exactly-once partition.
        let pieces = collectives::redistribution_pieces(&bounds, &src, &dst);
        let mut hit = vec![0u32; n as usize];
        for p in &pieces {
            for pt in p.sec.iter() {
                hit[(pt[0] - 1) as usize] += 1;
            }
        }
        prop_assert!(hit.iter().all(|&h| h == 1), "partition: {hit:?}");

        // Both plan flavours deliver every element to its new owner.
        let bsec = Section::new(bounds.to_vec());
        let model = CostModel::default_1993();
        for single in [true, false] {
            let plan = collectives::plan(
                VarId(0), &bounds, 8, &src, &dst, &model, &Topology::Linear, single,
            );
            let mut data: Vec<Vec<f64>> = (0..nprocs)
                .map(|p| {
                    let mut v = vec![f64::NAN; n as usize];
                    for rect in src.owned_rects(&bounds, p) {
                        for pt in rect.iter() {
                            v[(pt[0] - 1) as usize] = pt[0] as f64;
                        }
                    }
                    v
                })
                .collect();
            collectives::run_lockstep(&plan.schedule, &bsec, &mut data).unwrap();
            for (p, local) in data.iter().enumerate() {
                for rect in dst.owned_rects(&bounds, p) {
                    for pt in rect.iter() {
                        prop_assert_eq!(local[(pt[0] - 1) as usize], pt[0] as f64);
                    }
                }
            }
        }
    }

    /// Executing `redistribute` through the interpreter: values survive,
    /// final ownership matches the destination distribution exactly, and
    /// the simulator and threaded backends produce identical arrays.
    #[test]
    fn redistribute_stmt_moves_ownership_on_both_backends(
        nprocs in 2usize..5,
        chunks in 2i64..5,
        src_d in dist_strategy(),
        dst_d in dist_strategy(),
    ) {
        let n = nprocs as i64 * chunks;
        let grid = ProcGrid::linear(nprocs);
        let mut p = Program::new();
        let a = p.declare(build::array(
            "A", ElemType::F64, vec![(1, n)], vec![src_d], grid.clone(),
        ));
        let dst = Distribution::new(vec![dst_d], grid);
        p.body = vec![build::redistribute(a, dst.clone())];
        prop_assert!(xdp_ir::validate(&p).is_empty());
        let p = Arc::new(p);

        let mut sim = SimExec::new(p.clone(), KernelRegistry::standard(), SimConfig::new(nprocs));
        sim.init_exclusive(a, |idx| Value::F64(7.0 * idx[0] as f64));
        sim.run().expect("sim run");
        let g_sim = sim.gather(a);
        for i in 1..=n {
            prop_assert_eq!(g_sim.get(&[i]).expect("covered").as_f64(), 7.0 * i as f64);
        }
        // Ownership now follows the destination distribution.
        let bounds = [Triplet::range(1, n)];
        for pid in 0..nprocs {
            let mut owned = 0i64;
            for rect in dst.owned_rects(&bounds, pid) {
                prop_assert_eq!(
                    sim.interp_mut(pid).env.symtab.state_of(a, &rect),
                    SecState::Accessible,
                    "pid {} must own {} after redistribute", pid, rect
                );
                owned += rect.volume();
            }
            // ... and nothing else: every processor's holdings are exactly
            // its dst sections (total owned across pids is n, checked by
            // gather covering every index above).
            let _ = owned;
        }

        let mut thr = ThreadExec::new(p, KernelRegistry::standard(), ThreadConfig::new(nprocs));
        thr.init_exclusive(a, |idx| Value::F64(7.0 * idx[0] as f64));
        thr.run().expect("threaded run");
        let g_thr = thr.gather(a);
        for i in 1..=n {
            prop_assert_eq!(
                g_thr.get(&[i]).expect("covered").as_f64(),
                g_sim.get(&[i]).unwrap().as_f64()
            );
        }
    }

    /// Redistributing across grid shapes (rank-2 remaps, including
    /// transposed grids) keeps data intact.
    #[test]
    fn grid_shape_remaps_deliver(
        rows in 1usize..3,
        cols in 1usize..3,
        m in 2i64..4,
    ) {
        let nprocs = rows * cols;
        prop_assume!(nprocs > 1);
        let n = m * nprocs as i64;
        let mut p = Program::new();
        let a = p.declare(build::array(
            "A",
            ElemType::F64,
            vec![(1, n), (1, n)],
            vec![DimDist::Block, DimDist::Block],
            ProcGrid::grid2(rows, cols),
        ));
        let dst = Distribution::new(
            vec![DimDist::Block, DimDist::Block],
            ProcGrid::grid2(cols, rows),
        );
        p.body = vec![build::redistribute(a, dst)];
        prop_assert!(xdp_ir::validate(&p).is_empty());

        let mut sim = SimExec::new(
            Arc::new(p),
            KernelRegistry::standard(),
            SimConfig::new(nprocs),
        );
        sim.init_exclusive(a, |idx| Value::F64((idx[0] * 100 + idx[1]) as f64));
        sim.run().expect("sim run");
        let g = sim.gather(a);
        for i in 1..=n {
            for j in 1..=n {
                prop_assert_eq!(
                    g.get(&[i, j]).expect("covered").as_f64(),
                    (i * 100 + j) as f64
                );
            }
        }
    }
}
