//! VM conformance: the bytecode backend is observably indistinguishable
//! from the tree-walking interpreter.
//!
//! For every program in `xdp-programs/` — plain, optimized, and
//! auto-placed — the VM must produce the same [`xdp_verify::Fingerprint`]
//! as the interpreter: memory image, movement multiset, section-state
//! digest, and message count. On the virtual-time simulator the match is
//! exact (the VM claims step-for-step conformance, so even the state
//! digest agrees); on the threaded machine the timing-free parts must
//! agree. The chaos tests additionally run the VM under a lossy fault
//! plan: faults must stay invisible to program semantics on the compiled
//! backend exactly as they are on the interpreter.

use std::path::PathBuf;
use std::sync::Arc;
use xdp::prelude::*;
use xdp_compiler::{compile, CompileOptions, SeqMode};
use xdp_core::Processor;
use xdp_verify::Fingerprint;
use xdp_vm::VmExec;

fn programs() -> Vec<(String, String)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("xdp-programs");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("xdp-programs/ exists")
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "xdp"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no programs in {dir:?}");
    files
        .into_iter()
        .map(|path| {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let source = std::fs::read_to_string(&path).unwrap();
            (name, source)
        })
        .collect()
}

/// The three compile pipelines each program runs through. `Auto` handles
/// both notations (sequential sources lower through owner-computes).
fn variants() -> Vec<(&'static str, CompileOptions)> {
    let auto = CompileOptions::default().with_seq(SeqMode::Auto);
    vec![
        ("plain", auto.clone()),
        ("opt", auto.clone().optimized()),
        ("placed", auto.placed()),
    ]
}

/// Deterministic per-element init matching the element type (fft3d's
/// cube is complex).
fn init_value(elem: ElemType, ord: i64) -> Value {
    match elem {
        ElemType::C64 => Value::C64(Complex::new((ord + 1) as f64, -(ord as f64) * 0.5)),
        _ => Value::F64((ord + 1) as f64),
    }
}

/// The chaos plan at the acceptance bar: 10% drop plus duplicates,
/// reordering, and delays.
fn chaos(seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::uniform(
        seed,
        LinkFault {
            drop: 0.10,
            dup: 0.10,
            reorder: 0.25,
            delay_p: 0.20,
            delay: 120.0,
        },
    );
    plan.rto = 500.0;
    plan
}

/// Fingerprint one simulated run, or the runtime error it dies with —
/// the VM must reproduce interpreter errors byte-for-byte too.
fn fp_sim<P: Processor>(mut exec: SimExec<P>, decls: &[Decl]) -> Result<Fingerprint, String> {
    for (i, d) in decls.iter().enumerate() {
        if d.is_exclusive() {
            let full = Section::new(d.bounds.clone());
            let elem = d.elem;
            exec.init_exclusive(VarId(i as u32), move |idx| {
                init_value(elem, full.ordinal_of(idx).unwrap_or(0))
            });
        }
    }
    let report = exec.run().map_err(|e| e.to_string())?;
    let mut fp = Fingerprint::default();
    for (i, d) in decls.iter().enumerate() {
        if d.is_exclusive() {
            fp.record_memory(&d.name, &exec.gather(VarId(i as u32)));
        }
    }
    fp.record_trace(&report.trace);
    fp.messages = report.net.messages;
    Ok(fp)
}

fn fp_thread<P: Processor>(label: &str, mut exec: ThreadExec<P>, decls: &[Decl]) -> Fingerprint {
    for (i, d) in decls.iter().enumerate() {
        if d.is_exclusive() {
            let full = Section::new(d.bounds.clone());
            let elem = d.elem;
            exec.init_exclusive(VarId(i as u32), move |idx| {
                init_value(elem, full.ordinal_of(idx).unwrap_or(0))
            });
        }
    }
    let report = exec
        .run()
        .unwrap_or_else(|e| panic!("{label}: threaded run: {e}"));
    let mut fp = Fingerprint::default();
    for (i, d) in decls.iter().enumerate() {
        if d.is_exclusive() {
            fp.record_memory(&d.name, &exec.gather(VarId(i as u32)));
        }
    }
    fp.record_trace(&report.trace);
    fp.messages = report.net.messages;
    fp
}

type SimResult = Result<Fingerprint, String>;

fn sim_pair(
    program: &Arc<Program>,
    nprocs: usize,
    faults: Option<FaultPlan>,
) -> (SimResult, SimResult) {
    let mut cfg = SimConfig::new(nprocs).with_trace(TraceConfig::full());
    if let Some(plan) = faults {
        cfg = cfg.with_faults(plan);
    }
    let decls = program.decls.clone();
    let interp = fp_sim(
        SimExec::new(program.clone(), xdp_apps::app_kernels(), cfg.clone()),
        &decls,
    );
    let vm = fp_sim(
        VmExec::sim(program.clone(), xdp_apps::app_kernels(), cfg),
        &decls,
    );
    (interp, vm)
}

#[test]
fn vm_matches_interpreter_on_the_simulated_machine() {
    for (name, source) in programs() {
        for (variant, opts) in variants() {
            let compiled = compile(&source, &opts)
                .unwrap_or_else(|e| panic!("{name}+{variant}: compile failed: {e}"));
            let (interp, vm) = sim_pair(&compiled.program, compiled.nprocs, None);
            match (interp, vm) {
                (Ok(interp), Ok(vm)) => {
                    assert_eq!(interp.memory, vm.memory, "{name}+{variant}: memory");
                    assert_eq!(interp.movement, vm.movement, "{name}+{variant}: movement");
                    assert_eq!(interp.states, vm.states, "{name}+{variant}: states");
                    assert_eq!(interp.messages, vm.messages, "{name}+{variant}: messages");
                }
                // auto-place can emit a program that dies at runtime
                // (jacobi2d does today); the VM must die identically.
                (Err(interp), Err(vm)) => {
                    assert_eq!(interp, vm, "{name}+{variant}: error text");
                }
                (interp, vm) => panic!(
                    "{name}+{variant}: backends disagree on success:\n  interp: {interp:?}\n  vm: {vm:?}"
                ),
            }
        }
    }
}

#[test]
fn vm_matches_interpreter_on_the_threaded_machine() {
    for (name, source) in programs() {
        for (variant, opts) in variants() {
            let compiled = compile(&source, &opts)
                .unwrap_or_else(|e| panic!("{name}+{variant}: compile failed: {e}"));
            let program = &compiled.program;
            // Which pid trips a runtime error first races on real
            // threads; only compare variants that run cleanly (the sim
            // test owns error conformance).
            let probe = fp_sim(
                SimExec::new(
                    program.clone(),
                    xdp_apps::app_kernels(),
                    SimConfig::new(compiled.nprocs),
                ),
                &program.decls,
            );
            if probe.is_err() {
                continue;
            }
            let cfg = ThreadConfig::new(compiled.nprocs).with_trace(TraceConfig::full());
            let decls = program.decls.clone();
            let label = format!("{name}+{variant}");
            let interp = fp_thread(
                &label,
                ThreadExec::new(program.clone(), xdp_apps::app_kernels(), cfg.clone()),
                &decls,
            );
            let vm = fp_thread(
                &label,
                VmExec::threads(program.clone(), xdp_apps::app_kernels(), cfg),
                &decls,
            );
            // Thread schedules vary run to run, so the section-state
            // instants are not comparable — everything timing-free is.
            assert_eq!(interp.memory, vm.memory, "{name}+{variant}: memory");
            assert_eq!(interp.movement, vm.movement, "{name}+{variant}: movement");
            assert_eq!(interp.messages, vm.messages, "{name}+{variant}: messages");
        }
    }
}

#[test]
fn vm_chaos_runs_are_bit_identical_to_clean() {
    // The ack/retry delivery layer makes transport faults invisible to
    // program semantics — on the compiled backend too. Dedup must also
    // keep the delivered-message count.
    let mut injected_somewhere = false;
    for (name, source) in programs() {
        let opts = CompileOptions::default().with_seq(SeqMode::Auto);
        let compiled = compile(&source, &opts).unwrap();
        let decls = compiled.program.decls.clone();
        let clean = fp_sim(
            VmExec::sim(
                compiled.program.clone(),
                xdp_apps::app_kernels(),
                SimConfig::new(compiled.nprocs).with_trace(TraceConfig::full()),
            ),
            &decls,
        )
        .unwrap_or_else(|e| panic!("{name}: clean vm run: {e}"));
        let cfg = SimConfig::new(compiled.nprocs)
            .with_trace(TraceConfig::full())
            .with_faults(chaos(11));
        let mut exec = VmExec::sim(compiled.program.clone(), xdp_apps::app_kernels(), cfg);
        for (i, d) in decls.iter().enumerate() {
            if d.is_exclusive() {
                let full = Section::new(d.bounds.clone());
                let elem = d.elem;
                exec.init_exclusive(VarId(i as u32), move |idx| {
                    init_value(elem, full.ordinal_of(idx).unwrap_or(0))
                });
            }
        }
        let report = exec.run().expect("vm chaos run");
        let mut faulty = Fingerprint::default();
        for (i, d) in decls.iter().enumerate() {
            if d.is_exclusive() {
                faulty.record_memory(&d.name, &exec.gather(VarId(i as u32)));
            }
        }
        faulty.messages = report.net.messages;
        assert_eq!(clean.memory, faulty.memory, "{name}: chaos changed memory");
        assert_eq!(
            clean.messages, faulty.messages,
            "{name}: dedup must keep the delivered-message count"
        );
        injected_somewhere |= report.faults.any_injected();
    }
    assert!(injected_somewhere, "no faults injected; suite is vacuous");
}

#[test]
fn vm_matches_interpreter_under_fault_injection() {
    // Same seeded fault plan on both backends: injection is a pure
    // function of the message stream, and the streams are identical, so
    // even the faulted fingerprints must agree exactly.
    for (name, source) in programs() {
        let opts = CompileOptions::default().with_seq(SeqMode::Auto);
        let compiled = compile(&source, &opts).unwrap();
        let (interp, vm) = sim_pair(&compiled.program, compiled.nprocs, Some(chaos(23)));
        let interp = interp.unwrap_or_else(|e| panic!("{name}: interp chaos run: {e}"));
        let vm = vm.unwrap_or_else(|e| panic!("{name}: vm chaos run: {e}"));
        assert_eq!(interp.memory, vm.memory, "{name}: memory under faults");
        assert_eq!(
            interp.movement, vm.movement,
            "{name}: movement under faults"
        );
        assert_eq!(interp.states, vm.states, "{name}: states under faults");
        assert_eq!(
            interp.messages, vm.messages,
            "{name}: messages under faults"
        );
    }
}
