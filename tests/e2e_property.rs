//! Property-based end-to-end tests: for random sizes, machine widths,
//! distributions and subscript shifts, the optimized program computes
//! exactly what the naive owner-computes program computes, with no more
//! messages.

use proptest::prelude::*;
use std::sync::Arc;
use xdp::prelude::*;

fn dist_strategy() -> impl Strategy<Value = DimDist> {
    prop_oneof![
        Just(DimDist::Block),
        Just(DimDist::Cyclic),
        (2i64..4).prop_map(DimDist::BlockCyclic),
    ]
}

fn run(p: &Program, a: VarId, bvar: VarId, nprocs: usize, n: i64) -> (Vec<f64>, u64) {
    let mut exec = SimExec::new(
        Arc::new(p.clone()),
        KernelRegistry::standard(),
        SimConfig::new(nprocs),
    );
    exec.init_exclusive(a, |idx| Value::F64(idx[0] as f64));
    exec.init_exclusive(bvar, |idx| Value::F64(3.0 * idx[0] as f64 + 1.0));
    let r = exec.run().expect("run");
    let g = exec.gather(a);
    let vals = (1..=n)
        .map(|i| g.get(&[i]).expect("owned").as_f64())
        .collect();
    (vals, r.net.messages)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn optimized_equals_naive(
        nprocs in 2usize..5,
        chunks in 2i64..6,
        ad in dist_strategy(),
        bd in dist_strategy(),
        shift in 0i64..3,
    ) {
        let n = nprocs as i64 * chunks * 2;
        let grid = ProcGrid::linear(nprocs);
        let mut s = SeqProgram::new();
        let a = s.declare(build::array(
            "A", ElemType::F64, vec![(1, n)], vec![ad], grid.clone(),
        ));
        let bvar = s.declare(build::array(
            "B", ElemType::F64, vec![(1, n)], vec![bd], grid,
        ));
        let ai = build::sref(a, vec![build::at(build::iv("i"))]);
        let bi = build::sref(
            bvar,
            vec![build::at(build::iv("i").add(build::c(shift)))],
        );
        s.body = vec![SeqStmt::DoLoop {
            var: "i".into(),
            lo: build::c(1),
            hi: build::c(n - shift),
            body: vec![SeqStmt::Assign {
                target: ai.clone(),
                rhs: build::val(ai).add(build::val(bi)),
            }],
        }];
        let naive = lower_owner_computes(&s, &FrontendOptions::default()).unwrap();
        let (opt, _) = PassManager::paper_pipeline().run(&naive);

        let (v0, m0) = run(&naive, a, bvar, nprocs, n);
        let (v1, m1) = run(&opt, a, bvar, nprocs, n);
        for i in 0..n as usize {
            prop_assert!((v0[i] - v1[i]).abs() < 1e-12, "A[{}]: {} vs {}", i + 1, v0[i], v1[i]);
        }
        prop_assert!(m1 <= m0, "optimized moved more messages: {m1} > {m0}");
        // And both match the sequential semantics.
        for i in 1..=(n - shift) {
            let want = i as f64 + (3.0 * (i + shift) as f64 + 1.0);
            prop_assert!((v0[(i - 1) as usize] - want).abs() < 1e-12);
        }
    }

    #[test]
    fn migration_equals_naive(
        nprocs in 2usize..5,
        chunks in 2i64..5,
        bd in dist_strategy(),
    ) {
        let n = nprocs as i64 * chunks;
        let grid = ProcGrid::linear(nprocs);
        let mut s = SeqProgram::new();
        let a = s.declare(build::array(
            "A", ElemType::F64, vec![(1, n)], vec![DimDist::Block], grid.clone(),
        ));
        let bvar = s.declare(build::array(
            "B", ElemType::F64, vec![(1, n)], vec![bd], grid,
        ));
        let ai = build::sref(a, vec![build::at(build::iv("i"))]);
        let bi = build::sref(bvar, vec![build::at(build::iv("i"))]);
        s.body = vec![SeqStmt::DoLoop {
            var: "i".into(),
            lo: build::c(1),
            hi: build::c(n),
            body: vec![SeqStmt::Assign {
                target: ai.clone(),
                rhs: build::val(ai).add(build::val(bi)),
            }],
        }];
        let naive = lower_owner_computes(&s, &FrontendOptions::default()).unwrap();
        let mig = xdp_compiler::passes::MigrateOwnership::default()
            .run(&naive)
            .program;
        let (v0, _) = run(&naive, a, bvar, nprocs, n);
        let (v1, _) = run(&mig, a, bvar, nprocs, n);
        prop_assert_eq!(v0, v1);
    }

    #[test]
    fn sim_and_threads_agree(
        nprocs in 2usize..4,
        chunks in 2i64..4,
        bd in dist_strategy(),
    ) {
        let n = nprocs as i64 * chunks;
        let grid = ProcGrid::linear(nprocs);
        let mut s = SeqProgram::new();
        let a = s.declare(build::array(
            "A", ElemType::F64, vec![(1, n)], vec![DimDist::Block], grid.clone(),
        ));
        let bvar = s.declare(build::array(
            "B", ElemType::F64, vec![(1, n)], vec![bd], grid,
        ));
        let ai = build::sref(a, vec![build::at(build::iv("i"))]);
        let bi = build::sref(bvar, vec![build::at(build::iv("i"))]);
        s.body = vec![SeqStmt::DoLoop {
            var: "i".into(),
            lo: build::c(1),
            hi: build::c(n),
            body: vec![SeqStmt::Assign {
                target: ai.clone(),
                rhs: build::val(ai).mul(build::val(bi)),
            }],
        }];
        let p = lower_owner_computes(&s, &FrontendOptions::default()).unwrap();
        let (vs, _) = run(&p, a, bvar, nprocs, n);

        let mut thr = ThreadExec::new(
            Arc::new(p),
            KernelRegistry::standard(),
            ThreadConfig::new(nprocs),
        );
        thr.init_exclusive(a, |idx| Value::F64(idx[0] as f64));
        thr.init_exclusive(bvar, |idx| Value::F64(3.0 * idx[0] as f64 + 1.0));
        thr.run().expect("threads");
        let g = thr.gather(a);
        for i in 1..=n {
            prop_assert_eq!(
                g.get(&[i]).unwrap().as_f64(),
                vs[(i - 1) as usize],
                "i={}", i
            );
        }
    }
}
