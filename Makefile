# Convenience targets; everything is plain cargo underneath.

.PHONY: all test bench experiments examples lint doc clean e10 e11 e12 e13 e14 e15 e16 e17 fuzz serve stats

all: test

test:
	cargo test --workspace

lint:
	cargo clippy --workspace --all-targets -- -D warnings
	cargo fmt --check 2>/dev/null || true

doc:
	cargo doc --workspace --no-deps

bench:
	cargo bench --workspace

# Regenerate every figure/experiment table (EXPERIMENTS.md sources).
experiments:
	@for b in fig1_conformance fig2_symtab fig3_segments fig4_fft3d \
	          e1_simple e2_segsize e3_rulecost e4_loadbal e5_binding \
	          e6_crossover e7_topology e8_collectives e9_critical_path \
	          e10_autoplace e11_chaos; do \
	    echo "==== $$b ===="; \
	    cargo run -q --release -p xdp-bench --bin $$b; \
	done
	@echo "==== e12_fuzz ===="
	@cargo run -q --release -p xdp-verify --bin e12_fuzz
	@echo "==== e13_serve ===="
	@cargo run -q --release -p xdp-serve --bin e13_serve
	@echo "==== e14_metrics ===="
	@cargo run -q --release -p xdp-serve --bin e14_metrics
	@echo "==== e15_vm ===="
	@cargo run -q --release -p xdp-verify --bin e15_vm
	@echo "==== e16_scale ===="
	@cargo run -q --release -p xdp-verify --bin e16_scale
	@echo "==== e17_membound ===="
	@cargo run -q --release -p xdp-verify --bin e17_membound
	@echo "==== bench_check ===="
	@cargo run -q --release -p xdp-bench --bin bench_check

# The automatic-placement experiment on its own (EXPERIMENTS.md E10).
e10:
	cargo run -q --release -p xdp-bench --bin e10_autoplace

# The chaos-conformance experiment on its own (EXPERIMENTS.md E11).
e11:
	cargo run -q --release -p xdp-bench --bin e11_chaos

# The differential-fuzzing experiment on its own (EXPERIMENTS.md E12).
e12:
	cargo run -q --release -p xdp-verify --bin e12_fuzz

# The serving load replay on its own (EXPERIMENTS.md E13); appends a
# row to the BENCH_serve.json trajectory.
e13:
	cargo run -q --release -p xdp-serve --bin e13_serve

# Telemetry validation on its own (EXPERIMENTS.md E14): histogram vs
# oracle, latency decomposition, flight recorder, regression gate.
e14:
	cargo run -q --release -p xdp-serve --bin e14_metrics
	cargo run -q --release -p xdp-bench --bin bench_check

# The VM speedup + conformance experiment on its own (EXPERIMENTS.md
# E15): asserts the >=10x floor on local compute and fingerprint
# identity with the interpreter, then gates the appended trajectory row.
e15:
	cargo run -q --release -p xdp-verify --bin e15_vm
	cargo run -q --release -p xdp-bench --bin bench_check

# The scale experiment on its own (EXPERIMENTS.md E16): the async
# machine at P=4096 fingerprint-identical to the simulator, and the
# tiered-topology collectives crossover moving under 100x cluster-link
# asymmetry. Gates the appended trajectory row.
e16:
	cargo run -q --release -p xdp-verify --bin e16_scale
	cargo run -q --release -p xdp-bench --bin bench_check

# The memory-bounded redistribution experiment on its own
# (EXPERIMENTS.md E17): the transpose Pareto frontier at P=64-1024,
# measured high-water marks under budgets on the interpreter and VM,
# and the membound.xdp dynamic-slice chain leg. Writes the frontier
# sweep to membound-pareto.json and gates the appended trajectory row.
e17:
	cargo run -q --release -p xdp-verify --bin e17_membound
	cargo run -q --release -p xdp-bench --bin bench_check

# A longer differential fuzz sweep via the CLI (CI runs --count 200).
fuzz:
	cargo run -q --release --bin xdpc -- fuzz --count 500 --seed 7

# Serve the corpus interactively: registry listing + a repeated run.
serve:
	cargo run -q --release --bin xdpd -- list
	cargo run -q --release --bin xdpd -- run xdp-programs/fft3d.xdp --repeat 5

# Serve a short replay and print the pool's Prometheus exposition.
stats:
	cargo run -q --release --bin xdpd -- stats

examples:
	@for e in quickstart fft3d paper_listings load_balance redistribute \
	          collectives memory_hierarchy debug_monitor; do \
	    echo "==== $$e ===="; \
	    cargo run -q --release --example $$e; \
	done

clean:
	cargo clean
