//! `xdpc` — the XDP command-line driver.
//!
//! Run `xdpc` with no arguments for usage: the help text is generated from
//! the same command table that drives dispatch (see [`COMMANDS`]), so it
//! cannot drift from the implemented subcommands.
//!
//! ```text
//! run/trace options:
//!   --procs N        machine size (default: from the declarations)
//!   --alpha X        per-message latency            (default 100)
//!   --beta X         per-byte time                  (default 0.1)
//!   --timeline       print a Gantt chart of the execution (run)
//!   --gather NAME    print the named array's final contents and owners (run)
//!   --optimize       run the paper pipeline before executing
//!   --backend B      execution backend: interp (tree-walking, default)
//!                    or vm (compiled bytecode; same traces and results)
//!   --unchecked      disable the checked runtime (run)
//!   --mem-budget B   per-processor live-buffer budget (bytes; k/m/g
//!                    suffixes) for redistribution planning (plan, place,
//!                    run, fuzz); plan exits nonzero when no decomposition
//!                    fits and names the smallest feasible budget
//!   --faults SPEC    inject transport faults and deliver through ack/retry:
//!                    comma-separated drop=P dup=P reorder=P delayp=P delay=T
//!                    seed=N rto=T backoff=X retries=N kill=SRC:SEQ
//!   --out PATH       Chrome trace-event JSON output (trace; default trace.json)
//!   --jsonl PATH     also write the compact JSONL trace (trace)
//!   --top N          rows in the critical-path tables (trace; default 10)
//!   --explain        print per-pass wall time, node deltas and statement
//!                    provenance (lower, opt, and trace/run with --optimize)
//!
//! place options (plus --alpha/--beta/--topo as above):
//!   --no-cyclic      drop CYCLIC candidates from the search
//!   --max-dims N     most array dimensions distributed at once (default 2)
//!   --emit           print the rewritten program (valid xdpc input)
//!
//! fuzz options (no input file; programs are generated):
//!   --count N        programs to check                     (default 200)
//!   --seed N         first seed; program k uses seed+k     (default 1)
//!   --procs N        processors per generated program      (default 4)
//!   --faults SPEC    fault plan for the chaos oracle (syntax as for run);
//!                    default: a seed-derived lossy plan
//!   --repro PATH     where to write the minimized repro    (default fuzz-repro.xdp)
//!   --sim-only       skip the threaded executor and chaos oracles
//!
//! On a divergence, fuzz shrinks the program, writes the `.xdp` repro,
//! and exits 1; a malformed --faults spec exits 2.
//!
//! pass names: elide-same-owner-comm, vectorize-messages, localize-bounds,
//! bind-communication, elide-accessible-checks, fuse-loops, sink-await,
//! migrate-ownership, auto-place
//! ```
//!
//! Exclusive arrays are initialized to their flattened 1-based element
//! index (`A[i,j] = ordinal`), which makes small experiments reproducible
//! without an input format.

use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;

/// `println!` that ignores broken pipes (`xdpc run ... | head`).
macro_rules! out {
    ($($t:tt)*) => {{
        let _ = writeln!(std::io::stdout(), $($t)*);
    }};
}

/// `print!` that ignores broken pipes.
macro_rules! outp {
    ($($t:tt)*) => {{
        let _ = write!(std::io::stdout(), $($t)*);
    }};
}
use xdp::prelude::*;
use xdp_bench::Table;
use xdp_compiler::passes::{
    AutoPlace, BindCommunication, ElideAccessibleChecks, ElideSameOwnerComm, FuseLoops,
    LocalizeBounds, MigrateOwnership, SinkAwait, VectorizeMessages,
};
use xdp_compiler::{compile_program, Backend, CompileError, CompileOptions, Compiled, SeqMode};
use xdp_core::Processor;
use xdp_ir::pretty;

/// One subcommand: name, one-line summary (for usage), and handler. The
/// dispatch loop and the usage text both read this table, so adding a
/// subcommand here is the *only* step — help cannot drift.
struct Command {
    name: &'static str,
    summary: &'static str,
    run: Runner,
}

/// Most subcommands operate on a parsed `.xdp` file; a few (like `fuzz`)
/// generate their own programs and take only options.
enum Runner {
    /// `xdpc <cmd> <file.xdp> [options]`.
    File(fn(&Program, &[String]) -> ExitCode),
    /// `xdpc <cmd> [options]`.
    Bare(fn(&[String]) -> ExitCode),
}

const COMMANDS: &[Command] = &[
    Command {
        name: "check",
        summary: "parse, validate, and pretty-print",
        run: Runner::File(cmd_check),
    },
    Command {
        name: "lower",
        summary: "sequential source -> naive owner-computes IL+XDP [--explain]",
        run: Runner::File(cmd_lower),
    },
    Command {
        name: "opt",
        summary: "optimize and print [--passes LIST] [--explain]",
        run: Runner::File(cmd_opt),
    },
    Command {
        name: "run",
        summary: "execute on the simulated machine [--procs N] [--timeline] ...",
        run: Runner::File(cmd_run),
    },
    Command {
        name: "trace",
        summary: "execute with full tracing: Chrome JSON + critical path [--out PATH]",
        run: Runner::File(cmd_trace),
    },
    Command {
        name: "tune",
        summary: "pick the fastest segment shape --array NAME --segments 1,2,4x1,...",
        run: Runner::File(cmd_tune),
    },
    Command {
        name: "plan",
        summary: "show schedule + predicted cost of every `redistribute`",
        run: Runner::File(cmd_plan),
    },
    Command {
        name: "place",
        summary: "search per-phase distributions with the cost model [--emit]",
        run: Runner::File(cmd_place),
    },
    Command {
        name: "fuzz",
        summary: "differentially test executors and passes on generated programs",
        run: Runner::Bare(cmd_fuzz),
    },
];

/// Usage text generated from [`COMMANDS`].
fn usage_text() -> String {
    let names: Vec<&str> = COMMANDS.iter().map(|c| c.name).collect();
    let mut s = format!(
        "usage: xdpc <{}> <file.xdp> [options]\n       xdpc fuzz [options]\n",
        names.join("|")
    );
    for c in COMMANDS {
        s.push_str(&format!("  {:<7} {}\n", c.name, c.summary));
    }
    s.push_str("(see `src/bin/xdpc.rs` header for per-command options)");
    s
}

fn usage() -> ExitCode {
    eprintln!("{}", usage_text());
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let Some(command) = COMMANDS.iter().find(|c| c.name == cmd.as_str()) else {
        return usage();
    };
    match command.run {
        Runner::Bare(f) => f(&args[1..]),
        Runner::File(f) => {
            let Some(file) = args.get(1) else {
                return usage();
            };
            // One diagnostic and one exit code (2, a usage-class error)
            // for every subcommand pointed at a missing or unreadable
            // file — asserted for all of them in `tests/cli.rs`.
            let src = match std::fs::read_to_string(file) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("xdpc: error: cannot read {file}: {e}");
                    return ExitCode::from(2);
                }
            };
            let program = match xdp_lang::parse_program(&src) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("xdpc: {file}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            f(&program, &args[2..])
        }
    }
}

fn cmd_check(program: &Program, _rest: &[String]) -> ExitCode {
    let diags = xdp_ir::validate(program);
    outp!("{}", pretty::program(program));
    for d in &diags {
        eprintln!("xdpc: warning: {d}");
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_lower(program: &Program, rest: &[String]) -> ExitCode {
    let opts = CompileOptions::default().with_seq(SeqMode::Lower);
    let naive = match compile_program(program, &opts) {
        Ok(c) => c.program,
        Err(e) => {
            eprintln!("xdpc: {e}");
            return ExitCode::FAILURE;
        }
    };
    outp!("{}", pretty::program(&naive));
    if flag(rest, "--explain") {
        // Show what the standard pipeline would do to this program:
        // per-pass wall time, node deltas, statement provenance.
        let (_, ct) = PassManager::paper_pipeline().run_traced(&naive);
        eprintln!("\n[paper pipeline on the lowered program]");
        eprint!("{}", ct.render());
    }
    ExitCode::SUCCESS
}

fn pass_by_name(name: &str) -> Option<Box<dyn Pass>> {
    Some(match name {
        "elide-same-owner-comm" => Box::new(ElideSameOwnerComm),
        "vectorize-messages" => Box::new(VectorizeMessages),
        "localize-bounds" => Box::new(LocalizeBounds),
        "bind-communication" => Box::new(BindCommunication),
        "elide-accessible-checks" => Box::new(ElideAccessibleChecks),
        "fuse-loops" => Box::new(FuseLoops),
        "sink-await" => Box::new(SinkAwait),
        "migrate-ownership" => Box::new(MigrateOwnership::default()),
        "auto-place" => Box::new(AutoPlace::new()),
        _ => return None,
    })
}

fn cmd_opt(program: &Program, rest: &[String]) -> ExitCode {
    let passes: Vec<String> = match rest.iter().position(|a| a == "--passes") {
        Some(i) => match rest.get(i + 1) {
            Some(list) => list.split(',').map(|s| s.trim().to_string()).collect(),
            None => {
                eprintln!("xdpc: --passes needs a comma-separated list");
                return ExitCode::from(2);
            }
        },
        None => vec![
            "elide-same-owner-comm".into(),
            "vectorize-messages".into(),
            "localize-bounds".into(),
            "bind-communication".into(),
            "elide-accessible-checks".into(),
        ],
    };
    let mut mgr = PassManager::new();
    for name in &passes {
        let Some(pass) = pass_by_name(name) else {
            eprintln!("xdpc: unknown pass `{name}`");
            return ExitCode::from(2);
        };
        mgr = mgr.add_boxed(pass);
    }
    let (cur, ct) = mgr.run_traced(program);
    if flag(rest, "--explain") {
        eprint!("{}", ct.render());
    } else {
        for p in &ct.passes {
            eprintln!(
                "pass {}: {}",
                p.name,
                if p.changed { "changed" } else { "no change" }
            );
            for note in &p.notes {
                eprintln!("  - {note}");
            }
        }
    }
    outp!("{}", pretty::program(&cur));
    ExitCode::SUCCESS
}

fn cmd_tune(program: &Program, rest: &[String]) -> ExitCode {
    let Some(array) = opt_val(rest, "--array") else {
        eprintln!("xdpc: tune needs --array NAME");
        return ExitCode::from(2);
    };
    let Some(pos) = program.decls.iter().position(|d| d.name == array) else {
        eprintln!("xdpc: no array named `{array}`");
        return ExitCode::FAILURE;
    };
    let rank = program.decls[pos].rank();
    let shapes: Vec<Vec<i64>> = match opt_val(rest, "--segments") {
        Some(list) => {
            let mut out = Vec::new();
            for spec in list.split(',') {
                let dims: Option<Vec<i64>> =
                    spec.split('x').map(|x| x.trim().parse().ok()).collect();
                match dims {
                    Some(d) if d.len() == rank && d.iter().all(|&x| x >= 1) => out.push(d),
                    _ => {
                        eprintln!(
                            "xdpc: bad segment spec `{spec}` (rank-{rank} array; use e.g. 4 or 4x1)"
                        );
                        return ExitCode::from(2);
                    }
                }
            }
            out
        }
        None => {
            eprintln!("xdpc: tune needs --segments LIST");
            return ExitCode::from(2);
        }
    };
    let nprocs = program
        .decls
        .iter()
        .filter_map(|d| d.dist.as_ref().map(|x| x.nprocs()))
        .max()
        .unwrap_or(1);
    let decls = program.decls.clone();
    let result = xdp::tuning::tune(
        &shapes,
        xdp_apps::app_kernels(),
        &SimConfig::new(nprocs),
        |shape| {
            let mut p = program.clone();
            p.decls[pos].segment_shape = Some(shape.clone());
            let decls = decls.clone();
            (
                p,
                Box::new(move |exec: &mut SimExec| {
                    for (i, d) in decls.iter().enumerate() {
                        if d.is_exclusive() {
                            let full = Section::new(d.bounds.clone());
                            exec.init_exclusive(VarId(i as u32), move |idx| {
                                Value::F64((full.ordinal_of(idx).unwrap_or(0) + 1) as f64)
                            });
                        }
                    }
                }),
            )
        },
    );
    match result {
        Ok(r) => {
            out!("{:>12}  {:>12}  {:>9}", "segments", "time", "messages");
            for c in &r.all {
                let label: Vec<String> = c.param.iter().map(|x| x.to_string()).collect();
                out!(
                    "{:>12}  {:>12.1}  {:>9}{}",
                    label.join("x"),
                    c.virtual_time,
                    c.messages,
                    if c.param == r.best.param {
                        "   <- best"
                    } else {
                        ""
                    }
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xdpc: tuning failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Cost-model overrides shared by `plan`, `place`, `run`, and `trace`.
fn cost_flags(rest: &[String]) -> CostModel {
    let mut cost = CostModel::default_1993();
    if let Some(a) = opt_val(rest, "--alpha").and_then(|v| v.parse().ok()) {
        cost.alpha = a;
    }
    if let Some(b) = opt_val(rest, "--beta").and_then(|v| v.parse().ok()) {
        cost.beta = b;
    }
    cost
}

/// Parse a byte count with an optional binary k/m/g suffix.
fn parse_bytes(v: &str) -> Option<u64> {
    let v = v.trim();
    let (num, mult) = match v.char_indices().last()? {
        (i, 'k') | (i, 'K') => (&v[..i], 1u64 << 10),
        (i, 'm') | (i, 'M') => (&v[..i], 1 << 20),
        (i, 'g') | (i, 'G') => (&v[..i], 1 << 30),
        _ => (v, 1),
    };
    let n: u64 = num.parse().ok()?;
    n.checked_mul(mult).filter(|b| *b > 0)
}

/// `--mem-budget BYTES` shared by `plan`, `place`, `run`, and `fuzz`:
/// per-processor live-buffer budget for redistribution planning. Accepts
/// a plain byte count or a k/m/g suffix (binary). A malformed or zero
/// value is a usage error (exit 2).
fn parse_mem_budget(rest: &[String]) -> Result<Option<u64>, ExitCode> {
    let Some(v) = opt_val(rest, "--mem-budget") else {
        return Ok(None);
    };
    match parse_bytes(v) {
        Some(b) => Ok(Some(b)),
        None => {
            eprintln!(
                "xdpc: bad --mem-budget `{v}` (positive bytes, optionally with k/m/g suffix)"
            );
            Err(ExitCode::from(2))
        }
    }
}

/// `--topo uniform|linear|RxC` shared by `plan` and `place`.
fn parse_topo(rest: &[String]) -> Result<Topology, ExitCode> {
    Ok(match opt_val(rest, "--topo") {
        None | Some("uniform") => Topology::Uniform,
        Some("linear") => Topology::Linear,
        Some(spec) => {
            let dims: Vec<usize> = spec.split('x').filter_map(|x| x.parse().ok()).collect();
            let [rows, cols] = dims[..] else {
                eprintln!("xdpc: bad --topo `{spec}` (use uniform, linear, or RxC)");
                return Err(ExitCode::from(2));
            };
            Topology::Mesh2D { rows, cols }
        }
    })
}

/// Show the planner's decision for every `redistribute` in the program:
/// the candidate strategies with predicted costs (one shared-format table
/// for all statements), and the chosen communication schedule. Statements
/// are examined in program order (each one changes the source
/// distribution of the next).
fn cmd_plan(program: &Program, rest: &[String]) -> ExitCode {
    use xdp_bench::table::j;
    let program = match compiled_for(program, rest, SeqMode::AsIs) {
        Ok(c) => c.program,
        Err(code) => return code,
    };
    let program = program.as_ref();
    let mut cost = cost_flags(rest);
    let budget = match parse_mem_budget(rest) {
        Ok(b) => b,
        Err(code) => return code,
    };
    cost.mem_budget = budget;
    let topo = match parse_topo(rest) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let mut cur: std::collections::HashMap<VarId, Distribution> = std::collections::HashMap::new();
    let mut t = Table::new(
        "redistribution plans",
        &[
            "array",
            "from",
            "to",
            "elems",
            "strategy",
            "predicted",
            "peak_B",
            "chosen",
        ],
    );
    let mut schedules = String::new();
    let mut found = 0usize;
    let mut failed = false;
    program.visit(&mut |s| {
        let Stmt::Redistribute { var, dist } = s else {
            return;
        };
        found += 1;
        let decl = program.decl(*var);
        let Some(src) = cur.get(var).or(decl.dist.as_ref()).cloned() else {
            eprintln!("xdpc: `{}` is not distributed", decl.name);
            failed = true;
            return;
        };
        cur.insert(*var, dist.clone());
        // Unrestricted plan for the strategy comparison; the executed
        // statement (`xdpc run`) restricts messages to single strided
        // sections, so print that schedule and flag any divergence.
        let mut planned = |single: bool| {
            xdp::collectives::try_plan(
                *var,
                &decl.bounds,
                decl.elem.size_bytes(),
                &src,
                dist,
                &cost,
                &topo,
                single,
            )
            .map_err(|e| {
                eprintln!("xdpc: {}: {e}", decl.name);
                failed = true;
            })
            .ok()
        };
        let Some(free) = planned(false) else {
            return;
        };
        let Some(pl) = planned(true) else {
            return;
        };
        let peak_of = |st: &xdp::collectives::Strategy| {
            free.frontier
                .iter()
                .find(|f| f.strategy == *st)
                .map(|f| f.peak_bytes.to_string())
                .unwrap_or_else(|| "-".into())
        };
        let mut add = |strategy: &str, predicted: f64, peak: &str, chosen: &str| {
            t.row(&[
                j::s(&decl.name),
                j::s(&src.to_string()),
                j::s(&dist.to_string()),
                j::i(free.moved_elems),
                j::s(strategy),
                j::f(predicted),
                j::s(peak),
                j::s(chosen),
            ]);
        };
        add(
            &free.strategy.to_string(),
            free.predicted,
            &free.peak_bytes.to_string(),
            "<-",
        );
        for (st, c) in &free.alternatives {
            if *st == free.strategy {
                continue;
            }
            add(&st.to_string(), *c, &peak_of(st), "");
        }
        schedules.push_str(&format!(
            "frontier {} (time/memory, non-dominated):\n",
            decl.name
        ));
        for f in &free.frontier {
            schedules.push_str(&format!(
                "  {} predicted {:.1} peak {} B{}\n",
                f.strategy,
                f.predicted,
                f.peak_bytes,
                if f.chosen { " <-" } else { "" }
            ));
        }
        if free.strategy != pl.strategy {
            schedules.push_str(&format!(
                "note: redistribute {} executes single-section messages, runs {} (predicted {:.1})\n",
                decl.name, pl.strategy, pl.predicted
            ));
        }
        schedules.push_str(&format!("{}", pl.schedule));
    });
    if found == 0 {
        out!("no redistribute statements");
        return ExitCode::SUCCESS;
    }
    outp!("{}", t.render());
    if xdp_bench::table::json_enabled() {
        for line in t.json_lines() {
            out!("{line}");
        }
    }
    outp!("{schedules}");
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `xdpc place`: run the `xdp-place` search on the program and report the
/// chosen per-phase distributions, predicted costs, and — by executing
/// both the input and the rewritten program on the simulated machine —
/// the realized virtual times. Exits nonzero when no placement is legal
/// (no distributed exclusive array, or no compute). Programs that migrate
/// ownership by hand are analyzed but not rewritten: the placement is
/// advisory and only the input program is executed.
fn cmd_place(program: &Program, rest: &[String]) -> ExitCode {
    use xdp_bench::table::j;
    let compiled = match compiled_for(program, rest, SeqMode::AsIs) {
        Ok(c) => c,
        Err(code) => return code,
    };
    let program = compiled.program.as_ref();
    let topo = match parse_topo(rest) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let mut model = cost_flags(rest);
    model.mem_budget = match parse_mem_budget(rest) {
        Ok(b) => b,
        Err(code) => return code,
    };
    let mut opts = PlaceOptions {
        model,
        topo,
        ..PlaceOptions::default()
    };
    if flag(rest, "--no-cyclic") {
        opts.allow_cyclic = false;
    }
    if let Some(n) = opt_val(rest, "--max-dims").and_then(|v| v.parse().ok()) {
        opts.max_dist_dims = n;
    }
    let placed = match xdp::place::optimize(program, &opts) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("xdpc: place: {e}");
            return ExitCode::FAILURE;
        }
    };
    let pm = &placed.placement;
    out!(
        "anchor {} group [{}] on {} procs: {} candidates scored",
        pm.anchor_name,
        pm.group_names.join(","),
        pm.nprocs,
        pm.candidates_considered
    );
    let mut t = Table::new(
        "placement choices",
        &[
            "phase", "label", "dist", "compute", "shift", "move", "total",
        ],
    );
    for c in &pm.choices {
        t.row(&[
            j::u(c.phase as u64),
            j::s(&c.label),
            j::s(&c.dist.to_string()),
            j::f(c.compute),
            j::f(c.shift),
            j::f(c.transition),
            j::f(c.total()),
        ]);
    }
    outp!("{}", t.render());
    if xdp_bench::table::json_enabled() {
        for line in t.json_lines() {
            out!("{line}");
        }
    }

    // Predicted vs. simulated: execute on the simulated machine with the
    // same cost model the search scored against.
    let simulate = |p: &Program| -> Result<f64, String> {
        let nprocs = opt_val(rest, "--procs")
            .and_then(|v| v.parse().ok())
            .or_else(|| xdp_compiler::pipeline::machine_size_of(p))
            .unwrap_or(1);
        let cfg = SimConfig::new(nprocs).with_cost(opts.model);
        let decls = p.decls.clone();
        let mut exec = SimExec::new(Arc::new(p.clone()), xdp_apps::app_kernels(), cfg);
        init_default(&mut exec, &decls);
        exec.run()
            .map(|r| r.virtual_time)
            .map_err(|e| e.to_string())
    };
    match simulate(program) {
        Ok(vt) => out!("simulated input program: {vt:.1}"),
        Err(e) => {
            eprintln!("xdpc: input program failed to run: {e}");
            return ExitCode::FAILURE;
        }
    }
    if placed.rewritten {
        match simulate(&placed.program) {
            Ok(vt) => out!(
                "simulated placed program: {vt:.1} (predicted {:.1})",
                pm.total_predicted
            ),
            Err(e) => {
                eprintln!("xdpc: placed program failed to run: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        out!(
            "program migrates ownership by hand; placement is advisory (predicted {:.1})",
            pm.total_predicted
        );
    }
    if flag(rest, "--emit") {
        outp!("{}", pretty::program(&placed.program));
    }
    ExitCode::SUCCESS
}

/// `--faults SPEC` shared by `run` and `trace`. A malformed spec is a
/// usage error (exit 2), not a runtime failure.
fn parse_faults(rest: &[String]) -> Result<xdp_fault::FaultPlan, ExitCode> {
    match opt_val(rest, "--faults") {
        None => Ok(xdp_fault::FaultPlan::none()),
        Some(spec) => xdp_fault::FaultPlan::parse(spec).map_err(|e| {
            eprintln!("xdpc: bad --faults spec: {e}");
            ExitCode::from(2)
        }),
    }
}

fn flag(rest: &[String], name: &str) -> bool {
    rest.iter().any(|a| a == name)
}

fn opt_val<'a>(rest: &'a [String], name: &str) -> Option<&'a str> {
    rest.iter()
        .position(|a| a == name)
        .and_then(|i| rest.get(i + 1))
        .map(|s| s.as_str())
}

/// The shared parse-free compile path: validate, honour `--procs` and
/// `--optimize`, and print pass provenance (`--explain` for the full
/// instrumentation, otherwise a one-line change log). All file-taking
/// subcommands funnel through `xdp_compiler::compile_program` here — the
/// same pipeline the `xdpd` daemon's compile cache keys.
fn compiled_for(program: &Program, rest: &[String], seq: SeqMode) -> Result<Compiled, ExitCode> {
    let backend = match opt_val(rest, "--backend") {
        None => Backend::default(),
        Some(name) => match Backend::parse(name) {
            Some(b) => b,
            None => {
                eprintln!("xdpc: bad --backend `{name}` (use interp or vm)");
                return Err(ExitCode::from(2));
            }
        },
    };
    let opts = CompileOptions {
        procs: opt_val(rest, "--procs").and_then(|v| v.parse().ok()),
        optimize: flag(rest, "--optimize"),
        place: false,
        seq,
        backend,
        mem_budget: parse_mem_budget(rest)?,
    };
    let compiled = match compile_program(program, &opts) {
        Ok(c) => c,
        Err(CompileError::Invalid(diags)) => {
            for d in diags {
                eprintln!("xdpc: error: {d}");
            }
            return Err(ExitCode::FAILURE);
        }
        Err(e) => {
            eprintln!("xdpc: {e}");
            return Err(ExitCode::FAILURE);
        }
    };
    if !compiled.trace.passes.is_empty() {
        if flag(rest, "--explain") {
            eprint!("{}", compiled.trace.render());
        } else {
            for p in compiled.trace.passes.iter().filter(|p| p.changed) {
                eprintln!("pass {}: changed", p.name);
            }
        }
    }
    Ok(compiled)
}

/// Deterministic default initialization: flattened 1-based element ordinal.
fn init_default<P: Processor>(exec: &mut SimExec<P>, decls: &[Decl]) {
    for (i, d) in decls.iter().enumerate() {
        if d.is_exclusive() {
            let full = Section::new(d.bounds.clone());
            exec.init_exclusive(VarId(i as u32), move |idx| {
                Value::F64((full.ordinal_of(idx).unwrap_or(0) + 1) as f64)
            });
        }
    }
}

fn cmd_run(program: &Program, rest: &[String]) -> ExitCode {
    let compiled = match compiled_for(program, rest, SeqMode::AsIs) {
        Ok(c) => c,
        Err(code) => return code,
    };
    let faults = match parse_faults(rest) {
        Ok(p) => p,
        Err(code) => return code,
    };
    let nprocs = compiled.nprocs;
    let mut cost = cost_flags(rest);
    cost.mem_budget = compiled.mem_budget;
    let mut cfg = SimConfig::new(nprocs).with_cost(cost).with_faults(faults);
    if flag(rest, "--timeline") {
        cfg = cfg.with_timeline();
    }
    if flag(rest, "--unchecked") {
        cfg = cfg.unchecked();
    }

    let decls = compiled.program.decls.clone();
    // Both backends run on the same simulated machine and produce the
    // same report; only the processor type differs.
    match compiled.backend {
        Backend::Interp => {
            let exec = SimExec::new(compiled.program, xdp_apps::app_kernels(), cfg);
            finish_run(exec, &decls, rest, nprocs)
        }
        Backend::Vm => {
            let exec = xdp_vm::VmExec::sim(compiled.program, xdp_apps::app_kernels(), cfg);
            finish_run(exec, &decls, rest, nprocs)
        }
    }
}

/// The backend-independent tail of `xdpc run`: initialize, execute, and
/// print the report (and `--timeline` / `--gather` views) for whichever
/// processor type the `--backend` flag selected.
fn finish_run<P: Processor>(
    mut exec: SimExec<P>,
    decls: &[Decl],
    rest: &[String],
    nprocs: usize,
) -> ExitCode {
    init_default(&mut exec, decls);
    let report = match exec.run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xdpc: runtime error: {e}");
            return ExitCode::FAILURE;
        }
    };
    out!(
        "procs {nprocs}  virtual time {:.1}  messages {}  wire bytes {}  efficiency {:.1}%",
        report.virtual_time,
        report.net.messages,
        report.net.wire_bytes,
        100.0 * report.efficiency(),
    );
    if report.faults.any_injected() {
        out!("faults: {}", report.faults.summary());
    }
    for (pid, p) in report.procs.iter().enumerate() {
        out!(
            "  p{pid}: finish {:>10.1}  busy {:>10.1}  wait {:>10.1}  sends {:>4}  recvs {:>4}  symtab queries {:>5}",
            p.finish_time, p.busy, p.wait, p.sends, p.recvs, p.symtab.queries
        );
    }
    if flag(rest, "--timeline") {
        out!("{}", report.gantt(96));
    }
    if let Some(name) = opt_val(rest, "--gather") {
        let Some(pos) = decls.iter().position(|d| d.name == name) else {
            eprintln!("xdpc: no array named `{name}`");
            return ExitCode::FAILURE;
        };
        let g = exec.gather(VarId(pos as u32));
        out!("{name}:");
        for (idx, (owner, val)) in &g.values {
            out!("  {name}{idx:?} = {:>12.4}   (p{owner})", val.as_f64());
        }
    }
    ExitCode::SUCCESS
}

/// `xdpc trace`: execute with full trace recording, export Chrome
/// trace-event JSON (`--out`, default `trace.json`) and optionally JSONL
/// (`--jsonl`), then print the critical-path report. Fails (nonzero exit)
/// if the run errors, an export cannot be written, or the analyzer cannot
/// attribute the end-to-end time.
fn cmd_trace(program: &Program, rest: &[String]) -> ExitCode {
    let compiled = match compiled_for(program, rest, SeqMode::AsIs) {
        Ok(c) => c,
        Err(code) => return code,
    };
    let faults = match parse_faults(rest) {
        Ok(p) => p,
        Err(code) => return code,
    };
    let nprocs = compiled.nprocs;
    let cfg = SimConfig::new(nprocs)
        .with_cost(cost_flags(rest))
        .with_faults(faults)
        .with_trace(TraceConfig::full());

    // Statement labels for the per-statement cost ranking.
    let labels: std::collections::HashMap<u32, String> =
        pretty::stmt_table(&compiled.program).into_iter().collect();
    let decls = compiled.program.decls.clone();
    match compiled.backend {
        Backend::Interp => {
            let exec = SimExec::new(compiled.program, xdp_apps::app_kernels(), cfg);
            finish_trace(exec, &decls, rest, nprocs, &labels)
        }
        Backend::Vm => {
            let exec = xdp_vm::VmExec::sim(compiled.program, xdp_apps::app_kernels(), cfg);
            finish_trace(exec, &decls, rest, nprocs, &labels)
        }
    }
}

/// The backend-independent tail of `xdpc trace`: initialize, execute,
/// export the trace, and print the critical-path report.
fn finish_trace<P: Processor>(
    mut exec: SimExec<P>,
    decls: &[Decl],
    rest: &[String],
    nprocs: usize,
    labels: &std::collections::HashMap<u32, String>,
) -> ExitCode {
    init_default(&mut exec, decls);
    let report = match exec.run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xdpc: runtime error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let out_path = opt_val(rest, "--out").unwrap_or("trace.json");
    if let Err(e) = std::fs::write(out_path, report.trace.to_chrome_json()) {
        eprintln!("xdpc: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    if let Some(jsonl) = opt_val(rest, "--jsonl") {
        if let Err(e) = std::fs::write(jsonl, report.trace.to_jsonl()) {
            eprintln!("xdpc: cannot write {jsonl}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let cp = report.trace.critical_path(labels);
    if report.virtual_time > 0.0
        && (cp.attributed() - report.virtual_time).abs() > 1e-6 * report.virtual_time
    {
        eprintln!(
            "xdpc: critical-path analysis incomplete: attributed {:.1} of {:.1}",
            cp.attributed(),
            report.virtual_time
        );
        return ExitCode::FAILURE;
    }
    let top = opt_val(rest, "--top")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10usize);
    out!(
        "procs {nprocs}  virtual time {:.1}  messages {}  events {}",
        report.virtual_time,
        report.net.messages,
        report.trace.events.len()
    );
    if report.faults.any_injected() {
        out!("faults: {}", report.faults.summary());
    }
    outp!("{}", cp.render(top));
    out!("wrote {out_path}");
    ExitCode::SUCCESS
}

/// `xdpc fuzz`: differential testing on generated programs. Each seed's
/// program is executed on the simulator, the lockstep executor, and the
/// threaded executor, re-executed after every prefix of the default pass
/// pipeline, and re-executed under a lossy fault plan; any disagreement
/// is shrunk to a minimal repro and written to `--repro`.
fn cmd_fuzz(rest: &[String]) -> ExitCode {
    use xdp_verify::fuzz::{run_fuzz, FuzzConfig};

    let parse_num = |name: &str, default: u64| -> Result<u64, ExitCode> {
        match opt_val(rest, name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| {
                eprintln!("xdpc: bad {name} value `{v}`");
                ExitCode::from(2)
            }),
        }
    };
    let (count, seed, procs) = match (
        parse_num("--count", 200),
        parse_num("--seed", 1),
        parse_num("--procs", 4),
    ) {
        (Ok(c), Ok(s), Ok(p)) => (c as usize, s, p as usize),
        (Err(e), _, _) | (_, Err(e), _) | (_, _, Err(e)) => return e,
    };
    if procs < 2 {
        eprintln!("xdpc: fuzz needs --procs >= 2");
        return ExitCode::from(2);
    }
    let faults = match opt_val(rest, "--faults") {
        None => None,
        Some(spec) => match xdp_fault::FaultPlan::parse(spec) {
            Ok(p) => Some(p),
            Err(e) => {
                eprintln!("xdpc: bad --faults spec: {e}");
                return ExitCode::from(2);
            }
        },
    };
    let sim_only = flag(rest, "--sim-only");
    let mem_budget = match parse_mem_budget(rest) {
        Ok(b) => b,
        Err(code) => return code,
    };
    let repro_path = opt_val(rest, "--repro").unwrap_or("fuzz-repro.xdp");

    let cfg = FuzzConfig {
        count,
        seed,
        gen: xdp_verify::GenConfig {
            nprocs: procs,
            ..xdp_verify::GenConfig::default()
        },
        check: xdp_verify::CheckConfig {
            thread: !sim_only,
            async_exec: !sim_only,
            // The VM oracle runs on the simulated machine, so it stays on
            // even under --sim-only: it is exactly as deterministic and
            // nearly as cheap as the lockstep oracle.
            vm: true,
            chaos: !sim_only,
            faults,
            passes: true,
            // The membound oracle is a second simulator run (budgeted
            // planner, same memory image) — deterministic, so it also
            // stays on under --sim-only.
            mem_budget: mem_budget.or(Some(xdp_verify::DEFAULT_CHECK_BUDGET)),
        },
        ..FuzzConfig::default()
    };

    // Divergence panics are caught and reported by the driver; keep the
    // default hook from spraying backtraces mid-sweep.
    std::panic::set_hook(Box::new(|_| {}));
    let report = run_fuzz(&cfg, &mut |checked, failure| {
        if failure.is_none() && (checked % 50 == 0 || checked == count) {
            eprintln!("xdpc: fuzz: {checked}/{count} ok");
        }
    });
    let _ = std::panic::take_hook();

    if let Some(f) = report.failures.first() {
        if let Err(e) = std::fs::write(repro_path, &f.repro) {
            eprintln!("xdpc: cannot write {repro_path}: {e}");
        }
        out!(
            "FAIL seed {} [{}] after {} programs\n  {}\n  shrunk {} -> {} statements ({} evaluations)\n  repro: {repro_path}",
            f.seed,
            f.key,
            report.checked,
            f.detail.replace('\n', "\n  "),
            f.original_stmts,
            f.shrunk_stmts,
            f.shrink_evals,
        );
        return ExitCode::FAILURE;
    }
    out!(
        "ok: {} programs (seeds {}..{}), {} procs, executors {} + per-pass equivalence{}",
        report.checked,
        seed,
        seed + count as u64 - 1,
        procs,
        if sim_only {
            "sim+lockstep+vm".to_string()
        } else {
            "sim+lockstep+vm+thread+async".to_string()
        },
        if sim_only { "" } else { " + chaos" },
    );
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_lists_every_command_exactly_once() {
        let text = usage_text();
        for c in COMMANDS {
            assert!(
                text.contains(&format!("  {:<7} ", c.name)),
                "usage missing `{}`:\n{text}",
                c.name
            );
        }
        // Names are unique (the dispatch finds the first match).
        let mut names: Vec<&str> = COMMANDS.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), COMMANDS.len());
    }

    #[test]
    fn every_documented_pass_resolves() {
        for name in [
            "elide-same-owner-comm",
            "vectorize-messages",
            "localize-bounds",
            "bind-communication",
            "elide-accessible-checks",
            "fuse-loops",
            "sink-await",
            "migrate-ownership",
            "auto-place",
        ] {
            assert!(pass_by_name(name).is_some(), "{name}");
        }
        assert!(pass_by_name("bogus").is_none());
    }
}
