//! Simulation-driven parameter tuning.
//!
//! The paper leaves several knobs to the compiler — segment shape (§3.1),
//! strategy choice (owner-computes vs ownership migration, §2.2), receive
//! placement (§3.2) — and evaluates them by reasoning about the target
//! machine. With a deterministic machine simulator in hand, the compiler
//! can simply *measure*: build each candidate program, run it on the
//! virtual machine, and keep the fastest. This module packages that loop.

use crate::core::{KernelRegistry, RtError, SimConfig, SimExec};
use crate::ir::Program;
use std::sync::Arc;

/// One evaluated candidate.
#[derive(Clone, Debug)]
pub struct Candidate<T> {
    /// The candidate's parameter value.
    pub param: T,
    /// Simulated completion time.
    pub virtual_time: f64,
    /// Messages moved.
    pub messages: u64,
}

/// Outcome of a tuning sweep: the winner plus every evaluated row.
#[derive(Clone, Debug)]
pub struct TuneResult<T> {
    pub best: Candidate<T>,
    pub all: Vec<Candidate<T>>,
}

/// Build and simulate every candidate; return the fastest.
///
/// `build` maps a parameter to a ready-to-run program plus an initializer
/// (called with the fresh executor so candidates start from identical
/// data). Candidates whose programs fail at run time are skipped; if all
/// fail, the last error is returned.
pub fn tune<T: Clone>(
    params: &[T],
    kernels: KernelRegistry,
    cfg: &SimConfig,
    mut build: impl FnMut(&T) -> (Program, Box<dyn Fn(&mut SimExec)>),
) -> Result<TuneResult<T>, RtError> {
    let mut all = Vec::new();
    let mut last_err = None;
    for p in params {
        let (program, init) = build(p);
        let mut exec = SimExec::new(Arc::new(program), kernels.clone(), cfg.clone());
        init(&mut exec);
        match exec.run() {
            Ok(report) => all.push(Candidate {
                param: p.clone(),
                virtual_time: report.virtual_time,
                messages: report.net.messages,
            }),
            Err(e) => last_err = Some(e),
        }
    }
    match all
        .iter()
        .min_by(|a, b| a.virtual_time.partial_cmp(&b.virtual_time).unwrap())
        .cloned()
    {
        Some(best) => Ok(TuneResult { best, all }),
        None => {
            Err(last_err
                .unwrap_or_else(|| RtError::Deadlock("no tuning candidates supplied".into())))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdp_apps::fft3d::{build_chunked, cube_ordinal, input_cube, Fft3dConfig};
    use xdp_machine::CostModel;
    use xdp_runtime::Value;

    #[test]
    fn tunes_the_redistribution_segment_size() {
        // The E2 trade-off, resolved automatically: the tuner picks a
        // middle segment size, not the 1-element or whole-column extremes.
        let cfg = Fft3dConfig::new(8, 4);
        let input = input_cube(8, 7);
        let sim = SimConfig::new(4).with_cost(CostModel {
            alpha: 100.0,
            ..CostModel::default_1993()
        });
        let candidates = [1i64, 2, 4, 8];
        let result = tune(&candidates, xdp_apps::app_kernels(), &sim, |&chunk| {
            let (program, vars) = build_chunked(cfg, chunk);
            let input = input.clone();
            (
                program,
                Box::new(move |exec: &mut SimExec| {
                    exec.init_exclusive(vars.a, |idx| Value::C64(input[cube_ordinal(8, idx)]));
                }),
            )
        })
        .expect("tuning");
        assert_eq!(result.all.len(), candidates.len());
        // Monotone message counts across candidates; the winner is the
        // fastest of all rows.
        for c in &result.all {
            assert!(result.best.virtual_time <= c.virtual_time);
        }
        assert!(
            result.best.param >= 2,
            "1-element segments should not win: {:?}",
            result.all
        );
    }

    #[test]
    fn empty_candidates_is_an_error() {
        let sim = SimConfig::new(2);
        let r = tune(
            &[] as &[i64],
            xdp_core::KernelRegistry::standard(),
            &sim,
            |_| unreachable!(),
        );
        assert!(r.is_err());
    }
}
