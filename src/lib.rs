//! # xdp — Explicit Data Placement
//!
//! A complete, executable reproduction of **"Explicit Data Placement
//! (XDP): A Methodology for Explicit Compile-Time Representation and
//! Optimization of Data Movement"** (Bala, Ferrante & Carter, PPoPP 1993).
//!
//! XDP extends a compiler intermediate language with explicit data- and
//! ownership-transfer statements, compute rules, and a per-processor
//! run-time symbol table, so that data movement becomes an ordinary
//! optimization target. This workspace implements the whole stack:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`ir`] | IL+XDP: sections, HPF distributions, statements, intrinsics |
//! | [`runtime`] | the §3.1 run-time symbol table and segment descriptors |
//! | [`machine`] | a simulated multicomputer (cost model, topology, matcher) and a real threaded backend |
//! | [`collectives`] | collective algorithms as explicit message schedules; the redistribution planner |
//! | [`core`] | the operational semantics: SPMD interpreter + executors |
//! | [`compiler`] | owner-computes frontend and the paper's optimization passes |
//! | [`lang`] | parser for the paper's concrete notation |
//! | [`apps`] | 3-D FFT, stencils, task farms (the paper's workloads) |
//! | [`trace`] | end-to-end tracing and critical-path analysis |
//! | [`place`] | automatic data-placement search over the cost model |
//!
//! ## Quickstart
//!
//! ```
//! use xdp::prelude::*;
//! use std::sync::Arc;
//!
//! // Sequential source: do i = 1,16 { A[i] = A[i] + B[i] }, with A block-
//! // and B cyclic-distributed over 4 processors (deliberately misaligned).
//! let grid = ProcGrid::linear(4);
//! let mut seq = SeqProgram::new();
//! let a = seq.declare(build::array("A", ElemType::F64, vec![(1, 16)],
//!     vec![DimDist::Block], grid.clone()));
//! let b = seq.declare(build::array("B", ElemType::F64, vec![(1, 16)],
//!     vec![DimDist::Cyclic], grid));
//! let ai = build::sref(a, vec![build::at(build::iv("i"))]);
//! let bi = build::sref(b, vec![build::at(build::iv("i"))]);
//! seq.body = vec![SeqStmt::DoLoop {
//!     var: "i".into(), lo: build::c(1), hi: build::c(16),
//!     body: vec![SeqStmt::Assign {
//!         target: ai.clone(),
//!         rhs: build::val(ai).add(build::val(bi)),
//!     }],
//! }];
//!
//! // Naive owner-computes translation (§2.2), then the paper's passes.
//! let naive = lower_owner_computes(&seq, &FrontendOptions::default()).unwrap();
//! let (optimized, _log) = PassManager::paper_pipeline().run(&naive);
//!
//! // Execute both on the simulated machine; results agree, messages drop.
//! let run = |p: &Program| {
//!     let mut exec = SimExec::new(Arc::new(p.clone()),
//!         KernelRegistry::standard(), SimConfig::new(4));
//!     exec.init_exclusive(a, |idx| Value::F64(idx[0] as f64));
//!     exec.init_exclusive(b, |idx| Value::F64(10.0 * idx[0] as f64));
//!     let report = exec.run().unwrap();
//!     (exec.gather(a), report)
//! };
//! let (g_naive, r_naive) = run(&naive);
//! let (g_opt, r_opt) = run(&optimized);
//! for i in 1..=16 {
//!     assert_eq!(g_naive.get(&[i]), g_opt.get(&[i]));
//! }
//! assert!(r_opt.net.messages < r_naive.net.messages);
//! assert!(r_opt.virtual_time < r_naive.virtual_time);
//! ```

pub mod tuning;

pub use xdp_apps as apps;
pub use xdp_bench as bench;
pub use xdp_collectives as collectives;
pub use xdp_compiler as compiler;
pub use xdp_core as core;
pub use xdp_fault as fault;
pub use xdp_ir as ir;
pub use xdp_lang as lang;
pub use xdp_machine as machine;
pub use xdp_place as place;
pub use xdp_runtime as runtime;
pub use xdp_serve as serve;
pub use xdp_trace as trace;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    // `Strategy` stays out of the prelude: the name collides with
    // proptest's trait under double glob imports. Use
    // `collectives::Strategy` where the plan kind is matched on.
    pub use xdp_collectives::{CommSchedule, RedistPlan};
    pub use xdp_compiler::{
        lower_owner_computes, FrontendOptions, Pass, PassManager, PassResult, SeqProgram, SeqStmt,
    };
    pub use xdp_core::{
        AsyncConfig, AsyncExec, ExecReport, Gathered, Kernel, KernelRegistry, RtError, SimConfig,
        SimExec, ThreadConfig, ThreadExec,
    };
    pub use xdp_fault::{FaultPlan, FaultStats, LinkFault};
    pub use xdp_ir::build;
    pub use xdp_ir::{
        Block, BoolExpr, Decl, DimDist, Distribution, ElemExpr, ElemType, IntExpr, Ownership,
        ProcGrid, Program, Section, SectionRef, Stmt, TransferKind, Triplet, VarId,
    };
    pub use xdp_machine::{
        CostModel, Link, NetStats, SimNet, ThreadNet, Tier, Topology, TopologyError,
    };
    pub use xdp_place::{PlaceOptions, Placed, Placement};
    pub use xdp_runtime::{Buffer, Complex, RtSymbolTable, SegStatus, Value};
    pub use xdp_trace::{
        CompileTrace, CriticalPathReport, PassTrace, Trace, TraceConfig, TraceEvent, TraceKind,
        WaitCause,
    };
}
