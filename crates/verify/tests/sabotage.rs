//! End-to-end validation of the harness itself: plant a deliberate
//! miscompile in a pass pipeline and check that (a) the differential
//! driver names the sabotaged pass as the culprit, and (b) the shrinker
//! reduces the failure to a small `.xdp` repro.

use xdp_compiler::{Pass, PassResult};
use xdp_ir::{ElemExpr, Program, Stmt};
use xdp_verify::diff::check_passes_only;
use xdp_verify::fuzz::{check_and_shrink, narrowed};
use xdp_verify::gen::executable_program;
use xdp_verify::shrink::{shrink, stmt_count};
use xdp_verify::CheckConfig;

/// A miscompiling "optimization": nudges every float literal in an
/// assignment right-hand side by +0.25. Models a pass whose rewrite is
/// subtly wrong rather than crashing.
struct NudgeLiterals;

fn nudge(e: &ElemExpr) -> ElemExpr {
    match e {
        ElemExpr::LitF(c) => ElemExpr::LitF(c + 0.25),
        ElemExpr::Bin(op, a, b) => ElemExpr::Bin(*op, Box::new(nudge(a)), Box::new(nudge(b))),
        ElemExpr::Neg(a) => ElemExpr::Neg(Box::new(nudge(a))),
        other => other.clone(),
    }
}

fn nudge_block(body: &mut Vec<Stmt>) {
    for s in body {
        match s {
            Stmt::Assign { rhs, .. } => *rhs = nudge(rhs),
            Stmt::Guarded { body, .. } | Stmt::DoLoop { body, .. } => nudge_block(body),
            _ => {}
        }
    }
}

impl Pass for NudgeLiterals {
    fn name(&self) -> &'static str {
        "sabotage"
    }
    fn run(&self, p: &Program) -> PassResult {
        let mut out = p.clone();
        nudge_block(&mut out.body);
        PassResult {
            program: out,
            changed: true,
            notes: vec!["nudged float literals".into()],
        }
    }
}

fn sabotaged_pipeline() -> Vec<(&'static str, Box<dyn Pass>)> {
    let mut passes = xdp_verify::default_passes();
    passes.push(("sabotage", Box::new(NudgeLiterals)));
    passes
}

/// A seed whose program assigns through a float literal, so the sabotage
/// is observable.
fn vulnerable_seed() -> u64 {
    (0..50)
        .find(|&s| check_passes_only(&executable_program(s), &sabotaged_pipeline()).is_some())
        .expect("no seed in 0..50 exercises a float literal")
}

#[test]
fn the_sabotaged_pass_is_named_as_the_culprit() {
    let seed = vulnerable_seed();
    let d = check_passes_only(&executable_program(seed), &sabotaged_pipeline())
        .expect("sabotage must diverge");
    assert_eq!(d.key(), "pass:sabotage", "{d}");
    // The clean prefix of the pipeline is NOT blamed.
    assert!(
        check_passes_only(&executable_program(seed), &xdp_verify::default_passes()).is_none(),
        "clean pipeline must pass on seed {seed}"
    );
}

#[test]
fn the_shrinker_reduces_the_sabotage_to_a_small_repro() {
    let seed = vulnerable_seed();
    let tp = executable_program(seed);
    let before = stmt_count(&tp.program.body);
    let still_fails = |t: &xdp_verify::TestProgram| {
        check_passes_only(t, &sabotaged_pipeline())
            .map(|d| d.key() == "pass:sabotage")
            .unwrap_or(false)
    };
    assert!(still_fails(&tp));
    let out = shrink(&tp, 400, &still_fails);
    assert!(still_fails(&out.program), "shrunk program must still fail");
    assert!(
        out.stmts <= 15,
        "repro has {} statements (started at {before}):\n{}",
        out.stmts,
        xdp_ir::pretty::program(&out.program.program)
    );
    // The repro is still valid, parseable xdpc input.
    let text = xdp_verify::render_repro(&out.program, "note=sabotage");
    let reparsed = xdp_lang::parse_program(&text).expect("repro must reparse");
    assert_eq!(reparsed.body.len(), out.program.program.body.len());
}

/// The full fuzz-side path (`check_and_shrink`) on a *clean* pipeline
/// finds nothing across a few seeds — and `narrowed` keeps thread/chaos
/// out of pass-only rechecks.
#[test]
fn clean_pipeline_yields_no_failures() {
    for seed in [1u64, 2, 3] {
        let tp = executable_program(seed);
        let cfg = CheckConfig {
            thread: false,
            async_exec: false,
            vm: false,
            chaos: false,
            faults: None,
            passes: true,
            mem_budget: None,
        };
        assert!(check_and_shrink(&tp, &cfg, 50).is_none(), "seed {seed}");
    }
    let n = narrowed(&CheckConfig::default(), "pass:sabotage");
    assert!(n.passes && !n.thread && !n.chaos);
}
