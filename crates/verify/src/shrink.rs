//! Greedy structural shrinking.
//!
//! Given a failing [`TestProgram`] and a predicate that re-checks the
//! failure, [`shrink`] repeatedly applies reductions and keeps every one
//! the predicate survives, until a fixpoint (or the evaluation budget)
//! is reached:
//!
//! * **delete** a statement subtree (largest first);
//! * **splice** a `Guarded` block or a single-iteration `DoLoop` inline
//!   (loop variables are substituted with the lower bound);
//! * **reduce** a constant loop bound `hi` toward `lo` (jump straight to
//!   one iteration, else halve);
//! * **prune** trailing declarations no surviving statement references
//!   (earlier unused declarations are kept — `VarId`s are ordinals, so
//!   removing one would renumber every later reference).
//!
//! The predicate should pin the failure *kind* (e.g. the
//! [`crate::diff::Divergence::key`]) so shrinking cannot wander onto a
//! different bug: deleting a send but not its receive typically turns a
//! pass miscompile into a deadlock, which must count as "fixed".

use crate::gen::TestProgram;
use xdp_ir::{Block, BoolExpr, IntExpr, SectionRef, Stmt, VarId};

/// Default evaluation budget: each evaluation re-executes the program on
/// at least one backend, so keep this in the hundreds.
pub const DEFAULT_MAX_EVALS: usize = 400;

/// What [`shrink`] did.
#[derive(Clone, Debug)]
pub struct ShrinkResult {
    /// The smallest still-failing program found.
    pub program: TestProgram,
    /// Predicate evaluations spent.
    pub evals: usize,
    /// Statement count (preorder, all nesting levels) of the result.
    pub stmts: usize,
}

/// Total statement count of a block, all nesting levels.
pub fn stmt_count(body: &Block) -> usize {
    body.iter().map(|s| s.subtree_size()).sum()
}

/// Greedily minimize `tp` while `still_fails` holds. `still_fails` is
/// never called on `tp` itself — the caller asserts it is failing.
pub fn shrink(
    tp: &TestProgram,
    max_evals: usize,
    still_fails: &dyn Fn(&TestProgram) -> bool,
) -> ShrinkResult {
    let mut best = tp.clone();
    let mut evals = 0usize;

    // One reduction kind per round-robin sweep; repeat until a full
    // cycle of sweeps makes no progress.
    loop {
        let mut progress = false;
        progress |= sweep_delete(&mut best, max_evals, &mut evals, still_fails);
        progress |= sweep_loops(&mut best, max_evals, &mut evals, still_fails);
        progress |= sweep_splice(&mut best, max_evals, &mut evals, still_fails);
        if !progress || evals >= max_evals {
            break;
        }
    }
    prune_trailing_decls(&mut best.program);
    let stmts = stmt_count(&best.program.body);
    ShrinkResult {
        program: best,
        evals,
        stmts,
    }
}

/// A path into the nested statement tree: successive child indices,
/// descending through `Guarded`/`DoLoop` bodies.
type Path = Vec<usize>;

fn collect_paths(block: &Block, prefix: &mut Path, out: &mut Vec<(Path, usize)>) {
    for (i, s) in block.iter().enumerate() {
        prefix.push(i);
        out.push((prefix.clone(), s.subtree_size()));
        match s {
            Stmt::Guarded { body, .. } | Stmt::DoLoop { body, .. } => {
                collect_paths(body, prefix, out)
            }
            _ => {}
        }
        prefix.pop();
    }
}

/// All paths, largest subtree first (so whole templates go in one step).
fn paths_by_size(block: &Block) -> Vec<Path> {
    let mut out = Vec::new();
    collect_paths(block, &mut Vec::new(), &mut out);
    out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out.into_iter().map(|(p, _)| p).collect()
}

fn accept(
    best: &mut TestProgram,
    candidate: TestProgram,
    evals: &mut usize,
    still_fails: &dyn Fn(&TestProgram) -> bool,
) -> bool {
    *evals += 1;
    if still_fails(&candidate) {
        *best = candidate;
        true
    } else {
        false
    }
}

/// Try deleting each statement subtree, restarting after every success.
fn sweep_delete(
    best: &mut TestProgram,
    max_evals: usize,
    evals: &mut usize,
    still_fails: &dyn Fn(&TestProgram) -> bool,
) -> bool {
    let mut progress = false;
    'restart: loop {
        if *evals >= max_evals {
            return progress;
        }
        for path in paths_by_size(&best.program.body) {
            if *evals >= max_evals {
                return progress;
            }
            let mut cand = best.clone();
            if !remove_at(&mut cand.program.body, &path) {
                continue;
            }
            if accept(best, cand, evals, still_fails) {
                progress = true;
                continue 'restart;
            }
        }
        return progress;
    }
}

/// Try reducing every constant-bound loop: first to one iteration, then
/// by halving the trip count.
fn sweep_loops(
    best: &mut TestProgram,
    max_evals: usize,
    evals: &mut usize,
    still_fails: &dyn Fn(&TestProgram) -> bool,
) -> bool {
    let mut progress = false;
    'restart: loop {
        if *evals >= max_evals {
            return progress;
        }
        for path in paths_by_size(&best.program.body) {
            let Some((lo, hi)) = const_loop_bounds(&best.program.body, &path) else {
                continue;
            };
            if hi <= lo {
                continue;
            }
            for new_hi in [lo, lo + (hi - lo) / 2] {
                if new_hi >= hi || *evals >= max_evals {
                    continue;
                }
                let mut cand = best.clone();
                set_loop_hi(&mut cand.program.body, &path, new_hi);
                if accept(best, cand, evals, still_fails) {
                    progress = true;
                    continue 'restart;
                }
            }
        }
        return progress;
    }
}

/// Try replacing compounds with their bodies: any `Guarded`, and any
/// `DoLoop` whose bounds pin a single iteration.
fn sweep_splice(
    best: &mut TestProgram,
    max_evals: usize,
    evals: &mut usize,
    still_fails: &dyn Fn(&TestProgram) -> bool,
) -> bool {
    let mut progress = false;
    'restart: loop {
        if *evals >= max_evals {
            return progress;
        }
        for path in paths_by_size(&best.program.body) {
            if *evals >= max_evals {
                return progress;
            }
            let mut cand = best.clone();
            if !splice_at(&mut cand.program.body, &path) {
                continue;
            }
            if accept(best, cand, evals, still_fails) {
                progress = true;
                continue 'restart;
            }
        }
        return progress;
    }
}

fn remove_at(block: &mut Block, path: &[usize]) -> bool {
    let i = path[0];
    if i >= block.len() {
        return false;
    }
    if path.len() == 1 {
        block.remove(i);
        return true;
    }
    match &mut block[i] {
        Stmt::Guarded { body, .. } | Stmt::DoLoop { body, .. } => remove_at(body, &path[1..]),
        _ => false,
    }
}

fn const_loop_bounds(block: &Block, path: &[usize]) -> Option<(i64, i64)> {
    let i = path[0];
    match block.get(i)? {
        Stmt::DoLoop { lo, hi, body, .. } => {
            if path.len() == 1 {
                match (lo, hi) {
                    (IntExpr::Const(l), IntExpr::Const(h)) => Some((*l, *h)),
                    _ => None,
                }
            } else {
                const_loop_bounds(body, &path[1..])
            }
        }
        Stmt::Guarded { body, .. } if path.len() > 1 => const_loop_bounds(body, &path[1..]),
        _ => None,
    }
}

fn set_loop_hi(block: &mut Block, path: &[usize], new_hi: i64) {
    let i = path[0];
    let Some(s) = block.get_mut(i) else { return };
    match s {
        Stmt::DoLoop { hi, body, .. } => {
            if path.len() == 1 {
                *hi = IntExpr::Const(new_hi);
            } else {
                set_loop_hi(body, &path[1..], new_hi);
            }
        }
        Stmt::Guarded { body, .. } if path.len() > 1 => set_loop_hi(body, &path[1..], new_hi),
        _ => {}
    }
}

fn splice_at(block: &mut Block, path: &[usize]) -> bool {
    let i = path[0];
    if i >= block.len() {
        return false;
    }
    if path.len() > 1 {
        return match &mut block[i] {
            Stmt::Guarded { body, .. } | Stmt::DoLoop { body, .. } => splice_at(body, &path[1..]),
            _ => false,
        };
    }
    let inner: Block = match &block[i] {
        Stmt::Guarded { body, .. } => body.clone(),
        Stmt::DoLoop {
            var,
            lo: IntExpr::Const(l),
            hi: IntExpr::Const(h),
            step: IntExpr::Const(1),
            body,
        } if l == h => {
            let lo = IntExpr::Const(*l);
            body.iter().map(|s| subst_stmt(s, var, &lo)).collect()
        }
        _ => return false,
    };
    block.splice(i..i + 1, inner);
    true
}

/// Substitute an integer variable throughout a statement subtree
/// (stopping at an inner loop that rebinds the same name).
pub fn subst_stmt(s: &Stmt, name: &str, repl: &IntExpr) -> Stmt {
    match s {
        Stmt::Assign { target, rhs } => Stmt::Assign {
            target: target.subst(name, repl),
            rhs: rhs.subst(name, repl),
        },
        Stmt::ScalarAssign { var, value } => Stmt::ScalarAssign {
            var: var.clone(),
            value: value.subst(name, repl),
        },
        Stmt::Kernel {
            name: kname,
            args,
            int_args,
        } => Stmt::Kernel {
            name: kname.clone(),
            args: args.iter().map(|a| a.subst(name, repl)).collect(),
            int_args: int_args.iter().map(|a| a.subst(name, repl)).collect(),
        },
        Stmt::Send {
            sec,
            kind,
            dest,
            salt,
        } => Stmt::Send {
            sec: sec.subst(name, repl),
            kind: *kind,
            dest: match dest {
                xdp_ir::DestSet::Unspecified => xdp_ir::DestSet::Unspecified,
                xdp_ir::DestSet::Pids(ps) => {
                    xdp_ir::DestSet::Pids(ps.iter().map(|p| p.subst(name, repl)).collect())
                }
            },
            salt: salt.as_ref().map(|e| e.subst(name, repl)),
        },
        Stmt::Recv {
            target,
            kind,
            name: rname,
            salt,
        } => Stmt::Recv {
            target: target.subst(name, repl),
            kind: *kind,
            name: rname.as_ref().map(|n| n.subst(name, repl)),
            salt: salt.as_ref().map(|e| e.subst(name, repl)),
        },
        Stmt::Guarded { rule, body } => Stmt::Guarded {
            rule: rule.subst(name, repl),
            body: body.iter().map(|c| subst_stmt(c, name, repl)).collect(),
        },
        Stmt::DoLoop {
            var,
            lo,
            hi,
            step,
            body,
        } => {
            // Bounds are evaluated in the enclosing scope; the body sees
            // the inner binding if the loop shadows `name`.
            let body = if var == name {
                body.clone()
            } else {
                body.iter().map(|c| subst_stmt(c, name, repl)).collect()
            };
            Stmt::DoLoop {
                var: var.clone(),
                lo: lo.subst(name, repl),
                hi: hi.subst(name, repl),
                step: step.subst(name, repl),
                body,
            }
        }
        Stmt::Barrier | Stmt::Redistribute { .. } => s.clone(),
    }
}

/// Drop declarations from the end of the declaration list that no
/// statement references. Only trailing ones: `VarId`s are ordinals.
pub fn prune_trailing_decls(p: &mut xdp_ir::Program) {
    let mut touched: Vec<VarId> = Vec::new();
    p.visit(&mut |s| {
        let mut mark = |r: &SectionRef| touched.push(r.var);
        match s {
            Stmt::Assign { target, rhs } => {
                mark(target);
                for r in rhs.refs() {
                    mark(r);
                }
            }
            Stmt::Kernel { args, .. } => args.iter().for_each(mark),
            Stmt::Send { sec, .. } => mark(sec),
            Stmt::Recv { target, name, .. } => {
                mark(target);
                if let Some(n) = name {
                    mark(n);
                }
            }
            Stmt::Guarded { rule, .. } => {
                let mut stack = vec![rule];
                while let Some(r) = stack.pop() {
                    match r {
                        BoolExpr::Iown(x) | BoolExpr::Accessible(x) | BoolExpr::Await(x) => mark(x),
                        BoolExpr::And(a, b) | BoolExpr::Or(a, b) => {
                            stack.push(a);
                            stack.push(b);
                        }
                        BoolExpr::Not(a) => stack.push(a),
                        _ => {}
                    }
                }
            }
            Stmt::Redistribute { var, .. } => touched.push(*var),
            _ => {}
        }
    });
    let mut used = vec![false; p.decls.len()];
    for v in touched {
        if let Some(u) = used.get_mut(v.0 as usize) {
            *u = true;
        }
    }
    while let Some(last) = used.last() {
        if *last {
            break;
        }
        used.pop();
        p.decls.pop();
    }
    // Keep VarId invariants honest in debug builds.
    debug_assert!(p
        .decls
        .iter()
        .enumerate()
        .all(|(i, _)| VarId(i as u32).0 as usize == i));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::executable_program;
    use xdp_ir::build as b;

    /// Shrinking with a syntactic predicate ("contains a send with salt
    /// 777") must strip everything else away.
    #[test]
    fn shrinks_to_the_marked_statement() {
        let mut tp = executable_program(3);
        let marker = b::send_salted(b::sref(VarId(0), vec![b::at(b::c(1))]), b::c(777));
        tp.program.body.insert(2, marker);
        let has_marker = |t: &TestProgram| {
            let mut found = false;
            t.program.visit(&mut |s| {
                if let Stmt::Send {
                    salt: Some(IntExpr::Const(777)),
                    ..
                } = s
                {
                    found = true;
                }
            });
            found
        };
        assert!(has_marker(&tp));
        let out = shrink(&tp, DEFAULT_MAX_EVALS, &has_marker);
        assert!(has_marker(&out.program));
        assert_eq!(
            out.stmts,
            1,
            "got:\n{}",
            xdp_ir::pretty::program(&out.program.program)
        );
        assert_eq!(out.program.program.decls.len(), 1);
    }

    #[test]
    fn splice_substitutes_single_iteration_loops() {
        let xi = b::sref(VarId(0), vec![b::at(b::iv("i"))]);
        let mut block = vec![b::do_loop(
            "i",
            b::c(3),
            b::c(3),
            vec![b::assign(xi.clone(), b::val(xi))],
        )];
        assert!(splice_at(&mut block, &[0]));
        assert_eq!(block.len(), 1);
        match &block[0] {
            Stmt::Assign { target, .. } => {
                assert_eq!(target.subs.len(), 1);
                let txt = format!("{target:?}");
                assert!(txt.contains("Const(3)"), "{txt}");
            }
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn prune_drops_only_trailing_unused_decls() {
        let tp = executable_program(9);
        let mut p = tp.program.clone();
        let before = p.decls.len();
        p.body.clear();
        prune_trailing_decls(&mut p);
        assert!(p.decls.is_empty(), "{} of {before} left", p.decls.len());
    }

    #[test]
    fn stmt_count_counts_nested() {
        let xi = b::sref(VarId(0), vec![b::at(b::iv("i"))]);
        let body = vec![b::do_loop(
            "i",
            b::c(1),
            b::c(2),
            vec![b::guarded(
                b::iown(xi.clone()),
                vec![b::assign(xi.clone(), b::val(xi))],
            )],
        )];
        assert_eq!(stmt_count(&body), 3);
    }
}
