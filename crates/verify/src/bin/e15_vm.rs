//! E15 — the bytecode VM vs the tree-walking interpreter.
//!
//! Part one is the performance claim: on communication-free local
//! compute (the regime bytecode compilation targets), the VM must be at
//! least **10x** faster than the interpreter at realistic volumes. Each
//! leg runs `do t = 1, sweeps { mine = mine + mine }` over a
//! block-distributed array on both backends and reports the wall-clock
//! ratio; the floor is asserted on the n >= 4096 legs. The small leg is
//! reported unasserted — at tiny volumes per-element work no longer
//! dominates and the ratio is machine-noise territory.
//!
//! Part two is the conformance claim the speedup is worthless without:
//! over a sweep of generated message-passing programs, the VM's
//! [`xdp_verify::Fingerprint`] — memory image, movement multiset,
//! section states, message count — must equal the interpreter's exactly
//! on the simulated machine (clean *and* under a lossy fault plan), and
//! match on everything timing-free on the threaded machine.
//!
//! The summary appends one row (experiment `e15-vm`) to the
//! `BENCH_serve.json` trajectory, so `bench_check` gates VM latency and
//! throughput regressions beyond 25% exactly as it gates the serving
//! benchmarks.
//!
//! Expected shape: speedup well above the 10x floor on the big legs
//! (about 27x at n=4096 on a dev box), zero conformance failures.

use serde_json::{Map, Value as Json};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;
use xdp_bench::table::{j, Table};
use xdp_bench::trajectory;
use xdp_core::{KernelRegistry, Processor, SimConfig, SimExec, ThreadConfig, ThreadExec};
use xdp_fault::{FaultPlan, LinkFault};
use xdp_ir::build as b;
use xdp_ir::{DimDist, ElemType, ProcGrid, Program, VarId};
use xdp_runtime::Value;
use xdp_verify::diff::{run_sim, run_vm};
use xdp_verify::gen::executable_program;
use xdp_verify::Fingerprint;
use xdp_vm::VmExec;

const NPROCS: usize = 4;
/// Wall-clock repetitions per leg; the minimum is reported.
const REPS: usize = 5;
/// The asserted floor on the large legs.
const FLOOR: f64 = 10.0;
/// Generated programs in the conformance sweep.
const CONFORMANCE_COUNT: u64 = 12;

/// `do t = 1, sweeps { mine = mine + mine }` over a block-distributed
/// array: every statement is local compute.
fn local_sweeps(n: i64, sweeps: i64) -> (Arc<Program>, VarId) {
    let mut p = Program::new();
    let a = p.declare(b::array(
        "A",
        ElemType::F64,
        vec![(1, n)],
        vec![DimDist::Block],
        ProcGrid::linear(NPROCS),
    ));
    let all = b::sref(a, vec![b::all()]);
    let mine = b::sref(a, vec![b::span(b::mylb(all.clone(), 1), b::myub(all, 1))]);
    p.body = vec![b::do_loop(
        "t",
        b::c(1),
        b::c(sweeps),
        vec![b::assign(
            mine.clone(),
            b::val(mine.clone()).add(b::val(mine)),
        )],
    )];
    (Arc::new(p), a)
}

/// Minimum wall seconds over `REPS` runs of `f` (after one warmup).
fn min_wall(mut f: impl FnMut()) -> f64 {
    f();
    (0..REPS)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn interp_leg(p: &Arc<Program>, a: VarId) -> f64 {
    min_wall(|| {
        let mut exec = SimExec::new(
            p.clone(),
            KernelRegistry::standard(),
            SimConfig::new(NPROCS),
        );
        exec.init_exclusive(a, |idx| Value::F64(idx[0] as f64));
        exec.run().unwrap();
    })
}

fn vm_leg(p: &Arc<Program>, a: VarId) -> f64 {
    min_wall(|| {
        let mut exec = VmExec::sim(
            p.clone(),
            KernelRegistry::standard(),
            SimConfig::new(NPROCS),
        );
        exec.init_exclusive(a, |idx| Value::F64(idx[0] as f64));
        exec.run().unwrap();
    })
}

/// The lossy plan for the faulted conformance sweep: 10% drop plus
/// duplicates, reordering, and delays.
fn chaos(seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::uniform(
        seed,
        LinkFault {
            drop: 0.10,
            dup: 0.10,
            reorder: 0.25,
            delay_p: 0.20,
            delay: 120.0,
        },
    );
    plan.rto = 500.0;
    plan
}

/// Same deterministic init `xdp_verify::diff` uses for its oracles.
fn init_value(o: usize, idx: &[i64]) -> Value {
    let mut v = (o as i64 + 1) * 1000;
    for (k, x) in idx.iter().enumerate() {
        v += x * (k as i64 + 1);
    }
    Value::F64(v as f64)
}

/// Fingerprint one threaded run of `p` on whichever backend built `exec`.
fn fp_thread<P: Processor>(mut exec: ThreadExec<P>, p: &Program) -> Result<Fingerprint, String> {
    for (o, _) in p.decls.iter().enumerate() {
        exec.init_exclusive(VarId(o as u32), move |idx| init_value(o, idx));
    }
    let report = exec.run().map_err(|e| e.to_string())?;
    let mut fp = Fingerprint::default();
    for (o, d) in p.decls.iter().enumerate() {
        fp.record_memory(&d.name, &exec.gather(VarId(o as u32)));
    }
    fp.record_trace(&report.trace);
    fp.messages = report.net.messages;
    Ok(fp)
}

fn main() {
    let mut failures = 0usize;

    // Part one: the speedup table, floors asserted on the big legs.
    let legs: &[(i64, i64)] = &[(256, 64), (1024, 64), (4096, 64), (16384, 32)];
    let mut t = Table::new(
        "E15: compiled VM vs interpreter, local compute (4 procs)",
        &[
            "n",
            "sweeps",
            "interp_ms",
            "vm_ms",
            "speedup",
            "floor",
            "ok",
        ],
    );
    let mut big_leg_vm_us = 0.0f64;
    for &(n, sweeps) in legs {
        let (p, a) = local_sweeps(n, sweeps);
        let interp_s = interp_leg(&p, a);
        let vm_s = vm_leg(&p, a);
        let speedup = interp_s / vm_s;
        let floored = n >= 4096;
        let ok = !floored || speedup >= FLOOR;
        if !ok {
            eprintln!("e15: n={n}: speedup {speedup:.1}x below the {FLOOR:.0}x floor");
            failures += 1;
        }
        if floored {
            big_leg_vm_us = big_leg_vm_us.max(vm_s * 1e6);
        }
        t.row(&[
            j::i(n),
            j::i(sweeps),
            j::f(interp_s * 1e3),
            j::f(vm_s * 1e3),
            j::f(speedup),
            j::s(if floored { ">=10x" } else { "-" }),
            j::s(if ok { "yes" } else { "NO" }),
        ]);
    }
    t.print();

    // Part two: fingerprint conformance over generated message-passing
    // programs — simulated machine clean and faulted (exact, including
    // section states and error text), threaded machine (timing-free).
    let mut t2 = Table::new(
        "E15: VM conformance (generated programs, 4 procs)",
        &["oracle", "programs", "failures"],
    );
    let (mut sim_fail, mut faulted_fail, mut thread_fail) = (0usize, 0usize, 0usize);
    for k in 0..CONFORMANCE_COUNT {
        let tp = executable_program(100 + k);
        let p = Arc::new(tp.program.clone());
        if run_sim(&p, tp.nprocs, None) != run_vm(&p, tp.nprocs, None) {
            eprintln!("e15: seed {}: sim fingerprint diverged", tp.seed);
            sim_fail += 1;
        }
        let plan = chaos(300 + k);
        if run_sim(&p, tp.nprocs, Some(&plan)) != run_vm(&p, tp.nprocs, Some(&plan)) {
            eprintln!("e15: seed {}: faulted fingerprint diverged", tp.seed);
            faulted_fail += 1;
        }
        let cfg = ThreadConfig::new(tp.nprocs).with_trace(xdp_trace::TraceConfig::full());
        let ti = fp_thread(
            ThreadExec::new(p.clone(), KernelRegistry::standard(), cfg.clone()),
            &p,
        );
        let tv = fp_thread(
            VmExec::threads(p.clone(), KernelRegistry::standard(), cfg),
            &p,
        );
        let same = match (&ti, &tv) {
            (Ok(a), Ok(v)) => {
                a.memory == v.memory && a.movement == v.movement && a.messages == v.messages
            }
            (Err(_), Err(_)) => true,
            _ => false,
        };
        if !same {
            eprintln!("e15: seed {}: threaded fingerprint diverged", tp.seed);
            thread_fail += 1;
        }
    }
    for (oracle, fail) in [
        ("sim exact", sim_fail),
        ("sim + faults exact", faulted_fail),
        ("threads timing-free", thread_fail),
    ] {
        t2.row(&[j::s(oracle), j::u(CONFORMANCE_COUNT), j::u(fail as u64)]);
        failures += fail;
    }
    t2.print();

    // One trajectory row so bench_check gates VM performance run to run:
    // throughput and latency of the largest asserted leg.
    let out_path = std::env::args()
        .skip_while(|a| a != "--out")
        .nth(1)
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let mut latency = Map::new();
    latency.insert("p50".into(), Json::from(big_leg_vm_us.round() as u64));
    latency.insert("p99".into(), Json::from(big_leg_vm_us.round() as u64));
    let mut row = Map::new();
    row.insert("experiment".into(), Json::from("e15-vm"));
    row.insert(
        "unix_ms".into(),
        Json::from(
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
        ),
    );
    row.insert(
        "runs_per_sec".into(),
        Json::from(if big_leg_vm_us > 0.0 {
            1e6 / big_leg_vm_us
        } else {
            0.0
        }),
    );
    row.insert("latency_us".into(), Json::Object(latency));
    row.insert(
        "conformance_failures".into(),
        Json::from((sim_fail + faulted_fail + thread_fail) as u64),
    );
    match trajectory::append(Path::new(&out_path), Json::Object(row)) {
        Ok(runs) => println!("appended run {runs} to {out_path}"),
        Err(e) => {
            eprintln!("e15: {e}");
            failures += 1;
        }
    }

    if failures > 0 {
        eprintln!("e15: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("e15: ok");
}
