//! E12 — differential fuzzing of executors and passes.
//!
//! Part one sweeps generated executable programs through the oracle
//! stack one stage at a time — simulator vs lockstep, plus the threaded
//! backend, plus per-pass prefix equivalence, plus chaos (faulty vs
//! lossless) — and reports the per-program cost of each oracle. Every
//! row is a conformance statement: zero failures expected, and the
//! binary exits nonzero otherwise.
//!
//! Part two validates the harness itself end to end: a deliberately
//! miscompiling pass ("sabotage", nudges float literals by +0.25) is
//! appended to the real pipeline; the driver must name it — not a clean
//! pass — as the culprit, and the shrinker must reduce the divergence to
//! a minimal `.xdp` repro (the acceptance bar is ≤ 15 statements).
//!
//! Expected shape: failures 0 across the sweep; oracle cost grows from
//! the two-executor baseline (the threaded backend pays thread spawn +
//! real message latency, chaos pays a second faulty run per program);
//! the planted bug shrinks from a few dozen statements to a handful.

use std::time::Instant;
use xdp_bench::table::j;
use xdp_bench::Table;
use xdp_compiler::{Pass, PassResult};
use xdp_ir::{ElemExpr, Program, Stmt};
use xdp_verify::diff::check_passes_only;
use xdp_verify::fuzz::run_fuzz;
use xdp_verify::gen::executable_program;
use xdp_verify::shrink::{shrink, stmt_count};
use xdp_verify::{CheckConfig, FuzzConfig, TestProgram};

/// Programs per oracle row. Bounded so `make e12` stays a smoke-scale
/// run; `xdpc fuzz --count N` is the open-ended entry point.
const COUNT: usize = 100;
const SEED: u64 = 7;

/// The deliberate miscompile: every float literal in an assignment
/// right-hand side drifts by +0.25. Subtly wrong, never crashing —
/// exactly the failure mode the differential oracle exists for.
struct NudgeLiterals;

fn nudge(e: &ElemExpr) -> ElemExpr {
    match e {
        ElemExpr::LitF(c) => ElemExpr::LitF(c + 0.25),
        ElemExpr::Bin(op, a, b) => ElemExpr::Bin(*op, Box::new(nudge(a)), Box::new(nudge(b))),
        ElemExpr::Neg(a) => ElemExpr::Neg(Box::new(nudge(a))),
        other => other.clone(),
    }
}

fn nudge_block(body: &mut Vec<Stmt>) {
    for s in body {
        match s {
            Stmt::Assign { rhs, .. } => *rhs = nudge(rhs),
            Stmt::Guarded { body, .. } | Stmt::DoLoop { body, .. } => nudge_block(body),
            _ => {}
        }
    }
}

impl Pass for NudgeLiterals {
    fn name(&self) -> &'static str {
        "sabotage"
    }
    fn run(&self, p: &Program) -> PassResult {
        let mut out = p.clone();
        nudge_block(&mut out.body);
        PassResult {
            program: out,
            changed: true,
            notes: vec!["nudged float literals".into()],
        }
    }
}

fn sabotaged_pipeline() -> Vec<(&'static str, Box<dyn Pass>)> {
    let mut passes = xdp_verify::default_passes();
    passes.push(("sabotage", Box::new(NudgeLiterals)));
    passes
}

fn main() {
    // Divergences are reported through the oracle, not the panic hook —
    // keep expected catch_unwind noise off stderr.
    std::panic::set_hook(Box::new(|_| {}));
    let mut failures = 0usize;

    // Average generated-program size, for scale.
    let avg_stmts = (0..COUNT as u64)
        .map(|k| stmt_count(&executable_program(SEED.wrapping_add(k)).program.body))
        .sum::<usize>() as f64
        / COUNT as f64;

    let stages: &[(&str, CheckConfig)] = &[
        (
            "sim+lockstep",
            CheckConfig {
                thread: false,
                async_exec: false,
                vm: false,
                chaos: false,
                faults: None,
                passes: false,
                mem_budget: None,
            },
        ),
        (
            "+vm",
            CheckConfig {
                thread: false,
                async_exec: false,
                vm: true,
                chaos: false,
                faults: None,
                passes: false,
                mem_budget: None,
            },
        ),
        (
            "+thread",
            CheckConfig {
                thread: true,
                async_exec: false,
                vm: true,
                chaos: false,
                faults: None,
                passes: false,
                mem_budget: None,
            },
        ),
        (
            "+async",
            CheckConfig {
                thread: true,
                async_exec: true,
                vm: true,
                chaos: false,
                faults: None,
                passes: false,
                mem_budget: None,
            },
        ),
        (
            "+passes",
            CheckConfig {
                thread: true,
                async_exec: true,
                vm: true,
                chaos: false,
                faults: None,
                passes: true,
                mem_budget: None,
            },
        ),
        (
            "+chaos",
            CheckConfig {
                thread: true,
                async_exec: true,
                vm: true,
                chaos: true,
                faults: None,
                passes: true,
                mem_budget: None,
            },
        ),
    ];

    let mut t = Table::new(
        "E12: differential fuzz sweep (generated programs, 4 procs)",
        &[
            "oracles",
            "programs",
            "avg-stmts",
            "failures",
            "ms",
            "ms/prog",
        ],
    );
    for (label, check) in stages {
        let cfg = FuzzConfig {
            count: COUNT,
            seed: SEED,
            check: check.clone(),
            max_failures: 0,
            ..FuzzConfig::default()
        };
        let t0 = Instant::now();
        let report = run_fuzz(&cfg, &mut |_, _| {});
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        for f in &report.failures {
            eprintln!("e12: seed {} diverged [{}]: {}", f.seed, f.key, f.detail);
        }
        failures += report.failures.len();
        t.row(&[
            j::s(label),
            j::u(report.checked as u64),
            j::f(avg_stmts),
            j::u(report.failures.len() as u64),
            j::f(ms),
            j::f(ms / report.checked.max(1) as f64),
        ]);
    }
    t.print();

    // Part two: the harness must catch and minimize a planted miscompile.
    let mut t2 = Table::new(
        "E12: planted miscompile ('sabotage' nudges float literals by +0.25)",
        &[
            "seed",
            "culprit",
            "stmts-before",
            "stmts-after",
            "evals",
            "repro<=15",
        ],
    );
    let seed = (0..50)
        .find(|&s| check_passes_only(&executable_program(s), &sabotaged_pipeline()).is_some());
    match seed {
        None => {
            eprintln!("e12: no seed in 0..50 exposes the planted miscompile");
            failures += 1;
        }
        Some(seed) => {
            let tp = executable_program(seed);
            let d = check_passes_only(&tp, &sabotaged_pipeline()).expect("seed was vulnerable");
            let culprit = d.key();
            if culprit != "pass:sabotage" {
                eprintln!("e12: wrong culprit: {culprit} (expected pass:sabotage)");
                failures += 1;
            }
            let still_fails = |t: &TestProgram| {
                check_passes_only(t, &sabotaged_pipeline())
                    .map(|d2| d2.key() == "pass:sabotage")
                    .unwrap_or(false)
            };
            let before = stmt_count(&tp.program.body);
            let out = shrink(&tp, 400, &still_fails);
            let small = out.stmts <= 15;
            if !small || !still_fails(&out.program) {
                eprintln!(
                    "e12: shrink failed: {} statements, started at {before}",
                    out.stmts
                );
                failures += 1;
            }
            t2.row(&[
                j::u(seed),
                j::s(&culprit),
                j::u(before as u64),
                j::u(out.stmts as u64),
                j::u(out.evals as u64),
                j::s(if small { "yes" } else { "NO" }),
            ]);
            t2.print();
            println!("-- minimized repro --");
            print!(
                "{}",
                xdp_verify::render_repro(&out.program, "key=pass:sabotage")
            );
        }
    }

    if failures > 0 {
        let _ = std::panic::take_hook();
        eprintln!("e12: {failures} failure(s)");
        std::process::exit(1);
    }
}
