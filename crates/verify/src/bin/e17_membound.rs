//! E17 — memory-bounded redistribution: the planner's peak-bytes
//! dimension at scale, and measured high-water marks under `mem_budget`.
//!
//! Part one sweeps the transpose repartition `(*,BLOCK) -> (BLOCK,*)` —
//! the worst case for redistribution staging memory — at P = 64, 256,
//! and 1024. At every size the budget-aware catalog must produce a
//! non-empty dominated-free time/memory Pareto frontier whose extremes
//! are at least 2x apart in peak bytes; every frontier point, used as a
//! budget, must select a plan that fits it; an impossible budget must
//! fail naming the smallest feasible budget, which must then actually
//! work; and budget-free planning must remain the historical two-entry
//! candidate set with unsynchronized lowering.
//!
//! Part two runs programs and *measures*: the network layer's
//! redistribution high-water mark (live staged bytes under the salted
//! redistribution tags) on the interpreter and the compiled VM must be
//! positive, never exceed the planner's predicted peak, and show the
//! unbounded-vs-bounded gap end to end — an unbudgeted P=64 transpose
//! stages at least 2x the bytes of the same transpose under the
//! smallest feasible budget. The `membound.xdp` corpus program then
//! runs under a budget chosen to make its incommensurate reblock take a
//! K-round dynamic-slice chain, the decomposition that trades rounds
//! for a smaller footprint.
//!
//! The frontier sweep is written to `membound-pareto.json`
//! (`--pareto-out`) and one `e17-membound` row is appended to the
//! `BENCH_serve.json` trajectory (`--out`), so `bench_check` gates the
//! measured legs' wall time run to run.

use serde_json::{Map, Value as Json};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;
use xdp_bench::table::{j, Table};
use xdp_bench::trajectory;
use xdp_collectives::{plan, try_plan, FrontierPoint, PlanError, Strategy};
use xdp_compiler::{compile, CompileOptions, SeqMode};
use xdp_core::{KernelRegistry, Processor, SimConfig, SimExec};
use xdp_ir::build as b;
use xdp_ir::{
    Decl, DimDist, Distribution, ElemType, ProcGrid, Program, Section, Stmt, Triplet, VarId,
};
use xdp_machine::{CostModel, Topology};
use xdp_runtime::Value;
use xdp_vm::VmExec;

/// Planner sweep sizes (square N=P transposes).
const SWEEP: &[usize] = &[64, 256, 1024];
/// The measured legs' machine size.
const MEASURED_P: usize = 64;

/// The transpose instance at P processors: `T[1:P,1:P]` from
/// column-blocked to row-blocked, f64 elements.
fn transpose(p: usize) -> (Vec<Triplet>, Distribution, Distribution) {
    let n = p as i64;
    let bounds = vec![Triplet::range(1, n), Triplet::range(1, n)];
    let grid = ProcGrid::linear(p);
    let src = Distribution::new(vec![DimDist::Star, DimDist::Block], grid.clone());
    let dst = Distribution::new(vec![DimDist::Block, DimDist::Star], grid);
    (bounds, src, dst)
}

/// A frontier as a JSON array of (strategy, predicted, peak, chosen).
fn frontier_json(frontier: &[FrontierPoint]) -> Json {
    Json::Array(
        frontier
            .iter()
            .map(|f| {
                let mut m = Map::new();
                m.insert("strategy".into(), Json::from(f.strategy.to_string()));
                m.insert("predicted".into(), Json::from(f.predicted));
                m.insert("peak_bytes".into(), Json::from(f.peak_bytes));
                m.insert("chosen".into(), Json::from(f.chosen));
                Json::Object(m)
            })
            .collect(),
    )
}

fn dominated_free(frontier: &[FrontierPoint]) -> bool {
    frontier.iter().all(|a| {
        frontier.iter().all(|b| {
            !((a.predicted <= b.predicted && a.peak_bytes < b.peak_bytes)
                || (a.predicted < b.predicted && a.peak_bytes <= b.peak_bytes))
        })
    })
}

/// An executable transpose program: one array, one redistribute.
fn transpose_program(p: usize) -> Program {
    let n = p as i64;
    let grid = ProcGrid::linear(p);
    let mut prog = Program::new();
    let t = prog.declare(b::array(
        "T",
        ElemType::F64,
        vec![(1, n), (1, n)],
        vec![DimDist::Star, DimDist::Block],
        grid.clone(),
    ));
    prog.body = vec![b::redistribute(
        t,
        Distribution::new(vec![DimDist::Block, DimDist::Star], grid),
    )];
    prog
}

/// The planner's peak bound for a whole program: re-derive each
/// redistribute's plan as the runtime does (tracking the current
/// distribution per array) and sum the peaks.
fn predicted_peak(p: &Program, cost: &CostModel, topo: &Topology) -> u64 {
    let mut cur: std::collections::HashMap<VarId, Distribution> = std::collections::HashMap::new();
    let mut total = 0u64;
    p.visit(&mut |s| {
        let Stmt::Redistribute { var, dist } = s else {
            return;
        };
        let decl = p.decl(*var);
        let src = cur
            .get(var)
            .or(decl.dist.as_ref())
            .cloned()
            .expect("redistributed array is distributed");
        cur.insert(*var, dist.clone());
        total += plan(
            *var,
            &decl.bounds,
            decl.elem.size_bytes(),
            &src,
            dist,
            cost,
            topo,
            true,
        )
        .peak_bytes;
    });
    total
}

/// Deterministic per-element init, as the conformance suites use.
fn init<P: Processor>(exec: &mut SimExec<P>, decls: &[Decl]) {
    for (i, d) in decls.iter().enumerate() {
        if d.is_exclusive() {
            let full = Section::new(d.bounds.clone());
            exec.init_exclusive(VarId(i as u32), move |idx| {
                Value::F64((full.ordinal_of(idx).unwrap_or(0) + 1) as f64)
            });
        }
    }
}

/// Run a program under `cfg` and return the measured redistribution
/// high-water mark (bytes) and the wall time (seconds).
fn measure<P: Processor>(label: &str, mut exec: SimExec<P>, decls: &[Decl]) -> (u64, f64) {
    init(&mut exec, decls);
    let t0 = Instant::now();
    let report = exec.run().unwrap_or_else(|e| panic!("{label}: {e}"));
    (report.net.redist_peak_bytes, t0.elapsed().as_secs_f64())
}

fn main() {
    let mut failures = 0usize;
    let v = VarId(0);
    let base = CostModel::default_1993();
    let topo = Topology::Uniform;

    // Part one: the planner sweep. Budget probes re-enumerate the whole
    // catalog, so the per-point replay runs at the small sizes and the
    // P=1024 leg keeps to three catalog builds.
    let mut sweep_rows: Vec<Json> = Vec::new();
    let mut t1 = Table::new(
        "E17: transpose (*,BLOCK)->(BLOCK,*) Pareto frontier at scale",
        &[
            "nprocs",
            "frontier",
            "fastest",
            "peak_B",
            "slimmest",
            "peak_B",
            "smallest_feasible_B",
        ],
    );
    for &p in SWEEP {
        let (bounds, src, dst) = transpose(p);
        // Budget-free planning stays the historical candidate set.
        let free = plan(v, &bounds, 8, &src, &dst, &base, &topo, true);
        if free.synchronized
            || free.alternatives.len() > 2
            || !matches!(
                free.strategy,
                Strategy::DirectPairwise | Strategy::StagedBruck
            )
        {
            eprintln!("e17: P={p}: budget-free planning changed shape");
            failures += 1;
        }
        // The full catalog under an unlimited budget.
        let full = try_plan(
            v,
            &bounds,
            8,
            &src,
            &dst,
            &base.with_mem_budget(u64::MAX),
            &topo,
            true,
        )
        .expect("unlimited budget always fits");
        let fr = &full.frontier;
        if fr.is_empty() || fr.iter().filter(|f| f.chosen).count() != 1 || !dominated_free(fr) {
            eprintln!("e17: P={p}: frontier empty, multi-chosen, or dominated");
            failures += 1;
        }
        let fastest = fr.iter().max_by_key(|f| f.peak_bytes).expect("non-empty");
        let slimmest = fr.iter().min_by_key(|f| f.peak_bytes).expect("non-empty");
        if fastest.peak_bytes < 2 * slimmest.peak_bytes {
            eprintln!(
                "e17: P={p}: frontier extremes too close: {} vs {} B",
                fastest.peak_bytes, slimmest.peak_bytes
            );
            failures += 1;
        }
        // Every frontier point, used as a budget, selects a plan that
        // fits it, and time rises monotonically as the budget shrinks.
        if p < 1024 {
            let mut last_time = 0.0f64;
            for pt in fr {
                match try_plan(
                    v,
                    &bounds,
                    8,
                    &src,
                    &dst,
                    &base.with_mem_budget(pt.peak_bytes),
                    &topo,
                    true,
                ) {
                    Ok(got) => {
                        if got.peak_bytes > pt.peak_bytes || got.predicted + 1e-9 < last_time {
                            eprintln!(
                                "e17: P={p}: budget {} B chose peak {} B / time {:.1}",
                                pt.peak_bytes, got.peak_bytes, got.predicted
                            );
                            failures += 1;
                        }
                        last_time = got.predicted;
                    }
                    Err(e) => {
                        eprintln!(
                            "e17: P={p}: frontier peak {} infeasible: {e}",
                            pt.peak_bytes
                        );
                        failures += 1;
                    }
                }
            }
        }
        // An impossible budget names the smallest feasible one, which
        // must then actually fit.
        let smallest = match try_plan(
            v,
            &bounds,
            8,
            &src,
            &dst,
            &base.with_mem_budget(1),
            &topo,
            true,
        ) {
            Err(PlanError::NoPlanFits {
                budget: 1,
                smallest_feasible,
                ..
            }) => {
                if smallest_feasible != slimmest.peak_bytes {
                    eprintln!(
                        "e17: P={p}: smallest feasible {} != slimmest frontier peak {}",
                        smallest_feasible, slimmest.peak_bytes
                    );
                    failures += 1;
                }
                match try_plan(
                    v,
                    &bounds,
                    8,
                    &src,
                    &dst,
                    &base.with_mem_budget(smallest_feasible),
                    &topo,
                    true,
                ) {
                    Ok(got) if got.peak_bytes <= smallest_feasible => {}
                    _ => {
                        eprintln!("e17: P={p}: named smallest feasible budget does not fit");
                        failures += 1;
                    }
                }
                smallest_feasible
            }
            other => {
                eprintln!("e17: P={p}: 1-byte budget did not fail as NoPlanFits: {other:?}");
                failures += 1;
                0
            }
        };
        t1.row(&[
            j::u(p as u64),
            j::u(fr.len() as u64),
            j::s(&fastest.strategy.to_string()),
            j::u(fastest.peak_bytes),
            j::s(&slimmest.strategy.to_string()),
            j::u(slimmest.peak_bytes),
            j::u(smallest),
        ]);
        let mut row = Map::new();
        row.insert("nprocs".into(), Json::from(p));
        row.insert("smallest_feasible_bytes".into(), Json::from(smallest));
        row.insert("frontier".into(), frontier_json(fr));
        sweep_rows.push(Json::Object(row));
    }
    t1.print();

    // Part two: measured high-water marks. The unbudgeted transpose
    // stages the fastest (memory-hungriest) decomposition; the smallest
    // feasible budget forces the slimmest; both must stay under their
    // predicted peaks on the interpreter and the VM, and the gap between
    // them must be at least 2x.
    let prog = Arc::new(transpose_program(MEASURED_P));
    let (bounds, src, dst) = transpose(MEASURED_P);
    let slim = match try_plan(
        v,
        &bounds,
        8,
        &src,
        &dst,
        &base.with_mem_budget(1),
        &topo,
        true,
    ) {
        Err(PlanError::NoPlanFits {
            smallest_feasible, ..
        }) => smallest_feasible,
        other => {
            eprintln!("e17: measured leg: expected NoPlanFits at 1 B, got {other:?}");
            failures += 1;
            1
        }
    };
    let mut t2 = Table::new(
        &format!("E17: measured redistribution high-water at P={MEASURED_P} (bytes)"),
        &["leg", "budget_B", "predicted_B", "interp", "vm", "within"],
    );
    let mut measured: Vec<(u64, f64)> = Vec::new(); // (interp high-water, wall)
    for (leg, budget) in [("unbounded", u64::MAX), ("smallest-feasible", slim)] {
        let mut cfg = SimConfig::new(MEASURED_P);
        cfg.cost.mem_budget = Some(budget);
        let predicted = predicted_peak(&prog, &cfg.cost, &cfg.topo);
        let (mi, wall) = measure(
            leg,
            SimExec::new(prog.clone(), KernelRegistry::standard(), cfg.clone()),
            &prog.decls,
        );
        let (mv, _) = measure(
            leg,
            VmExec::sim(prog.clone(), KernelRegistry::standard(), cfg),
            &prog.decls,
        );
        let ok = mi > 0 && mv > 0 && mi <= predicted && mv <= predicted;
        if !ok {
            eprintln!("e17: {leg}: measured {mi}/{mv} B vs predicted {predicted} B");
            failures += 1;
        }
        t2.row(&[
            j::s(leg),
            if budget == u64::MAX {
                j::s("-")
            } else {
                j::u(budget)
            },
            j::u(predicted),
            j::u(mi),
            j::u(mv),
            j::s(if ok { "yes" } else { "NO" }),
        ]);
        measured.push((mi, wall));
    }
    if measured[0].0 < 2 * measured[1].0 {
        eprintln!(
            "e17: unbounded-vs-bounded measured gap under 2x: {} vs {} B",
            measured[0].0, measured[1].0
        );
        failures += 1;
    }
    t2.print();

    // The membound.xdp corpus program under a budget that makes its
    // incommensurate reblock take a K-round dynamic-slice chain.
    let src_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../xdp-programs/membound.xdp"
    );
    let source = std::fs::read_to_string(src_path).expect("membound.xdp is in the corpus");
    let compiled = compile(&source, &CompileOptions::default().with_seq(SeqMode::Auto))
        .expect("membound.xdp compiles");
    let mut chain_budget = 0u64;
    let chain_frontier;
    {
        // B's reblock: the last redistribute in the program.
        let mut last: Option<(VarId, Distribution)> = None;
        compiled.program.visit(&mut |s| {
            if let Stmt::Redistribute { var, dist } = s {
                last = Some((*var, dist.clone()));
            }
        });
        let (bvar, bdst) = last.expect("membound.xdp redistributes");
        let decl = compiled.program.decl(bvar);
        let bsrc = decl.dist.clone().expect("B is distributed");
        let full = try_plan(
            bvar,
            &decl.bounds,
            decl.elem.size_bytes(),
            &bsrc,
            &bdst,
            &base.with_mem_budget(u64::MAX),
            &topo,
            true,
        )
        .expect("unlimited budget always fits");
        chain_frontier = frontier_json(&full.frontier);
        match full
            .frontier
            .iter()
            .find(|f| matches!(f.strategy, Strategy::DynamicSlice(_)))
        {
            Some(ds) => {
                chain_budget = ds.peak_bytes;
                let got = try_plan(
                    bvar,
                    &decl.bounds,
                    decl.elem.size_bytes(),
                    &bsrc,
                    &bdst,
                    &base.with_mem_budget(chain_budget),
                    &topo,
                    true,
                );
                match got {
                    Ok(pl) if matches!(pl.strategy, Strategy::DynamicSlice(_)) => {}
                    other => {
                        eprintln!(
                            "e17: budget {chain_budget} B did not select a slice chain: {:?}",
                            other.map(|pl| pl.strategy)
                        );
                        failures += 1;
                    }
                }
            }
            None => {
                eprintln!("e17: membound.xdp reblock frontier has no dynamic-slice point");
                failures += 1;
            }
        }
    }
    let cprog = compiled.program.clone();
    let mut cfg = SimConfig::new(compiled.nprocs);
    cfg.cost.mem_budget = Some(chain_budget.max(1));
    let predicted = predicted_peak(&cprog, &cfg.cost, &cfg.topo);
    let (mi, _) = measure(
        "membound chain",
        SimExec::new(cprog.clone(), KernelRegistry::standard(), cfg.clone()),
        &cprog.decls,
    );
    let (mv, _) = measure(
        "membound chain",
        VmExec::sim(cprog.clone(), KernelRegistry::standard(), cfg),
        &cprog.decls,
    );
    let chain_ok = mi > 0 && mv > 0 && mi <= predicted && mv <= predicted;
    if !chain_ok {
        eprintln!("e17: membound chain leg: measured {mi}/{mv} B vs predicted {predicted} B");
        failures += 1;
    }
    let mut t3 = Table::new(
        "E17: membound.xdp under a chain-selecting budget",
        &["budget_B", "predicted_B", "interp", "vm", "within"],
    );
    t3.row(&[
        j::u(chain_budget),
        j::u(predicted),
        j::u(mi),
        j::u(mv),
        j::s(if chain_ok { "yes" } else { "NO" }),
    ]);
    t3.print();

    // The frontier artifact.
    let pareto_path = std::env::args()
        .skip_while(|a| a != "--pareto-out")
        .nth(1)
        .unwrap_or_else(|| "membound-pareto.json".to_string());
    let mut reblock = Map::new();
    reblock.insert("chain_budget_bytes".into(), Json::from(chain_budget));
    reblock.insert("frontier".into(), chain_frontier);
    let mut artifact = Map::new();
    artifact.insert("experiment".into(), Json::from("e17-membound"));
    artifact.insert("elem_bytes".into(), Json::from(8u64));
    artifact.insert("transpose_sweep".into(), Json::Array(sweep_rows));
    artifact.insert("membound_reblock".into(), Json::Object(reblock));
    match std::fs::write(&pareto_path, Json::Object(artifact).to_string()) {
        Ok(()) => println!("wrote Pareto frontiers to {pareto_path}"),
        Err(e) => {
            eprintln!("e17: cannot write {pareto_path}: {e}");
            failures += 1;
        }
    }

    // One trajectory row so bench_check gates the measured legs' wall
    // time run to run.
    let out_path = std::env::args()
        .skip_while(|a| a != "--out")
        .nth(1)
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let wall_us = measured[1].1 * 1e6;
    let mut latency = Map::new();
    latency.insert("p50".into(), Json::from(wall_us.round() as u64));
    latency.insert("p99".into(), Json::from(wall_us.round() as u64));
    let mut row = Map::new();
    row.insert("experiment".into(), Json::from("e17-membound"));
    row.insert(
        "unix_ms".into(),
        Json::from(
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
        ),
    );
    row.insert(
        "runs_per_sec".into(),
        Json::from(if wall_us > 0.0 { 1e6 / wall_us } else { 0.0 }),
    );
    row.insert("latency_us".into(), Json::Object(latency));
    row.insert("nprocs".into(), Json::from(MEASURED_P as u64));
    row.insert("conformance_failures".into(), Json::from(failures as u64));
    match trajectory::append(Path::new(&out_path), Json::Object(row)) {
        Ok(runs) => println!("appended run {runs} to {out_path}"),
        Err(e) => {
            eprintln!("e17: {e}");
            failures += 1;
        }
    }

    if failures > 0 {
        eprintln!("e17: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("e17: ok");
}
