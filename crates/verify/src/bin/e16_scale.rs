//! E16 — scale: the async executor at thousands of processors, and
//! hierarchical (tiered) topologies moving the collectives crossover.
//!
//! Part one is the scale claim: the async task-per-processor machine
//! runs a neighbour ring exchange at **P=4096** — four thousand
//! simulated processors multiplexed over a fixed worker pool, far past
//! thread-per-processor territory — and its timing-free fingerprint
//! (memory image, movement multiset, message count) must equal the
//! virtual-time simulator's exactly, on both the interpreter and the
//! compiled VM. A sweep of generated corpus programs then runs through
//! the `xdp_verify::diff` oracles (`run_async` vs `run_sim`) for the
//! same equality at corpus sizes.
//!
//! Part two is the topology claim: on a tiered node/rack/cluster
//! machine, making cross-rack links 100x dearer must *move* the
//! staged-Bruck vs direct-pairwise crossover of the collectives planner
//! (direct pairwise pays more cluster messages than the log-round
//! staged schedule, so staging pays off at a lower per-message cost) —
//! asserted both as a crossover-point shift and as one operating point
//! where only the tier costs differ and the chosen strategy flips.
//!
//! The summary appends one row (experiment `e16-scale`) to the
//! `BENCH_serve.json` trajectory, so `bench_check` gates the async
//! machine's P=4096 wall time run to run.

use serde_json::{Map, Value as Json};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;
use xdp_bench::table::{j, Table};
use xdp_bench::trajectory;
use xdp_collectives::planner::{plan, Strategy};
use xdp_core::{AsyncConfig, AsyncExec, KernelRegistry, SimConfig, SimExec};
use xdp_ir::build as b;
use xdp_ir::{CmpOp, DimDist, Distribution, ElemType, ProcGrid, Program, Triplet, VarId};
use xdp_machine::{CostModel, Tier, Topology};
use xdp_runtime::Value;
use xdp_trace::TraceConfig;
use xdp_verify::diff::{run_async, run_sim};
use xdp_verify::gen::executable_program;
use xdp_verify::Fingerprint;
use xdp_vm::VmExec;

/// The scale leg's machine size.
const NPROCS: usize = 4096;
/// Generated corpus programs in the oracle sweep.
const CORPUS_COUNT: u64 = 8;

/// A neighbour ring exchange with O(1) statements per processor: pid p
/// (except the last) sends its element of T; pid p (except the first)
/// receives its left neighbour's value into U. The canonical
/// constant-work-per-pid program, so total work is O(P) and the
/// simulator baseline stays cheap even at P=4096.
fn ring_exchange(nprocs: usize) -> Arc<Program> {
    let n = nprocs as i64;
    let grid = ProcGrid::linear(nprocs);
    let mut p = Program::new();
    let t = p.declare(b::array(
        "T",
        ElemType::F64,
        vec![(0, n - 1)],
        vec![DimDist::Block],
        grid.clone(),
    ));
    let u = p.declare(b::array(
        "U",
        ElemType::F64,
        vec![(0, n - 1)],
        vec![DimDist::Block],
        grid,
    ));
    let tm = b::sref(t, vec![b::at(b::mypid())]);
    let tprev = b::sref(t, vec![b::at(b::mypid().sub(b::c(1)))]);
    let um = b::sref(u, vec![b::at(b::mypid())]);
    p.body = vec![
        b::guarded(
            b::cmp(CmpOp::Lt, b::mypid(), b::c(n - 1)),
            vec![b::send(tm)],
        ),
        b::guarded(
            b::cmp(CmpOp::Gt, b::mypid(), b::c(0)),
            vec![
                b::recv_val(um.clone(), tprev),
                b::guarded(b::await_(um), vec![]),
            ],
        ),
    ];
    Arc::new(p)
}

/// Same deterministic init `xdp_verify::diff` uses for its oracles.
fn init_value(o: usize, idx: &[i64]) -> Value {
    let mut v = (o as i64 + 1) * 1000;
    for (k, x) in idx.iter().enumerate() {
        v += x * (k as i64 + 1);
    }
    Value::F64(v as f64)
}

/// Run `exec` (any machine with the init/run/gather protocol) and
/// fingerprint it. Returns (fingerprint, wall seconds, messages).
macro_rules! fingerprint {
    ($exec:expr, $prog:expr) => {{
        let mut exec = $exec;
        for (o, _) in $prog.decls.iter().enumerate() {
            exec.init_exclusive(VarId(o as u32), move |idx| init_value(o, idx));
        }
        let t0 = Instant::now();
        let report = exec.run().expect("run");
        let wall = t0.elapsed().as_secs_f64();
        let mut fp = Fingerprint::default();
        for (o, d) in $prog.decls.iter().enumerate() {
            fp.record_memory(&d.name, &exec.gather(VarId(o as u32)));
        }
        fp.record_trace(&report.trace);
        fp.messages = report.net.messages;
        (fp, wall, report.net.messages)
    }};
}

/// Timing-free equality: memory image, movement multiset, messages.
fn conformant(a: &Fingerprint, b: &Fingerprint) -> bool {
    a.memory == b.memory && a.movement == b.movement && a.messages == b.messages
}

/// Plan block(8) -> cyclic(8) on a 2x2x2 tiered machine with per-message
/// cost `alpha` and the cluster tier's alpha/beta scaled by `scale`.
fn plan_at(alpha: f64, scale: f64) -> xdp_collectives::planner::RedistPlan {
    let bounds = [Triplet::range(1, 64)];
    let src = Distribution::new(vec![DimDist::Block], ProcGrid::linear(8));
    let dst = Distribution::new(vec![DimDist::Cyclic], ProcGrid::linear(8));
    let model = CostModel {
        alpha,
        cpu_overhead: 0.0,
        ..CostModel::default_1993()
    }
    .with_tier_scale(Tier::Cluster, scale, scale);
    plan(
        VarId(0),
        &bounds,
        8,
        &src,
        &dst,
        &model,
        &Topology::tiered(2, 2, 2),
        false,
    )
}

/// Smallest alpha (on a geometric grid) at which the planner first
/// prefers the staged schedule.
fn crossover_alpha(scale: f64) -> f64 {
    for k in 0..400 {
        let alpha = 1e-6 * 1.05f64.powi(k);
        if plan_at(alpha, scale).strategy == Strategy::StagedBruck {
            return alpha;
        }
    }
    f64::INFINITY
}

fn main() {
    let mut failures = 0usize;

    // Part one: P=4096 on the async machine, interpreter and VM, against
    // the simulator baseline.
    let prog = ring_exchange(NPROCS);
    let (base, sim_wall, sim_msgs) = fingerprint!(
        SimExec::new(
            prog.clone(),
            KernelRegistry::standard(),
            SimConfig::new(NPROCS).with_trace(TraceConfig::full()),
        ),
        prog
    );
    let (afp, async_wall, _) = fingerprint!(
        AsyncExec::new(
            prog.clone(),
            KernelRegistry::standard(),
            AsyncConfig::new(NPROCS).with_trace(TraceConfig::full()),
        ),
        prog
    );
    let (vfp, vm_wall, _) = fingerprint!(
        VmExec::tasks(
            prog.clone(),
            KernelRegistry::standard(),
            AsyncConfig::new(NPROCS).with_trace(TraceConfig::full()),
        ),
        prog
    );
    let mut t = Table::new(
        &format!("E16: ring exchange at P={NPROCS} (timing-free fingerprint vs simulator)"),
        &["machine", "wall_ms", "messages", "conformant"],
    );
    t.row(&[
        j::s("sim (baseline)"),
        j::f(sim_wall * 1e3),
        j::u(sim_msgs),
        j::s("-"),
    ]);
    for (label, fp, wall) in [
        ("async interp", &afp, async_wall),
        ("async vm", &vfp, vm_wall),
    ] {
        let ok = conformant(&base, fp);
        if !ok {
            eprintln!("e16: {label} diverged from the simulator at P={NPROCS}");
            failures += 1;
        }
        t.row(&[
            j::s(label),
            j::f(wall * 1e3),
            j::u(fp.messages),
            j::s(if ok { "yes" } else { "NO" }),
        ]);
    }
    if sim_msgs != NPROCS as u64 - 1 {
        eprintln!("e16: expected one message per ring edge, saw {sim_msgs}");
        failures += 1;
    }
    t.print();

    // Corpus sweep: generated message-passing programs through the
    // differential oracles.
    let mut corpus_fail = 0usize;
    for k in 0..CORPUS_COUNT {
        let tp = executable_program(500 + k);
        let p = Arc::new(tp.program.clone());
        let base = run_sim(&p, tp.nprocs, None);
        let got = run_async(&p, tp.nprocs);
        let same = match (&base, &got) {
            (Ok(a), Ok(g)) => conformant(a, g),
            (Err(a), Err(g)) => a == g,
            _ => false,
        };
        if !same {
            eprintln!("e16: corpus seed {}: async diverged from sim", tp.seed);
            corpus_fail += 1;
        }
    }
    let mut t2 = Table::new(
        "E16: corpus conformance (async vs sim oracles)",
        &["oracle", "programs", "failures"],
    );
    t2.row(&[
        j::s("async timing-free"),
        j::u(CORPUS_COUNT),
        j::u(corpus_fail as u64),
    ]);
    failures += corpus_fail;
    t2.print();

    // Part two: the tiered-topology crossover table. Cross-rack links at
    // 100x must move the staged-vs-direct break-even down.
    let flat = crossover_alpha(1.0);
    let skewed = crossover_alpha(100.0);
    let mut t3 = Table::new(
        "E16: staged-Bruck crossover, block(8)->cyclic(8) on tiered 2x2x2",
        &["cluster_scale", "crossover_alpha", "strategy_at_0.65"],
    );
    for (scale, cross) in [(1.0, flat), (100.0, skewed)] {
        t3.row(&[
            j::f(scale),
            j::f(cross),
            j::s(&plan_at(0.65, scale).strategy.to_string()),
        ]);
    }
    t3.print();
    if skewed >= flat * 0.9 {
        eprintln!("e16: crossover did not move: flat {flat:.3}, 100x {skewed:.3}");
        failures += 1;
    }
    if plan_at(0.65, 1.0).strategy != Strategy::DirectPairwise
        || plan_at(0.65, 100.0).strategy != Strategy::StagedBruck
    {
        eprintln!("e16: operating point 0.65 did not flip strategies with tier scale");
        failures += 1;
    }

    // One trajectory row so bench_check gates the P=4096 async wall time.
    let out_path = std::env::args()
        .skip_while(|a| a != "--out")
        .nth(1)
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let async_us = async_wall * 1e6;
    let mut latency = Map::new();
    latency.insert("p50".into(), Json::from(async_us.round() as u64));
    latency.insert("p99".into(), Json::from(async_us.round() as u64));
    let mut row = Map::new();
    row.insert("experiment".into(), Json::from("e16-scale"));
    row.insert(
        "unix_ms".into(),
        Json::from(
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
        ),
    );
    row.insert(
        "runs_per_sec".into(),
        Json::from(if async_us > 0.0 { 1e6 / async_us } else { 0.0 }),
    );
    row.insert("latency_us".into(), Json::Object(latency));
    row.insert("nprocs".into(), Json::from(NPROCS as u64));
    row.insert(
        "conformance_failures".into(),
        Json::from(corpus_fail as u64),
    );
    match trajectory::append(Path::new(&out_path), Json::Object(row)) {
        Ok(runs) => println!("appended run {runs} to {out_path}"),
        Err(e) => {
            eprintln!("e16: {e}");
            failures += 1;
        }
    }

    if failures > 0 {
        eprintln!("e16: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("e16: ok");
}
