//! The fuzzing loop: generate → differentially check → shrink.
//!
//! Shared by `xdpc fuzz` and the E12 experiment binary. One run sweeps
//! `count` consecutive seeds; each divergence is shrunk to a minimal
//! still-failing program (holding the failure *key* fixed, so e.g. a
//! pass miscompile cannot shrink into an unrelated deadlock) and rendered
//! as a ready-to-replay `.xdp` repro.

use crate::diff::{check_with, CheckConfig};
use crate::gen::{executable_program_with, render_repro, GenConfig, TestProgram};
use crate::shrink::{shrink, stmt_count, DEFAULT_MAX_EVALS};

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Number of consecutive seeds to check, starting at `seed`.
    pub count: usize,
    /// First seed.
    pub seed: u64,
    /// Program shape.
    pub gen: GenConfig,
    /// Which oracles to run per program.
    pub check: CheckConfig,
    /// Shrinking budget per failure.
    pub max_shrink_evals: usize,
    /// Stop after this many failures (0 = never stop early).
    pub max_failures: usize,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            count: 200,
            seed: 1,
            gen: GenConfig::default(),
            check: CheckConfig::default(),
            max_shrink_evals: DEFAULT_MAX_EVALS,
            max_failures: 1,
        }
    }
}

/// One shrunk divergence.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Seed that generated the failing program.
    pub seed: u64,
    /// Failure identity ([`crate::diff::Divergence::key`]).
    pub key: String,
    /// Human-readable divergence detail (of the *shrunk* program).
    pub detail: String,
    /// Minimized program, ready to write to a `.xdp` file.
    pub repro: String,
    /// Statement counts before/after shrinking.
    pub original_stmts: usize,
    pub shrunk_stmts: usize,
    /// Predicate evaluations the shrinker spent.
    pub shrink_evals: usize,
}

/// Sweep outcome.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Programs generated and checked.
    pub checked: usize,
    pub failures: Vec<Failure>,
}

impl FuzzReport {
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The check configuration that re-runs only the stages a failure key
/// implicates — the shrinker evaluates this hundreds of times.
pub fn narrowed(check: &CheckConfig, key: &str) -> CheckConfig {
    CheckConfig {
        thread: key == "executor:thread" || key == "run-error:thread",
        async_exec: key == "executor:async" || key == "run-error:async",
        vm: key == "executor:vm" || key == "run-error:vm",
        chaos: key == "chaos",
        faults: check.faults.clone(),
        passes: key.starts_with("pass:"),
        mem_budget: if key == "plan:membound" || key == "run-error:membound" {
            check.mem_budget
        } else {
            None
        },
    }
}

/// Check one program; on divergence, shrink it and build the [`Failure`].
pub fn check_and_shrink(
    tp: &TestProgram,
    check: &CheckConfig,
    max_shrink_evals: usize,
) -> Option<Failure> {
    let d = check_with(tp, check)?;
    let key = d.key();
    let recheck = narrowed(check, &key);
    let still_fails =
        |t: &TestProgram| check_with(t, &recheck).map(|d2| d2.key()) == Some(key.clone());
    let original_stmts = stmt_count(&tp.program.body);
    let out = shrink(tp, max_shrink_evals, &still_fails);
    // Re-derive the detail from the shrunk program (the original detail
    // may reference statements that no longer exist).
    let detail = check_with(&out.program, &recheck)
        .map(|d2| d2.detail().to_string())
        .unwrap_or_else(|| d.detail().to_string());
    let note = format!("key={key}");
    Some(Failure {
        seed: tp.seed,
        key,
        detail,
        repro: render_repro(&out.program, &note),
        original_stmts,
        shrunk_stmts: out.stmts,
        shrink_evals: out.evals,
    })
}

/// Run the sweep. `progress` is called after every program with the
/// number checked so far and the failure, if that program diverged.
pub fn run_fuzz(cfg: &FuzzConfig, progress: &mut dyn FnMut(usize, Option<&Failure>)) -> FuzzReport {
    let mut report = FuzzReport::default();
    for k in 0..cfg.count {
        let seed = cfg.seed.wrapping_add(k as u64);
        let tp = executable_program_with(&cfg.gen, seed);
        let failure = check_and_shrink(&tp, &cfg.check, cfg.max_shrink_evals);
        report.checked += 1;
        progress(report.checked, failure.as_ref());
        if let Some(f) = failure {
            report.failures.push(f);
            if cfg.max_failures > 0 && report.failures.len() >= cfg.max_failures {
                break;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_small_clean_sweep_passes() {
        let cfg = FuzzConfig {
            count: 5,
            seed: 11,
            // Executor conformance only: the pass-prefix and chaos oracles
            // are exercised by their own tests and by `xdpc fuzz`.
            check: CheckConfig {
                thread: false,
                async_exec: false,
                vm: true,
                chaos: false,
                faults: None,
                passes: false,
                mem_budget: None,
            },
            ..FuzzConfig::default()
        };
        let mut calls = 0usize;
        let report = run_fuzz(&cfg, &mut |_, f| {
            calls += 1;
            assert!(f.is_none(), "{:?}", f.map(|x| x.key.clone()));
        });
        assert_eq!(report.checked, 5);
        assert_eq!(calls, 5);
        assert!(report.ok());
    }

    #[test]
    fn narrowed_configs_prune_unrelated_stages() {
        let base = CheckConfig::default();
        let n = narrowed(&base, "pass:vectorize-messages");
        assert!(n.passes && !n.thread && !n.chaos);
        let n = narrowed(&base, "executor:lockstep");
        assert!(!n.passes && !n.thread && !n.chaos);
        let n = narrowed(&base, "executor:thread");
        assert!(n.thread && !n.passes && !n.chaos);
        let n = narrowed(&base, "chaos");
        assert!(n.chaos && !n.passes && !n.thread);
    }
}
