//! Differential testing for the XDP stack.
//!
//! The paper's optimizations are all claimed to be *meaning-preserving*
//! rewrites over the Figure-1 operational rules. This crate checks that
//! claim mechanically on programs nobody hand-wrote:
//!
//! * [`gen`] — a seeded generator of executable, well-formed IL+XDP
//!   programs (plus the syntactic proptest strategies shared with the
//!   language round-trip tests);
//! * [`lockstep`] — a third, deliberately boring executor that advances
//!   processors round-robin one step at a time, so schedule-dependence
//!   bugs in the real executors show up as fingerprint differences;
//! * [`fingerprint`] — the execution oracle: final per-processor memory
//!   image, sorted movement multiset, and section-state digest;
//! * [`diff`] — the differential driver: `Lockstep` vs [`xdp_core::SimExec`]
//!   vs [`xdp_core::ThreadExec`], every prefix of the default pass
//!   pipeline vs the unoptimized program, and faulty vs lossless runs
//!   under a [`xdp_fault::FaultPlan`];
//! * [`shrink`] — a greedy structural shrinker that reduces a failing
//!   program to a minimal pretty-printed `.xdp` repro;
//! * [`fuzz`] — the sweep loop tying it all together, shared by
//!   `xdpc fuzz` and the E12 experiment binary.

pub mod diff;
pub mod fingerprint;
pub mod fuzz;
pub mod gen;
pub mod lockstep;
pub mod shrink;

pub use diff::{
    check_program, check_with, default_passes, CheckConfig, Divergence, DEFAULT_CHECK_BUDGET,
};
pub use fingerprint::Fingerprint;
pub use fuzz::{run_fuzz, Failure, FuzzConfig, FuzzReport};
pub use gen::{executable_program, render_repro, GenConfig, TestProgram};
pub use shrink::{shrink, ShrinkResult};
