//! Program generation.
//!
//! Two generators live here, serving different oracles:
//!
//! 1. **Syntactic strategies** ([`int_expr`] .. [`program`]) — proptest
//!    combinators producing arbitrary *well-formed but not necessarily
//!    executable* programs. These were promoted from the language crate's
//!    round-trip test so every crate can property-test against the same
//!    shapes (pretty/parse fixpoints, pass no-panic, validator totality).
//!
//! 2. **The executable generator** ([`executable_program`]) — a seeded
//!    template instantiator whose output is guaranteed to type-check,
//!    terminate, and be schedule-deterministic, so differential execution
//!    has a well-defined expected fingerprint. Programs are sequences of
//!    *closed* communication templates:
//!
//!    * local `iown`-guarded compute loops with static bounds,
//!    * the canonical naive fetch-combine loop (each send matched by
//!      exactly one receive, rendezvous tags made unique by a per-template
//!      constant salt),
//!    * an owner multicast received by every processor,
//!    * `redistribute` between enumerable distributions — after which the
//!      moved array is *retired*: the optimizer reasons from declared
//!      (static) ownership, so later static-owner templates on a moved
//!      array would be a generator bug, not a compiler bug.
//!
//!    Every array is `F64` and all constants are dyadic, so arithmetic is
//!    exact and fingerprints compare bit-for-bit.

use proptest::prelude::*;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use xdp_ir::build as b;
use xdp_ir::{
    pretty, BoolExpr, CmpOp, DestSet, DimDist, Distribution, ElemExpr, ElemType, IntExpr, ProcGrid,
    Program, SectionRef, Stmt, Subscript, TransferKind, VarId,
};

/// Processor count used by the syntactic strategies.
pub const NPROCS: usize = 4;
/// Declared arrays available to the syntactic strategies.
pub const NVARS: u32 = 3;
/// Index-space extent used by the syntactic strategies.
pub const N: i64 = 12;

// ---------------------------------------------------------------------------
// Syntactic strategies (shared with crates/lang round-trip tests).
// ---------------------------------------------------------------------------

/// Integer expressions over constants, `mypid`, and the loop variable `i`.
pub fn int_expr(depth: u32) -> BoxedStrategy<IntExpr> {
    let leaf = prop_oneof![
        (1i64..N).prop_map(IntExpr::Const),
        Just(IntExpr::MyPid),
        Just(IntExpr::Var("i".into())),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = int_expr(depth - 1);
    prop_oneof![
        4 => leaf,
        1 => (sub.clone(), sub.clone()).prop_map(|(a, b2)| a.add(b2)),
        1 => (sub.clone(), sub).prop_map(|(a, b2)| a.mul(b2)),
    ]
    .boxed()
}

/// Point, full-range, and strided-triplet subscripts.
pub fn subscript() -> BoxedStrategy<Subscript> {
    prop_oneof![
        2 => int_expr(1).prop_map(Subscript::Point),
        1 => Just(Subscript::All),
        1 => (1i64..N / 2, 1i64..N, 1i64..3).prop_map(|(lo, hi, st)| {
            b::span_st(b::c(lo), b::c(lo + hi % (N - lo)), b::c(st))
        }),
    ]
    .boxed()
}

/// A section of one of the [`NVARS`] declared arrays.
pub fn section_ref() -> BoxedStrategy<SectionRef> {
    (0..NVARS, subscript())
        .prop_map(|(v, s)| SectionRef::new(VarId(v), vec![s]))
        .boxed()
}

/// Compute rules: ownership/accessibility/await tests and comparisons.
pub fn bool_expr(depth: u32) -> BoxedStrategy<BoolExpr> {
    let leaf = prop_oneof![
        section_ref().prop_map(BoolExpr::Iown),
        section_ref().prop_map(BoolExpr::Accessible),
        section_ref().prop_map(BoolExpr::Await),
        (int_expr(1), int_expr(1)).prop_map(|(a, b2)| BoolExpr::Cmp(CmpOp::Le, a, b2)),
        (int_expr(1), int_expr(1)).prop_map(|(a, b2)| BoolExpr::Cmp(CmpOp::Eq, a, b2)),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = bool_expr(depth - 1);
    prop_oneof![
        3 => leaf,
        1 => (sub.clone(), sub.clone()).prop_map(|(a, b2)| a.and(b2)),
        1 => sub.prop_map(|a| BoolExpr::Not(Box::new(a))),
    ]
    .boxed()
}

/// Element expressions: references, literals, and integer injections.
pub fn elem_expr(depth: u32) -> BoxedStrategy<ElemExpr> {
    let leaf = prop_oneof![
        section_ref().prop_map(ElemExpr::Ref),
        (0i64..100).prop_map(|v| ElemExpr::LitF(v as f64 / 4.0)),
        (0i64..100).prop_map(ElemExpr::LitI),
        int_expr(1).prop_map(ElemExpr::FromInt),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = elem_expr(depth - 1);
    prop_oneof![
        3 => leaf,
        1 => (sub.clone(), sub).prop_map(|(a, b2)| a.add(b2)),
    ]
    .boxed()
}

/// One of the rank-1 distributions the generators draw from.
pub fn dist_choice() -> BoxedStrategy<Distribution> {
    prop_oneof![
        Just(Distribution::new(
            vec![DimDist::Block],
            ProcGrid::linear(NPROCS)
        )),
        Just(Distribution::new(
            vec![DimDist::Cyclic],
            ProcGrid::linear(NPROCS)
        )),
        Just(Distribution::new(
            vec![DimDist::BlockCyclic(2)],
            ProcGrid::linear(NPROCS)
        )),
        Just(Distribution::collapsed(1, NPROCS)),
    ]
    .boxed()
}

/// Statements, including every transfer form and `redistribute`.
pub fn stmt(depth: u32) -> BoxedStrategy<Stmt> {
    let leaf = prop_oneof![
        (section_ref(), elem_expr(1)).prop_map(|(t, r)| b::assign(t, r)),
        section_ref().prop_map(b::send),
        section_ref().prop_map(b::send_own),
        section_ref().prop_map(b::send_own_val),
        (section_ref(), int_expr(1)).prop_map(|(s, e)| b::send_salted(s, e)),
        (section_ref(), 0i64..NPROCS as i64).prop_map(|(s, q)| Stmt::Send {
            sec: s,
            kind: TransferKind::Value,
            dest: DestSet::Pids(vec![IntExpr::Const(q)]),
            salt: None,
        }),
        (section_ref(), section_ref()).prop_map(|(t, n)| b::recv_val(t, n)),
        section_ref().prop_map(b::recv_own),
        section_ref().prop_map(b::recv_own_val),
        section_ref().prop_map(|s| b::kernel("fft1d", vec![s])),
        (0..NVARS, dist_choice()).prop_map(|(v, d)| b::redistribute(VarId(v), d)),
        Just(Stmt::Barrier),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = stmt(depth - 1);
    prop_oneof![
        4 => leaf,
        1 => (bool_expr(1), prop::collection::vec(sub.clone(), 1..3))
            .prop_map(|(rule, body)| b::guarded(rule, body)),
        1 => (int_expr(0), prop::collection::vec(sub, 1..3))
            .prop_map(|(hi, body)| b::do_loop("i", b::c(1), hi, body)),
    ]
    .boxed()
}

/// A whole program over three fixed declarations (`A`, `B`, `C`).
pub fn program() -> BoxedStrategy<Program> {
    prop::collection::vec(stmt(2), 1..6)
        .prop_map(|body| {
            let mut p = Program::new();
            let grid = ProcGrid::linear(NPROCS);
            p.declare(b::array(
                "A",
                ElemType::F64,
                vec![(1, N)],
                vec![DimDist::Block],
                grid.clone(),
            ));
            p.declare(b::array(
                "B",
                ElemType::C64,
                vec![(1, N)],
                vec![DimDist::Cyclic],
                grid.clone(),
            ));
            p.declare(b::array(
                "C",
                ElemType::I64,
                vec![(1, N)],
                vec![DimDist::BlockCyclic(2)],
                grid,
            ));
            p.body = body;
            p
        })
        .boxed()
}

// ---------------------------------------------------------------------------
// Executable generator.
// ---------------------------------------------------------------------------

/// Shape parameters for [`executable_program_with`].
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Processor count (linear grid).
    pub nprocs: usize,
    /// Extent of every data array (`[1:n]`).
    pub n: i64,
    /// Inclusive range for the number of templates per program.
    pub min_templates: usize,
    pub max_templates: usize,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            nprocs: 4,
            n: 12,
            min_templates: 3,
            max_templates: 7,
        }
    }
}

/// A generated executable program plus the metadata the differential
/// driver needs.
#[derive(Clone, Debug)]
pub struct TestProgram {
    pub program: Program,
    /// Processor count the program was generated for.
    pub nprocs: usize,
    /// Declared names whose final contents are *observable*: compared
    /// across pass-pipeline prefixes. Scratch receive temporaries are
    /// excluded — eliding a communication legitimately leaves its
    /// temporary unwritten.
    pub observable: Vec<String>,
    /// The seed that regenerates this program.
    pub seed: u64,
}

/// The enumerable rank-1 distributions `redistribute` templates move
/// between (the last entry is fully collapsed: pid 0 owns everything).
pub fn enumerable_dists(nprocs: usize) -> Vec<Distribution> {
    vec![
        Distribution::new(vec![DimDist::Block], ProcGrid::linear(nprocs)),
        Distribution::new(vec![DimDist::Cyclic], ProcGrid::linear(nprocs)),
        Distribution::new(vec![DimDist::BlockCyclic(2)], ProcGrid::linear(nprocs)),
        Distribution::new(vec![DimDist::BlockCyclic(3)], ProcGrid::linear(nprocs)),
        Distribution::collapsed(1, nprocs),
    ]
}

/// Generate an executable program from `seed` with the default shape.
pub fn executable_program(seed: u64) -> TestProgram {
    executable_program_with(&GenConfig::default(), seed)
}

/// Generate an executable program from `seed`.
pub fn executable_program_with(cfg: &GenConfig, seed: u64) -> TestProgram {
    Gen::new(cfg.clone(), seed).build()
}

struct Gen {
    cfg: GenConfig,
    rng: ChaCha8Rng,
    p: Program,
    /// Data arrays still usable by templates (retired on redistribute).
    live: Vec<VarId>,
    observable: Vec<String>,
    next_salt: i64,
    next_temp: usize,
    seed: u64,
}

impl Gen {
    fn new(cfg: GenConfig, seed: u64) -> Gen {
        Gen {
            cfg,
            rng: ChaCha8Rng::seed_from_u64(seed),
            p: Program::new(),
            live: Vec::new(),
            observable: Vec::new(),
            next_salt: 101,
            next_temp: 0,
            seed,
        }
    }

    fn salt(&mut self) -> i64 {
        let s = self.next_salt;
        self.next_salt += 1;
        s
    }

    /// A fresh per-processor scratch array `T<k>[0:P-1]`, block-distributed
    /// so each processor owns exactly `T<k>[mypid]`.
    fn fresh_temp(&mut self) -> VarId {
        let name = format!("T{}", self.next_temp);
        self.next_temp += 1;
        self.p.declare(b::array(
            &name,
            ElemType::F64,
            vec![(0, self.cfg.nprocs as i64 - 1)],
            vec![DimDist::Block],
            ProcGrid::linear(self.cfg.nprocs),
        ))
    }

    fn pick_live(&mut self) -> VarId {
        let k = self.rng.gen_range(0..self.live.len());
        self.live[k]
    }

    fn build(mut self) -> TestProgram {
        let names = ["A", "B", "C", "D"];
        let narrays = self.rng.gen_range(2..5usize);
        let dists = enumerable_dists(self.cfg.nprocs);
        for name in names.iter().take(narrays) {
            // Favour the partitioned distributions; collapsed is rarer.
            let di = if self.rng.gen_range(0..8u32) == 0 {
                dists.len() - 1
            } else {
                self.rng.gen_range(0..dists.len() - 1)
            };
            let var = self.p.declare(xdp_ir::Decl {
                name: name.to_string(),
                elem: ElemType::F64,
                bounds: vec![xdp_ir::Triplet::range(1, self.cfg.n)],
                ownership: xdp_ir::Ownership::Exclusive,
                dist: Some(dists[di].clone()),
                segment_shape: None,
            });
            self.live.push(var);
            self.observable.push(name.to_string());
        }
        let ntemplates = self
            .rng
            .gen_range(self.cfg.min_templates..self.cfg.max_templates + 1);
        let mut body = Vec::new();
        for _ in 0..ntemplates {
            let choice = self.rng.gen_range(0..10u32);
            match choice {
                0..=2 => body.push(self.local_loop()),
                3..=5 if self.live.len() >= 2 => body.extend(self.fetch_combine()),
                6..=7 => body.extend(self.broadcast()),
                8 if self.live.len() >= 2 => body.extend(self.redistribute_template(&dists)),
                _ => body.push(Stmt::Barrier),
            }
        }
        self.p.body = body;
        TestProgram {
            program: self.p,
            nprocs: self.cfg.nprocs,
            observable: self.observable,
            seed: self.seed,
        }
    }

    /// `do i = 1, n { iown(X[i]) : { X[i] = <local rhs> } }`
    fn local_loop(&mut self) -> Stmt {
        let x = self.pick_live();
        let xi = b::sref(x, vec![b::at(b::iv("i"))]);
        let rhs = self.local_rhs(&xi);
        b::do_loop(
            "i",
            b::c(1),
            b::c(self.cfg.n),
            vec![b::guarded(b::iown(xi.clone()), vec![b::assign(xi, rhs)])],
        )
    }

    /// A dyadic-exact right-hand side over `x` itself, the loop variable,
    /// and `mypid`.
    fn local_rhs(&mut self, x: &SectionRef) -> ElemExpr {
        match self.rng.gen_range(0..4u32) {
            0 => b::val(x.clone())
                .mul(ElemExpr::LitF(0.5))
                .add(ElemExpr::FromInt(b::iv("i"))),
            1 => b::val(x.clone()).add(ElemExpr::FromInt(b::mypid())),
            2 => b::val(x.clone()).mul(ElemExpr::LitF(2.0)),
            _ => {
                let k = self.rng.gen_range(1..16i64);
                b::val(x.clone()).add(ElemExpr::LitF(k as f64 * 0.25))
            }
        }
    }

    /// The canonical naive owner-computes communication loop (§2.2):
    /// owners of `S[i]` send its value, the owner of `D[i]` receives it
    /// into a per-processor temporary and combines. This is exactly the
    /// shape the elide/vectorize/localize/bind passes recognize.
    fn fetch_combine(&mut self) -> Vec<Stmt> {
        let s = self.pick_live();
        let d = loop {
            let d = self.pick_live();
            if d != s {
                break d;
            }
        };
        let t = self.fresh_temp();
        let salt = self.salt();
        let si = b::sref(s, vec![b::at(b::iv("i"))]);
        let di = b::sref(d, vec![b::at(b::iv("i"))]);
        let tm = b::sref(t, vec![b::at(b::mypid())]);
        let combined = match self.rng.gen_range(0..3u32) {
            0 => b::val(di.clone()).add(b::val(tm.clone())),
            1 => b::val(di.clone())
                .mul(ElemExpr::LitF(0.5))
                .add(b::val(tm.clone())),
            _ => b::val(tm.clone()),
        };
        vec![b::do_loop(
            "i",
            b::c(1),
            b::c(self.cfg.n),
            vec![
                b::guarded(
                    b::iown(si.clone()),
                    vec![b::send_salted(si.clone(), b::c(salt))],
                ),
                b::guarded(
                    b::iown(di.clone()),
                    vec![
                        b::recv_val_salted(tm.clone(), si, b::c(salt)),
                        b::guarded(b::await_(tm), vec![b::assign(di, combined)]),
                    ],
                ),
            ],
        )]
    }

    /// The owner of one element multicasts it to every processor; each
    /// processor folds its replica into the elements it owns.
    fn broadcast(&mut self) -> Vec<Stmt> {
        let x = self.pick_live();
        let d = self.pick_live();
        let r = self.fresh_temp();
        let salt = self.salt();
        let j = self.rng.gen_range(1..self.cfg.n + 1);
        let xj = b::sref(x, vec![b::at(b::c(j))]);
        let rm = b::sref(r, vec![b::at(b::mypid())]);
        let di = b::sref(d, vec![b::at(b::iv("i"))]);
        let dests: Vec<IntExpr> = (0..self.cfg.nprocs as i64).map(b::c).collect();
        vec![
            b::guarded(
                b::iown(xj.clone()),
                vec![Stmt::Send {
                    sec: xj.clone(),
                    kind: TransferKind::Value,
                    dest: DestSet::Pids(dests),
                    salt: Some(b::c(salt)),
                }],
            ),
            b::recv_val_salted(rm.clone(), xj, b::c(salt)),
            b::guarded(
                b::await_(rm.clone()),
                vec![b::do_loop(
                    "i",
                    b::c(1),
                    b::c(self.cfg.n),
                    vec![b::guarded(
                        b::iown(di.clone()),
                        vec![b::assign(
                            di.clone(),
                            b::val(di).add(b::val(rm).mul(ElemExpr::LitF(0.25))),
                        )],
                    )],
                )],
            ),
        ]
    }

    /// Move one live array to another enumerable distribution and retire
    /// it: the optimizer reasons from *declared* ownership, so templates
    /// after the move must not touch the array again.
    fn redistribute_template(&mut self, dists: &[Distribution]) -> Vec<Stmt> {
        let x = self.pick_live();
        self.live.retain(|&v| v != x);
        let d = dists[self.rng.gen_range(0..dists.len())].clone();
        vec![b::redistribute(x, d), Stmt::Barrier]
    }
}

/// Pretty-print a generated program with a reproduction header.
pub fn render_repro(tp: &TestProgram, note: &str) -> String {
    format!(
        "// xdp-verify repro: seed={} nprocs={} {}\n{}",
        tp.seed,
        tp.nprocs,
        note,
        pretty::program(&tp.program)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executable_programs_validate_and_roundtrip() {
        for seed in 0..60 {
            let tp = executable_program(seed);
            let errs = xdp_ir::validate(&tp.program);
            assert!(errs.is_empty(), "seed {seed}: {errs:?}");
            let text1 = pretty::program(&tp.program);
            let reparsed = xdp_lang::parse_program(&text1)
                .unwrap_or_else(|e| panic!("seed {seed}: parse failed: {e}\n---\n{text1}"));
            let text2 = pretty::program(&reparsed);
            assert_eq!(text1, text2, "seed {seed}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = executable_program(42);
        let b2 = executable_program(42);
        assert_eq!(pretty::program(&a.program), pretty::program(&b2.program));
        assert_eq!(a.observable, b2.observable);
    }

    #[test]
    fn seeds_vary_the_shape() {
        let texts: std::collections::HashSet<String> = (0..20)
            .map(|s| pretty::program(&executable_program(s).program))
            .collect();
        assert!(texts.len() > 15, "only {} distinct programs", texts.len());
    }

    #[test]
    fn retired_arrays_are_not_touched_after_redistribute() {
        for seed in 0..120 {
            let tp = executable_program(seed);
            let mut moved: Vec<VarId> = Vec::new();
            let mut after_move_use = false;
            for s in &tp.program.body {
                if let Stmt::Redistribute { var, .. } = s {
                    moved.push(*var);
                    continue;
                }
                let moved_now = moved.clone();
                s.visit(&mut |st| {
                    let mut check = |r: &SectionRef| {
                        if moved_now.contains(&r.var) {
                            after_move_use = true;
                        }
                    };
                    match st {
                        Stmt::Assign { target, rhs } => {
                            check(target);
                            for r in rhs.refs() {
                                check(r);
                            }
                        }
                        Stmt::Send { sec, .. } => check(sec),
                        Stmt::Recv { target, name, .. } => {
                            check(target);
                            if let Some(n) = name {
                                check(n);
                            }
                        }
                        Stmt::Guarded { rule, .. } => {
                            let mut stack = vec![rule];
                            while let Some(r) = stack.pop() {
                                match r {
                                    BoolExpr::Iown(x)
                                    | BoolExpr::Accessible(x)
                                    | BoolExpr::Await(x) => check(x),
                                    BoolExpr::And(a, b2) | BoolExpr::Or(a, b2) => {
                                        stack.push(a);
                                        stack.push(b2);
                                    }
                                    BoolExpr::Not(a) => stack.push(a),
                                    _ => {}
                                }
                            }
                        }
                        _ => {}
                    }
                });
            }
            assert!(!after_move_use, "seed {seed}: retired array used");
        }
    }
}
