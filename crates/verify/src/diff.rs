//! The differential driver.
//!
//! For one generated [`TestProgram`] this module runs:
//!
//! 1. **Executor conformance** — [`Lockstep`] and [`xdp_core::ThreadExec`]
//!    against the [`xdp_core::SimExec`] baseline on the unoptimized
//!    program: full memory image, movement multiset, and message count
//!    must agree (plus the section-state digest for the two deterministic
//!    backends).
//! 2. **Per-pass equivalence** — every *prefix* of the default pass
//!    pipeline, so the first pass that changes observable memory is named
//!    as the culprit.
//! 3. **Chaos conformance** — the same program under a lossy
//!    [`FaultPlan`]: the delivery layer must reconstruct exactly the
//!    lossless memory image and message count.
//!
//! Executor/pass panics are caught and reported as divergences rather
//! than aborting a fuzz run.

use crate::fingerprint::{diff_lines, Fingerprint};
use crate::gen::TestProgram;
use crate::lockstep::{Lockstep, LockstepConfig};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;
use xdp_compiler::passes::{
    BindCommunication, ElideAccessibleChecks, ElideSameOwnerComm, LocalizeBounds, VectorizeMessages,
};
use xdp_compiler::Pass;
use xdp_core::{
    AsyncConfig, AsyncExec, KernelRegistry, SimConfig, SimExec, ThreadConfig, ThreadExec,
    TraceConfig,
};
use xdp_fault::{FaultPlan, LinkFault};
use xdp_ir::{Program, VarId};
use xdp_runtime::Value;

/// A detected disagreement. `key()` identifies the *kind* of failure so
/// the shrinker can hold it fixed while deleting everything else.
#[derive(Clone, Debug)]
pub enum Divergence {
    /// A run or a pass failed (error or panic) where the baseline
    /// succeeded.
    RunError { stage: String, detail: String },
    /// Two executors disagree on the same program.
    ExecutorMismatch { backend: String, detail: String },
    /// A pass-pipeline prefix changed observable memory.
    PassMismatch { pass: String, detail: String },
    /// The faulty run disagrees with the lossless run.
    ChaosMismatch { detail: String },
    /// The run planned under a redistribution memory budget disagrees
    /// with the unbudgeted run on observable memory. Budgeted plans may
    /// legitimately move data differently (more rounds, sliced pieces),
    /// but the final memory image must be identical.
    MemBoundMismatch { detail: String },
}

impl Divergence {
    /// Stable identity: failure category plus the responsible stage.
    pub fn key(&self) -> String {
        match self {
            Divergence::RunError { stage, .. } => format!("run-error:{stage}"),
            Divergence::ExecutorMismatch { backend, .. } => format!("executor:{backend}"),
            Divergence::PassMismatch { pass, .. } => format!("pass:{pass}"),
            Divergence::ChaosMismatch { .. } => "chaos".to_string(),
            Divergence::MemBoundMismatch { .. } => "plan:membound".to_string(),
        }
    }

    pub fn detail(&self) -> &str {
        match self {
            Divergence::RunError { detail, .. }
            | Divergence::ExecutorMismatch { detail, .. }
            | Divergence::PassMismatch { detail, .. }
            | Divergence::ChaosMismatch { detail }
            | Divergence::MemBoundMismatch { detail } => detail,
        }
    }
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.key(), self.detail())
    }
}

/// What [`check_with`] checks.
#[derive(Clone, Debug)]
pub struct CheckConfig {
    /// Run the threaded executor (real OS threads).
    pub thread: bool,
    /// Run the async executor (task-per-processor over a worker pool).
    pub async_exec: bool,
    /// Run the compiled VM backend on the simulated machine.
    pub vm: bool,
    /// Run the chaos (fault-injected) conformance check.
    pub chaos: bool,
    /// Fault plan for the chaos check; `None` derives a uniform lossy
    /// plan from the program seed.
    pub faults: Option<FaultPlan>,
    /// Check every prefix of the default pass pipeline.
    pub passes: bool,
    /// Re-run the simulator with this redistribution memory budget
    /// (bytes per processor) and require the observable memory image to
    /// match the unbudgeted baseline. `None` skips the check.
    pub mem_budget: Option<u64>,
}

/// The budget the default check (and the shrinker's re-check) plans
/// under: small enough to push real redistributions onto the sliced
/// multi-round decompositions, and the infallible planner degrades to
/// the smallest feasible plan below it, so no program is unrunnable.
pub const DEFAULT_CHECK_BUDGET: u64 = 4096;

impl Default for CheckConfig {
    fn default() -> CheckConfig {
        CheckConfig {
            thread: true,
            async_exec: true,
            vm: true,
            chaos: true,
            faults: None,
            passes: true,
            mem_budget: Some(DEFAULT_CHECK_BUDGET),
        }
    }
}

/// The default optimization pipeline, pass by pass (mirrors
/// `PassManager::paper_pipeline`, which keeps its pass list private).
pub fn default_passes() -> Vec<(&'static str, Box<dyn Pass>)> {
    vec![
        ("elide-same-owner-comm", Box::new(ElideSameOwnerComm)),
        ("vectorize-messages", Box::new(VectorizeMessages)),
        ("localize-bounds", Box::new(LocalizeBounds)),
        ("bind-communication", Box::new(BindCommunication)),
        ("elide-accessible-checks", Box::new(ElideAccessibleChecks)),
    ]
}

/// The uniform lossy plan the chaos check uses when none is supplied.
pub fn default_chaos_plan(seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::uniform(
        seed.wrapping_add(1),
        LinkFault {
            drop: 0.1,
            dup: 0.1,
            reorder: 0.2,
            delay_p: 0.2,
            delay: 200.0,
        },
    );
    plan.rto = 400.0;
    plan
}

/// One backend's outcome, or a String describing the failure (errors and
/// panics alike).
type RunResult = Result<Fingerprint, String>;

fn panic_text(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = e.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

/// Deterministic initial value for declaration ordinal `o` at `idx`.
/// Integer-valued, so every downstream dyadic computation is exact, and
/// index-dependent, so permuted elements are detected.
fn init_value(o: usize, idx: &[i64]) -> Value {
    let mut v = (o as i64 + 1) * 1000;
    for (k, x) in idx.iter().enumerate() {
        v += x * (k as i64 + 1);
    }
    Value::F64(v as f64)
}

fn decl_list(p: &Program) -> Vec<(usize, String, VarId)> {
    p.decls
        .iter()
        .enumerate()
        .map(|(o, d)| (o, d.name.clone(), VarId(o as u32)))
        .collect()
}

/// Run under the virtual-time simulator.
pub fn run_sim(p: &Arc<Program>, nprocs: usize, faults: Option<&FaultPlan>) -> RunResult {
    run_sim_budget(p, nprocs, faults, None)
}

/// Run under the virtual-time simulator with an optional redistribution
/// memory budget on the runtime planner.
pub fn run_sim_budget(
    p: &Arc<Program>,
    nprocs: usize,
    faults: Option<&FaultPlan>,
    mem_budget: Option<u64>,
) -> RunResult {
    let p = p.clone();
    let faults = faults.cloned();
    catch_unwind(AssertUnwindSafe(move || {
        let mut cfg = SimConfig::new(nprocs).with_trace(TraceConfig::full());
        cfg.cost.mem_budget = mem_budget;
        if let Some(plan) = faults {
            cfg = cfg.with_faults(plan);
        }
        let decls = decl_list(&p);
        let mut exec = SimExec::new(p, KernelRegistry::standard(), cfg);
        for (o, _, var) in &decls {
            let o = *o;
            exec.init_exclusive(*var, move |idx| init_value(o, idx));
        }
        let report = exec.run().map_err(|e| e.to_string())?;
        let mut fp = Fingerprint::default();
        for (_, name, var) in &decls {
            fp.record_memory(name, &exec.gather(*var));
        }
        fp.record_trace(&report.trace);
        fp.messages = report.net.messages;
        Ok(fp)
    }))
    .unwrap_or_else(|e| Err(panic_text(e)))
}

/// Run the compiled VM backend under the virtual-time simulator. The VM
/// claims step-for-step conformance with the interpreter, so its
/// fingerprint must match the simulator baseline *exactly* — memory,
/// movement, section states, and message count.
pub fn run_vm(p: &Arc<Program>, nprocs: usize, faults: Option<&FaultPlan>) -> RunResult {
    let p = p.clone();
    let faults = faults.cloned();
    catch_unwind(AssertUnwindSafe(move || {
        let mut cfg = SimConfig::new(nprocs).with_trace(TraceConfig::full());
        if let Some(plan) = faults {
            cfg = cfg.with_faults(plan);
        }
        let decls = decl_list(&p);
        let mut exec = xdp_vm::VmExec::sim(p, KernelRegistry::standard(), cfg);
        for (o, _, var) in &decls {
            let o = *o;
            exec.init_exclusive(*var, move |idx| init_value(o, idx));
        }
        let report = exec.run().map_err(|e| e.to_string())?;
        let mut fp = Fingerprint::default();
        for (_, name, var) in &decls {
            fp.record_memory(name, &exec.gather(*var));
        }
        fp.record_trace(&report.trace);
        fp.messages = report.net.messages;
        Ok(fp)
    }))
    .unwrap_or_else(|e| Err(panic_text(e)))
}

/// Run under the lockstep executor.
pub fn run_lockstep(p: &Arc<Program>, nprocs: usize) -> RunResult {
    let p = p.clone();
    catch_unwind(AssertUnwindSafe(move || {
        let decls = decl_list(&p);
        let mut exec = Lockstep::new(p, KernelRegistry::standard(), LockstepConfig::new(nprocs));
        for (o, _, var) in &decls {
            let o = *o;
            exec.init_exclusive(*var, move |idx| init_value(o, idx));
        }
        let report = exec.run().map_err(|e| e.to_string())?;
        let mut fp = Fingerprint::default();
        for (_, name, var) in &decls {
            fp.record_memory(name, &exec.gather(*var));
        }
        fp.record_trace(&report.trace);
        fp.messages = report.messages;
        Ok(fp)
    }))
    .unwrap_or_else(|e| Err(panic_text(e)))
}

/// Run under the threaded executor (short deadlock timeout: divergent
/// shrink candidates must fail fast).
pub fn run_thread(p: &Arc<Program>, nprocs: usize) -> RunResult {
    let p = p.clone();
    catch_unwind(AssertUnwindSafe(move || {
        let decls = decl_list(&p);
        let cfg = ThreadConfig {
            recv_timeout: Duration::from_secs(2),
            ..ThreadConfig::new(nprocs)
        }
        .with_trace(TraceConfig::full());
        let mut exec = ThreadExec::new(p, KernelRegistry::standard(), cfg);
        for (o, _, var) in &decls {
            let o = *o;
            exec.init_exclusive(*var, move |idx| init_value(o, idx));
        }
        let report = exec.run().map_err(|e| e.to_string())?;
        let mut fp = Fingerprint::default();
        for (_, name, var) in &decls {
            fp.record_memory(name, &exec.gather(*var));
        }
        fp.record_trace(&report.trace);
        fp.messages = report.net.messages;
        Ok(fp)
    }))
    .unwrap_or_else(|e| Err(panic_text(e)))
}

/// Run under the async executor (task-per-processor over a fixed worker
/// pool; same short timeout as the threaded run).
pub fn run_async(p: &Arc<Program>, nprocs: usize) -> RunResult {
    let p = p.clone();
    catch_unwind(AssertUnwindSafe(move || {
        let decls = decl_list(&p);
        let cfg = AsyncConfig {
            recv_timeout: Duration::from_secs(2),
            ..AsyncConfig::new(nprocs)
        }
        .with_trace(TraceConfig::full());
        let mut exec = AsyncExec::new(p, KernelRegistry::standard(), cfg);
        for (o, _, var) in &decls {
            let o = *o;
            exec.init_exclusive(*var, move |idx| init_value(o, idx));
        }
        let report = exec.run().map_err(|e| e.to_string())?;
        let mut fp = Fingerprint::default();
        for (_, name, var) in &decls {
            fp.record_memory(name, &exec.gather(*var));
        }
        fp.record_trace(&report.trace);
        fp.messages = report.net.messages;
        Ok(fp)
    }))
    .unwrap_or_else(|e| Err(panic_text(e)))
}

/// Full differential check with the default configuration.
pub fn check_program(tp: &TestProgram) -> Option<Divergence> {
    check_with(tp, &CheckConfig::default())
}

/// Full differential check.
pub fn check_with(tp: &TestProgram, cfg: &CheckConfig) -> Option<Divergence> {
    let prog = Arc::new(tp.program.clone());

    // Baseline: the unoptimized program under the simulator.
    let base = match run_sim(&prog, tp.nprocs, None) {
        Ok(fp) => fp,
        Err(e) => {
            return Some(Divergence::RunError {
                stage: "sim".into(),
                detail: e,
            })
        }
    };

    // Executor conformance: lockstep (memory + movement + states).
    match run_lockstep(&prog, tp.nprocs) {
        Ok(fp) => {
            if let Some(d) = conform(&base, &fp, true) {
                return Some(Divergence::ExecutorMismatch {
                    backend: "lockstep".into(),
                    detail: d,
                });
            }
        }
        Err(e) => {
            return Some(Divergence::RunError {
                stage: "lockstep".into(),
                detail: e,
            })
        }
    }

    // Executor conformance: threads (memory + movement; wall-clock
    // recording order makes the state digest its own, weaker check).
    if cfg.thread {
        match run_thread(&prog, tp.nprocs) {
            Ok(fp) => {
                if let Some(d) = conform(&base, &fp, false) {
                    return Some(Divergence::ExecutorMismatch {
                        backend: "thread".into(),
                        detail: d,
                    });
                }
            }
            Err(e) => {
                return Some(Divergence::RunError {
                    stage: "thread".into(),
                    detail: e,
                })
            }
        }
    }

    // Executor conformance: async executor (memory + movement; same
    // wall-clock caveat as threads).
    if cfg.async_exec {
        match run_async(&prog, tp.nprocs) {
            Ok(fp) => {
                if let Some(d) = conform(&base, &fp, false) {
                    return Some(Divergence::ExecutorMismatch {
                        backend: "async".into(),
                        detail: d,
                    });
                }
            }
            Err(e) => {
                return Some(Divergence::RunError {
                    stage: "async".into(),
                    detail: e,
                })
            }
        }
    }

    // Executor conformance: compiled VM on the same simulated machine.
    // The VM is fully deterministic, so every fingerprint component must
    // match to the bit — including the section-state digest.
    if cfg.vm {
        match run_vm(&prog, tp.nprocs, None) {
            Ok(fp) => {
                if let Some(d) = conform(&base, &fp, true) {
                    return Some(Divergence::ExecutorMismatch {
                        backend: "vm".into(),
                        detail: d,
                    });
                }
            }
            Err(e) => {
                return Some(Divergence::RunError {
                    stage: "vm".into(),
                    detail: e,
                })
            }
        }
    }

    // Memory-bounded planning conformance: re-run the simulator with the
    // runtime redistribution planner under a budget. The budgeted plans
    // may slice pieces across more rounds, so movement and message
    // counts legitimately differ — but observable memory must not.
    if let Some(budget) = cfg.mem_budget {
        match run_sim_budget(&prog, tp.nprocs, None, Some(budget)) {
            Ok(fp) => {
                if let Some(d) = diff_lines("memory", &base.memory_all(), &fp.memory_all()) {
                    return Some(Divergence::MemBoundMismatch { detail: d });
                }
            }
            Err(e) => {
                return Some(Divergence::RunError {
                    stage: "membound".into(),
                    detail: e,
                })
            }
        }
    }

    // Per-pass-prefix equivalence over the observable arrays.
    if cfg.passes {
        if let Some(d) = check_passes(tp, &default_passes(), &base) {
            return Some(d);
        }
    }

    // Chaos conformance.
    if cfg.chaos {
        let plan = cfg
            .faults
            .clone()
            .unwrap_or_else(|| default_chaos_plan(tp.seed));
        if let Some(d) = check_chaos(tp, &base, &plan) {
            return Some(d);
        }
    }
    None
}

/// Conformance of `other` to the baseline `base` for the same program.
fn conform(base: &Fingerprint, other: &Fingerprint, states: bool) -> Option<String> {
    if let Some(d) = diff_lines("memory", &base.memory_all(), &other.memory_all()) {
        return Some(d);
    }
    if let Some(d) = diff_lines("movement", &base.movement, &other.movement) {
        return Some(d);
    }
    if states {
        if let Some(d) = diff_lines("states", &base.states, &other.states) {
            return Some(d);
        }
    }
    if base.messages != other.messages {
        return Some(format!("messages: {} vs {}", base.messages, other.messages));
    }
    None
}

/// Check every prefix of `passes` against the unoptimized baseline
/// (`base` must be the baseline fingerprint of `tp.program`). Observable
/// memory only: optimizations legitimately change movement and scratch.
pub fn check_passes(
    tp: &TestProgram,
    passes: &[(&'static str, Box<dyn Pass>)],
    base: &Fingerprint,
) -> Option<Divergence> {
    let base_mem = base.memory_of(&tp.observable);
    let mut cur = tp.program.clone();
    for (name, pass) in passes {
        let out = catch_unwind(AssertUnwindSafe(|| pass.run(&cur).program));
        cur = match out {
            Ok(p) => p,
            Err(e) => {
                return Some(Divergence::PassMismatch {
                    pass: name.to_string(),
                    detail: panic_text(e),
                })
            }
        };
        let fp = match run_sim(&Arc::new(cur.clone()), tp.nprocs, None) {
            Ok(fp) => fp,
            Err(e) => {
                return Some(Divergence::PassMismatch {
                    pass: name.to_string(),
                    detail: format!("run after prefix failed: {e}"),
                })
            }
        };
        if let Some(d) = diff_lines(
            "observable memory",
            &base_mem,
            &fp.memory_of(&tp.observable),
        ) {
            return Some(Divergence::PassMismatch {
                pass: name.to_string(),
                detail: d,
            });
        }
    }
    None
}

/// Baseline-only convenience used by pass-bug hunts (no thread/chaos):
/// runs the simulator baseline, then the pass prefixes.
pub fn check_passes_only(
    tp: &TestProgram,
    passes: &[(&'static str, Box<dyn Pass>)],
) -> Option<Divergence> {
    let base = match run_sim(&Arc::new(tp.program.clone()), tp.nprocs, None) {
        Ok(fp) => fp,
        Err(e) => {
            return Some(Divergence::RunError {
                stage: "sim".into(),
                detail: e,
            })
        }
    };
    check_passes(tp, passes, &base)
}

/// The faulty run must reconstruct the lossless memory image and message
/// count. A `MessageLost` diagnosis is only acceptable when the plan
/// itself contains permanent kills.
pub fn check_chaos(tp: &TestProgram, base: &Fingerprint, plan: &FaultPlan) -> Option<Divergence> {
    match run_sim(&Arc::new(tp.program.clone()), tp.nprocs, Some(plan)) {
        Ok(fp) => {
            if let Some(d) = diff_lines("memory", &base.memory_all(), &fp.memory_all()) {
                return Some(Divergence::ChaosMismatch { detail: d });
            }
            if base.messages != fp.messages {
                return Some(Divergence::ChaosMismatch {
                    detail: format!(
                        "messages: {} lossless vs {} faulty (dedup must not double-count)",
                        base.messages, fp.messages
                    ),
                });
            }
            None
        }
        Err(e) => {
            if !plan.kill.is_empty() && e.contains("permanently lost") {
                // An injected permanent kill was correctly diagnosed.
                return None;
            }
            Some(Divergence::ChaosMismatch {
                detail: format!("faulty run failed: {e}"),
            })
        }
    }
}

/// Re-run only the stage a divergence key implicates (the shrinker calls
/// this hundreds of times; skipping unrelated stages keeps it fast).
pub fn recheck_key(tp: &TestProgram, key: &str) -> Option<Divergence> {
    let cfg = CheckConfig {
        thread: key == "executor:thread" || key == "run-error:thread",
        async_exec: key == "executor:async" || key == "run-error:async",
        vm: key == "executor:vm" || key == "run-error:vm",
        chaos: key == "chaos",
        faults: None,
        passes: key.starts_with("pass:"),
        mem_budget: (key == "plan:membound" || key == "run-error:membound")
            .then_some(DEFAULT_CHECK_BUDGET),
    };
    check_with(tp, &cfg).filter(|d| d.key() == key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::executable_program;

    #[test]
    fn default_passes_match_paper_pipeline_names() {
        let names: Vec<&str> = default_passes().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec![
                "elide-same-owner-comm",
                "vectorize-messages",
                "localize-bounds",
                "bind-communication",
                "elide-accessible-checks"
            ]
        );
        for (claimed, pass) in default_passes() {
            assert_eq!(claimed, pass.name());
        }
    }

    #[test]
    fn a_generated_program_passes_all_checks() {
        let tp = executable_program(7);
        assert!(check_program(&tp).is_none());
    }

    #[test]
    fn divergence_keys_are_stable() {
        let d = Divergence::PassMismatch {
            pass: "vectorize-messages".into(),
            detail: "x".into(),
        };
        assert_eq!(d.key(), "pass:vectorize-messages");
        assert!(d.to_string().contains("pass:vectorize-messages"));
        let d = Divergence::ExecutorMismatch {
            backend: "thread".into(),
            detail: "y".into(),
        };
        assert_eq!(d.key(), "executor:thread");
    }
}
