//! The lockstep executor: a third, deliberately boring way to run a
//! program.
//!
//! Processors advance strictly round-robin, one interpreter step per
//! round, and a posted receive completes the moment a matching send
//! exists — there is no notion of time, cost, or concurrency. Any program
//! whose fingerprint depends on scheduling or message timing will
//! therefore disagree with [`xdp_core::SimExec`] (virtual-time order) or
//! [`xdp_core::ThreadExec`] (real concurrency), which is exactly what the
//! differential driver wants to detect.
//!
//! Trace emission mirrors the other executors event-for-event (`SendInit`,
//! `RecvPost`, `WireTransit`, `RecvComplete`, and the section-state
//! instants), so [`xdp_trace::Trace::movement_multiset`] is directly
//! comparable across all three backends.

use std::sync::Arc;
use xdp_core::{Action, Gathered, Interp, KernelRegistry, RtError};
use xdp_ir::{Program, VarId};
use xdp_runtime::{Msg, Tag, Value};
use xdp_trace::{Trace, TraceConfig, TraceEvent, TraceKind};

/// Configuration for [`Lockstep`].
#[derive(Clone, Debug)]
pub struct LockstepConfig {
    /// Number of processors.
    pub nprocs: usize,
    /// Checked runtime?
    pub checked: bool,
    /// What to record in the execution trace.
    pub trace: TraceConfig,
    /// Abort after this many scheduling rounds (runaway-program guard).
    pub max_rounds: u64,
}

impl LockstepConfig {
    /// Defaults: checked, full tracing (the fingerprint needs it).
    pub fn new(nprocs: usize) -> LockstepConfig {
        LockstepConfig {
            nprocs,
            checked: true,
            trace: TraceConfig::full(),
            max_rounds: 50_000_000,
        }
    }
}

/// Result of a lockstep run.
#[derive(Debug)]
pub struct LockstepReport {
    /// Scheduling rounds taken.
    pub rounds: u64,
    /// Messages placed on the (virtual) wire, multicast copies included.
    pub messages: u64,
    /// Recorded trace; timestamps are round numbers.
    pub trace: Trace,
}

#[derive(Clone, Copy, PartialEq)]
enum ProcState {
    Running,
    AtBarrier,
    Done,
}

/// One undelivered message copy.
struct PendingSend {
    msg: Msg,
    /// `None`: claimable by any processor's matching receive.
    dest: Option<usize>,
}

/// The lockstep executor. Mirrors [`xdp_core::SimExec`]'s
/// init/run/gather API.
pub struct Lockstep {
    cfg: LockstepConfig,
    interps: Vec<Interp>,
    names: Vec<String>,
}

impl Lockstep {
    /// Load `program` onto every processor.
    pub fn new(program: Arc<Program>, kernels: KernelRegistry, cfg: LockstepConfig) -> Lockstep {
        let program = xdp_collectives::prepare_arc(program);
        let names = program.decls.iter().map(|d| d.name.clone()).collect();
        let interps = (0..cfg.nprocs)
            .map(|pid| {
                Interp::new(
                    program.clone(),
                    kernels.clone(),
                    pid,
                    cfg.nprocs,
                    cfg.checked,
                )
            })
            .collect();
        Lockstep {
            cfg,
            interps,
            names,
        }
    }

    /// Initialize an exclusive array (owned elements on each processor).
    pub fn init_exclusive(&mut self, var: VarId, f: impl Fn(&[i64]) -> Value) {
        for interp in &mut self.interps {
            let full = interp.env.full_section(var);
            for idx in full.iter() {
                let _ = interp.env.symtab.write(var, &idx, f(&idx));
            }
        }
    }

    /// Run all processors to completion, round-robin.
    pub fn run(&mut self) -> Result<LockstepReport, RtError> {
        let n = self.cfg.nprocs;
        let tcfg = self.cfg.trace;
        let mut trace = Trace::new(n);
        let mut sends: Vec<PendingSend> = Vec::new();
        let mut recv_sid: std::collections::HashMap<(usize, u64), u32> =
            std::collections::HashMap::new();
        let mut states = vec![ProcState::Running; n];
        let mut messages = 0u64;
        let mut round = 0u64;
        loop {
            round += 1;
            if round > self.cfg.max_rounds {
                return Err(RtError::Deadlock(format!(
                    "lockstep: round limit {} exceeded",
                    self.cfg.max_rounds
                )));
            }
            let t = round as f64;
            let mut progress = false;

            for (p, state) in states.iter_mut().enumerate() {
                // Complete every already-matchable outstanding receive —
                // including for finished processors still draining.
                loop {
                    let mut completed = false;
                    for (req, tag) in self.interps[p].outstanding() {
                        if let Some(msg) = claim(&mut sends, &tag, p) {
                            emit_completion(
                                &mut trace,
                                tcfg,
                                &self.names,
                                &recv_sid,
                                p,
                                req,
                                &msg,
                                t,
                            );
                            recv_sid.remove(&(p, req));
                            self.interps[p].complete_recv(req, msg)?;
                            completed = true;
                            progress = true;
                            break;
                        }
                    }
                    if !completed {
                        break;
                    }
                }
                if *state != ProcState::Running {
                    continue;
                }
                let out = self.interps[p].step()?;
                let sid = out.sid;
                match out.action {
                    Action::Continue => progress = true,
                    Action::Done => {
                        *state = ProcState::Done;
                        progress = true;
                    }
                    Action::Send { msg, dest } => {
                        progress = true;
                        if tcfg.spans {
                            trace.push(TraceEvent {
                                sid,
                                var: self.names.get(msg.tag.var.index()).cloned(),
                                sec: Some(msg.tag.sec.to_string()),
                                bytes: msg.payload_bytes(),
                                ..TraceEvent::span(TraceKind::SendInit, p, t, t)
                            });
                        }
                        match dest {
                            None => {
                                messages += 1;
                                sends.push(PendingSend { msg, dest: None });
                            }
                            Some(pids) => {
                                // Multicast: one bound copy per destination.
                                for q in pids {
                                    messages += 1;
                                    sends.push(PendingSend {
                                        msg: msg.clone(),
                                        dest: Some(q),
                                    });
                                }
                            }
                        }
                    }
                    Action::PostRecv { tag, req_id } => {
                        progress = true;
                        if tcfg.spans {
                            trace.push(TraceEvent {
                                sid,
                                var: self.names.get(tag.var.index()).cloned(),
                                sec: Some(tag.sec.to_string()),
                                msg_id: Some(req_id),
                                ..TraceEvent::span(TraceKind::RecvPost, p, t, t)
                            });
                        }
                        if tcfg.instants {
                            trace.push(TraceEvent {
                                sid,
                                var: self.names.get(tag.var.index()).cloned(),
                                sec: Some(tag.sec.to_string()),
                                detail: Some("transitional".into()),
                                ..TraceEvent::instant(TraceKind::SectionState, p, t)
                            });
                        }
                        if let Some(s) = sid {
                            recv_sid.insert((p, req_id), s);
                        }
                    }
                    Action::BlockOn { var, sec } => {
                        // No matching send yet (the drain above ran first):
                        // not progress. A permanently unmatched receive
                        // surfaces as global no-progress below.
                        let gating = self.interps[p].outstanding_for(var, &sec);
                        if gating.is_empty() {
                            return Err(RtError::Deadlock(format!(
                                "lockstep p{p}: blocked on {var:?}{sec} with no outstanding receive"
                            )));
                        }
                    }
                    Action::Barrier => {
                        *state = ProcState::AtBarrier;
                        progress = true;
                    }
                }
            }

            // Barrier release: every unfinished processor has arrived.
            let unfinished_at_barrier = states
                .iter()
                .all(|s| matches!(s, ProcState::AtBarrier | ProcState::Done));
            if unfinished_at_barrier && states.contains(&ProcState::AtBarrier) {
                for (p, state) in states.iter_mut().enumerate() {
                    if *state == ProcState::AtBarrier {
                        self.interps[p].pass_barrier();
                        *state = ProcState::Running;
                    }
                }
                progress = true;
            }

            let all_done = states.iter().all(|s| *s == ProcState::Done)
                && self.interps.iter().all(|i| i.outstanding().is_empty());
            if all_done {
                break;
            }
            if !progress {
                let detail: Vec<String> = (0..n)
                    .map(|p| format!("p{p}: {}", self.interps[p].position()))
                    .collect();
                return Err(RtError::Deadlock(format!(
                    "lockstep: no progress in round {round}; {}",
                    detail.join("; ")
                )));
            }
        }
        trace.end = round as f64;
        Ok(LockstepReport {
            rounds: round,
            messages,
            trace,
        })
    }

    /// Gather the global contents of an exclusive array after execution.
    pub fn gather(&self, var: VarId) -> Gathered {
        let tables: Vec<&xdp_runtime::RtSymbolTable> =
            self.interps.iter().map(|i| &i.env.symtab).collect();
        let full = self.interps[0].env.full_section(var);
        xdp_core::report::gather_var(var, &tables, &full)
    }
}

/// Take the first pending send matching `tag` addressed to `dst` (or to
/// anyone).
fn claim(sends: &mut Vec<PendingSend>, tag: &Tag, dst: usize) -> Option<Msg> {
    let k = sends
        .iter()
        .position(|s| s.msg.tag == *tag && s.dest.map(|d| d == dst).unwrap_or(true))?;
    Some(sends.remove(k).msg)
}

/// Wire-transit + recv-complete + accessibility, mirroring the other
/// executors' delivery recording.
#[allow(clippy::too_many_arguments)]
fn emit_completion(
    trace: &mut Trace,
    tcfg: TraceConfig,
    names: &[String],
    recv_sid: &std::collections::HashMap<(usize, u64), u32>,
    pid: usize,
    req: u64,
    msg: &Msg,
    t: f64,
) {
    if !tcfg.enabled() {
        return;
    }
    let sid = recv_sid.get(&(pid, req)).copied();
    let var = names.get(msg.tag.var.index()).cloned();
    let sec = Some(msg.tag.sec.to_string());
    let bytes = msg.payload_bytes();
    if tcfg.messages {
        trace.push(TraceEvent {
            sid,
            var: var.clone(),
            sec: sec.clone(),
            bytes,
            src: Some(msg.src as u32),
            msg_id: Some(req),
            ..TraceEvent::span(TraceKind::WireTransit, pid, t, t)
        });
    }
    if tcfg.spans {
        trace.push(TraceEvent {
            sid,
            var: var.clone(),
            sec: sec.clone(),
            bytes,
            msg_id: Some(req),
            ..TraceEvent::span(TraceKind::RecvComplete, pid, t, t)
        });
    }
    if tcfg.instants {
        trace.push(TraceEvent {
            sid,
            var,
            sec,
            detail: Some("accessible".into()),
            ..TraceEvent::instant(TraceKind::SectionState, pid, t)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdp_ir::build as b;
    use xdp_ir::{DimDist, ElemType, ProcGrid};

    /// The thread-executor's canonical example: A[i] += B[i] via messages.
    fn simple(n: i64, nprocs: usize) -> (Arc<Program>, VarId, VarId) {
        let mut p = Program::new();
        let grid = ProcGrid::linear(nprocs);
        let a = p.declare(b::array(
            "A",
            ElemType::F64,
            vec![(1, n)],
            vec![DimDist::Block],
            grid.clone(),
        ));
        let bb = p.declare(b::array(
            "B",
            ElemType::F64,
            vec![(1, n)],
            vec![DimDist::Cyclic],
            grid.clone(),
        ));
        let t = p.declare(b::array(
            "T",
            ElemType::F64,
            vec![(0, nprocs as i64 - 1)],
            vec![DimDist::Block],
            grid,
        ));
        let ai = b::sref(a, vec![b::at(b::iv("i"))]);
        let bi = b::sref(bb, vec![b::at(b::iv("i"))]);
        let tm = b::sref(t, vec![b::at(b::mypid())]);
        p.body = vec![b::do_loop(
            "i",
            b::c(1),
            b::c(n),
            vec![
                b::guarded(b::iown(bi.clone()), vec![b::send(bi.clone())]),
                b::guarded(
                    b::iown(ai.clone()),
                    vec![
                        b::recv_val(tm.clone(), bi.clone()),
                        b::guarded(
                            b::await_(tm.clone()),
                            vec![b::assign(
                                ai.clone(),
                                b::val(ai.clone()).add(b::val(tm.clone())),
                            )],
                        ),
                    ],
                ),
            ],
        )];
        (Arc::new(p), a, bb)
    }

    #[test]
    fn lockstep_runs_the_canonical_comm_loop() {
        let n = 16;
        let (prog, a, bb) = simple(n, 4);
        let mut exec = Lockstep::new(prog, KernelRegistry::standard(), LockstepConfig::new(4));
        exec.init_exclusive(a, |idx| Value::F64(idx[0] as f64));
        exec.init_exclusive(bb, |idx| Value::F64(100.0 * idx[0] as f64));
        let r = exec.run().unwrap();
        assert_eq!(r.messages, n as u64);
        let g = exec.gather(a);
        for i in 1..=n {
            assert_eq!(g.get(&[i]).unwrap().as_f64(), 101.0 * i as f64);
        }
    }

    #[test]
    fn lockstep_movement_matches_simulator() {
        let n = 12;
        let (prog, a, bb) = simple(n, 3);
        let mut ls = Lockstep::new(
            prog.clone(),
            KernelRegistry::standard(),
            LockstepConfig::new(3),
        );
        ls.init_exclusive(a, |_| Value::F64(0.0));
        ls.init_exclusive(bb, |_| Value::F64(1.0));
        let lr = ls.run().unwrap();

        let mut sim = xdp_core::SimExec::new(
            prog,
            KernelRegistry::standard(),
            xdp_core::SimConfig::new(3).with_trace(TraceConfig::full()),
        );
        sim.init_exclusive(a, |_| Value::F64(0.0));
        sim.init_exclusive(bb, |_| Value::F64(1.0));
        let sr = sim.run().unwrap();

        assert_eq!(lr.trace.movement_multiset(), sr.trace.movement_multiset());
        for i in 1..=n {
            assert_eq!(ls.gather(a).get(&[i]), sim.gather(a).get(&[i]), "i={i}");
        }
    }

    #[test]
    fn lockstep_diagnoses_deadlock() {
        // A receive nothing ever sends to.
        let mut p = Program::new();
        let a = p.declare(b::array(
            "A",
            ElemType::F64,
            vec![(1, 4)],
            vec![DimDist::Block],
            ProcGrid::linear(2),
        ));
        let all = b::sref(a, vec![b::all()]);
        let mine = b::sref(a, vec![b::span(b::mylb(all.clone(), 1), b::myub(all, 1))]);
        p.body = vec![
            b::recv_val(mine.clone(), mine.clone()),
            b::guarded(b::await_(mine), vec![]),
        ];
        let mut exec = Lockstep::new(
            Arc::new(p),
            KernelRegistry::standard(),
            LockstepConfig::new(2),
        );
        match exec.run() {
            Err(RtError::Deadlock(d)) => assert!(d.contains("no progress"), "{d}"),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }
}
