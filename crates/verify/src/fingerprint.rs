//! The execution fingerprint oracle.
//!
//! A fingerprint renders everything observable about a run as sorted
//! line multisets, so "two executions agree" reduces to string equality
//! and the first differing line names the disagreement:
//!
//! * **memory** — the final global contents of each declared array as
//!   gathered from the owning processors (`name[index] p<owner> = value`),
//!   grouped per declaration so comparisons can be restricted to the
//!   observable arrays;
//! * **movement** — [`xdp_trace::Trace::movement_multiset`]: every
//!   `SendInit`/`RecvPost`/`RecvComplete`/`WireTransit` event, stripped of
//!   timing;
//! * **states** — the section-state instants (`transitional`/`accessible`)
//!   each processor observed.
//!
//! All generated programs compute dyadic-exact `f64` values, so memory
//! lines compare bit-for-bit (`{:?}` on `f64` is shortest-roundtrip).

use std::collections::BTreeMap;
use xdp_core::Gathered;
use xdp_trace::{Trace, TraceKind};

/// One run's observable outcome.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Fingerprint {
    /// Per-declaration memory image lines, keyed by declared name.
    pub memory: BTreeMap<String, Vec<String>>,
    /// Sorted movement multiset.
    pub movement: Vec<String>,
    /// Sorted section-state digest.
    pub states: Vec<String>,
    /// Wire messages (multicast copies counted individually).
    pub messages: u64,
}

impl Fingerprint {
    /// Memory lines for the given declarations, in declaration order.
    pub fn record_memory(&mut self, name: &str, g: &Gathered) {
        let lines = g
            .values
            .iter()
            .map(|(idx, (owner, val))| format!("{name}{idx:?} p{owner} = {val:?}"))
            .collect();
        self.memory.insert(name.to_string(), lines);
    }

    /// Capture the movement multiset and state digest from a trace.
    pub fn record_trace(&mut self, trace: &Trace) {
        self.movement = trace.movement_multiset();
        self.states = state_digest(trace);
    }

    /// Memory restricted to `names` (pass-equivalence ignores scratch).
    pub fn memory_of(&self, names: &[String]) -> Vec<String> {
        let mut out = Vec::new();
        for n in names {
            if let Some(lines) = self.memory.get(n) {
                out.extend(lines.iter().cloned());
            }
        }
        out
    }

    /// All memory lines.
    pub fn memory_all(&self) -> Vec<String> {
        self.memory.values().flatten().cloned().collect()
    }
}

/// Sorted multiset of section-state instants.
pub fn state_digest(trace: &Trace) -> Vec<String> {
    let mut keys: Vec<String> = trace
        .events
        .iter()
        .filter(|e| e.kind == TraceKind::SectionState)
        .map(|e| {
            format!(
                "state p{} var={} sec={} {}",
                e.pid,
                e.var.as_deref().unwrap_or("-"),
                e.sec.as_deref().unwrap_or("-"),
                e.detail.as_deref().unwrap_or("-"),
            )
        })
        .collect();
    keys.sort();
    keys
}

/// Compare two line multisets; `None` if equal, otherwise a short report
/// naming the first divergence.
pub fn diff_lines(what: &str, a: &[String], b: &[String]) -> Option<String> {
    if a == b {
        return None;
    }
    for (k, (la, lb)) in a.iter().zip(b.iter()).enumerate() {
        if la != lb {
            return Some(format!(
                "{what}: line {k} differs\n  left:  {la}\n  right: {lb}"
            ));
        }
    }
    Some(format!(
        "{what}: {} vs {} lines (first extra: {})",
        a.len(),
        b.len(),
        if a.len() > b.len() {
            &a[b.len()]
        } else {
            &b[a.len()]
        }
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_lines_reports_first_difference() {
        let a = vec!["x".to_string(), "y".to_string()];
        let b = vec!["x".to_string(), "z".to_string()];
        let d = diff_lines("mem", &a, &b).unwrap();
        assert!(d.contains("line 1"), "{d}");
        assert!(d.contains("y") && d.contains("z"), "{d}");
        assert!(diff_lines("mem", &a, &a).is_none());
    }

    #[test]
    fn diff_lines_reports_length_mismatch() {
        let a = vec!["x".to_string()];
        let b = vec!["x".to_string(), "extra".to_string()];
        let d = diff_lines("mov", &a, &b).unwrap();
        assert!(d.contains("1 vs 2"), "{d}");
        assert!(d.contains("extra"), "{d}");
    }

    #[test]
    fn memory_of_filters_by_name() {
        let mut fp = Fingerprint::default();
        fp.memory
            .insert("A".into(), vec!["A[1] p0 = F64(1.0)".into()]);
        fp.memory
            .insert("T0".into(), vec!["T0[0] p0 = F64(2.0)".into()]);
        assert_eq!(fp.memory_of(&["A".to_string()]).len(), 1);
        assert_eq!(fp.memory_all().len(), 2);
    }
}
