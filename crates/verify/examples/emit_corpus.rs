//! Dev utility: regenerate the seed corpus under `corpus/`.
//!
//! ```text
//! cargo run -p xdp-verify --example emit_corpus
//! ```

use xdp_ir::build as b;
use xdp_ir::{pretty, DimDist, ElemExpr, ElemType, ProcGrid, Program};
use xdp_verify::gen::executable_program;

fn regression_nested_shadowed_do_loop() -> Program {
    let mut p = Program::new();
    let grid = ProcGrid::linear(4);
    let a = p.declare(b::array(
        "A",
        ElemType::F64,
        vec![(1, 12)],
        vec![DimDist::Block],
        grid.clone(),
    ));
    p.declare(b::array(
        "B",
        ElemType::C64,
        vec![(1, 12)],
        vec![DimDist::Cyclic],
        grid.clone(),
    ));
    p.declare(b::array(
        "C",
        ElemType::I64,
        vec![(1, 12)],
        vec![DimDist::BlockCyclic(2)],
        grid,
    ));
    let a1 = b::sref(a, vec![b::at(b::c(1))]);
    p.body = vec![b::do_loop(
        "i",
        b::c(1),
        b::c(1),
        vec![b::do_loop(
            "i",
            b::c(1),
            b::c(1),
            vec![b::assign(
                a1.clone(),
                ElemExpr::FromInt(b::mypid()).add(b::val(a1)),
            )],
        )],
    )];
    p
}

fn main() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/corpus");
    std::fs::create_dir_all(dir).unwrap();
    let write = |name: &str, header: &str, p: &Program| {
        let text = format!("// {header}\n{}", pretty::program(p));
        std::fs::write(format!("{dir}/{name}.xdp"), text).unwrap();
        println!("wrote {dir}/{name}.xdp");
    };
    write(
        "nested-shadowed-do-loop",
        "proptest regression (2026-07): nested do-loops shadowing `i` \
         around a self-referencing assignment",
        &regression_nested_shadowed_do_loop(),
    );
    for seed in [7u64, 19, 42] {
        let tp = executable_program(seed);
        write(
            &format!("executable-seed-{seed}"),
            &format!(
                "xdp-verify executable generator, seed={seed} nprocs={}",
                tp.nprocs
            ),
            &tp.program,
        );
    }
}
