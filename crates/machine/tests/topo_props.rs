//! Property tests of the hierarchical (tiered) topology: hop symmetry,
//! self-distance, tier/hop consistency, monotonicity of tier with
//! enclosure, and size validation at the extent boundary.

use proptest::prelude::*;
use xdp_machine::{Tier, Topology};

/// Random tiered shapes kept small enough to enumerate all pid pairs.
fn shape() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..5, 1usize..4, 1usize..4)
}

/// Coordinates of a pid in a tiered machine.
fn coords(pid: usize, ppn: usize, npr: usize) -> (usize, usize) {
    (pid / ppn, pid / (ppn * npr))
}

fn assert_symmetric_and_zero_iff_self(ppn: usize, npr: usize, racks: usize) {
    let topo = Topology::tiered(ppn, npr, racks);
    let n = ppn * npr * racks;
    for a in 0..n {
        for b in 0..n {
            assert_eq!(topo.hops(a, b), topo.hops(b, a), "symmetry {a} {b}");
            assert_eq!(topo.hops(a, b) == 0, a == b, "zero iff self {a} {b}");
        }
    }
}

fn assert_tier_matches_enclosure(ppn: usize, npr: usize, racks: usize) {
    let topo = Topology::tiered(ppn, npr, racks);
    let n = ppn * npr * racks;
    for a in 0..n {
        for b in 0..n {
            if a == b {
                continue;
            }
            let link = topo.link(a, b);
            let (na, ra) = coords(a, ppn, npr);
            let (nb, rb) = coords(b, ppn, npr);
            let want = if na == nb {
                Tier::Node
            } else if ra == rb {
                Tier::Rack
            } else {
                Tier::Cluster
            };
            assert_eq!(link.tier, want, "tier of {a} {b}");
            // One tier step, one extra hop: Node=1, Rack=2, Cluster=3.
            assert_eq!(link.hops, want as u32 + 1, "hops of {a} {b}");
        }
    }
}

/// A peer sharing my node is never further (in hops) than a peer sharing
/// only my rack, which is never further than a cross-rack peer — the
/// cheapest-first ordering of the `Tier` enum is real distance.
fn assert_tier_monotone(ppn: usize, npr: usize, racks: usize) {
    let topo = Topology::tiered(ppn, npr, racks);
    let n = ppn * npr * racks;
    for a in 0..n {
        let mut per_tier: [Option<u32>; 3] = [None, None, None];
        for b in 0..n {
            if a == b {
                continue;
            }
            let link = topo.link(a, b);
            let slot = &mut per_tier[link.tier as usize];
            *slot = Some(slot.map_or(link.hops, |h| h.max(link.hops)));
        }
        let mut last = 0;
        for hops in per_tier.iter().flatten() {
            assert!(*hops > last, "hops strictly grow across tiers");
            last = *hops;
        }
    }
}

fn assert_validation_boundary(ppn: usize, npr: usize, racks: usize) {
    let topo = Topology::tiered(ppn, npr, racks);
    let extent = ppn * npr * racks;
    assert_eq!(topo.extent(), Some(extent));
    for ok in 1..=extent {
        assert!(topo.validate(ok).is_ok(), "{ok} pids fit");
    }
    let err = topo.validate(extent + 1).unwrap_err();
    assert!(err.to_string().contains("fall off"), "{err}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn hops_are_symmetric_and_zero_iff_self(s in shape()) {
        let (ppn, npr, racks) = s;
        assert_symmetric_and_zero_iff_self(ppn, npr, racks);
    }

    #[test]
    fn tier_matches_enclosure_and_hops_grow_with_tier(s in shape()) {
        let (ppn, npr, racks) = s;
        assert_tier_matches_enclosure(ppn, npr, racks);
    }

    #[test]
    fn tier_is_monotone_in_enclosure(s in shape()) {
        let (ppn, npr, racks) = s;
        assert_tier_monotone(ppn, npr, racks);
    }

    #[test]
    fn validation_accepts_the_extent_and_rejects_one_more(s in shape()) {
        let (ppn, npr, racks) = s;
        assert_validation_boundary(ppn, npr, racks);
    }
}
