//! Property tests for reliable delivery: an ack/retry transport under
//! drops, duplicates, reordering, and delays delivers exactly the same
//! message multiset as a lossless network — faults perturb timing, never
//! content — and fault replay is deterministic for a fixed seed.

use proptest::prelude::*;
use std::time::Duration;
use xdp_fault::{FaultPlan, LinkFault};
use xdp_ir::{ElemType, Section, TransferKind, Triplet, VarId};
use xdp_machine::{CostModel, SimNet, ThreadNet, Topology};
use xdp_runtime::{Buffer, Msg, Tag};

fn msg(salt: i64, src: usize, len: usize) -> Msg {
    Msg {
        tag: Tag::salted(VarId(0), Section::new(vec![Triplet::range(1, 2)]), salt),
        kind: TransferKind::Value,
        payload: Some(std::sync::Arc::new(Buffer::zeros(ElemType::F64, len))),
        src,
    }
}

fn payload_len(m: &Msg) -> usize {
    match m.payload.as_deref() {
        Some(Buffer::F64(v)) => v.len(),
        _ => 0,
    }
}

/// A fault plan aggressive enough to exercise every path but gentle
/// enough (drop < 1) that retry always converges within the budget.
fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (
        any::<u64>(),
        0.0f64..0.4,
        0.0f64..0.5,
        0.0f64..0.6,
        0.0f64..0.5,
    )
        .prop_map(|(seed, drop, dup, reorder, delay_p)| {
            let mut plan = FaultPlan::uniform(
                seed,
                LinkFault {
                    drop,
                    dup,
                    reorder,
                    delay_p,
                    delay: 80.0,
                },
            );
            plan.rto = 300.0; // µs on threads, virtual units in sim
            plan.max_retries = 32;
            plan
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // ThreadNet: the claimed multiset of (salt, payload length) under
    // faults equals the lossless one, regardless of seed or fault mix.
    #[test]
    fn threaded_faulty_delivery_equals_lossless(
        plan in arb_plan(),
        sizes in prop::collection::vec(1usize..40, 1..20),
    ) {
        let send_all = |net: &ThreadNet| {
            for (i, &len) in sizes.iter().enumerate() {
                net.send(msg(i as i64, 0, len), None);
            }
        };
        let recv_all = |net: &ThreadNet| -> Vec<(i64, usize)> {
            let mut got = Vec::new();
            for (i, _) in sizes.iter().enumerate() {
                let m = net
                    .recv(&msg(i as i64, 0, 1).tag, 1, Duration::from_secs(20))
                    .expect("reliable delivery must converge");
                got.push((m.tag.salt, payload_len(&m)));
            }
            got.sort_unstable();
            got
        };

        let lossless = ThreadNet::new(2);
        send_all(&lossless);
        let want = recv_all(&lossless);

        let faulty = ThreadNet::with_faults(2, plan);
        send_all(&faulty);
        let got = recv_all(&faulty);

        prop_assert_eq!(got, want);
        prop_assert_eq!(faulty.stats().messages, sizes.len() as u64,
            "dedup must not double-count claims");
        prop_assert_eq!(faulty.pending_messages(), 0);
        prop_assert_eq!(faulty.dead_letters(), 0);
    }

    // SimNet: the analytic retry model arrives at the same matches as a
    // fault-free run — same payloads, same match count — only later.
    #[test]
    fn sim_faulty_delivery_equals_lossless(
        plan in arb_plan(),
        sizes in prop::collection::vec(1usize..40, 1..20),
    ) {
        let run = |mut net: SimNet| -> (Vec<(i64, usize)>, f64) {
            for (i, &len) in sizes.iter().enumerate() {
                let m = msg(i as i64, 0, len);
                net.post_send(m, None, 10.0 * i as f64);
            }
            let mut got = Vec::new();
            let mut t_max = 0.0f64;
            for (i, _) in sizes.iter().enumerate() {
                let c = net
                    .post_recv(msg(i as i64, 0, 1).tag, 1, 0.0, i as u64 + 1)
                    .expect("reliable delivery must converge");
                t_max = t_max.max(c.arrive_at);
                got.push((c.msg.tag.salt, payload_len(&c.msg)));
            }
            got.sort_unstable();
            (got, t_max)
        };

        let (want, t_clean) =
            run(SimNet::new(2, CostModel::default_1993(), Topology::Uniform));
        let (got, t_faulty) = run(SimNet::with_faults(
            2,
            CostModel::default_1993(),
            Topology::Uniform,
            plan,
        ));
        prop_assert_eq!(got, want);
        prop_assert!(t_faulty >= t_clean,
            "faults may only delay: {} < {}", t_faulty, t_clean);
    }

    // Fixed seed => identical virtual-time delivery schedule in the sim,
    // run-to-run.
    #[test]
    fn sim_fault_schedule_is_reproducible(
        plan in arb_plan(),
        sizes in prop::collection::vec(1usize..40, 1..12),
    ) {
        let run = || -> Vec<(i64, u64)> {
            let mut net = SimNet::with_faults(
                2,
                CostModel::default_1993(),
                Topology::Uniform,
                plan.clone(),
            );
            for (i, &len) in sizes.iter().enumerate() {
                net.post_send(msg(i as i64, 0, len), None, 0.0);
            }
            (0..sizes.len())
                .map(|i| {
                    let c = net
                        .post_recv(msg(i as i64, 0, 1).tag, 1, 0.0, i as u64 + 1)
                        .expect("converges");
                    (c.msg.tag.salt, c.arrive_at.to_bits())
                })
                .collect()
        };
        prop_assert_eq!(run(), run());
    }
}
