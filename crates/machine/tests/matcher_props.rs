//! Property tests of the rendezvous matcher: conservation (nothing lost,
//! nothing duplicated), FIFO pairing, and destination filtering, under
//! random interleavings of posts.

use proptest::prelude::*;
use xdp_ir::{ElemType, Section, TransferKind, Triplet, VarId};
use xdp_machine::{CostModel, SimNet, Topology};
use xdp_runtime::{Buffer, Msg, Tag};

fn tag(k: u8) -> Tag {
    Tag::new(
        VarId(k as u32),
        Section::new(vec![Triplet::point(k as i64)]),
    )
}

fn msg(k: u8, src: usize) -> Msg {
    Msg {
        tag: tag(k),
        kind: TransferKind::Value,
        payload: Some(std::sync::Arc::new(Buffer::zeros(ElemType::F64, 1))),
        src,
    }
}

/// A random post: send or receive, on one of a few tags, from/at one of a
/// few processors, optionally destination-bound.
#[derive(Clone, Debug)]
enum Post {
    Send {
        k: u8,
        src: usize,
        bound_to: Option<usize>,
    },
    Recv {
        k: u8,
        dst: usize,
    },
}

fn post_strategy() -> impl Strategy<Value = Post> {
    prop_oneof![
        (0u8..3, 0usize..4, prop::option::of(0usize..4))
            .prop_map(|(k, src, bound_to)| Post::Send { k, src, bound_to }),
        (0u8..3, 0usize..4).prop_map(|(k, dst)| Post::Recv { k, dst }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn matcher_conserves_and_orders(posts in prop::collection::vec(post_strategy(), 0..60)) {
        let mut net = SimNet::new(4, CostModel::default_1993(), Topology::Uniform);
        let mut completions = Vec::new();
        let mut sends = 0usize;
        let mut recvs = 0usize;
        let mut req = 0u64;
        for (t, p) in posts.iter().enumerate() {
            let time = t as f64;
            match p {
                Post::Send { k, src, bound_to } => {
                    sends += 1;
                    let dest = bound_to.map(|q| vec![q]);
                    if let Some(c) = net.post_send(msg(*k, *src), dest, time) {
                        completions.push((c, time));
                    }
                }
                Post::Recv { k, dst } => {
                    recvs += 1;
                    req += 1;
                    if let Some(c) = net.post_recv(tag(*k), *dst, time, req) {
                        completions.push((c, time));
                    }
                }
            }
        }
        let (pend_s, pend_r) = net.pending();
        // Conservation: everything posted is either matched or pending.
        prop_assert_eq!(completions.len() + pend_s, sends, "sends conserved");
        prop_assert_eq!(completions.len() + pend_r, recvs, "recvs conserved");
        prop_assert_eq!(net.stats.messages as usize, completions.len());
        // Each receive request completed at most once.
        let mut reqs: Vec<u64> = completions.iter().map(|(c, _)| c.req_id).collect();
        reqs.sort_unstable();
        let before = reqs.len();
        reqs.dedup();
        prop_assert_eq!(before, reqs.len(), "request matched twice");
        // Bound messages only reached their destination.
        // (reconstruct: completions' msg.src and dst; cross-check against
        // the posts' bound_to by tag+src is ambiguous with duplicates, so
        // check the weaker but always-sound invariant: a completion's
        // arrival is never earlier than its send post.)
        for (c, _) in &completions {
            prop_assert!(c.arrive_at >= 0.0);
            prop_assert!(c.handling > 0.0);
        }
        // No message invented: pending detail mentions each pending post.
        let detail = net.pending_detail();
        prop_assert_eq!(detail.matches("unmatched send").count(), pend_s);
        prop_assert_eq!(detail.matches("unmatched recv").count(), pend_r);
    }

    /// Unbound single-tag FIFO: with everything on one tag and no binding,
    /// the k-th receive gets the k-th send (by post order).
    #[test]
    fn same_tag_fifo(nsends in 1usize..20, nrecvs in 1usize..20) {
        let mut net = SimNet::new(4, CostModel::default_1993(), Topology::Uniform);
        for s in 0..nsends {
            // Encode the send's order in its src pid modulo... use payload
            // size? Simpler: src cycles and arrival times increase.
            net.post_send(msg(0, s % 4), None, s as f64);
        }
        let mut got = Vec::new();
        for r in 0..nrecvs {
            if let Some(c) = net.post_recv(tag(0), r % 4, 100.0 + r as f64, r as u64) {
                got.push(c);
            }
        }
        // The i-th completed receive matched the i-th send: completions'
        // send times are strictly increasing.
        for w in got.windows(2) {
            let a = w[0].arrive_at;
            let b = w[1].arrive_at;
            prop_assert!(a <= b, "FIFO violated: {a} then {b}");
        }
        prop_assert_eq!(got.len(), nsends.min(nrecvs));
    }
}
