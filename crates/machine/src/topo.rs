//! Interconnect topologies, reduced to a hop count between processor pairs.
//!
//! Flat topologies (`Uniform`/`Linear`/`Mesh2D`) price every hop the
//! same. `Tiered` models a hierarchical machine — processors grouped
//! into nodes, nodes into racks, racks into one cluster — where each
//! crossing tier can carry its own α/β multiplier in
//! [`crate::CostModel`]. That is the setting where host/device or
//! intra/inter-rack asymmetry moves collective-algorithm crossovers.

/// The highest interconnect level a message must cross.
///
/// `Node` is the cheapest tier (intra-node links, also the tier every
/// flat topology reports); `Cluster` is the most expensive. The derived
/// ordering (`Node < Rack < Cluster`) is meaningful and relied on by
/// the tier-monotonicity property tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tier {
    /// Within one node (or any link of a flat topology).
    Node = 0,
    /// Between nodes of the same rack.
    Rack = 1,
    /// Between racks.
    Cluster = 2,
}

impl Tier {
    /// All tiers, cheapest first.
    pub const ALL: [Tier; 3] = [Tier::Node, Tier::Rack, Tier::Cluster];
}

/// A priced path between two pids: the hop count and the highest tier
/// the path crosses. Flat topologies always report [`Tier::Node`], so
/// [`crate::CostModel::link_time`] degenerates to `wire_time` on them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Link {
    /// Hop count (0 for self, else >= 1).
    pub hops: u32,
    /// Highest tier crossed.
    pub tier: Tier,
}

/// A machine whose pid space is larger than its topology can address.
///
/// `Mesh2D` and `Tiered` assign coordinates to exactly `extent` pids;
/// hop counts for pids beyond that are meaningless, so executors refuse
/// to run rather than silently simulate a machine that cannot exist.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TopologyError {
    /// Human-readable shape, e.g. `mesh 2x4`.
    pub topo: String,
    /// Processors the topology addresses.
    pub extent: usize,
    /// Processors the machine was asked to simulate.
    pub nprocs: usize,
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "topology {} addresses {} processors but the machine has {}: \
             pids {}..{} would fall off the interconnect",
            self.topo,
            self.extent,
            self.nprocs,
            self.extent,
            self.nprocs - 1
        )
    }
}

impl std::error::Error for TopologyError {}

/// The machine's interconnect shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Topology {
    /// Every pair one hop apart (crossbar / idealized).
    Uniform,
    /// Linear processor array; hops = |i - j|.
    Linear,
    /// 2-D mesh with row-major pids; hops = Manhattan distance.
    Mesh2D { rows: usize, cols: usize },
    /// Hierarchical machine: `procs_per_node` pids per node,
    /// `nodes_per_rack` nodes per rack, `racks` racks. Pids are dense:
    /// pid `p` sits on node `p / procs_per_node` and rack
    /// `p / (procs_per_node * nodes_per_rack)`. Hops grow with the tier
    /// crossed (1 intra-node, 2 intra-rack, 3 cross-rack) and the tier
    /// selects the α/β multipliers in [`crate::CostModel`].
    Tiered {
        procs_per_node: usize,
        nodes_per_rack: usize,
        racks: usize,
    },
}

impl Topology {
    /// A single-rack tiered machine (`nodes` nodes of `procs_per_node`).
    pub fn tiered(procs_per_node: usize, nodes_per_rack: usize, racks: usize) -> Topology {
        Topology::Tiered {
            procs_per_node,
            nodes_per_rack,
            racks,
        }
    }

    /// Hop count between two pids (0 for self, else >= 1).
    pub fn hops(&self, from: usize, to: usize) -> u32 {
        self.link(from, to).hops
    }

    /// Hop count plus the highest tier crossed between two pids.
    pub fn link(&self, from: usize, to: usize) -> Link {
        if from == to {
            return Link {
                hops: 0,
                tier: Tier::Node,
            };
        }
        let hops = match self {
            Topology::Uniform => 1,
            Topology::Linear => from.abs_diff(to) as u32,
            Topology::Mesh2D { cols, .. } => {
                let (r1, c1) = (from / cols, from % cols);
                let (r2, c2) = (to / cols, to % cols);
                (r1.abs_diff(r2) + c1.abs_diff(c2)) as u32
            }
            Topology::Tiered {
                procs_per_node,
                nodes_per_rack,
                ..
            } => {
                let (n1, n2) = (from / procs_per_node, to / procs_per_node);
                if n1 == n2 {
                    1
                } else if n1 / nodes_per_rack == n2 / nodes_per_rack {
                    2
                } else {
                    3
                }
            }
        };
        Link {
            hops,
            tier: self.tier(from, to),
        }
    }

    /// Highest tier a `from -> to` message crosses. Flat topologies are
    /// all [`Tier::Node`].
    pub fn tier(&self, from: usize, to: usize) -> Tier {
        match self {
            Topology::Tiered {
                procs_per_node,
                nodes_per_rack,
                ..
            } if from != to => {
                let (n1, n2) = (from / procs_per_node, to / procs_per_node);
                if n1 == n2 {
                    Tier::Node
                } else if n1 / nodes_per_rack == n2 / nodes_per_rack {
                    Tier::Rack
                } else {
                    Tier::Cluster
                }
            }
            _ => Tier::Node,
        }
    }

    /// How many pids the topology addresses, if bounded. `Uniform` and
    /// `Linear` extend to any machine size.
    pub fn extent(&self) -> Option<usize> {
        match self {
            Topology::Uniform | Topology::Linear => None,
            Topology::Mesh2D { rows, cols } => Some(rows * cols),
            Topology::Tiered {
                procs_per_node,
                nodes_per_rack,
                racks,
            } => Some(procs_per_node * nodes_per_rack * racks),
        }
    }

    /// Check that a machine of `nprocs` fits inside the topology.
    ///
    /// `Mesh2D` used to silently compute garbage Manhattan distances
    /// for pids beyond `rows * cols` (row index ran off the mesh);
    /// executors now call this before running.
    pub fn validate(&self, nprocs: usize) -> Result<(), TopologyError> {
        match self.extent() {
            Some(extent) if nprocs > extent => Err(TopologyError {
                topo: self.describe(),
                extent,
                nprocs,
            }),
            _ => Ok(()),
        }
    }

    /// Short human-readable shape for error messages.
    pub fn describe(&self) -> String {
        match self {
            Topology::Uniform => "uniform".to_string(),
            Topology::Linear => "linear".to_string(),
            Topology::Mesh2D { rows, cols } => format!("mesh {rows}x{cols}"),
            Topology::Tiered {
                procs_per_node,
                nodes_per_rack,
                racks,
            } => format!("tiered {procs_per_node}x{nodes_per_rack}x{racks}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform() {
        let t = Topology::Uniform;
        assert_eq!(t.hops(0, 0), 0);
        assert_eq!(t.hops(0, 7), 1);
    }

    #[test]
    fn linear() {
        let t = Topology::Linear;
        assert_eq!(t.hops(1, 4), 3);
        assert_eq!(t.hops(4, 1), 3);
    }

    #[test]
    fn mesh() {
        let t = Topology::Mesh2D { rows: 2, cols: 2 };
        // P0=(0,0) P1=(0,1) P2=(1,0) P3=(1,1)
        assert_eq!(t.hops(0, 3), 2);
        assert_eq!(t.hops(1, 2), 2);
        assert_eq!(t.hops(0, 1), 1);
        assert_eq!(t.hops(2, 2), 0);
    }

    #[test]
    fn tiered_hops_and_tiers() {
        // 2 procs/node, 2 nodes/rack, 2 racks => 8 pids.
        let t = Topology::tiered(2, 2, 2);
        assert_eq!(
            t.link(0, 0),
            Link {
                hops: 0,
                tier: Tier::Node
            }
        );
        assert_eq!(
            t.link(0, 1),
            Link {
                hops: 1,
                tier: Tier::Node
            }
        );
        assert_eq!(
            t.link(0, 2),
            Link {
                hops: 2,
                tier: Tier::Rack
            }
        );
        assert_eq!(
            t.link(0, 4),
            Link {
                hops: 3,
                tier: Tier::Cluster
            }
        );
        assert_eq!(
            t.link(3, 7),
            Link {
                hops: 3,
                tier: Tier::Cluster
            }
        );
        // Symmetry.
        assert_eq!(t.link(5, 0), t.link(0, 5));
    }

    #[test]
    fn flat_topologies_are_all_node_tier() {
        for t in [
            Topology::Uniform,
            Topology::Linear,
            Topology::Mesh2D { rows: 2, cols: 3 },
        ] {
            assert_eq!(t.tier(0, 5), Tier::Node);
        }
    }

    #[test]
    fn validate_rejects_oversized_machines() {
        let mesh = Topology::Mesh2D { rows: 2, cols: 2 };
        assert!(mesh.validate(4).is_ok());
        let err = mesh.validate(9).unwrap_err();
        assert_eq!(err.extent, 4);
        assert_eq!(err.nprocs, 9);
        assert!(err.to_string().contains("mesh 2x2"));
        assert!(err.to_string().contains("pids 4..8"));

        let tiered = Topology::tiered(2, 2, 2);
        assert!(tiered.validate(8).is_ok());
        assert!(tiered.validate(9).is_err());

        assert!(Topology::Uniform.validate(1 << 20).is_ok());
        assert!(Topology::Linear.validate(1 << 20).is_ok());
    }

    #[test]
    fn tier_ordering_is_cheapest_first() {
        assert!(Tier::Node < Tier::Rack && Tier::Rack < Tier::Cluster);
    }
}
