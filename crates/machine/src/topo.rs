//! Interconnect topologies, reduced to a hop count between processor pairs.

/// The machine's interconnect shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Topology {
    /// Every pair one hop apart (crossbar / idealized).
    Uniform,
    /// Linear processor array; hops = |i - j|.
    Linear,
    /// 2-D mesh with row-major pids; hops = Manhattan distance.
    Mesh2D { rows: usize, cols: usize },
}

impl Topology {
    /// Hop count between two pids (0 for self, else >= 1).
    pub fn hops(&self, from: usize, to: usize) -> u32 {
        if from == to {
            return 0;
        }
        match self {
            Topology::Uniform => 1,
            Topology::Linear => from.abs_diff(to) as u32,
            Topology::Mesh2D { cols, .. } => {
                let (r1, c1) = (from / cols, from % cols);
                let (r2, c2) = (to / cols, to % cols);
                (r1.abs_diff(r2) + c1.abs_diff(c2)) as u32
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform() {
        let t = Topology::Uniform;
        assert_eq!(t.hops(0, 0), 0);
        assert_eq!(t.hops(0, 7), 1);
    }

    #[test]
    fn linear() {
        let t = Topology::Linear;
        assert_eq!(t.hops(1, 4), 3);
        assert_eq!(t.hops(4, 1), 3);
    }

    #[test]
    fn mesh() {
        let t = Topology::Mesh2D { rows: 2, cols: 2 };
        // P0=(0,0) P1=(0,1) P2=(1,0) P3=(1,1)
        assert_eq!(t.hops(0, 3), 2);
        assert_eq!(t.hops(1, 2), 2);
        assert_eq!(t.hops(0, 1), 1);
        assert_eq!(t.hops(2, 2), 0);
    }
}
