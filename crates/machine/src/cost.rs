//! The parametric machine cost model.
//!
//! Times are in abstract microseconds of virtual time. Defaults approximate
//! an early-90s multicomputer (high per-message latency relative to flop
//! time), which is the regime in which XDP's message-count optimizations
//! matter most; every experiment harness sweeps the parameters that its
//! claim depends on.

use crate::topo::{Link, Tier};

/// Hockney/LogP-style cost parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Per-message network latency α (one hop), charged between send
    /// initiation and receive completion.
    pub alpha: f64,
    /// Per-byte transfer time β.
    pub beta: f64,
    /// Per-message CPU overhead o charged to the sender at initiation and
    /// to the receiver at completion (the LogP `o`).
    pub cpu_overhead: f64,
    /// Extra latency multiplier per additional hop (topology scaling).
    pub hop_factor: f64,
    /// Time per floating-point operation (kernels and element-wise
    /// assignments charge this).
    pub flop_time: f64,
    /// Fixed time per run-time symbol-table query (`iown`/`accessible`/
    /// `await` polls) — the run-time price of un-eliminated compute rules
    /// (§3.1).
    pub symtab_op_time: f64,
    /// Time per segment descriptor examined by a query — the §3.1 `iown()`
    /// algorithm scans the descriptor array, so finer segmentation makes
    /// every surviving compute rule slower.
    pub seg_scan_time: f64,
    /// Extra receiver-side time to match an *unbound* (name-carrying)
    /// message; compile-time-bound communication (§3.2) skips it.
    pub match_overhead: f64,
    /// Extra receiver-side time when a message arrives before its receive
    /// was posted (an *unexpected* message buffered by the eager protocol
    /// and copied on match); preposted receives (§3.2) avoid it. Charged as
    /// `unexpected_overhead + beta * bytes` (the extra copy).
    pub unexpected_overhead: f64,
    /// Per-tier multiplier on α, indexed by [`Tier`] (node / rack /
    /// cluster). All 1.0 by default, so flat topologies and untiered
    /// models are unchanged; a `Tiered` machine with 100x cross-rack
    /// latency sets `tier_alpha[Tier::Cluster] = 100.0`.
    pub tier_alpha: [f64; 3],
    /// Per-tier multiplier on β, indexed by [`Tier`]. All 1.0 by
    /// default.
    pub tier_beta: [f64; 3],
    /// Peak live-buffer budget (bytes, per processor) for redistribution
    /// planning. `None` plans for time only — the historical behavior.
    /// `Some(b)` makes the planner pick the fastest decomposition whose
    /// per-processor peak staging footprint fits `b`.
    pub mem_budget: Option<u64>,
}

impl CostModel {
    /// A 1993-flavored default: 100us message latency, 10MB/s network,
    /// ~10 MFLOP/s processors.
    pub fn default_1993() -> CostModel {
        CostModel {
            alpha: 100.0,
            beta: 0.1,
            cpu_overhead: 10.0,
            hop_factor: 0.2,
            flop_time: 0.1,
            symtab_op_time: 0.5,
            seg_scan_time: 0.05,
            match_overhead: 2.0,
            unexpected_overhead: 5.0,
            tier_alpha: [1.0; 3],
            tier_beta: [1.0; 3],
            mem_budget: None,
        }
    }

    /// Set the α/β multipliers of one tier (builder-style).
    pub fn with_tier_scale(mut self, tier: Tier, alpha_scale: f64, beta_scale: f64) -> CostModel {
        self.tier_alpha[tier as usize] = alpha_scale;
        self.tier_beta[tier as usize] = beta_scale;
        self
    }

    /// Set the per-processor peak-bytes budget for redistribution planning
    /// (builder-style).
    pub fn with_mem_budget(mut self, budget: u64) -> CostModel {
        self.mem_budget = Some(budget);
        self
    }

    /// A low-latency variant (latency 10x smaller) for crossover sweeps.
    pub fn low_latency() -> CostModel {
        CostModel {
            alpha: 10.0,
            beta: 0.01,
            ..CostModel::default_1993()
        }
    }

    /// A shared-address machine in the KSR1 mold (§3.2: "receives and
    /// sends might be translated as prefetch and poststore instructions"):
    /// transfers cost a cache-line-ish setup plus per-byte copy, no
    /// software rendezvous, no eager-buffer copies.
    pub fn shared_address() -> CostModel {
        CostModel {
            alpha: 2.0,
            beta: 0.02,
            cpu_overhead: 1.0,
            hop_factor: 0.0,
            match_overhead: 0.0,
            unexpected_overhead: 0.0,
            ..CostModel::default_1993()
        }
    }

    /// Free communication — isolates pure computation time.
    pub fn zero_comm() -> CostModel {
        CostModel {
            alpha: 0.0,
            beta: 0.0,
            cpu_overhead: 0.0,
            hop_factor: 0.0,
            match_overhead: 0.0,
            unexpected_overhead: 0.0,
            ..CostModel::default_1993()
        }
    }

    /// Wire time of a `bytes`-byte message over `hops` hops. A self
    /// message (`hops == 0`, the ownership-migration loopback case) pays
    /// only the copy cost, not network latency.
    pub fn wire_time(&self, bytes: u64, hops: u32) -> f64 {
        self.link_time(
            bytes,
            Link {
                hops,
                tier: Tier::Node,
            },
        )
    }

    /// Wire time of a `bytes`-byte message over `link`, with α and β
    /// scaled by the multipliers of the tier the link crosses. On flat
    /// topologies every link is [`Tier::Node`], so with default
    /// multipliers this is exactly [`CostModel::wire_time`].
    pub fn link_time(&self, bytes: u64, link: Link) -> f64 {
        let t = link.tier as usize;
        let beta = self.beta * self.tier_beta[t];
        if link.hops == 0 {
            return beta * bytes as f64;
        }
        let alpha = self.alpha * self.tier_alpha[t];
        let hop_scale = 1.0 + self.hop_factor * (link.hops - 1) as f64;
        alpha * hop_scale + beta * bytes as f64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::default_1993()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_time_scales_with_bytes_and_hops() {
        let m = CostModel::default_1993();
        assert_eq!(m.wire_time(0, 1), 100.0);
        assert_eq!(m.wire_time(1000, 1), 200.0);
        assert_eq!(m.wire_time(0, 2), 120.0);
        assert!(m.wire_time(100, 3) > m.wire_time(100, 2));
    }

    #[test]
    fn link_time_scales_by_tier() {
        let m = CostModel::default_1993().with_tier_scale(Tier::Cluster, 100.0, 2.0);
        let node = Link {
            hops: 1,
            tier: Tier::Node,
        };
        let cluster = Link {
            hops: 1,
            tier: Tier::Cluster,
        };
        // Node tier with default multipliers matches wire_time exactly.
        assert_eq!(m.link_time(1000, node), m.wire_time(1000, 1));
        // Cluster tier pays 100x alpha and 2x beta.
        assert_eq!(m.link_time(0, cluster), 100.0 * m.alpha);
        assert_eq!(
            m.link_time(1000, cluster),
            100.0 * m.alpha + 2.0 * m.beta * 1000.0
        );
        // Self messages pay only the (tier-scaled) copy cost.
        let self_link = Link {
            hops: 0,
            tier: Tier::Node,
        };
        assert_eq!(m.link_time(100, self_link), m.beta * 100.0);
    }

    #[test]
    fn zero_comm_is_free() {
        let m = CostModel::zero_comm();
        assert_eq!(m.wire_time(1 << 20, 5), 0.0);
        assert!(m.flop_time > 0.0);
    }
}
