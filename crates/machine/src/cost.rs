//! The parametric machine cost model.
//!
//! Times are in abstract microseconds of virtual time. Defaults approximate
//! an early-90s multicomputer (high per-message latency relative to flop
//! time), which is the regime in which XDP's message-count optimizations
//! matter most; every experiment harness sweeps the parameters that its
//! claim depends on.

/// Hockney/LogP-style cost parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Per-message network latency α (one hop), charged between send
    /// initiation and receive completion.
    pub alpha: f64,
    /// Per-byte transfer time β.
    pub beta: f64,
    /// Per-message CPU overhead o charged to the sender at initiation and
    /// to the receiver at completion (the LogP `o`).
    pub cpu_overhead: f64,
    /// Extra latency multiplier per additional hop (topology scaling).
    pub hop_factor: f64,
    /// Time per floating-point operation (kernels and element-wise
    /// assignments charge this).
    pub flop_time: f64,
    /// Fixed time per run-time symbol-table query (`iown`/`accessible`/
    /// `await` polls) — the run-time price of un-eliminated compute rules
    /// (§3.1).
    pub symtab_op_time: f64,
    /// Time per segment descriptor examined by a query — the §3.1 `iown()`
    /// algorithm scans the descriptor array, so finer segmentation makes
    /// every surviving compute rule slower.
    pub seg_scan_time: f64,
    /// Extra receiver-side time to match an *unbound* (name-carrying)
    /// message; compile-time-bound communication (§3.2) skips it.
    pub match_overhead: f64,
    /// Extra receiver-side time when a message arrives before its receive
    /// was posted (an *unexpected* message buffered by the eager protocol
    /// and copied on match); preposted receives (§3.2) avoid it. Charged as
    /// `unexpected_overhead + beta * bytes` (the extra copy).
    pub unexpected_overhead: f64,
}

impl CostModel {
    /// A 1993-flavored default: 100us message latency, 10MB/s network,
    /// ~10 MFLOP/s processors.
    pub fn default_1993() -> CostModel {
        CostModel {
            alpha: 100.0,
            beta: 0.1,
            cpu_overhead: 10.0,
            hop_factor: 0.2,
            flop_time: 0.1,
            symtab_op_time: 0.5,
            seg_scan_time: 0.05,
            match_overhead: 2.0,
            unexpected_overhead: 5.0,
        }
    }

    /// A low-latency variant (latency 10x smaller) for crossover sweeps.
    pub fn low_latency() -> CostModel {
        CostModel {
            alpha: 10.0,
            beta: 0.01,
            ..CostModel::default_1993()
        }
    }

    /// A shared-address machine in the KSR1 mold (§3.2: "receives and
    /// sends might be translated as prefetch and poststore instructions"):
    /// transfers cost a cache-line-ish setup plus per-byte copy, no
    /// software rendezvous, no eager-buffer copies.
    pub fn shared_address() -> CostModel {
        CostModel {
            alpha: 2.0,
            beta: 0.02,
            cpu_overhead: 1.0,
            hop_factor: 0.0,
            match_overhead: 0.0,
            unexpected_overhead: 0.0,
            ..CostModel::default_1993()
        }
    }

    /// Free communication — isolates pure computation time.
    pub fn zero_comm() -> CostModel {
        CostModel {
            alpha: 0.0,
            beta: 0.0,
            cpu_overhead: 0.0,
            hop_factor: 0.0,
            match_overhead: 0.0,
            unexpected_overhead: 0.0,
            ..CostModel::default_1993()
        }
    }

    /// Wire time of a `bytes`-byte message over `hops` hops. A self
    /// message (`hops == 0`, the ownership-migration loopback case) pays
    /// only the copy cost, not network latency.
    pub fn wire_time(&self, bytes: u64, hops: u32) -> f64 {
        if hops == 0 {
            return self.beta * bytes as f64;
        }
        let hop_scale = 1.0 + self.hop_factor * (hops - 1) as f64;
        self.alpha * hop_scale + self.beta * bytes as f64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::default_1993()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_time_scales_with_bytes_and_hops() {
        let m = CostModel::default_1993();
        assert_eq!(m.wire_time(0, 1), 100.0);
        assert_eq!(m.wire_time(1000, 1), 200.0);
        assert_eq!(m.wire_time(0, 2), 120.0);
        assert!(m.wire_time(100, 3) > m.wire_time(100, 2));
    }

    #[test]
    fn zero_comm_is_free() {
        let m = CostModel::zero_comm();
        assert_eq!(m.wire_time(1 << 20, 5), 0.0);
        assert!(m.flop_time > 0.0);
    }
}
