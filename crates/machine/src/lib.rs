//! # xdp-machine — a simulated distributed-memory multicomputer
//!
//! The paper targets 1993-era message-passing machines (and shared-address
//! machines like the KSR1). This crate supplies the executable substitute:
//!
//! * [`cost::CostModel`] — a Hockney/LogP-style parametric cost model
//!   (per-message latency α, per-byte time β, per-message CPU overhead o,
//!   per-flop time, symbol-table-query time).
//! * [`topo::Topology`] — uniform, linear-array, 2-D-mesh, or tiered
//!   (node/rack/cluster, per-tier α/β multipliers) hop scaling.
//! * [`sim::SimNet`] — a deterministic virtual-time network with XDP's
//!   rendezvous-by-name matching, including *unspecified-destination* sends
//!   and multiple outstanding sends/receives on one name (the §2.7
//!   load-balancing idiom). Completion times are computed analytically at
//!   match time, so simulations are reproducible bit-for-bit.
//! * [`thread_net::ThreadNet`] — a real shared-memory backend (one OS
//!   thread per processor) with the same matching semantics, for wall-clock
//!   benchmarking and for validating that the simulator and a genuinely
//!   parallel execution agree on results.
//!
//! The simulated network never reorders two messages with the same name
//! between the same pair of processors (FIFO per name), and matching is by
//! earliest virtual post time with pid tie-breaking.
//!
//! Both backends accept an `xdp-fault` [`FaultPlan`](xdp_fault::FaultPlan)
//! (`SimNet::with_faults` / `ThreadNet::with_faults`): transmission
//! attempts are then dropped/delayed/duplicated/reordered by the plan's
//! deterministic injector, and an ack/retry delivery layer (sequence
//! numbers, receiver-side dedup, exponential backoff, dead letters) keeps
//! rendezvous semantics intact or reports a *named* loss diagnosis.

pub mod cost;
pub mod sim;
pub mod stats;
pub mod thread_net;
pub mod topo;

pub use cost::CostModel;
pub use sim::{Completion, LostMsg, SimNet};
pub use stats::NetStats;
pub use thread_net::ThreadNet;
pub use topo::{Link, Tier, Topology, TopologyError};
