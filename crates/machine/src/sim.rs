//! The deterministic virtual-time network.
//!
//! XDP's communication is a rendezvous on the transferred section's *name*:
//! a send with unspecified destination pairs with whichever processor posts
//! a matching receive ("It is legal to have several processors initiate
//! receive statements for the same section concurrently", §2.7). [`SimNet`]
//! implements that matching over virtual time:
//!
//! * sends and receives are posted with the posting processor's virtual
//!   clock;
//! * a pair is matched as soon as both sides are present, earliest virtual
//!   post time first (sequence numbers break ties deterministically);
//! * the receive's completion time is computed analytically:
//!   `max(send_time + wire_time, recv_time) + cpu_overhead
//!   (+ match_overhead if the message carried its name)`.
//!
//! Because completion times are pure functions of post times, the whole
//! simulation is reproducible bit-for-bit regardless of host scheduling.

use crate::cost::CostModel;
use crate::stats::NetStats;
use crate::topo::Topology;
use std::collections::HashMap;
use xdp_fault::{FaultEvent, FaultEventKind, FaultPlan, FaultStats, Injector};
use xdp_runtime::{Msg, Tag, REDIST_SALT_FLOOR};

/// A posted, not-yet-matched send.
#[derive(Clone, Debug)]
struct SendPost {
    msg: Msg,
    /// Explicit destination pids (`E -> S`) or `None` for `E ->`.
    dest: Option<Vec<usize>>,
    time: f64,
    seq: u64,
    /// Extra transit latency from injected faults (retry backoff + delay);
    /// 0 on a fault-free net. Charged to the wire interval, so the
    /// critical-path analyzer attributes retry time rather than losing it.
    extra: f64,
}

/// A message permanently lost under fault injection: every transmission
/// attempt was dropped. The executor consults these to report a *loss*
/// diagnosis instead of a deadlock.
#[derive(Clone, Debug)]
pub struct LostMsg {
    pub tag: Tag,
    pub dest: Option<Vec<usize>>,
    pub src: usize,
    pub seq: u64,
    pub attempts: u32,
}

impl LostMsg {
    /// Could a receive for `tag` on `dst` have paired with this message?
    pub fn matches(&self, tag: &Tag, dst: usize) -> bool {
        self.tag == *tag
            && match &self.dest {
                None => true,
                Some(pids) => pids.contains(&dst),
            }
    }
}

/// A posted, not-yet-matched receive.
#[derive(Clone, Debug)]
struct RecvPost {
    dst: usize,
    time: f64,
    seq: u64,
    req_id: u64,
}

/// A matched receive: delivered message plus its timing.
///
/// `arrive_at` is when the message is available at the receiver;
/// `handling` is the receiver-CPU cost of completing it (the LogP `o`,
/// plus the matcher lookup for name-carrying messages, plus the
/// eager-protocol extra copy when the message arrived *unexpected*). The
/// executor charges `handling` to the receiving processor's clock at the
/// moment the completion is applied.
#[derive(Clone, Debug)]
pub struct Completion {
    /// The request id the receiver supplied at post time.
    pub req_id: u64,
    /// Receiving processor.
    pub dst: usize,
    /// The delivered message.
    pub msg: Msg,
    /// Virtual time at which the sender posted the message — the start of
    /// the wire-transit interval (trace exports and critical-path
    /// analysis follow this happens-before edge).
    pub sent_at: f64,
    /// Virtual time at which the message is available on `dst`.
    pub arrive_at: f64,
    /// Receiver-CPU time to complete the receive.
    pub handling: f64,
}

/// The simulated network and matcher.
#[derive(Clone, Debug)]
pub struct SimNet {
    model: CostModel,
    topo: Topology,
    sends: HashMap<Tag, Vec<SendPost>>,
    recvs: HashMap<Tag, Vec<RecvPost>>,
    seq: u64,
    injector: Option<Injector>,
    src_seq: HashMap<usize, u64>,
    dead: Vec<LostMsg>,
    fstats: FaultStats,
    events: Vec<FaultEvent>,
    /// Live intervals of redistribution staging buffers, identified by
    /// their salt floor: `(start, end, src, dst, payload_bytes)` in
    /// virtual time. Swept by [`SimNet::redist_peak_bytes`].
    redist_spans: Vec<(f64, f64, usize, usize, u64)>,
    /// Traffic counters.
    pub stats: NetStats,
}

impl SimNet {
    /// A fault-free network of `nprocs` processors.
    pub fn new(nprocs: usize, model: CostModel, topo: Topology) -> SimNet {
        SimNet::with_faults(nprocs, model, topo, FaultPlan::none())
    }

    /// A network of `nprocs` processors with injected faults.
    ///
    /// Virtual time is analytic, so the whole retry chain is resolved at
    /// post time: the first non-dropped attempt's cumulative backoff (plus
    /// any injected delay) is added to the message's transit latency;
    /// duplicates are counted and suppressed analytically (rendezvous
    /// matching consumes each send exactly once, so a duplicate can never
    /// double-deliver here); a message whose every attempt drops is
    /// recorded in [`SimNet::lost`] instead of being posted. Plan time
    /// quantities (`rto`, `delay`) are virtual time units.
    pub fn with_faults(nprocs: usize, model: CostModel, topo: Topology, plan: FaultPlan) -> SimNet {
        let injector = plan.is_active().then(|| Injector::new(plan));
        SimNet {
            model,
            topo,
            sends: HashMap::new(),
            recvs: HashMap::new(),
            seq: 0,
            injector,
            src_seq: HashMap::new(),
            dead: Vec::new(),
            fstats: FaultStats::default(),
            events: Vec::new(),
            redist_spans: Vec::new(),
            stats: NetStats::new(nprocs),
        }
    }

    /// The cost model in force.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Resolve the fault fate of a send posted at `time`: `Some(extra)`
    /// transit latency if it eventually delivers, `None` if it is
    /// permanently lost (recorded in the dead-letter list).
    fn inject(&mut self, msg: &Msg, dest: &Option<Vec<usize>>, time: f64) -> Option<f64> {
        let Some(inj) = &self.injector else {
            return Some(0.0);
        };
        let inj = inj.clone();
        let plan = inj.plan();
        let src_seq = {
            let c = self.src_seq.entry(msg.src).or_insert(0);
            *c += 1;
            *c
        };
        let tag_str = msg.tag.to_string();
        let event = |t, kind| FaultEvent {
            t,
            kind,
            src: msg.src,
            seq: src_seq,
            tag: tag_str.clone(),
        };
        match inj.first_delivery(msg.src, src_seq) {
            None => {
                // Every allowed attempt dropped: dead-letter the message.
                let attempts = plan.max_retries + 1;
                for a in 0..attempts {
                    let t = time + plan.retry_delay(a);
                    if a > 0 {
                        self.fstats.retries += 1;
                        self.events
                            .push(event(t, FaultEventKind::Retry { attempt: a }));
                    }
                    self.fstats.injected_drops += 1;
                    self.events.push(event(t, FaultEventKind::DropInjected));
                }
                let give_up = time + plan.retry_delay(attempts);
                self.fstats.lost += 1;
                self.events
                    .push(event(give_up, FaultEventKind::Lost { attempts }));
                self.dead.push(LostMsg {
                    tag: msg.tag.clone(),
                    dest: dest.clone(),
                    src: msg.src,
                    seq: src_seq,
                    attempts,
                });
                None
            }
            Some((k, d)) => {
                for a in 0..k {
                    let t = time + plan.retry_delay(a);
                    if a > 0 {
                        self.fstats.retries += 1;
                        self.events
                            .push(event(t, FaultEventKind::Retry { attempt: a }));
                    }
                    self.fstats.injected_drops += 1;
                    self.events.push(event(t, FaultEventKind::DropInjected));
                }
                let mut extra = plan.retry_delay(k);
                if k > 0 {
                    self.fstats.retries += 1;
                    self.events
                        .push(event(time + extra, FaultEventKind::Retry { attempt: k }));
                }
                if d.extra_delay > 0.0 {
                    self.fstats.injected_delays += 1;
                    extra += d.extra_delay;
                }
                if d.reorder {
                    // Reordering cannot change rendezvous-by-name matching
                    // outcomes in virtual time (pairs are picked by post
                    // time); counted for parity with the threaded net.
                    self.fstats.injected_reorders += 1;
                }
                if d.dup {
                    // The matcher consumes each send exactly once, so the
                    // duplicate copy is suppressed analytically.
                    self.fstats.injected_dups += 1;
                    self.events
                        .push(event(time + extra, FaultEventKind::DupInjected));
                    self.fstats.dup_suppressed += 1;
                    self.events
                        .push(event(time + extra, FaultEventKind::DupSuppressed));
                }
                Some(extra)
            }
        }
    }

    /// Post a send at virtual `time` on the sending processor. Returns the
    /// completion if a matching receive was already waiting.
    pub fn post_send(
        &mut self,
        msg: Msg,
        dest: Option<Vec<usize>>,
        time: f64,
    ) -> Option<Completion> {
        let Some(extra) = self.inject(&msg, &dest, time) else {
            return None; // permanently lost: never enters the matcher
        };
        let seq = self.next_seq();
        let post = SendPost {
            msg,
            dest,
            time,
            seq,
            extra,
        };
        // Earliest eligible receive.
        let tag = post.msg.tag.clone();
        let eligible = |r: &RecvPost, d: &Option<Vec<usize>>| match d {
            None => true,
            Some(pids) => pids.contains(&r.dst),
        };
        let pick = self.recvs.get(&tag).and_then(|q| {
            q.iter()
                .enumerate()
                .filter(|(_, r)| eligible(r, &post.dest))
                .min_by(|(_, a), (_, b)| (a.time, a.seq).partial_cmp(&(b.time, b.seq)).unwrap())
                .map(|(i, _)| i)
        });
        match pick {
            Some(i) => {
                let recv = self.recvs.get_mut(&tag).unwrap().remove(i);
                Some(self.complete(post, recv))
            }
            None => {
                self.sends.entry(tag).or_default().push(post);
                None
            }
        }
    }

    /// Post a receive for `tag` at virtual `time` on processor `dst`.
    /// Returns the completion if a matching send was already posted.
    pub fn post_recv(
        &mut self,
        tag: Tag,
        dst: usize,
        time: f64,
        req_id: u64,
    ) -> Option<Completion> {
        let seq = self.next_seq();
        let recv = RecvPost {
            dst,
            time,
            seq,
            req_id,
        };
        let pick = self.sends.get(&tag).and_then(|q| {
            q.iter()
                .enumerate()
                .filter(|(_, s)| match &s.dest {
                    None => true,
                    Some(pids) => pids.contains(&dst),
                })
                .min_by(|(_, a), (_, b)| (a.time, a.seq).partial_cmp(&(b.time, b.seq)).unwrap())
                .map(|(i, _)| i)
        });
        match pick {
            Some(i) => {
                let send = self.sends.get_mut(&tag).unwrap().remove(i);
                Some(self.complete(send, recv))
            }
            None => {
                self.recvs.entry(tag).or_default().push(recv);
                None
            }
        }
    }

    fn complete(&mut self, send: SendPost, recv: RecvPost) -> Completion {
        let bound = send.dest.is_some();
        let wire = if bound {
            send.msg.payload_bytes()
        } else {
            send.msg.size_bytes()
        };
        let link = self.topo.link(send.msg.src, recv.dst);
        let arrive_at = send.time + send.extra + self.model.link_time(wire, link);
        let mut handling = self.model.cpu_overhead;
        if !bound {
            handling += self.model.match_overhead;
        }
        if arrive_at < recv.time && self.model.unexpected_overhead > 0.0 {
            // Unexpected message under an eager protocol: it sat in the
            // system buffer and costs an extra copy at match time.
            // Preposted receives avoid this (§3.2's motivation for
            // hoisting receives). `unexpected_overhead == 0` models a
            // rendezvous protocol with no buffering copy at all.
            handling += self.model.unexpected_overhead + self.model.beta * wire as f64;
        }
        self.stats.record(
            send.msg.src,
            recv.dst,
            send.msg.payload_bytes(),
            wire,
            bound,
        );
        if send.msg.tag.salt >= REDIST_SALT_FLOOR && send.msg.src != recv.dst {
            // Redistribution staging buffer: live on both endpoints from
            // the send post until the receiver has finished handling it.
            let end = arrive_at.max(recv.time) + handling;
            self.redist_spans.push((
                send.time,
                end,
                send.msg.src,
                recv.dst,
                send.msg.payload_bytes(),
            ));
        }
        Completion {
            req_id: recv.req_id,
            dst: recv.dst,
            sent_at: send.time,
            msg: send.msg,
            arrive_at,
            handling,
        }
    }

    /// Measured redistribution-staging high-water mark: the maximum, over
    /// processors and virtual time, of live redistribution payload bytes
    /// (messages whose tag salt is at or above
    /// [`xdp_runtime::REDIST_SALT_FLOOR`]). A message's bytes are charged
    /// to both endpoints for its whole live interval — send post through
    /// receive completion — matching the planner's accounting. Sweeps the
    /// recorded spans per processor; at equal timestamps releases apply
    /// before acquisitions, so back-to-back rounds don't double-charge.
    pub fn redist_peak_bytes(&self) -> u64 {
        let mut peak = 0u64;
        let mut events: Vec<(f64, bool, u64)> = Vec::new();
        for p in 0..self.stats.sent_by.len() {
            events.clear();
            for &(start, end, src, dst, bytes) in &self.redist_spans {
                if src == p || dst == p {
                    events.push((start, true, bytes));
                    events.push((end, false, bytes));
                }
            }
            // Sort by time; at ties, ends (false < true) come first.
            events.sort_by(|a, b| (a.0, a.1).partial_cmp(&(b.0, b.1)).unwrap());
            let mut live = 0u64;
            for &(_, is_start, bytes) in events.iter() {
                if is_start {
                    live += bytes;
                    peak = peak.max(live);
                } else {
                    live = live.saturating_sub(bytes);
                }
            }
        }
        peak
    }

    /// Messages permanently lost to injected faults (dead letters).
    pub fn lost(&self) -> &[LostMsg] {
        &self.dead
    }

    /// Snapshot of fault/delivery counters (all zero without a plan).
    pub fn fault_stats(&self) -> FaultStats {
        self.fstats
    }

    /// Timestamped fault events (virtual time).
    pub fn fault_events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Numbers of unmatched sends and receives (for deadlock diagnosis).
    pub fn pending(&self) -> (usize, usize) {
        (
            self.sends.values().map(|v| v.len()).sum(),
            self.recvs.values().map(|v| v.len()).sum(),
        )
    }

    /// Human-readable description of unmatched posts.
    pub fn pending_detail(&self) -> String {
        let mut out = String::new();
        for (tag, q) in &self.sends {
            for s in q {
                out.push_str(&format!(
                    "  unmatched send {tag} from p{} at t={}\n",
                    s.msg.src, s.time
                ));
            }
        }
        for (tag, q) in &self.recvs {
            for r in q {
                out.push_str(&format!(
                    "  unmatched recv {tag} on p{} at t={}\n",
                    r.dst, r.time
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdp_ir::{ElemType, Section, TransferKind, Triplet, VarId};
    use xdp_runtime::Buffer;

    fn tag(v: u32) -> Tag {
        Tag::new(VarId(v), Section::new(vec![Triplet::range(1, 4)]))
    }

    fn msg(v: u32, src: usize) -> Msg {
        Msg {
            tag: tag(v),
            kind: TransferKind::Value,
            payload: Some(std::sync::Arc::new(Buffer::zeros(ElemType::F64, 4))),
            src,
        }
    }

    fn net() -> SimNet {
        SimNet::new(4, CostModel::default_1993(), Topology::Uniform)
    }

    #[test]
    fn send_then_recv_matches() {
        let mut n = net();
        assert!(n.post_send(msg(0, 0), None, 10.0).is_none());
        let c = n.post_recv(tag(0), 1, 50.0, 7).expect("match");
        assert_eq!(c.req_id, 7);
        assert_eq!(c.dst, 1);
        // arrive = 10 + (100 + 0.1*(32+8+24)) = 116.4; receive was posted
        // before arrival, so handling = o + match = 12.
        assert!((c.arrive_at - 116.4).abs() < 1e-9, "{}", c.arrive_at);
        assert!((c.handling - 12.0).abs() < 1e-9, "{}", c.handling);
        assert_eq!(n.pending(), (0, 0));
    }

    #[test]
    fn recv_then_send_matches() {
        let mut n = net();
        assert!(n.post_recv(tag(0), 2, 5.0, 1).is_none());
        let c = n.post_send(msg(0, 0), None, 200.0).expect("match");
        assert_eq!(c.dst, 2);
        // Receiver waited: the message arrives after the wire.
        assert!(c.arrive_at > 300.0);
    }

    #[test]
    fn late_receiver_pays_no_wire_wait() {
        let mut n = net();
        n.post_send(msg(0, 0), None, 0.0);
        let c = n.post_recv(tag(0), 1, 10_000.0, 1).unwrap();
        // Message long since arrived: it was *unexpected*, so handling
        // includes the eager-protocol copy (5 + 0.1 * 64 wire bytes).
        assert!((c.arrive_at - 106.4).abs() < 1e-9, "{}", c.arrive_at);
        assert!(
            (c.handling - (12.0 + 5.0 + 6.4)).abs() < 1e-9,
            "{}",
            c.handling
        );
    }

    #[test]
    fn bound_send_only_matches_listed_destination() {
        let mut n = net();
        assert!(n.post_send(msg(0, 0), Some(vec![2]), 0.0).is_none());
        // P1's receive does not match a send bound to P2.
        assert!(n.post_recv(tag(0), 1, 0.0, 1).is_none());
        let c = n.post_recv(tag(0), 2, 0.0, 2).expect("match");
        assert_eq!(c.dst, 2);
        // The bound message pays no name header and no match overhead:
        // arrives at 100 + 0.1*32 = 103.2; handling is the bare o = 10.
        assert!((c.arrive_at - 103.2).abs() < 1e-9, "{}", c.arrive_at);
        assert!((c.handling - 10.0).abs() < 1e-9, "{}", c.handling);
        // P1's receive still pending.
        assert_eq!(n.pending(), (0, 1));
    }

    #[test]
    fn fifo_matching_among_multiple_outstanding() {
        // Two sends on one tag, two receives: earliest send pairs with
        // earliest receive — the §2.7 task-farm pattern.
        let mut n = net();
        n.post_send(msg(0, 0), None, 0.0);
        n.post_send(msg(0, 1), None, 5.0);
        let c1 = n.post_recv(tag(0), 2, 1.0, 11).unwrap();
        assert_eq!(c1.msg.src, 0, "earliest send first");
        let c2 = n.post_recv(tag(0), 3, 1.0, 12).unwrap();
        assert_eq!(c2.msg.src, 1);
    }

    #[test]
    fn earliest_receiver_wins() {
        let mut n = net();
        n.post_recv(tag(0), 3, 7.0, 31);
        n.post_recv(tag(0), 1, 2.0, 11);
        let c = n.post_send(msg(0, 0), None, 10.0).unwrap();
        assert_eq!(c.dst, 1, "earlier-posted receive matches first");
        assert_eq!(n.pending(), (0, 1));
    }

    #[test]
    fn tags_do_not_cross_match() {
        let mut n = net();
        n.post_send(msg(0, 0), None, 0.0);
        assert!(n.post_recv(tag(1), 1, 0.0, 1).is_none());
        assert_eq!(n.pending(), (1, 1));
        assert!(n.pending_detail().contains("unmatched send"));
        assert!(n.pending_detail().contains("unmatched recv"));
    }

    #[test]
    fn topology_affects_completion() {
        let mut near = SimNet::new(4, CostModel::default_1993(), Topology::Linear);
        let mut far = SimNet::new(4, CostModel::default_1993(), Topology::Linear);
        near.post_send(msg(0, 0), None, 0.0);
        far.post_send(msg(0, 0), None, 0.0);
        let c_near = near.post_recv(tag(0), 1, 0.0, 1).unwrap();
        let c_far = far.post_recv(tag(0), 3, 0.0, 1).unwrap();
        assert!(c_far.arrive_at > c_near.arrive_at);
    }

    #[test]
    fn faulty_sim_delays_but_delivers() {
        use xdp_fault::LinkFault;
        let mut plan = FaultPlan::uniform(
            3,
            LinkFault {
                drop: 0.5,
                ..LinkFault::default()
            },
        );
        plan.rto = 50.0;
        let mut faulty = SimNet::with_faults(4, CostModel::default_1993(), Topology::Uniform, plan);
        let mut clean = net();
        for k in 0..20 {
            faulty.post_send(msg(0, 0), None, k as f64);
            clean.post_send(msg(0, 0), None, k as f64);
        }
        let mut extra_total = 0.0;
        for k in 0..20 {
            let cf = faulty
                .post_recv(tag(0), 1, 1e6, k)
                .expect("retries deliver");
            let cc = clean.post_recv(tag(0), 1, 1e6, k).expect("clean");
            assert_eq!(cf.msg, cc.msg, "payloads identical under faults");
            assert!(cf.arrive_at >= cc.arrive_at, "faults never speed delivery");
            extra_total += cf.arrive_at - cc.arrive_at;
        }
        let f = faulty.fault_stats();
        assert!(f.injected_drops > 0, "50% drop plan injected nothing");
        assert_eq!(f.retries, f.injected_drops);
        assert!(extra_total > 0.0, "retries must cost virtual time");
        assert_eq!(faulty.stats.messages, clean.stats.messages);
        assert!(faulty.lost().is_empty());
    }

    #[test]
    fn killed_message_becomes_dead_letter_not_match() {
        let mut plan = FaultPlan::none();
        plan.kill.push((0, 1));
        plan.max_retries = 2;
        let mut n = SimNet::with_faults(4, CostModel::default_1993(), Topology::Uniform, plan);
        assert!(n.post_send(msg(0, 0), None, 0.0).is_none());
        assert!(
            n.post_recv(tag(0), 1, 10.0, 1).is_none(),
            "lost send never matches"
        );
        assert_eq!(n.lost().len(), 1);
        let dl = &n.lost()[0];
        assert!(dl.matches(&tag(0), 1));
        assert!(!dl.matches(&tag(1), 1));
        assert_eq!(dl.attempts, 3);
        assert_eq!(n.fault_stats().lost, 1);
        assert_eq!(n.pending(), (0, 1), "only the receive is left unmatched");
    }

    #[test]
    fn sim_fault_replay_is_deterministic() {
        use xdp_fault::LinkFault;
        let run = || {
            let plan = FaultPlan::uniform(
                99,
                LinkFault {
                    drop: 0.3,
                    dup: 0.3,
                    reorder: 0.3,
                    delay_p: 0.3,
                    delay: 40.0,
                },
            );
            let mut n = SimNet::with_faults(2, CostModel::default_1993(), Topology::Uniform, plan);
            let mut arrivals = Vec::new();
            for k in 0..25 {
                n.post_send(msg(0, 0), None, k as f64);
            }
            for k in 0..25 {
                arrivals.push(n.post_recv(tag(0), 1, 1e6, k).unwrap().arrive_at);
            }
            (arrivals, n.fault_stats())
        };
        let (a1, s1) = run();
        let (a2, s2) = run();
        assert_eq!(a1, a2, "virtual arrival times must replay exactly");
        assert_eq!(s1, s2);
        assert!(s1.any_injected());
    }

    #[test]
    fn stats_accumulate() {
        let mut n = net();
        n.post_send(msg(0, 0), None, 0.0);
        n.post_recv(tag(0), 1, 0.0, 1).unwrap();
        n.post_send(msg(1, 2), Some(vec![3]), 0.0);
        n.post_recv(tag(1), 3, 0.0, 2).unwrap();
        assert_eq!(n.stats.messages, 2);
        assert_eq!(n.stats.unbound_messages, 1);
        assert_eq!(n.stats.bound_messages, 1);
        assert_eq!(n.stats.payload_bytes, 64);
        assert_eq!(n.stats.wire_bytes, 64 + 32); // header only on unbound
        assert_eq!(n.stats.sent_by, vec![1, 0, 1, 0]);
        assert_eq!(n.stats.received_by, vec![0, 1, 0, 1]);
    }
}
