//! The deterministic virtual-time network.
//!
//! XDP's communication is a rendezvous on the transferred section's *name*:
//! a send with unspecified destination pairs with whichever processor posts
//! a matching receive ("It is legal to have several processors initiate
//! receive statements for the same section concurrently", §2.7). [`SimNet`]
//! implements that matching over virtual time:
//!
//! * sends and receives are posted with the posting processor's virtual
//!   clock;
//! * a pair is matched as soon as both sides are present, earliest virtual
//!   post time first (sequence numbers break ties deterministically);
//! * the receive's completion time is computed analytically:
//!   `max(send_time + wire_time, recv_time) + cpu_overhead
//!   (+ match_overhead if the message carried its name)`.
//!
//! Because completion times are pure functions of post times, the whole
//! simulation is reproducible bit-for-bit regardless of host scheduling.

use crate::cost::CostModel;
use crate::stats::NetStats;
use crate::topo::Topology;
use std::collections::HashMap;
use xdp_runtime::{Msg, Tag};

/// A posted, not-yet-matched send.
#[derive(Clone, Debug)]
struct SendPost {
    msg: Msg,
    /// Explicit destination pids (`E -> S`) or `None` for `E ->`.
    dest: Option<Vec<usize>>,
    time: f64,
    seq: u64,
}

/// A posted, not-yet-matched receive.
#[derive(Clone, Debug)]
struct RecvPost {
    dst: usize,
    time: f64,
    seq: u64,
    req_id: u64,
}

/// A matched receive: delivered message plus its timing.
///
/// `arrive_at` is when the message is available at the receiver;
/// `handling` is the receiver-CPU cost of completing it (the LogP `o`,
/// plus the matcher lookup for name-carrying messages, plus the
/// eager-protocol extra copy when the message arrived *unexpected*). The
/// executor charges `handling` to the receiving processor's clock at the
/// moment the completion is applied.
#[derive(Clone, Debug)]
pub struct Completion {
    /// The request id the receiver supplied at post time.
    pub req_id: u64,
    /// Receiving processor.
    pub dst: usize,
    /// The delivered message.
    pub msg: Msg,
    /// Virtual time at which the sender posted the message — the start of
    /// the wire-transit interval (trace exports and critical-path
    /// analysis follow this happens-before edge).
    pub sent_at: f64,
    /// Virtual time at which the message is available on `dst`.
    pub arrive_at: f64,
    /// Receiver-CPU time to complete the receive.
    pub handling: f64,
}

/// The simulated network and matcher.
#[derive(Clone, Debug)]
pub struct SimNet {
    model: CostModel,
    topo: Topology,
    sends: HashMap<Tag, Vec<SendPost>>,
    recvs: HashMap<Tag, Vec<RecvPost>>,
    seq: u64,
    /// Traffic counters.
    pub stats: NetStats,
}

impl SimNet {
    /// A network of `nprocs` processors.
    pub fn new(nprocs: usize, model: CostModel, topo: Topology) -> SimNet {
        SimNet {
            model,
            topo,
            sends: HashMap::new(),
            recvs: HashMap::new(),
            seq: 0,
            stats: NetStats::new(nprocs),
        }
    }

    /// The cost model in force.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Post a send at virtual `time` on the sending processor. Returns the
    /// completion if a matching receive was already waiting.
    pub fn post_send(
        &mut self,
        msg: Msg,
        dest: Option<Vec<usize>>,
        time: f64,
    ) -> Option<Completion> {
        let seq = self.next_seq();
        let post = SendPost {
            msg,
            dest,
            time,
            seq,
        };
        // Earliest eligible receive.
        let tag = post.msg.tag.clone();
        let eligible = |r: &RecvPost, d: &Option<Vec<usize>>| match d {
            None => true,
            Some(pids) => pids.contains(&r.dst),
        };
        let pick = self.recvs.get(&tag).and_then(|q| {
            q.iter()
                .enumerate()
                .filter(|(_, r)| eligible(r, &post.dest))
                .min_by(|(_, a), (_, b)| (a.time, a.seq).partial_cmp(&(b.time, b.seq)).unwrap())
                .map(|(i, _)| i)
        });
        match pick {
            Some(i) => {
                let recv = self.recvs.get_mut(&tag).unwrap().remove(i);
                Some(self.complete(post, recv))
            }
            None => {
                self.sends.entry(tag).or_default().push(post);
                None
            }
        }
    }

    /// Post a receive for `tag` at virtual `time` on processor `dst`.
    /// Returns the completion if a matching send was already posted.
    pub fn post_recv(
        &mut self,
        tag: Tag,
        dst: usize,
        time: f64,
        req_id: u64,
    ) -> Option<Completion> {
        let seq = self.next_seq();
        let recv = RecvPost {
            dst,
            time,
            seq,
            req_id,
        };
        let pick = self.sends.get(&tag).and_then(|q| {
            q.iter()
                .enumerate()
                .filter(|(_, s)| match &s.dest {
                    None => true,
                    Some(pids) => pids.contains(&dst),
                })
                .min_by(|(_, a), (_, b)| (a.time, a.seq).partial_cmp(&(b.time, b.seq)).unwrap())
                .map(|(i, _)| i)
        });
        match pick {
            Some(i) => {
                let send = self.sends.get_mut(&tag).unwrap().remove(i);
                Some(self.complete(send, recv))
            }
            None => {
                self.recvs.entry(tag).or_default().push(recv);
                None
            }
        }
    }

    fn complete(&mut self, send: SendPost, recv: RecvPost) -> Completion {
        let bound = send.dest.is_some();
        let wire = if bound {
            send.msg.payload_bytes()
        } else {
            send.msg.size_bytes()
        };
        let hops = self.topo.hops(send.msg.src, recv.dst);
        let arrive_at = send.time + self.model.wire_time(wire, hops);
        let mut handling = self.model.cpu_overhead;
        if !bound {
            handling += self.model.match_overhead;
        }
        if arrive_at < recv.time && self.model.unexpected_overhead > 0.0 {
            // Unexpected message under an eager protocol: it sat in the
            // system buffer and costs an extra copy at match time.
            // Preposted receives avoid this (§3.2's motivation for
            // hoisting receives). `unexpected_overhead == 0` models a
            // rendezvous protocol with no buffering copy at all.
            handling += self.model.unexpected_overhead + self.model.beta * wire as f64;
        }
        self.stats.record(
            send.msg.src,
            recv.dst,
            send.msg.payload_bytes(),
            wire,
            bound,
        );
        Completion {
            req_id: recv.req_id,
            dst: recv.dst,
            sent_at: send.time,
            msg: send.msg,
            arrive_at,
            handling,
        }
    }

    /// Numbers of unmatched sends and receives (for deadlock diagnosis).
    pub fn pending(&self) -> (usize, usize) {
        (
            self.sends.values().map(|v| v.len()).sum(),
            self.recvs.values().map(|v| v.len()).sum(),
        )
    }

    /// Human-readable description of unmatched posts.
    pub fn pending_detail(&self) -> String {
        let mut out = String::new();
        for (tag, q) in &self.sends {
            for s in q {
                out.push_str(&format!(
                    "  unmatched send {tag} from p{} at t={}\n",
                    s.msg.src, s.time
                ));
            }
        }
        for (tag, q) in &self.recvs {
            for r in q {
                out.push_str(&format!(
                    "  unmatched recv {tag} on p{} at t={}\n",
                    r.dst, r.time
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdp_ir::{ElemType, Section, TransferKind, Triplet, VarId};
    use xdp_runtime::Buffer;

    fn tag(v: u32) -> Tag {
        Tag::new(VarId(v), Section::new(vec![Triplet::range(1, 4)]))
    }

    fn msg(v: u32, src: usize) -> Msg {
        Msg {
            tag: tag(v),
            kind: TransferKind::Value,
            payload: Some(Buffer::zeros(ElemType::F64, 4)),
            src,
        }
    }

    fn net() -> SimNet {
        SimNet::new(4, CostModel::default_1993(), Topology::Uniform)
    }

    #[test]
    fn send_then_recv_matches() {
        let mut n = net();
        assert!(n.post_send(msg(0, 0), None, 10.0).is_none());
        let c = n.post_recv(tag(0), 1, 50.0, 7).expect("match");
        assert_eq!(c.req_id, 7);
        assert_eq!(c.dst, 1);
        // arrive = 10 + (100 + 0.1*(32+8+24)) = 116.4; receive was posted
        // before arrival, so handling = o + match = 12.
        assert!((c.arrive_at - 116.4).abs() < 1e-9, "{}", c.arrive_at);
        assert!((c.handling - 12.0).abs() < 1e-9, "{}", c.handling);
        assert_eq!(n.pending(), (0, 0));
    }

    #[test]
    fn recv_then_send_matches() {
        let mut n = net();
        assert!(n.post_recv(tag(0), 2, 5.0, 1).is_none());
        let c = n.post_send(msg(0, 0), None, 200.0).expect("match");
        assert_eq!(c.dst, 2);
        // Receiver waited: the message arrives after the wire.
        assert!(c.arrive_at > 300.0);
    }

    #[test]
    fn late_receiver_pays_no_wire_wait() {
        let mut n = net();
        n.post_send(msg(0, 0), None, 0.0);
        let c = n.post_recv(tag(0), 1, 10_000.0, 1).unwrap();
        // Message long since arrived: it was *unexpected*, so handling
        // includes the eager-protocol copy (5 + 0.1 * 64 wire bytes).
        assert!((c.arrive_at - 106.4).abs() < 1e-9, "{}", c.arrive_at);
        assert!(
            (c.handling - (12.0 + 5.0 + 6.4)).abs() < 1e-9,
            "{}",
            c.handling
        );
    }

    #[test]
    fn bound_send_only_matches_listed_destination() {
        let mut n = net();
        assert!(n.post_send(msg(0, 0), Some(vec![2]), 0.0).is_none());
        // P1's receive does not match a send bound to P2.
        assert!(n.post_recv(tag(0), 1, 0.0, 1).is_none());
        let c = n.post_recv(tag(0), 2, 0.0, 2).expect("match");
        assert_eq!(c.dst, 2);
        // The bound message pays no name header and no match overhead:
        // arrives at 100 + 0.1*32 = 103.2; handling is the bare o = 10.
        assert!((c.arrive_at - 103.2).abs() < 1e-9, "{}", c.arrive_at);
        assert!((c.handling - 10.0).abs() < 1e-9, "{}", c.handling);
        // P1's receive still pending.
        assert_eq!(n.pending(), (0, 1));
    }

    #[test]
    fn fifo_matching_among_multiple_outstanding() {
        // Two sends on one tag, two receives: earliest send pairs with
        // earliest receive — the §2.7 task-farm pattern.
        let mut n = net();
        n.post_send(msg(0, 0), None, 0.0);
        n.post_send(msg(0, 1), None, 5.0);
        let c1 = n.post_recv(tag(0), 2, 1.0, 11).unwrap();
        assert_eq!(c1.msg.src, 0, "earliest send first");
        let c2 = n.post_recv(tag(0), 3, 1.0, 12).unwrap();
        assert_eq!(c2.msg.src, 1);
    }

    #[test]
    fn earliest_receiver_wins() {
        let mut n = net();
        n.post_recv(tag(0), 3, 7.0, 31);
        n.post_recv(tag(0), 1, 2.0, 11);
        let c = n.post_send(msg(0, 0), None, 10.0).unwrap();
        assert_eq!(c.dst, 1, "earlier-posted receive matches first");
        assert_eq!(n.pending(), (0, 1));
    }

    #[test]
    fn tags_do_not_cross_match() {
        let mut n = net();
        n.post_send(msg(0, 0), None, 0.0);
        assert!(n.post_recv(tag(1), 1, 0.0, 1).is_none());
        assert_eq!(n.pending(), (1, 1));
        assert!(n.pending_detail().contains("unmatched send"));
        assert!(n.pending_detail().contains("unmatched recv"));
    }

    #[test]
    fn topology_affects_completion() {
        let mut near = SimNet::new(4, CostModel::default_1993(), Topology::Linear);
        let mut far = SimNet::new(4, CostModel::default_1993(), Topology::Linear);
        near.post_send(msg(0, 0), None, 0.0);
        far.post_send(msg(0, 0), None, 0.0);
        let c_near = near.post_recv(tag(0), 1, 0.0, 1).unwrap();
        let c_far = far.post_recv(tag(0), 3, 0.0, 1).unwrap();
        assert!(c_far.arrive_at > c_near.arrive_at);
    }

    #[test]
    fn stats_accumulate() {
        let mut n = net();
        n.post_send(msg(0, 0), None, 0.0);
        n.post_recv(tag(0), 1, 0.0, 1).unwrap();
        n.post_send(msg(1, 2), Some(vec![3]), 0.0);
        n.post_recv(tag(1), 3, 0.0, 2).unwrap();
        assert_eq!(n.stats.messages, 2);
        assert_eq!(n.stats.unbound_messages, 1);
        assert_eq!(n.stats.bound_messages, 1);
        assert_eq!(n.stats.payload_bytes, 64);
        assert_eq!(n.stats.wire_bytes, 64 + 32); // header only on unbound
        assert_eq!(n.stats.sent_by, vec![1, 0, 1, 0]);
        assert_eq!(n.stats.received_by, vec![0, 1, 0, 1]);
    }
}
