//! The real-parallel backend: one OS thread per simulated processor,
//! rendezvous matching through a shared, lock-protected message pool.
//!
//! Matching semantics are those of [`crate::sim::SimNet`]: messages pair
//! with receives by exact name; unspecified-destination messages go to the
//! first claiming receiver; destination-bound messages only to a listed
//! pid. Wall-clock benchmarks (Criterion) run on this backend; correctness
//! tests assert its final state equals the simulator's.

use crate::stats::NetStats;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;
use xdp_runtime::{Msg, Tag};

/// A queued message with its optional bound destination set.
type QueuedMsg = (Msg, Option<Vec<usize>>);

struct State {
    queues: HashMap<Tag, VecDeque<QueuedMsg>>,
    stats: NetStats,
}

struct Inner {
    state: Mutex<State>,
    cond: Condvar,
}

/// A cloneable handle to the shared network.
#[derive(Clone)]
pub struct ThreadNet {
    inner: Arc<Inner>,
}

impl ThreadNet {
    /// A network for `nprocs` processors.
    pub fn new(nprocs: usize) -> ThreadNet {
        ThreadNet {
            inner: Arc::new(Inner {
                state: Mutex::new(State {
                    queues: HashMap::new(),
                    stats: NetStats::new(nprocs),
                }),
                cond: Condvar::new(),
            }),
        }
    }

    /// Post a message (non-blocking: XDP sends are initiations).
    pub fn send(&self, msg: Msg, dest: Option<Vec<usize>>) {
        let mut st = self.inner.state.lock();
        st.queues
            .entry(msg.tag.clone())
            .or_default()
            .push_back((msg, dest));
        drop(st);
        self.inner.cond.notify_all();
    }

    /// Claim the first eligible message with this name; blocks until one
    /// arrives or `timeout` elapses (`None` on timeout — callers turn that
    /// into a deadlock diagnosis).
    pub fn recv(&self, tag: &Tag, self_pid: usize, timeout: Duration) -> Option<Msg> {
        let mut st = self.inner.state.lock();
        loop {
            if let Some(q) = st.queues.get_mut(tag) {
                if let Some(pos) = q.iter().position(|(_, dest)| match dest {
                    None => true,
                    Some(pids) => pids.contains(&self_pid),
                }) {
                    let (msg, dest) = q.remove(pos).unwrap();
                    let bound = dest.is_some();
                    let wire = if bound {
                        msg.payload_bytes()
                    } else {
                        msg.size_bytes()
                    };
                    st.stats
                        .record(msg.src, self_pid, msg.payload_bytes(), wire, bound);
                    return Some(msg);
                }
            }
            if self.inner.cond.wait_for(&mut st, timeout).timed_out() {
                return None;
            }
        }
    }

    /// Snapshot of traffic counters.
    pub fn stats(&self) -> NetStats {
        self.inner.state.lock().stats.clone()
    }

    /// Count of unclaimed messages (diagnostics).
    pub fn pending_messages(&self) -> usize {
        self.inner
            .state
            .lock()
            .queues
            .values()
            .map(|q| q.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use xdp_ir::{ElemType, Section, TransferKind, Triplet, VarId};
    use xdp_runtime::Buffer;

    fn tag(v: u32) -> Tag {
        Tag::new(VarId(v), Section::new(vec![Triplet::range(1, 2)]))
    }

    fn msg(v: u32, src: usize) -> Msg {
        Msg {
            tag: tag(v),
            kind: TransferKind::Value,
            payload: Some(Buffer::zeros(ElemType::F64, 2)),
            src,
        }
    }

    const T: Duration = Duration::from_secs(2);

    #[test]
    fn send_then_recv() {
        let net = ThreadNet::new(2);
        net.send(msg(0, 0), None);
        let got = net.recv(&tag(0), 1, T).unwrap();
        assert_eq!(got.src, 0);
        assert_eq!(net.pending_messages(), 0);
        assert_eq!(net.stats().messages, 1);
    }

    #[test]
    fn recv_blocks_until_send() {
        let net = ThreadNet::new(2);
        let n2 = net.clone();
        let h = std::thread::spawn(move || n2.recv(&tag(0), 1, T).unwrap());
        std::thread::sleep(Duration::from_millis(20));
        net.send(msg(0, 0), None);
        assert_eq!(h.join().unwrap().src, 0);
    }

    #[test]
    fn timeout_returns_none() {
        let net = ThreadNet::new(2);
        assert!(net.recv(&tag(0), 1, Duration::from_millis(10)).is_none());
    }

    #[test]
    fn bound_messages_skip_other_pids() {
        let net = ThreadNet::new(3);
        net.send(msg(0, 0), Some(vec![2]));
        // P1 times out; P2 gets it.
        assert!(net.recv(&tag(0), 1, Duration::from_millis(10)).is_none());
        assert!(net.recv(&tag(0), 2, T).is_some());
    }

    #[test]
    fn farm_claims_are_exclusive() {
        // 8 task messages, 3 claiming workers: each message claimed once.
        let net = ThreadNet::new(4);
        for k in 0..8 {
            net.send(msg(0, 0), None);
            let _ = k;
        }
        let mut handles = Vec::new();
        for w in 1..4 {
            let n = net.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = 0;
                while n.recv(&tag(0), w, Duration::from_millis(50)).is_some() {
                    got += 1;
                }
                got
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 8);
        assert_eq!(net.pending_messages(), 0);
    }
}
