//! The real-parallel backend: one OS thread per simulated processor,
//! rendezvous matching through a shared, lock-protected message pool.
//!
//! Matching semantics are those of [`crate::sim::SimNet`]: messages pair
//! with receives by exact name; unspecified-destination messages go to the
//! first claiming receiver; destination-bound messages only to a listed
//! pid. Wall-clock benchmarks (Criterion) run on this backend; correctness
//! tests assert its final state equals the simulator's.
//!
//! # Reliable delivery under injected faults
//!
//! With an active [`FaultPlan`] the pool becomes an unreliable medium
//! (transmission attempts can be dropped, delayed, duplicated, reordered
//! per the plan's deterministic [`Injector`]) and the net layers an
//! ack/retry protocol on top:
//!
//! * every send gets a per-sender sequence number; `(src, seq)` is the
//!   message uid;
//! * a copy of each unacked message sits on a pending list; any receiver's
//!   wait loop retransmits entries whose retry timeout (exponential
//!   backoff) has expired — there is no dedicated timer thread;
//! * claiming a message *is* the ack (the claim happens under the pool
//!   lock, so the pending entry is removed atomically with delivery);
//! * receivers dedup by uid, so injected duplicates and crossed
//!   retransmissions are suppressed without double-delivery;
//! * a message whose every attempt was dropped is dead-lettered after
//!   `max_retries` retransmissions, and a receive that can only have been
//!   waiting for it reports [`RecvFailure::Lost`] — permanently lost is a
//!   different diagnosis from late ([`RecvFailure::Timeout`]).

use crate::stats::NetStats;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xdp_fault::{FaultEvent, FaultEventKind, FaultPlan, FaultStats, Injector, RecvFailure};
use xdp_runtime::{Msg, Tag, REDIST_SALT_FLOOR};

/// Message uid under fault injection: (sending pid, per-sender 1-based seq).
type Uid = (usize, u64);

/// If `entry` is a redistribution message bound to a single destination
/// (the only shape the redistribution lowering emits), the destination
/// pid and payload bytes to charge to its staging account.
fn redist_charge(msg: &Msg, dest: &Option<Vec<usize>>) -> Option<(usize, u64)> {
    if msg.tag.salt < REDIST_SALT_FLOOR {
        return None;
    }
    match dest {
        Some(pids) if pids.len() == 1 => Some((pids[0], msg.payload_bytes())),
        _ => None,
    }
}

/// A queued message with its optional bound destination set and, under
/// fault injection, its uid for dedup.
struct QueuedEntry {
    msg: Msg,
    dest: Option<Vec<usize>>,
    uid: Option<Uid>,
}

/// An attempt sitting out an injected delay before it reaches the pool.
struct DelayedEntry {
    entry: QueuedEntry,
    ready_at: Instant,
    reorder: bool,
}

/// An unacked message awaiting retransmission.
struct PendingEntry {
    msg: Msg,
    dest: Option<Vec<usize>>,
    seq: u64,
    /// Attempts transmitted so far (1 = original only).
    attempts: u32,
    next_retry: Instant,
}

/// A message every attempt of which was dropped.
struct DeadLetter {
    tag: Tag,
    dest: Option<Vec<usize>>,
    src: usize,
    seq: u64,
    attempts: u32,
}

struct State {
    queues: HashMap<Tag, VecDeque<QueuedEntry>>,
    delayed: Vec<DelayedEntry>,
    pending: Vec<PendingEntry>,
    dead: Vec<DeadLetter>,
    delivered: HashSet<Uid>,
    next_seq: HashMap<usize, u64>,
    /// Live redistribution staging bytes currently queued toward each
    /// destination; the running maximum is `stats.redist_peak_bytes`.
    redist_live: Vec<u64>,
    stats: NetStats,
    fstats: FaultStats,
    events: Vec<FaultEvent>,
}

impl State {
    /// A redistribution message became visible in the pool: charge its
    /// destination's staging account and advance the high-water mark.
    fn redist_acquire(&mut self, msg: &Msg, dest: &Option<Vec<usize>>) {
        if let Some((p, bytes)) = redist_charge(msg, dest) {
            self.redist_live[p] += bytes;
            self.stats.redist_peak_bytes = self.stats.redist_peak_bytes.max(self.redist_live[p]);
        }
    }

    /// A redistribution message left the pool (claimed or suppressed).
    fn redist_release(&mut self, msg: &Msg, dest: &Option<Vec<usize>>) {
        if let Some((p, bytes)) = redist_charge(msg, dest) {
            self.redist_live[p] = self.redist_live[p].saturating_sub(bytes);
        }
    }
}

struct Inner {
    state: Mutex<State>,
    cond: Condvar,
    injector: Option<Injector>,
    epoch: Instant,
}

/// A cloneable handle to the shared network.
#[derive(Clone)]
pub struct ThreadNet {
    inner: Arc<Inner>,
}

impl ThreadNet {
    /// A reliable (fault-free) network for `nprocs` processors.
    pub fn new(nprocs: usize) -> ThreadNet {
        ThreadNet::with_faults(nprocs, FaultPlan::none())
    }

    /// A network for `nprocs` processors with injected faults. An inactive
    /// plan bypasses the delivery layer entirely (identical to [`new`]).
    ///
    /// Plan time quantities (`rto`, `delay`) are wall-clock microseconds
    /// on this backend.
    ///
    /// [`new`]: ThreadNet::new
    pub fn with_faults(nprocs: usize, plan: FaultPlan) -> ThreadNet {
        let injector = plan.is_active().then(|| Injector::new(plan));
        ThreadNet {
            inner: Arc::new(Inner {
                state: Mutex::new(State {
                    queues: HashMap::new(),
                    delayed: Vec::new(),
                    pending: Vec::new(),
                    dead: Vec::new(),
                    delivered: HashSet::new(),
                    next_seq: HashMap::new(),
                    redist_live: vec![0; nprocs],
                    stats: NetStats::new(nprocs),
                    fstats: FaultStats::default(),
                    events: Vec::new(),
                }),
                cond: Condvar::new(),
                injector,
                epoch: Instant::now(),
            }),
        }
    }

    fn micros(&self, at: Instant) -> f64 {
        at.duration_since(self.inner.epoch).as_secs_f64() * 1e6
    }

    /// Perform one transmission attempt of `(src, seq)` under injection,
    /// recording what the injector did to it. `attempt` is 0-based.
    #[allow(clippy::too_many_arguments)]
    fn transmit(
        &self,
        st: &mut State,
        inj: &Injector,
        msg: &Msg,
        dest: &Option<Vec<usize>>,
        seq: u64,
        attempt: u32,
        now: Instant,
    ) {
        let d = inj.decide(msg.src, seq, attempt);
        let t = self.micros(now);
        let event = |kind| FaultEvent {
            t,
            kind,
            src: msg.src,
            seq,
            tag: msg.tag.to_string(),
        };
        if d.drop {
            st.fstats.injected_drops += 1;
            st.events.push(event(FaultEventKind::DropInjected));
            return;
        }
        let copies = if d.dup { 2 } else { 1 };
        if d.dup {
            st.fstats.injected_dups += 1;
            st.events.push(event(FaultEventKind::DupInjected));
        }
        if d.reorder {
            st.fstats.injected_reorders += 1;
        }
        for _ in 0..copies {
            let entry = QueuedEntry {
                msg: msg.clone(),
                dest: dest.clone(),
                uid: Some((msg.src, seq)),
            };
            if d.extra_delay > 0.0 {
                st.fstats.injected_delays += 1;
                st.delayed.push(DelayedEntry {
                    entry,
                    ready_at: now + Duration::from_secs_f64(d.extra_delay * 1e-6),
                    reorder: d.reorder,
                });
            } else {
                st.redist_acquire(&entry.msg, &entry.dest);
                let q = st.queues.entry(msg.tag.clone()).or_default();
                if d.reorder {
                    q.push_front(entry);
                } else {
                    q.push_back(entry);
                }
            }
        }
    }

    /// Move delayed attempts whose time has come into the visible pool.
    /// Copies of a message that was claimed while they sat out their delay
    /// are suppressed here instead of entering the queue at all.
    fn promote_delayed(&self, st: &mut State, now: Instant) {
        let mut i = 0;
        while i < st.delayed.len() {
            if st.delayed[i].ready_at <= now {
                let DelayedEntry { entry, reorder, .. } = st.delayed.swap_remove(i);
                if let Some(uid) = entry.uid {
                    if st.delivered.contains(&uid) {
                        st.fstats.dup_suppressed += 1;
                        st.events.push(FaultEvent {
                            t: self.micros(now),
                            kind: FaultEventKind::DupSuppressed,
                            src: uid.0,
                            seq: uid.1,
                            tag: entry.msg.tag.to_string(),
                        });
                        continue;
                    }
                }
                st.redist_acquire(&entry.msg, &entry.dest);
                let q = st.queues.entry(entry.msg.tag.clone()).or_default();
                if reorder {
                    q.push_front(entry);
                } else {
                    q.push_back(entry);
                }
            } else {
                i += 1;
            }
        }
    }

    /// Retransmit every pending entry whose retry timer expired; entries
    /// out of retries are dead-lettered. Runs inside any receiver's wait
    /// loop — the protocol needs no timer thread.
    fn sweep_retries(&self, st: &mut State, now: Instant) {
        let Some(inj) = &self.inner.injector else {
            return;
        };
        let plan = inj.plan();
        let mut i = 0;
        while i < st.pending.len() {
            if st.pending[i].next_retry > now {
                i += 1;
                continue;
            }
            if st.pending[i].attempts > plan.max_retries {
                let p = st.pending.swap_remove(i);
                st.fstats.lost += 1;
                st.events.push(FaultEvent {
                    t: self.micros(now),
                    kind: FaultEventKind::Lost {
                        attempts: p.attempts,
                    },
                    src: p.msg.src,
                    seq: p.seq,
                    tag: p.msg.tag.to_string(),
                });
                st.dead.push(DeadLetter {
                    tag: p.msg.tag,
                    dest: p.dest,
                    src: p.msg.src,
                    seq: p.seq,
                    attempts: p.attempts,
                });
                continue;
            }
            let attempt = st.pending[i].attempts; // 0-based number of this retry
            let (msg, dest, seq) = {
                let p = &st.pending[i];
                (p.msg.clone(), p.dest.clone(), p.seq)
            };
            st.fstats.retries += 1;
            st.events.push(FaultEvent {
                t: self.micros(now),
                kind: FaultEventKind::Retry { attempt },
                src: msg.src,
                seq,
                tag: msg.tag.to_string(),
            });
            self.transmit(st, inj, &msg, &dest, seq, attempt, now);
            let p = &mut st.pending[i];
            p.attempts += 1;
            p.next_retry = now + rto_after(plan, p.attempts);
            i += 1;
        }
    }

    /// Post a message (non-blocking: XDP sends are initiations).
    pub fn send(&self, msg: Msg, dest: Option<Vec<usize>>) {
        let mut st = self.inner.state.lock();
        match &self.inner.injector {
            None => {
                st.redist_acquire(&msg, &dest);
                st.queues
                    .entry(msg.tag.clone())
                    .or_default()
                    .push_back(QueuedEntry {
                        msg,
                        dest,
                        uid: None,
                    });
            }
            Some(inj) => {
                let now = Instant::now();
                let seq = {
                    let c = st.next_seq.entry(msg.src).or_insert(0);
                    *c += 1;
                    *c
                };
                self.transmit(&mut st, inj, &msg, &dest, seq, 0, now);
                let next_retry = now + rto_after(inj.plan(), 1);
                st.pending.push(PendingEntry {
                    msg,
                    dest,
                    seq,
                    attempts: 1,
                    next_retry,
                });
            }
        }
        drop(st);
        self.inner.cond.notify_all();
    }

    /// Claim the first eligible message with this name; blocks until one
    /// arrives or `timeout` elapses (`None` on timeout or permanent loss —
    /// use [`recv_diag`] for the named diagnosis).
    ///
    /// [`recv_diag`]: ThreadNet::recv_diag
    pub fn recv(&self, tag: &Tag, self_pid: usize, timeout: Duration) -> Option<Msg> {
        self.recv_diag(tag, self_pid, timeout).ok()
    }

    /// Claim the first eligible message with this name, or say *why not*:
    /// [`RecvFailure::Lost`] when the only matching message was
    /// dead-lettered (permanently dropped), [`RecvFailure::Timeout`] when
    /// the deadline elapsed with nothing eligible.
    ///
    /// The deadline is fixed at entry (`Instant`-based): spurious or
    /// unrelated condvar wakeups never extend the wait.
    pub fn recv_diag(
        &self,
        tag: &Tag,
        self_pid: usize,
        timeout: Duration,
    ) -> Result<Msg, RecvFailure> {
        let deadline = Instant::now() + timeout;
        let mut st = self.inner.state.lock();
        loop {
            let now = Instant::now();
            if self.inner.injector.is_some() {
                self.promote_delayed(&mut st, now);
                self.sweep_retries(&mut st, now);
            }
            // Scan for an eligible message, suppressing already-delivered
            // duplicates as they surface.
            let eligible = |e: &QueuedEntry| match &e.dest {
                None => true,
                Some(pids) => pids.contains(&self_pid),
            };
            loop {
                let entry = {
                    let Some(q) = st.queues.get_mut(tag) else {
                        break;
                    };
                    let Some(pos) = q.iter().position(eligible) else {
                        break;
                    };
                    q.remove(pos).unwrap()
                };
                if let Some(uid) = entry.uid {
                    if st.delivered.contains(&uid) {
                        st.redist_release(&entry.msg, &entry.dest);
                        st.fstats.dup_suppressed += 1;
                        st.events.push(FaultEvent {
                            t: self.micros(now),
                            kind: FaultEventKind::DupSuppressed,
                            src: uid.0,
                            seq: uid.1,
                            tag: entry.msg.tag.to_string(),
                        });
                        continue;
                    }
                    st.delivered.insert(uid);
                    // Claiming is the ack: stop retransmitting, and purge
                    // outstanding duplicate copies so they never linger
                    // in the pool as unclaimable garbage.
                    st.pending.retain(|p| (p.msg.src, p.seq) != uid);
                    if let Some(q) = st.queues.get_mut(tag) {
                        let before = q.len();
                        q.retain(|e| e.uid != Some(uid));
                        for _ in 0..before - q.len() {
                            st.redist_release(&entry.msg, &entry.dest);
                            st.fstats.dup_suppressed += 1;
                            st.events.push(FaultEvent {
                                t: self.micros(now),
                                kind: FaultEventKind::DupSuppressed,
                                src: uid.0,
                                seq: uid.1,
                                tag: entry.msg.tag.to_string(),
                            });
                        }
                    }
                }
                let QueuedEntry { msg, dest, .. } = entry;
                st.redist_release(&msg, &dest);
                let bound = dest.is_some();
                let wire = if bound {
                    msg.payload_bytes()
                } else {
                    msg.size_bytes()
                };
                st.stats
                    .record(msg.src, self_pid, msg.payload_bytes(), wire, bound);
                return Ok(msg);
            }
            // Nothing eligible now. If a matching message is permanently
            // dead and nothing live could still satisfy us, diagnose loss
            // immediately rather than burning the whole deadline.
            if !st.dead.is_empty() {
                let matches_me = |t: &Tag, dest: &Option<Vec<usize>>| {
                    t == tag
                        && match dest {
                            None => true,
                            Some(pids) => pids.contains(&self_pid),
                        }
                };
                let live = st.pending.iter().any(|p| matches_me(&p.msg.tag, &p.dest))
                    || st
                        .delayed
                        .iter()
                        .any(|d| matches_me(&d.entry.msg.tag, &d.entry.dest));
                if !live {
                    if let Some(dl) = st.dead.iter().find(|d| matches_me(&d.tag, &d.dest)) {
                        let _ = (dl.src, dl.seq);
                        return Err(RecvFailure::Lost {
                            attempts: dl.attempts,
                        });
                    }
                }
            }
            // Fixed deadline: wait only for the time actually remaining,
            // capped by the next retry timer / delayed-delivery instant so
            // the protocol makes progress even with no other traffic.
            let mut wake_at = deadline;
            for p in &st.pending {
                wake_at = wake_at.min(p.next_retry);
            }
            for d in &st.delayed {
                wake_at = wake_at.min(d.ready_at);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvFailure::Timeout);
            }
            let wait = wake_at
                .saturating_duration_since(now)
                .max(Duration::from_micros(50));
            let _ = self.inner.cond.wait_for(&mut st, wait);
        }
    }

    /// Snapshot of traffic counters.
    pub fn stats(&self) -> NetStats {
        self.inner.state.lock().stats.clone()
    }

    /// Snapshot of fault/delivery counters (all zero without a plan).
    pub fn fault_stats(&self) -> FaultStats {
        self.inner.state.lock().fstats
    }

    /// Timestamped fault events (wall µs since net creation).
    pub fn fault_events(&self) -> Vec<FaultEvent> {
        self.inner.state.lock().events.clone()
    }

    /// Count of unclaimed messages (diagnostics).
    pub fn pending_messages(&self) -> usize {
        self.inner
            .state
            .lock()
            .queues
            .values()
            .map(|q| q.len())
            .sum()
    }

    /// Count of dead-lettered (permanently lost) messages.
    pub fn dead_letters(&self) -> usize {
        self.inner.state.lock().dead.len()
    }
}

/// Retry timeout after `attempts` transmissions: `rto * backoff^(n-1)`,
/// converted from the plan's microseconds to a `Duration`.
fn rto_after(plan: &FaultPlan, attempts: u32) -> Duration {
    let exp = attempts.saturating_sub(1).min(20);
    let us = plan.rto * plan.backoff.powi(exp as i32);
    Duration::from_secs_f64((us * 1e-6).min(60.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;
    use xdp_fault::LinkFault;
    use xdp_ir::{ElemType, Section, TransferKind, Triplet, VarId};
    use xdp_runtime::Buffer;

    fn tag(v: u32) -> Tag {
        Tag::new(VarId(v), Section::new(vec![Triplet::range(1, 2)]))
    }

    fn msg(v: u32, src: usize) -> Msg {
        Msg {
            tag: tag(v),
            kind: TransferKind::Value,
            payload: Some(std::sync::Arc::new(Buffer::zeros(ElemType::F64, 2))),
            src,
        }
    }

    const T: Duration = Duration::from_secs(2);

    #[test]
    fn send_then_recv() {
        let net = ThreadNet::new(2);
        net.send(msg(0, 0), None);
        let got = net.recv(&tag(0), 1, T).unwrap();
        assert_eq!(got.src, 0);
        assert_eq!(net.pending_messages(), 0);
        assert_eq!(net.stats().messages, 1);
    }

    #[test]
    fn payload_is_shared_not_copied() {
        // The delivered message's payload is the *same* allocation the
        // sender handed over — queueing, retry bookkeeping, and claiming
        // only clone the `Arc` — while the byte counters still charge the
        // full logical payload size per delivery.
        let net = ThreadNet::new(2);
        let m = msg(0, 0);
        let sent = m.payload.clone().unwrap();
        let logical = m.payload_bytes();
        net.send(m, Some(vec![1]));
        let got = net.recv(&tag(0), 1, T).unwrap();
        assert!(std::sync::Arc::ptr_eq(&sent, got.payload.as_ref().unwrap()));
        let stats = net.stats();
        assert_eq!(stats.payload_bytes, logical);
        assert_eq!(stats.wire_bytes, logical, "bound send travels payload-only");
    }

    #[test]
    fn dup_faults_share_one_payload_and_count_bytes_once() {
        // A dup-injected retransmission carries the same shared buffer;
        // dedup claims it once, so payload byte accounting is unchanged
        // from a fault-free run.
        let plan = FaultPlan {
            rto: 50_000.0,
            ..FaultPlan::uniform(
                11,
                LinkFault {
                    dup: 1.0,
                    ..LinkFault::default()
                },
            )
        };
        let net = ThreadNet::with_faults(2, plan);
        let m = msg(0, 0);
        let sent = m.payload.clone().unwrap();
        let logical = m.payload_bytes();
        net.send(m, Some(vec![1]));
        let got = net.recv(&tag(0), 1, T).unwrap();
        assert!(std::sync::Arc::ptr_eq(&sent, got.payload.as_ref().unwrap()));
        assert!(net.fault_stats().injected_dups > 0);
        let stats = net.stats();
        assert_eq!(stats.messages, 1, "dedup claims one delivery");
        assert_eq!(stats.payload_bytes, logical);
    }

    #[test]
    fn recv_blocks_until_send() {
        let net = ThreadNet::new(2);
        let n2 = net.clone();
        let h = std::thread::spawn(move || n2.recv(&tag(0), 1, T).unwrap());
        std::thread::sleep(Duration::from_millis(20));
        net.send(msg(0, 0), None);
        assert_eq!(h.join().unwrap().src, 0);
    }

    #[test]
    fn timeout_returns_none() {
        let net = ThreadNet::new(2);
        assert!(net.recv(&tag(0), 1, Duration::from_millis(10)).is_none());
    }

    #[test]
    fn bound_messages_skip_other_pids() {
        let net = ThreadNet::new(3);
        net.send(msg(0, 0), Some(vec![2]));
        // P1 times out; P2 gets it.
        assert!(net.recv(&tag(0), 1, Duration::from_millis(10)).is_none());
        assert!(net.recv(&tag(0), 2, T).is_some());
    }

    #[test]
    fn farm_claims_are_exclusive() {
        // 8 task messages, 3 claiming workers: each message claimed once.
        let net = ThreadNet::new(4);
        for k in 0..8 {
            net.send(msg(0, 0), None);
            let _ = k;
        }
        let mut handles = Vec::new();
        for w in 1..4 {
            let n = net.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = 0;
                while n.recv(&tag(0), w, Duration::from_millis(50)).is_some() {
                    got += 1;
                }
                got
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 8);
        assert_eq!(net.pending_messages(), 0);
    }

    /// Regression: the old `recv` restarted the full timeout on every
    /// condvar wakeup, so unrelated `notify_all` traffic could extend the
    /// wait indefinitely. With the fixed deadline, a noisy notifier must
    /// not stretch the wait past 2x the configured timeout.
    #[test]
    fn noisy_notifier_does_not_extend_timeout() {
        let net = ThreadNet::new(2);
        let stop = Arc::new(AtomicBool::new(false));
        let noisy = {
            let net = net.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                // Hammer the condvar with wakeups far more often than the
                // receive timeout.
                while !stop.load(Ordering::Relaxed) {
                    net.inner.cond.notify_all();
                    std::thread::sleep(Duration::from_millis(1));
                }
            })
        };
        let timeout = Duration::from_millis(60);
        let start = Instant::now();
        let got = net.recv(&tag(0), 1, timeout);
        let elapsed = start.elapsed();
        stop.store(true, Ordering::Relaxed);
        noisy.join().unwrap();
        assert!(got.is_none());
        assert!(
            elapsed < timeout * 2,
            "noisy notifier stretched {timeout:?} recv to {elapsed:?}"
        );
    }

    fn chaos_plan(seed: u64) -> FaultPlan {
        let mut p = FaultPlan::uniform(
            seed,
            LinkFault {
                drop: 0.3,
                dup: 0.2,
                reorder: 0.3,
                delay_p: 0.3,
                delay: 300.0, // µs
            },
        );
        p.rto = 500.0; // µs
        p
    }

    #[test]
    fn faulty_delivery_matches_lossless_multiset() {
        // 40 messages from 2 senders through a chaotic net: the receiver
        // must see each exactly once (payload multiset equality).
        let net = ThreadNet::with_faults(3, chaos_plan(42));
        for k in 0..20u64 {
            let mut m = msg(0, 0);
            m.payload = Some(std::sync::Arc::new(Buffer::zeros(
                ElemType::F64,
                (k + 1) as usize,
            )));
            net.send(m, None);
            let mut m = msg(0, 1);
            m.payload = Some(std::sync::Arc::new(Buffer::zeros(
                ElemType::F64,
                (k + 100) as usize,
            )));
            net.send(m, None);
        }
        let mut sizes = Vec::new();
        for _ in 0..40 {
            let m = net.recv(&tag(0), 2, T).expect("retry must deliver");
            sizes.push(m.payload.as_ref().unwrap().len());
        }
        sizes.sort_unstable();
        let want: Vec<usize> = (1..=20).chain(100..120).collect();
        assert_eq!(sizes, want);
        assert_eq!(net.stats().messages, 40, "dedup must not double-count");
        assert!(net.recv(&tag(0), 2, Duration::from_millis(20)).is_none());
    }

    #[test]
    fn permanent_loss_is_diagnosed_as_lost_not_timeout() {
        let mut plan = FaultPlan::none();
        plan.kill.push((0, 1)); // first message from p0 never arrives
        plan.rto = 200.0;
        plan.max_retries = 3;
        let net = ThreadNet::with_faults(2, plan);
        net.send(msg(0, 0), None);
        match net.recv_diag(&tag(0), 1, T) {
            Err(RecvFailure::Lost { attempts }) => assert_eq!(attempts, 4),
            other => panic!("want Lost, got {other:?}"),
        }
        assert_eq!(net.dead_letters(), 1);
        assert_eq!(net.fault_stats().lost, 1);
    }

    #[test]
    fn missing_message_is_timeout_not_lost() {
        // Nothing was ever sent: the diagnosis must be Timeout.
        let net = ThreadNet::with_faults(2, chaos_plan(7));
        match net.recv_diag(&tag(0), 1, Duration::from_millis(30)) {
            Err(RecvFailure::Timeout) => {}
            other => panic!("want Timeout, got {other:?}"),
        }
    }

    #[test]
    fn fault_replay_is_deterministic() {
        // Same plan + same traffic => identical injection counters. The
        // plan is drop-free with an rto far beyond the test window, so no
        // timing-dependent retransmissions occur and every counter is a
        // pure function of (seed, seq). Determinism of the per-attempt
        // drop/retry chain is covered by the injector unit tests and the
        // virtual-time sim replay test.
        let run = || {
            let mut plan = FaultPlan::uniform(
                1234,
                LinkFault {
                    dup: 0.3,
                    reorder: 0.4,
                    delay_p: 0.3,
                    delay: 50.0,
                    ..LinkFault::default()
                },
            );
            plan.rto = 1_000_000.0; // 1s: no retries inside the test
            let net = ThreadNet::with_faults(2, plan);
            for _ in 0..30 {
                net.send(msg(0, 0), None);
            }
            for _ in 0..30 {
                net.recv(&tag(0), 1, T).unwrap();
            }
            let f = net.fault_stats();
            (f.injected_dups, f.injected_delays, f.injected_reorders)
        };
        let a = run();
        assert!(a.0 + a.1 + a.2 > 0, "chaos plan injected nothing");
        assert_eq!(a, run());
    }

    #[test]
    fn duplicates_do_not_double_deliver_across_claiming_receivers() {
        // Farm pattern under heavy duplication: total claims must equal
        // messages sent even though dup copies race between two receivers.
        let mut plan = FaultPlan::uniform(
            9,
            LinkFault {
                dup: 1.0,
                ..LinkFault::default()
            },
        );
        plan.rto = 1_000_000.0; // keep retransmissions out of the window
        let net = ThreadNet::with_faults(3, plan);
        for _ in 0..10 {
            net.send(msg(0, 0), None);
        }
        let mut handles = Vec::new();
        for w in 1..3 {
            let n = net.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = 0;
                while n.recv(&tag(0), w, Duration::from_millis(60)).is_some() {
                    got += 1;
                }
                got
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 10);
        let f = net.fault_stats();
        assert_eq!(f.injected_dups, 10);
        assert_eq!(f.dup_suppressed, 10);
    }
}
