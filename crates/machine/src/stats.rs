//! Network traffic accounting.

/// Counters maintained by both network backends; the experiment harnesses
/// report these alongside virtual/wall time.
#[derive(Clone, Debug, Default)]
pub struct NetStats {
    /// Total messages matched (delivered).
    pub messages: u64,
    /// Total payload bytes delivered.
    pub payload_bytes: u64,
    /// Total wire bytes delivered (payload + name headers for unbound
    /// messages).
    pub wire_bytes: u64,
    /// Messages that traveled with their name (unbound rendezvous).
    pub unbound_messages: u64,
    /// Messages whose destination was bound at compile time.
    pub bound_messages: u64,
    /// Per-processor sent message counts.
    pub sent_by: Vec<u64>,
    /// Per-processor received message counts.
    pub received_by: Vec<u64>,
    /// High-water mark of live redistribution staging bytes on any single
    /// processor (messages whose tag salt marks them as part of an
    /// explicit redistribution schedule). 0 when the run redistributed
    /// nothing.
    pub redist_peak_bytes: u64,
}

impl NetStats {
    /// Counters for an `n`-processor machine.
    pub fn new(nprocs: usize) -> NetStats {
        NetStats {
            sent_by: vec![0; nprocs],
            received_by: vec![0; nprocs],
            ..NetStats::default()
        }
    }

    /// Record one delivered message.
    pub fn record(&mut self, src: usize, dst: usize, payload: u64, wire: u64, bound: bool) {
        self.messages += 1;
        self.payload_bytes += payload;
        self.wire_bytes += wire;
        if bound {
            self.bound_messages += 1;
        } else {
            self.unbound_messages += 1;
        }
        self.sent_by[src] += 1;
        self.received_by[dst] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn record_accumulates() {
        let mut s = NetStats::new(2);
        s.record(0, 1, 32, 64, false);
        s.record(1, 0, 16, 16, true);
        assert_eq!(s.messages, 2);
        assert_eq!(s.payload_bytes, 48);
        assert_eq!(s.wire_bytes, 80);
        assert_eq!(s.unbound_messages, 1);
        assert_eq!(s.bound_messages, 1);
        assert_eq!(s.sent_by, vec![1, 1]);
        assert_eq!(s.received_by, vec![1, 1]);
    }

    const P: usize = 4;

    /// (src, dst, payload, header, bound) — wire is payload plus the name
    /// header when the message travels unbound, as both network backends
    /// compute it.
    fn record_strategy() -> impl Strategy<Value = (usize, usize, u64, u64, bool)> {
        (0usize..P, 0usize..P, 0u64..4096, 1u64..64, 0u8..2)
            .prop_map(|(src, dst, payload, header, b)| (src, dst, payload, header, b == 1))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The counter invariants every report relies on: messages split
        /// exactly into bound + unbound, per-processor send/receive counts
        /// both sum to the message total, and wire bytes dominate payload
        /// bytes (headers only ever add).
        #[test]
        fn invariants_hold(records in prop::collection::vec(record_strategy(), 0..64)) {
            let mut s = NetStats::new(P);
            for (src, dst, payload, header, bound) in records {
                let wire = payload + if bound { 0 } else { header };
                s.record(src, dst, payload, wire, bound);
            }
            prop_assert_eq!(s.messages, s.bound_messages + s.unbound_messages);
            prop_assert_eq!(s.sent_by.iter().sum::<u64>(), s.messages);
            prop_assert_eq!(s.received_by.iter().sum::<u64>(), s.messages);
            prop_assert!(s.wire_bytes >= s.payload_bytes);
        }
    }
}
