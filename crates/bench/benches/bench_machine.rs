//! Wall-clock micro-benchmarks of the simulated network's matcher and the
//! threaded backend's shared message pool.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use xdp_ir::{ElemType, Section, TransferKind, Triplet, VarId};
use xdp_machine::{CostModel, SimNet, ThreadNet, Topology};
use xdp_runtime::{Buffer, Msg, Tag};

fn tag(k: i64) -> Tag {
    Tag::salted(VarId(0), Section::new(vec![Triplet::point(k)]), 0)
}

fn msg(k: i64) -> Msg {
    Msg {
        tag: tag(k),
        kind: TransferKind::Value,
        payload: Some(Buffer::zeros(ElemType::F64, 8).into()),
        src: 0,
    }
}

fn bench_simnet_matcher(c: &mut Criterion) {
    c.bench_function("simnet_send_recv_match_1k", |bch| {
        bch.iter(|| {
            let mut net = SimNet::new(4, CostModel::default_1993(), Topology::Uniform);
            for k in 0..1000 {
                net.post_send(msg(k), None, k as f64);
            }
            for k in 0..1000 {
                black_box(net.post_recv(tag(k), 1, k as f64, k as u64));
            }
            net.pending()
        })
    });
    c.bench_function("simnet_farm_same_tag_1k", |bch| {
        // 1000 outstanding sends on ONE tag, 1000 claims: the §2.7 pattern
        // stresses the FIFO pick within a bucket.
        bch.iter(|| {
            let mut net = SimNet::new(4, CostModel::default_1993(), Topology::Uniform);
            for k in 0..1000 {
                net.post_send(msg(0), None, k as f64);
            }
            for k in 0..1000 {
                black_box(net.post_recv(tag(0), (k % 4) as usize, k as f64, k as u64));
            }
            net.pending()
        })
    });
}

fn bench_threadnet(c: &mut Criterion) {
    c.bench_function("threadnet_send_recv_1k", |bch| {
        bch.iter(|| {
            let net = ThreadNet::new(2);
            for k in 0..1000 {
                net.send(msg(k), None);
            }
            for k in 0..1000 {
                black_box(net.recv(&tag(k), 1, Duration::from_secs(1)));
            }
        })
    });
}

criterion_group!(benches, bench_simnet_matcher, bench_threadnet);
criterion_main!(benches);
