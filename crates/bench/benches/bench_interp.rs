//! Wall-clock benchmarks of the IL+XDP interpreter and both executors on
//! the paper's running example.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use xdp_compiler::{lower_owner_computes, FrontendOptions, PassManager, SeqProgram, SeqStmt};
use xdp_core::{KernelRegistry, SimConfig, SimExec, ThreadConfig, ThreadExec};
use xdp_ir::build as b;
use xdp_ir::{DimDist, ElemType, ProcGrid, Program, VarId};
use xdp_runtime::Value;

fn source(n: i64, nprocs: usize) -> (SeqProgram, VarId, VarId) {
    let grid = ProcGrid::linear(nprocs);
    let mut s = SeqProgram::new();
    let a = s.declare(b::array(
        "A",
        ElemType::F64,
        vec![(1, n)],
        vec![DimDist::Block],
        grid.clone(),
    ));
    let bb = s.declare(b::array(
        "B",
        ElemType::F64,
        vec![(1, n)],
        vec![DimDist::Cyclic],
        grid,
    ));
    let ai = b::sref(a, vec![b::at(b::iv("i"))]);
    let bi = b::sref(bb, vec![b::at(b::iv("i"))]);
    s.body = vec![SeqStmt::DoLoop {
        var: "i".into(),
        lo: b::c(1),
        hi: b::c(n),
        body: vec![SeqStmt::Assign {
            target: ai.clone(),
            rhs: b::val(ai).add(b::val(bi)),
        }],
    }];
    (s, a, bb)
}

fn run_sim(p: &Program, a: VarId, bb: VarId, nprocs: usize) -> f64 {
    let mut exec = SimExec::new(
        Arc::new(p.clone()),
        KernelRegistry::standard(),
        SimConfig::new(nprocs),
    );
    exec.init_exclusive(a, |idx| Value::F64(idx[0] as f64));
    exec.init_exclusive(bb, |idx| Value::F64(idx[0] as f64));
    exec.run().unwrap().virtual_time
}

fn bench_sim_executor(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_executor_naive_loop");
    for &n in &[64i64, 256] {
        let (s, a, bb) = source(n, 4);
        let naive = lower_owner_computes(&s, &FrontendOptions::default()).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| black_box(run_sim(&naive, a, bb, 4)))
        });
    }
    g.finish();
}

fn bench_optimized_vs_naive(c: &mut Criterion) {
    let (s, a, bb) = source(256, 4);
    let naive = lower_owner_computes(&s, &FrontendOptions::default()).unwrap();
    let (opt, _) = PassManager::paper_pipeline().run(&naive);
    c.bench_function("sim_executor_optimized_loop_256", |bch| {
        bch.iter(|| black_box(run_sim(&opt, a, bb, 4)))
    });
}

fn bench_pass_pipeline(c: &mut Criterion) {
    let (s, _, _) = source(256, 4);
    let naive = lower_owner_computes(&s, &FrontendOptions::default()).unwrap();
    c.bench_function("compiler_paper_pipeline_256", |bch| {
        bch.iter(|| black_box(PassManager::paper_pipeline().run(black_box(&naive))))
    });
}

fn bench_thread_executor(c: &mut Criterion) {
    let (s, a, bb) = source(64, 4);
    let naive = lower_owner_computes(&s, &FrontendOptions::default()).unwrap();
    c.bench_function("thread_executor_naive_loop_64", |bch| {
        bch.iter(|| {
            let mut exec = ThreadExec::new(
                Arc::new(naive.clone()),
                KernelRegistry::standard(),
                ThreadConfig::new(4),
            );
            exec.init_exclusive(a, |idx| Value::F64(idx[0] as f64));
            exec.init_exclusive(bb, |idx| Value::F64(idx[0] as f64));
            black_box(exec.run().unwrap().wall)
        })
    });
}

criterion_group!(
    benches,
    bench_sim_executor,
    bench_optimized_vs_naive,
    bench_pass_pipeline,
    bench_thread_executor
);
criterion_main!(benches);
