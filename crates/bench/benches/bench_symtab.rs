//! Wall-clock micro-benchmarks of the run-time XDP symbol table (§3.1):
//! the operations every surviving compute rule pays at run time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xdp_ir::build as b;
use xdp_ir::{DimDist, ElemType, ProcGrid, Section, Triplet, VarId};
use xdp_runtime::RtSymbolTable;

fn symtab_with_segments(n: i64, seg: i64) -> RtSymbolTable {
    let decls = vec![b::array_seg(
        "A",
        ElemType::F64,
        vec![(1, n)],
        vec![DimDist::Block],
        ProcGrid::linear(1),
        vec![seg],
    )];
    RtSymbolTable::build(0, &decls)
}

fn bench_iown(c: &mut Criterion) {
    let mut g = c.benchmark_group("symtab_iown_vs_segments");
    for &segs in &[4usize, 16, 64, 256] {
        let n = 1024i64;
        let mut st = symtab_with_segments(n, n / segs as i64);
        let full = Section::new(vec![Triplet::range(1, n)]);
        g.bench_with_input(BenchmarkId::from_parameter(segs), &segs, |bch, _| {
            bch.iter(|| black_box(st.iown(VarId(0), black_box(&full))))
        });
    }
    g.finish();
}

fn bench_point_query(c: &mut Criterion) {
    let mut st = symtab_with_segments(1024, 16);
    let point = Section::new(vec![Triplet::point(513)]);
    c.bench_function("symtab_iown_point", |bch| {
        bch.iter(|| black_box(st.iown(VarId(0), black_box(&point))))
    });
    c.bench_function("symtab_mylb_full", |bch| {
        let full = Section::new(vec![Triplet::range(1, 1024)]);
        bch.iter(|| black_box(st.mylb(VarId(0), black_box(&full), 1)))
    });
}

fn bench_section_algebra(c: &mut Criterion) {
    let a = Triplet::new(2, 50_000, 6);
    let bt = Triplet::new(8, 40_000, 4);
    c.bench_function("triplet_intersect_crt", |bch| {
        bch.iter(|| black_box(black_box(a).intersect(black_box(&bt))))
    });
    let s1 = Section::new(vec![Triplet::range(1, 512), Triplet::new(2, 1024, 2)]);
    let s2 = Section::new(vec![Triplet::range(200, 700), Triplet::new(4, 900, 4)]);
    c.bench_function("section_intersect_2d", |bch| {
        bch.iter(|| black_box(black_box(&s1).intersect(black_box(&s2))))
    });
}

fn bench_ownership_transfer(c: &mut Criterion) {
    c.bench_function("ownership_transfer_roundtrip", |bch| {
        bch.iter_batched(
            || symtab_with_segments(256, 1),
            |mut st| {
                let sec = Section::new(vec![Triplet::point(7)]);
                let data = st.remove_ownership(VarId(0), &sec).unwrap();
                let sid = st.begin_ownership_recv(VarId(0), &sec).unwrap();
                st.complete_ownership_recv(VarId(0), sid, Some(&data))
                    .unwrap();
                st
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_iown,
    bench_point_query,
    bench_section_algebra,
    bench_ownership_transfer
);
criterion_main!(benches);
