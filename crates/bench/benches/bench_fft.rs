//! Wall-clock benchmarks of the local FFT kernel and the whole distributed
//! 3-D FFT on both backends.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xdp_apps::fft::{fft1d_in_place, fft3d_seq};
use xdp_apps::fft3d::{run_stage, Fft3dConfig, Stage};
use xdp_core::SimConfig;
use xdp_runtime::Complex;

fn bench_fft1d(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft1d");
    for &n in &[64usize, 256, 1024] {
        let input: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sin(), 0.0))
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter_batched(
                || input.clone(),
                |mut v| {
                    fft1d_in_place(&mut v);
                    v
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_fft3d_seq(c: &mut Criterion) {
    let n = 16usize;
    let input: Vec<Complex> = (0..n * n * n)
        .map(|i| Complex::new((i as f64).cos(), (i as f64).sin()))
        .collect();
    c.bench_function("fft3d_seq_16", |bch| {
        bch.iter_batched(
            || input.clone(),
            |mut v| {
                fft3d_seq(&mut v, n);
                v
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_fft3d_distributed_sim(c: &mut Criterion) {
    c.bench_function("fft3d_sim_v3_n8_p4", |bch| {
        bch.iter(|| {
            black_box(
                run_stage(
                    Fft3dConfig::new(8, 4),
                    Stage::V3AwaitSunk,
                    SimConfig::new(4),
                    42,
                )
                .unwrap()
                .virtual_time,
            )
        })
    });
}

criterion_group!(
    benches,
    bench_fft1d,
    bench_fft3d_seq,
    bench_fft3d_distributed_sim
);
criterion_main!(benches);
