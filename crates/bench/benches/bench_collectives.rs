//! Wall-clock benchmarks of the collectives subsystem: planning cost
//! (section algebra + strategy choice), schedule construction for the
//! classic collectives, and packed schedule execution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xdp_collectives::{allreduce, alltoall_bruck, plan, run_lockstep};
use xdp_ir::{DimDist, Distribution, ProcGrid, Section, Triplet, VarId};
use xdp_machine::{CostModel, Topology};

fn bench_plan(c: &mut Criterion) {
    let mut g = c.benchmark_group("redistribution_plan");
    for &nprocs in &[4usize, 16] {
        let n = 4096i64;
        let bounds = [Triplet::range(1, n)];
        let src = Distribution::new(vec![DimDist::Block], ProcGrid::linear(nprocs));
        let dst = Distribution::new(vec![DimDist::Cyclic], ProcGrid::linear(nprocs));
        let model = CostModel::default_1993();
        g.bench_with_input(BenchmarkId::from_parameter(nprocs), &nprocs, |b, _| {
            b.iter(|| {
                black_box(plan(
                    VarId(0),
                    black_box(&bounds),
                    8,
                    &src,
                    &dst,
                    &model,
                    &Topology::Linear,
                    false,
                ))
            })
        });
    }
    g.finish();
}

fn bench_schedules(c: &mut Criterion) {
    let mut g = c.benchmark_group("collective_schedules");
    for &nprocs in &[8usize, 32] {
        let n = (nprocs as i64) * 64;
        g.bench_with_input(BenchmarkId::new("allreduce", nprocs), &nprocs, |b, &p| {
            b.iter(|| black_box(allreduce(VarId(0), black_box(n), 8, p)))
        });
        g.bench_with_input(
            BenchmarkId::new("alltoall_bruck", nprocs),
            &nprocs,
            |b, &p| b.iter(|| black_box(alltoall_bruck(VarId(0), black_box(n), 8, p))),
        );
    }
    g.finish();
}

fn bench_lockstep_exec(c: &mut Criterion) {
    let nprocs = 8usize;
    let n = 2048i64;
    let bounds = Section::new(vec![Triplet::range(1, n)]);
    let s = alltoall_bruck(VarId(0), n, 8, nprocs);
    let init: Vec<Vec<f64>> = (0..nprocs)
        .map(|p| (0..n).map(|i| (p as f64) * 1e4 + i as f64).collect())
        .collect();
    c.bench_function("lockstep_alltoall_8x2048", |b| {
        b.iter_batched(
            || init.clone(),
            |mut data| {
                run_lockstep(&s, &bounds, &mut data).unwrap();
                data
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_plan, bench_schedules, bench_lockstep_exec);
criterion_main!(benches);
