//! Benchmark trajectories: append-only run history with a regression
//! gate.
//!
//! `BENCH_serve.json` used to be overwritten with the latest run, which
//! made "did serving get slower?" unanswerable from the repo itself. A
//! trajectory file is a versioned document holding every recorded run in
//! order:
//!
//! ```json
//! {"xdp_bench_trajectory_version": 1, "runs": [ {...}, {...} ]}
//! ```
//!
//! [`append`] migrates transparently: a missing file starts an empty
//! trajectory, and a legacy file holding one bare report object becomes
//! that trajectory's first run. Each run row is expected to carry
//! `experiment`, `runs_per_sec`, and `latency_us.p99` (the shape of
//! [`ReplayReport::to_json`](../../xdp_serve/replay/struct.ReplayReport.html));
//! rows are never rewritten once appended.
//!
//! [`check_last`] is the regression gate `xdp-bench`'s `bench_check`
//! binary (and CI) runs after appending: the newest row is compared
//! against the most recent *earlier* row of the same experiment, and the
//! gate fails when p99 latency grew or throughput shrank by more than
//! the allowed factor (25% by default). Cross-experiment rows are never
//! compared — an `e14-metrics` run is not a regression baseline for an
//! `e13-serve` run.

use serde_json::{from_str, Map, Value as Json};
use std::path::Path;

/// Version stamp of the trajectory document.
pub const TRAJECTORY_VERSION: u64 = 1;

/// Allowed degradation before the gate fails: the new row may have at
/// most `ratio`× the previous p99 and at least `1/ratio`× the previous
/// throughput.
#[derive(Clone, Copy, Debug)]
pub struct Gate {
    pub ratio: f64,
}

impl Default for Gate {
    fn default() -> Gate {
        Gate { ratio: 1.25 }
    }
}

/// Load a trajectory's runs. Missing file → empty. A legacy single
/// report object is wrapped as a one-run trajectory.
pub fn load(path: &Path) -> Result<Vec<Json>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
    };
    if text.trim().is_empty() {
        return Ok(Vec::new());
    }
    let doc = from_str(&text).map_err(|e| format!("cannot parse {}: {e:?}", path.display()))?;
    match &doc {
        Json::Object(o) if o.get("xdp_bench_trajectory_version").is_some() => {
            let runs = o
                .get("runs")
                .and_then(|r| r.as_array())
                .ok_or_else(|| format!("{}: trajectory has no runs array", path.display()))?;
            Ok(runs.clone())
        }
        // Legacy layout: the file is one bare report object.
        Json::Object(_) => Ok(vec![doc]),
        Json::Array(runs) => Ok(runs.clone()),
        _ => Err(format!("{}: not a trajectory document", path.display())),
    }
}

/// Append one run row and write the versioned document back. Returns
/// the new run count.
pub fn append(path: &Path, row: Json) -> Result<usize, String> {
    let mut runs = load(path)?;
    runs.push(row);
    let mut doc = Map::new();
    doc.insert(
        "xdp_bench_trajectory_version".into(),
        Json::from(TRAJECTORY_VERSION),
    );
    doc.insert("runs".into(), Json::Array(runs.clone()));
    std::fs::write(path, format!("{}\n", Json::Object(doc)))
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(runs.len())
}

fn experiment(row: &Json) -> &str {
    row.get("experiment").and_then(|v| v.as_str()).unwrap_or("")
}

fn p99_us(row: &Json) -> Option<f64> {
    row.get("latency_us").and_then(|l| l.get("p99"))?.as_f64()
}

fn runs_per_sec(row: &Json) -> Option<f64> {
    row.get("runs_per_sec")?.as_f64()
}

/// The newest run's regression baseline: the most recent *earlier* row
/// of the same experiment. `None` when the trajectory is empty or the
/// newest row is the first of its experiment — the gate then passes
/// vacuously, and callers should say so rather than claim a comparison
/// happened.
pub fn baseline(runs: &[Json]) -> Option<&Json> {
    let cur = runs.last()?;
    let exp = experiment(cur);
    runs[..runs.len() - 1]
        .iter()
        .rev()
        .find(|r| experiment(r) == exp)
}

/// Gate the newest run against the most recent earlier run of the same
/// experiment. Returns violations (empty = pass). A trajectory with no
/// comparable baseline passes trivially.
pub fn check_last(runs: &[Json], gate: Gate) -> Vec<String> {
    let Some(cur) = runs.last() else {
        return Vec::new();
    };
    let exp = experiment(cur);
    let Some(prev) = baseline(runs) else {
        return Vec::new();
    };
    let mut violations = Vec::new();
    if let (Some(now), Some(was)) = (p99_us(cur), p99_us(prev)) {
        if was > 0.0 && now > was * gate.ratio {
            violations.push(format!(
                "{exp}: p99 latency regressed {was:.0}us -> {now:.0}us (>{:.0}% slower)",
                (gate.ratio - 1.0) * 100.0
            ));
        }
    }
    if let (Some(now), Some(was)) = (runs_per_sec(cur), runs_per_sec(prev)) {
        if was > 0.0 && now < was / gate.ratio {
            violations.push(format!(
                "{exp}: throughput regressed {was:.1} -> {now:.1} runs/sec (>{:.0}% drop)",
                (1.0 - 1.0 / gate.ratio) * 100.0
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn row(exp: &str, p99: u64, rps: f64) -> Json {
        let mut lat = Map::new();
        lat.insert("p99".into(), Json::from(p99));
        let mut o = Map::new();
        o.insert("experiment".into(), Json::from(exp));
        o.insert("runs_per_sec".into(), Json::from(rps));
        o.insert("latency_us".into(), Json::Object(lat));
        Json::Object(o)
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("xdp-traj-{}-{name}.json", std::process::id()))
    }

    #[test]
    fn append_migrates_legacy_single_object() {
        let path = tmp("legacy");
        std::fs::write(&path, format!("{}", row("e13-serve", 100, 50.0))).unwrap();
        let n = append(&path, row("e13-serve", 110, 52.0)).unwrap();
        assert_eq!(n, 2, "legacy object becomes the first run");
        let runs = load(&path).unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(experiment(&runs[0]), "e13-serve");
        // The document is now versioned.
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("xdp_bench_trajectory_version"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_an_empty_trajectory() {
        let path = tmp("missing");
        let _ = std::fs::remove_file(&path);
        assert_eq!(load(&path).unwrap().len(), 0);
        let n = append(&path, row("e13-serve", 100, 50.0)).unwrap();
        assert_eq!(n, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn gate_passes_within_bounds_and_fails_beyond() {
        let ok = vec![row("e13-serve", 100, 50.0), row("e13-serve", 120, 45.0)];
        assert!(check_last(&ok, Gate::default()).is_empty(), "within 25%");

        let slow = vec![row("e13-serve", 100, 50.0), row("e13-serve", 130, 50.0)];
        let v = check_last(&slow, Gate::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("p99"));

        let cold = vec![row("e13-serve", 100, 50.0), row("e13-serve", 100, 30.0)];
        let v = check_last(&cold, Gate::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("throughput"));
    }

    #[test]
    fn gate_never_compares_across_experiments() {
        let runs = vec![
            row("e13-serve", 100, 50.0),
            row("e14-metrics", 900, 5.0), // different experiment: not a regression
        ];
        assert!(check_last(&runs, Gate::default()).is_empty());
        // But a matching earlier row is found past interleaved rows.
        let runs = vec![
            row("e14-metrics", 100, 50.0),
            row("e13-serve", 100, 50.0),
            row("e14-metrics", 500, 5.0),
        ];
        let v = check_last(&runs, Gate::default());
        assert_eq!(v.len(), 2, "{v:?}");
    }

    #[test]
    fn first_run_of_an_experiment_passes() {
        assert!(check_last(&[], Gate::default()).is_empty());
        assert!(check_last(&[row("e13-serve", 1, 1.0)], Gate::default()).is_empty());
    }

    #[test]
    fn baseline_exists_only_for_a_matching_earlier_row() {
        assert!(baseline(&[]).is_none(), "empty trajectory");
        assert!(
            baseline(&[row("e13-serve", 1, 1.0)]).is_none(),
            "first run of an experiment"
        );
        assert!(
            baseline(&[row("e14-metrics", 1, 1.0), row("e13-serve", 1, 1.0)]).is_none(),
            "cross-experiment rows are not baselines"
        );
        let runs = vec![
            row("e13-serve", 100, 50.0),
            row("e14-metrics", 1, 1.0),
            row("e13-serve", 120, 45.0),
        ];
        let b = baseline(&runs).expect("matching earlier row");
        assert_eq!(p99_us(b), Some(100.0));
    }

    #[test]
    fn empty_file_is_an_empty_trajectory() {
        let path = tmp("empty");
        std::fs::write(&path, "").unwrap();
        assert_eq!(load(&path).unwrap().len(), 0, "empty file: vacuous");
        std::fs::write(&path, "  \n").unwrap();
        assert_eq!(load(&path).unwrap().len(), 0, "whitespace file: vacuous");
        let _ = std::fs::remove_file(&path);
    }
}
