//! # xdp-bench — the experiment harness
//!
//! One binary per figure/experiment in DESIGN.md's index (`cargo run -p
//! xdp-bench --bin <id>`); Criterion micro-benchmarks under `benches/`.
//! Binaries print human-readable tables; when `XDP_JSON` is set (see
//! [`table::json_enabled`] for the exact rule) they also emit one JSON
//! object per row on stdout for machine consumption, each stamped with
//! `xdp_json_version`.

pub mod conformance;
pub mod table;
pub mod trajectory;

pub use table::{json_enabled, Table, JSON_SCHEMA_VERSION};
pub use trajectory::{Gate, TRAJECTORY_VERSION};
