//! # xdp-bench — the experiment harness
//!
//! One binary per figure/experiment in DESIGN.md's index (`cargo run -p
//! xdp-bench --bin <id>`); Criterion micro-benchmarks under `benches/`.
//! Binaries print human-readable tables; with `XDP_JSON=1` they also emit
//! one JSON object per row on stdout for machine consumption.

pub mod conformance;
pub mod table;

pub use table::Table;
