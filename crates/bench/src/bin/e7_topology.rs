//! E7 — architectural sensitivity (§3.2: "Other optimizations need to be
//! modified depending on various architectural and system
//! considerations").
//!
//! Two communication patterns under three interconnects (uniform crossbar,
//! linear array, 2-D mesh) with hop-scaled latency:
//!
//! * the 3-D FFT redistribution is all-to-all — its cost tracks the
//!   topology's average pair distance, so a linear array hurts;
//! * the 2-D Jacobi halo exchange is nearest-neighbor *in pid space* — on
//!   a linear array every message is one hop; on a 2-D mesh the row-major
//!   pid embedding puts "neighbors" like p3/p4 four hops apart, so the
//!   same program slows down unless the decomposition is re-fitted to the
//!   interconnect.
//!
//! Expected shape: FFT ranks uniform <= mesh < linear; Jacobi is identical
//! on uniform and linear but *worse* on the mismatched mesh embedding —
//! three ways the same IL+XDP program meets three machines.

use std::sync::Arc;
use xdp_apps::fft3d::{run_stage, Fft3dConfig, Stage};
use xdp_apps::halo2d::build_jacobi2d;
use xdp_bench::table::j;
use xdp_bench::Table;
use xdp_core::{KernelRegistry, SimConfig, SimExec};
use xdp_machine::{CostModel, Topology};
use xdp_runtime::Value;

fn main() {
    let nprocs = 8;
    let cost = CostModel {
        alpha: 400.0,
        hop_factor: 1.0, // each extra hop costs another alpha
        ..CostModel::default_1993()
    };
    let topos: [(&str, Topology); 3] = [
        ("uniform", Topology::Uniform),
        ("mesh 2x4", Topology::Mesh2D { rows: 2, cols: 4 }),
        ("linear", Topology::Linear),
    ];

    let mut t = Table::new(
        "E7: interconnect sensitivity (P=8, alpha=400, hop_factor=1)",
        &["pattern", "topology", "time", "wait", "vs uniform"],
    );
    // All-to-all: the FFT redistribution.
    let mut base = None;
    for (name, topo) in &topos {
        let r = run_stage(
            Fft3dConfig::new(16, nprocs),
            Stage::V3AwaitSunk,
            SimConfig::new(nprocs)
                .with_cost(cost)
                .with_topo(topo.clone()),
            42,
        )
        .expect("fft");
        let b0 = *base.get_or_insert(r.virtual_time);
        t.row(&[
            j::s("3-D FFT redistribution (all-to-all)"),
            j::s(name),
            j::f(r.virtual_time),
            j::f(r.total_wait()),
            j::s(&format!("{:.2}x", r.virtual_time / b0)),
        ]);
    }
    // Nearest-neighbor: the halo exchange.
    let mut base = None;
    for (name, topo) in &topos {
        let (p, vars) = build_jacobi2d(16, 32, nprocs, 4);
        let mut exec = SimExec::new(
            Arc::new(p),
            KernelRegistry::standard(),
            SimConfig::new(nprocs)
                .with_cost(cost)
                .with_topo(topo.clone()),
        );
        exec.init_exclusive(vars.u, |idx| Value::F64((idx[0] * 31 + idx[1]) as f64));
        let r = exec.run().expect("jacobi");
        let b0 = *base.get_or_insert(r.virtual_time);
        t.row(&[
            j::s("2-D Jacobi halo (nearest-neighbor)"),
            j::s(name),
            j::f(r.virtual_time),
            j::f(r.total_wait()),
            j::s(&format!("{:.2}x", r.virtual_time / b0)),
        ]);
    }
    t.print();
    println!(
        "interpretation: the all-to-all redistribution pays the topology's\n\
         diameter; the pid-space nearest-neighbor halo is free on the linear\n\
         array but pays dearly on the mesh, whose row-major embedding puts\n\
         'adjacent' pids rows apart — the decomposition, not just the message\n\
         count, must fit the interconnect (§3.2)."
    );
}
