//! E4 — ownership-based load balancing (§2.6/§2.7): the self-scheduling
//! task farm vs static block assignment across skew and machine size.
//!
//! Expected shape: at zero skew both are ideal; as skew grows, the static
//! assignment's worst block dominates while the farm tracks the ideal
//! makespan bound; the advantage grows with processor count.

use std::sync::Arc;
use xdp_apps::farm::{build_farm, build_static, FarmConfig};
use xdp_apps::workloads;
use xdp_bench::table::j;
use xdp_bench::Table;
use xdp_core::{ExecReport, SimConfig, SimExec};
use xdp_ir::{Program, VarId};
use xdp_runtime::Value;

fn run(p: Program, w: VarId, costs: &[u64], np: usize) -> ExecReport {
    let mut exec = SimExec::new(Arc::new(p), xdp_apps::app_kernels(), SimConfig::new(np));
    exec.init_exclusive(w, |idx| Value::F64(costs[(idx[0] - 1) as usize] as f64));
    exec.run().expect("run")
}

fn main() {
    let scale = 50i64;
    let mut t = Table::new(
        "E4: task farm vs static blocks (virtual time)",
        &[
            "P",
            "tasks",
            "skew",
            "static",
            "farm",
            "ideal bound",
            "farm/static",
            "farm/ideal",
        ],
    );
    for &np in &[4usize, 8] {
        let tasks = np * 8;
        for &skew in &[0.0, 0.5, 1.0, 1.5, 2.0, 3.0] {
            let costs = workloads::zipf_costs(tasks, 200_000, skew);
            let cfg = FarmConfig {
                tasks,
                nprocs: np,
                scale,
            };
            let (pf, vf) = build_farm(cfg);
            let farm = run(pf, vf.w, &costs, np);
            let (ps, vs) = build_static(cfg);
            let stat = run(ps, vs.w, &costs, np);
            let ideal = workloads::ideal_makespan(&costs, np) as f64 * scale as f64 * 0.1;
            t.row(&[
                j::i(np as i64),
                j::i(tasks as i64),
                j::f(skew),
                j::f(stat.virtual_time),
                j::f(farm.virtual_time),
                j::f(ideal),
                j::s(&format!("{:.2}x", stat.virtual_time / farm.virtual_time)),
                j::s(&format!("{:.2}", farm.virtual_time / ideal)),
            ]);
        }
    }
    t.print();

    // Shuffled costs: static improves, the farm still tracks ideal.
    let mut t2 = Table::new(
        "E4b: shuffled task order (P=4, 32 tasks, skew 1.5)",
        &["order", "static", "farm"],
    );
    let np = 4;
    let cfg = FarmConfig {
        tasks: 32,
        nprocs: np,
        scale,
    };
    for (label, costs) in [
        ("sorted desc", workloads::zipf_costs(32, 200_000, 1.5)),
        (
            "shuffled",
            workloads::shuffled(workloads::zipf_costs(32, 200_000, 1.5), 11),
        ),
    ] {
        let (pf, vf) = build_farm(cfg);
        let farm = run(pf, vf.w, &costs, np);
        let (ps, vs) = build_static(cfg);
        let stat = run(ps, vs.w, &costs, np);
        t2.row(&[
            j::s(label),
            j::f(stat.virtual_time),
            j::f(farm.virtual_time),
        ]);
    }
    t2.print();
}
