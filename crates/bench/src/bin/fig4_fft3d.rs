//! F4 — the §4 3-D FFT: every derivation stage, swept over problem size
//! and network latency. Every cell is verified against the sequential
//! 3-D FFT before being reported.
//!
//! Expected shape: time(v0) >= time(v1) >= time(v2) >= time(v3); the
//! pipelined stages' advantage grows with latency; v4 (receive preposting)
//! additionally wins when unexpected-message handling is expensive.

use xdp_apps::fft3d::{run_stage, Fft3dConfig, Stage};
use xdp_bench::table::j;
use xdp_bench::Table;
use xdp_core::SimConfig;
use xdp_machine::CostModel;

fn main() {
    let nprocs = 4;
    let mut t = Table::new(
        "F4: 3-D FFT derivation stages (times in virtual us, verified)",
        &["n", "alpha", "stage", "time", "vs v0", "messages", "wait"],
    );
    for &n in &[8i64, 16] {
        for &alpha in &[100.0, 500.0, 2000.0] {
            // Rendezvous protocol (no eager buffering) for the main
            // sweep; the eager regime is F4b below.
            let cost = CostModel {
                alpha,
                unexpected_overhead: 0.0,
                ..CostModel::default_1993()
            };
            let mut t0 = None;
            for stage in Stage::all() {
                let r = run_stage(
                    Fft3dConfig::new(n, nprocs),
                    stage,
                    SimConfig::new(nprocs).with_cost(cost),
                    42,
                )
                .expect("stage run");
                let base = *t0.get_or_insert(r.virtual_time);
                t.row(&[
                    j::i(n),
                    j::f(alpha),
                    j::s(stage.label()),
                    j::f(r.virtual_time),
                    j::s(&format!("{:.2}x", base / r.virtual_time)),
                    j::u(r.net.messages),
                    j::f(r.total_wait()),
                ]);
            }
        }
    }
    t.print();

    // The eager-protocol regime where preposting (§3.2) pays off.
    let mut t2 = Table::new(
        "F4b: receive preposting under eager-protocol costs (n=8, P=4)",
        &["unexpected_overhead", "stage", "time", "speedup"],
    );
    for &uo in &[0.0, 20.0, 50.0, 100.0, 200.0] {
        let cost = CostModel {
            alpha: 50.0,
            beta: 0.2,
            unexpected_overhead: uo,
            ..CostModel::default_1993()
        };
        let mut base = None;
        for stage in [Stage::V3AwaitSunk, Stage::V4PrePosted] {
            let r = run_stage(
                Fft3dConfig::new(8, nprocs),
                stage,
                SimConfig::new(nprocs).with_cost(cost),
                42,
            )
            .expect("stage run");
            let b0 = *base.get_or_insert(r.virtual_time);
            t2.row(&[
                j::f(uo),
                j::s(stage.label()),
                j::f(r.virtual_time),
                j::s(&format!("{:.2}x", b0 / r.virtual_time)),
            ]);
        }
    }
    t2.print();

    // The §3.2 shared-address translation target: the same programs, with
    // sends/receives costed as prefetch/poststore.
    let mut t3 = Table::new(
        "F4c: shared-address machine (KSR1-style costs, n=16, P=4)",
        &["stage", "time", "vs v0"],
    );
    let mut base = None;
    for stage in Stage::all() {
        let r = run_stage(
            Fft3dConfig::new(16, nprocs),
            stage,
            SimConfig::new(nprocs).with_cost(CostModel::shared_address()),
            42,
        )
        .expect("stage run");
        let b0 = *base.get_or_insert(r.virtual_time);
        t3.row(&[
            j::s(stage.label()),
            j::f(r.virtual_time),
            j::s(&format!("{:.2}x", b0 / r.virtual_time)),
        ]);
    }
    t3.print();
    println!(
        "F4c: with cheap shared-address transfers the stages converge —\n\
         the paper's point that the XDP representation is machine-neutral\n\
         while the *profitability* of each optimization is machine-specific."
    );
}
