//! F1 — Figure 1 reproduced as an executable conformance table: every rule
//! of "Rules governing execution on processor p", checked live.

use xdp_bench::table::j;
use xdp_bench::Table;

fn main() {
    let mut t = Table::new(
        "F1: Figure 1 execution rules, conformance",
        &["rule", "meaning", "status"],
    );
    let mut failures = 0;
    for (rule, meaning, check) in xdp_bench::conformance::rules() {
        let status = match check() {
            Ok(()) => "PASS".to_string(),
            Err(e) => {
                failures += 1;
                format!("FAIL: {e}")
            }
        };
        t.row(&[j::s(rule), j::s(meaning), j::s(&status)]);
    }
    t.print();
    if failures > 0 {
        eprintln!("{failures} rule(s) violated");
        std::process::exit(1);
    }
    println!("all {} rules hold", xdp_bench::conformance::rules().len());
}
