//! F3 — Figure 3 reproduced: example distributions and local segmentations
//! of a 4x8 array, shown as element->segment maps for processor P3.

use xdp_ir::{DimDist, Distribution, ProcGrid, Triplet};
use xdp_runtime::segment::segment_sections;

fn show(label: &str, dist: &Distribution, seg: &[i64]) {
    let bounds = vec![Triplet::range(1, 4), Triplet::range(1, 8)];
    println!("{label}");
    let rects = dist.owned_rects(&bounds, 3);
    let mut segid = std::collections::HashMap::new();
    let mut k = 0;
    for r in &rects {
        for sec in segment_sections(r, Some(seg)) {
            for idx in sec.iter() {
                segid.insert(idx, k);
            }
            k += 1;
        }
    }
    for i in 1..=4i64 {
        print!("  ");
        for jx in 1..=8i64 {
            match segid.get(&vec![i, jx]) {
                Some(s) => print!("{s} "),
                None => print!(". "),
            }
        }
        println!();
    }
    println!("  ({k} segments on P3; '.' = not owned by P3)\n");
}

fn main() {
    println!("== F3: Figure 3 — 4x8 array distributions and segmentations, from P3 ==\n");
    let bb = Distribution::new(vec![DimDist::Block, DimDist::Block], ProcGrid::grid2(2, 2));
    let sb = Distribution::new(vec![DimDist::Star, DimDist::Block], ProcGrid::linear(4));
    // (a) (BLOCK,BLOCK): P3 owns the bottom-right 2x4 quadrant.
    show("(a) (BLOCK,BLOCK) on 2x2, 2x1 segments:", &bb, &[2, 1]);
    show("    (BLOCK,BLOCK) on 2x2, 1x2 segments:", &bb, &[1, 2]);
    // (b) (*,BLOCK): P3 owns the last two full columns.
    show("(b) (*,BLOCK) on 4, 4x1 segments:", &sb, &[4, 1]);
    show("    (*,BLOCK) on 4, 2x2 segments:", &sb, &[2, 2]);
    // Also the CYCLIC flavor to show strided segment bounds.
    let sc = Distribution::new(vec![DimDist::Star, DimDist::Cyclic], ProcGrid::linear(4));
    show(
        "(c) (*,CYCLIC) on 4, 4x1 segments (strided bounds):",
        &sc,
        &[4, 1],
    );
}
