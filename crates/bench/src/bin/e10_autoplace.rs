//! E10 — automatic placement vs. hand-written variants.
//!
//! The `xdp-place` search claims to pick per-phase distributions from the
//! cost model alone. This experiment checks the claim end-to-end on three
//! communication shapes:
//!
//! * **fft3d** (two phases + transpose): hand variants are the paper's
//!   `(*,*,B) -> (*,B,*)`, the symmetric `(*,*,B) -> (B,*,*)`, and the
//!   fully serial placement; auto must land within 15% of the best.
//! * **jacobi2d** (one phase, shifts in both dimensions on a `32x96`
//!   grid): row slabs cut the long dimension, column slabs the short one;
//!   the phase graph's shift planes are what tells them apart.
//! * **matvec** (one phase, row-parallel): `BLOCK`, `CYCLIC` and
//!   collapsed rows, with `y` aligned to `M` under every variant.
//!
//! For each app the auto choice is *executed* (SimExec virtual time, and
//! ThreadExec for real-concurrency correctness) and asserted to be no
//! worse than the worst hand variant and within 15% of the best. For the
//! FFT the per-phase predicted costs are compared against a traced
//! critical-path decomposition of the simulated run.

use std::collections::HashMap;
use std::sync::Arc;
use xdp_apps::{fft3d, halo2d, matvec, workloads};
use xdp_bench::table::j;
use xdp_bench::Table;
use xdp_core::{KernelRegistry, SimConfig, SimExec, ThreadConfig, ThreadExec, TraceConfig};
use xdp_ir::{DimDist, Distribution, ProcGrid, Program};
use xdp_place::{candidates, search, Costs, DimNeed, Phase, PhaseGraph, Shift};
use xdp_runtime::Value;

const P: usize = 4;
const SEED: u64 = 42;
/// Auto must be within this factor of the best hand-written variant.
const SLACK: f64 = 1.15;

struct Run {
    label: &'static str,
    auto: bool,
    predicted: Option<f64>,
    time: f64,
    messages: u64,
}

fn check(app: &str, runs: &[Run], t: &mut Table) {
    let auto = runs.iter().find(|r| r.auto).expect("one auto run");
    let hand: Vec<&Run> = runs.iter().filter(|r| !r.auto).collect();
    let best = hand.iter().map(|r| r.time).fold(f64::INFINITY, f64::min);
    let worst = hand.iter().map(|r| r.time).fold(0.0, f64::max);
    assert!(
        auto.time <= worst * 1.0001,
        "{app}: auto {:.1} worse than worst hand variant {worst:.1}",
        auto.time
    );
    assert!(
        auto.time <= best * SLACK,
        "{app}: auto {:.1} not within {SLACK}x of best {best:.1}",
        auto.time
    );
    for r in runs {
        t.row(&[
            j::s(app),
            j::s(r.label),
            j::s(if r.auto { "auto" } else { "hand" }),
            r.predicted.map(j::f).unwrap_or_else(|| j::s("-")),
            j::f(r.time),
            j::u(r.messages),
        ]);
    }
}

// --- fft3d -----------------------------------------------------------------

/// Map every statement id inside each top-level range to one label, so the
/// critical path aggregates per phase.
fn phase_labels(p: &Program, ranges: &[(std::ops::Range<usize>, &str)]) -> HashMap<u32, String> {
    let ids = xdp_ir::block_stmt_ids(0, &p.body);
    let mut out = HashMap::new();
    for (range, label) in ranges {
        for i in range.clone() {
            let lo = ids[i];
            let hi = lo + p.body[i].subtree_size() as u32;
            for sid in lo..hi {
                out.insert(sid, label.to_string());
            }
        }
    }
    out
}

fn run_fft(cfg: fft3d::Fft3dConfig, program: Program, vars: fft3d::Fft3dVars) -> (f64, u64) {
    let sim = SimConfig::new(cfg.nprocs);
    let r = fft3d::run_program(cfg, program, vars, sim, SEED).expect("fft run");
    (r.virtual_time, r.net.messages)
}

fn fft_section(t: &mut Table) {
    let n = 16;
    let cfg = fft3d::Fft3dConfig::new(n, P);
    let lin = ProcGrid::linear(P);
    let d = |dims: Vec<DimDist>| Distribution::new(dims, lin.clone());
    use DimDist::{Block as B, Star as S};

    let (placed, _) = fft3d::plan_auto(cfg);
    let choices = &placed.placement.choices;
    let mut runs = Vec::new();
    for (label, d1, d2) in [
        ("paper (*,*,B)->(*,B,*)", d(vec![S, S, B]), d(vec![S, B, S])),
        ("alt (*,*,B)->(B,*,*)", d(vec![S, S, B]), d(vec![B, S, S])),
        (
            "serial",
            Distribution::collapsed(3, P),
            Distribution::collapsed(3, P),
        ),
    ] {
        let (p, vars) = fft3d::build_planned(cfg, d1, d2);
        let (time, messages) = run_fft(cfg, p, vars);
        runs.push(Run {
            label,
            auto: false,
            predicted: None,
            time,
            messages,
        });
    }
    let (p, vars) = fft3d::build_auto(cfg);
    let (time, messages) = run_fft(cfg, p, vars);
    runs.push(Run {
        label: "auto",
        auto: true,
        predicted: Some(placed.placement.total_predicted),
        time,
        messages,
    });
    check("fft3d n=16", &runs, t);

    // Per-phase predicted vs. simulated: trace the auto program and
    // aggregate the critical path by phase. The auto program's body is
    // [phase-0 sweeps.., redistribute, phase-1 sweep].
    let (p, vars) = fft3d::build_auto(cfg);
    let nb = p.body.len();
    let labels = phase_labels(
        &p,
        &[
            (0..nb - 2, "phase-0"),
            (nb - 2..nb - 1, "move"),
            (nb - 1..nb, "phase-1"),
        ],
    );
    let sim = SimConfig::new(P).with_trace(TraceConfig::full());
    let r = fft3d::run_program(cfg, p, vars, sim, SEED).expect("traced run");
    let cp = r.trace.critical_path(&labels);
    // Row keys are "sN: <label>"; sum every statement under a label.
    let simulated = |key: &str| {
        cp.by_stmt
            .iter()
            .filter(|row| row.key.ends_with(key))
            .map(|row| row.compute + row.wire + row.wait)
            .sum::<f64>()
    };
    let mut pt = Table::new(
        "E10: fft3d per-phase predicted vs simulated (virtual us)",
        &["phase", "dist", "predicted", "simulated"],
    );
    for (i, ch) in choices.iter().enumerate() {
        let sim_t = simulated(&format!("phase-{i}")) + if i > 0 { simulated("move") } else { 0.0 };
        // The model is a ranking device, not a clock: demand the right
        // order of magnitude, not agreement.
        assert!(sim_t > 0.0, "phase {i} never on the critical path");
        let ratio = ch.total() / sim_t;
        assert!(
            (0.05..=20.0).contains(&ratio),
            "phase {i}: predicted {:.1} vs simulated {sim_t:.1}",
            ch.total()
        );
        pt.row(&[
            j::s(&format!("phase-{i}")),
            j::s(&ch.dist.to_string()),
            j::f(ch.total()),
            j::f(sim_t),
        ]);
    }
    pt.print();

    // Real concurrency: the auto stage must also be correct under threads.
    fft3d::run_stage_threads(cfg, fft3d::Stage::V6Auto, SEED).expect("threaded auto fft");
}

// --- jacobi2d --------------------------------------------------------------

const JN: i64 = 32;
const JM: i64 = 96;
const SWEEPS: i64 = 4;

/// The Jacobi phase graph, built directly: the program text pins one
/// orientation (its spans are written for a chosen slab shape), but the
/// *stencil* is placement-neutral — one phase, both dimensions free, four
/// unit shifts whose planes are the grid cross-sections.
fn jacobi_graph(p: &Program, u: xdp_ir::VarId, v: xdp_ir::VarId) -> PhaseGraph {
    let shift = |dim: usize, offset: i64| Shift {
        dim,
        offset,
        plane: if dim == 0 { JM as f64 } else { JN as f64 },
        repeat: SWEEPS as f64,
    };
    PhaseGraph {
        anchor: u,
        group: vec![u, v],
        bounds: p.decl(u).bounds.clone(),
        elem_bytes: 8,
        nprocs: P,
        phases: vec![Phase {
            index: 0,
            stmts: (0, p.body.len()),
            label: "jacobi".into(),
            work: (JN * JM * SWEEPS) as f64,
            needs: vec![DimNeed::Free, DimNeed::Free],
            shifts: vec![shift(0, -1), shift(0, 1), shift(1, -1), shift(1, 1)],
        }],
        dropped_redistributes: vec![],
        hand_migration: false,
    }
}

fn run_jacobi(build: fn(i64, i64, usize, i64) -> (Program, halo2d::Halo2dVars)) -> (f64, u64) {
    let (p, vars) = build(JN, JM, P, SWEEPS);
    let u0 = workloads::uniform_f64((JN * JM) as usize, 5, 0.0, 10.0);
    let mut exec = SimExec::new(Arc::new(p), KernelRegistry::standard(), SimConfig::new(P));
    exec.init_exclusive(vars.u, |idx| {
        Value::F64(u0[((idx[0] - 1) * JM + idx[1] - 1) as usize])
    });
    let r = exec.run().expect("jacobi");
    let want = halo2d::jacobi2d_reference(&u0, JN as usize, JM as usize, SWEEPS as usize);
    let g = exec.gather(vars.u);
    for i in 1..=JN {
        for jj in 1..=JM {
            let got = g.get(&[i, jj]).expect("owned").as_f64();
            assert!((got - want[((i - 1) * JM + jj - 1) as usize]).abs() < 1e-9);
        }
    }
    (r.virtual_time, r.net.messages)
}

fn jacobi_threads(build: fn(i64, i64, usize, i64) -> (Program, halo2d::Halo2dVars)) {
    let (p, vars) = build(JN, JM, P, SWEEPS);
    let u0 = workloads::uniform_f64((JN * JM) as usize, 5, 0.0, 10.0);
    let mut exec = ThreadExec::new(
        Arc::new(p),
        KernelRegistry::standard(),
        ThreadConfig::new(P),
    );
    exec.init_exclusive(vars.u, |idx| {
        Value::F64(u0[((idx[0] - 1) * JM + idx[1] - 1) as usize])
    });
    exec.run().expect("threaded jacobi");
    let want = halo2d::jacobi2d_reference(&u0, JN as usize, JM as usize, SWEEPS as usize);
    let g = exec.gather(vars.u);
    for i in 1..=JN {
        for jj in 1..=JM {
            let got = g.get(&[i, jj]).expect("owned").as_f64();
            assert!((got - want[((i - 1) * JM + jj - 1) as usize]).abs() < 1e-9);
        }
    }
}

fn jacobi_section(t: &mut Table) {
    // Score the placement-neutral phase graph; realize the winner with
    // the matching hand emitter (slab distributions only — the two
    // builders are the realizable placements).
    let (rowp, rvars) = halo2d::build_jacobi2d(JN, JM, P, SWEEPS);
    let graph = jacobi_graph(&rowp, rvars.u, rvars.v);
    let all = candidates::enumerate(2, P, 1, true);
    let legal = candidates::per_phase(&all, &graph.phases);
    let costs = Costs::new(
        xdp_machine::CostModel::default_1993(),
        xdp_machine::Topology::Uniform,
    );
    let out = search::search(&graph, &rowp, &all, &legal, &costs);
    let chosen = &out.choices[0].dist;
    println!(
        "jacobi2d {JN}x{JM}: auto chose {chosen} (predicted {:.1}, {} candidates)\n",
        out.total_predicted, out.candidates_considered
    );
    let auto_build: fn(i64, i64, usize, i64) -> (Program, halo2d::Halo2dVars) =
        if chosen.dims()[0] == DimDist::Block {
            halo2d::build_jacobi2d
        } else {
            assert_eq!(chosen.dims()[1], DimDist::Block, "slab placement expected");
            halo2d::build_jacobi2d_cols
        };

    let mut runs = Vec::new();
    for (label, b) in [
        (
            "rows (B,*)",
            halo2d::build_jacobi2d as fn(i64, i64, usize, i64) -> (Program, halo2d::Halo2dVars),
        ),
        ("cols (*,B)", halo2d::build_jacobi2d_cols),
    ] {
        let (time, messages) = run_jacobi(b);
        runs.push(Run {
            label,
            auto: false,
            predicted: None,
            time,
            messages,
        });
    }
    let (time, messages) = run_jacobi(auto_build);
    runs.push(Run {
        label: "auto",
        auto: true,
        predicted: Some(out.total_predicted),
        time,
        messages,
    });
    check("jacobi2d 32x96", &runs, t);
    jacobi_threads(auto_build);
}

// --- matvec ----------------------------------------------------------------

fn run_matvec(n: i64, dist: Distribution) -> (f64, u64) {
    let (p, vars) = matvec::build_matvec_placed(n, P, dist);
    let mdata = workloads::uniform_f64((n * n) as usize, 3, -1.0, 1.0);
    let xdata = workloads::uniform_f64(n as usize, 4, -1.0, 1.0);
    let mut exec = SimExec::new(Arc::new(p), matvec::matvec_kernels(), SimConfig::new(P));
    exec.init_exclusive(vars.m, |idx| {
        Value::F64(mdata[((idx[0] - 1) * n + idx[1] - 1) as usize])
    });
    exec.init_exclusive(vars.x, |idx| Value::F64(xdata[(idx[0] - 1) as usize]));
    let r = exec.run().expect("matvec");
    let want = matvec::matvec_reference(&mdata, &xdata, n as usize);
    let g = exec.gather(vars.y);
    for i in 1..=n {
        let got = g.get(&[i]).expect("owned").as_f64();
        assert!((got - want[(i - 1) as usize]).abs() < 1e-9);
    }
    (r.virtual_time, r.net.messages)
}

fn matvec_threads(n: i64, dist: Distribution) {
    let (p, vars) = matvec::build_matvec_placed(n, P, dist);
    let mdata = workloads::uniform_f64((n * n) as usize, 3, -1.0, 1.0);
    let xdata = workloads::uniform_f64(n as usize, 4, -1.0, 1.0);
    let mut exec = ThreadExec::new(Arc::new(p), matvec::matvec_kernels(), ThreadConfig::new(P));
    exec.init_exclusive(vars.m, |idx| {
        Value::F64(mdata[((idx[0] - 1) * n + idx[1] - 1) as usize])
    });
    exec.init_exclusive(vars.x, |idx| Value::F64(xdata[(idx[0] - 1) as usize]));
    exec.run().expect("threaded matvec");
    let want = matvec::matvec_reference(&mdata, &xdata, n as usize);
    let g = exec.gather(vars.y);
    for i in 1..=n {
        assert!((g.get(&[i]).expect("owned").as_f64() - want[(i - 1) as usize]).abs() < 1e-9);
    }
}

fn matvec_section(t: &mut Table) {
    let n = 32i64;
    let lin = ProcGrid::linear(P);
    // The auto decision comes from the real extractor: the placed program
    // itself (any seed placement) is the input.
    let (seedp, _) = matvec::build_matvec_placed(
        n,
        P,
        Distribution::new(vec![DimDist::Block, DimDist::Star], lin.clone()),
    );
    let placed = xdp_place::optimize(&seedp, &xdp_place::PlaceOptions::default()).expect("matvec");
    let choice = &placed.placement.choices[0];
    assert_eq!(placed.placement.anchor_name, "M");
    assert!(!choice.dist.dims()[1].is_distributed(), "{}", choice.dist);

    let mut runs = Vec::new();
    for (label, d) in [
        (
            "rows BLOCK",
            Distribution::new(vec![DimDist::Block, DimDist::Star], lin.clone()),
        ),
        (
            "rows CYCLIC",
            Distribution::new(vec![DimDist::Cyclic, DimDist::Star], lin.clone()),
        ),
        ("serial", Distribution::collapsed(2, P)),
    ] {
        let (time, messages) = run_matvec(n, d);
        runs.push(Run {
            label,
            auto: false,
            predicted: None,
            time,
            messages,
        });
    }
    let (time, messages) = run_matvec(n, choice.dist.clone());
    runs.push(Run {
        label: "auto",
        auto: true,
        predicted: Some(placed.placement.total_predicted),
        time,
        messages,
    });
    check("matvec n=32", &runs, t);
    matvec_threads(n, choice.dist.clone());
}

fn main() {
    let mut t = Table::new(
        "E10: automatic placement vs hand variants (SimExec virtual us)",
        &["app", "variant", "kind", "predicted", "time", "msgs"],
    );
    fft_section(&mut t);
    jacobi_section(&mut t);
    matvec_section(&mut t);
    t.print();
    println!("E10 OK: auto within {SLACK}x of best hand variant on all apps");
}
