//! E1 — the §2.2 running example `A[i] = A[i] + B[i]` across alignment
//! regimes and optimization variants.
//!
//! Expected shape: with aligned distributions, same-owner elision removes
//! all communication; misaligned, vectorization collapses n per-element
//! messages into a few section messages; binding sheds name headers;
//! migration converts value traffic into one-time ownership traffic.

use std::sync::Arc;
use xdp_bench::table::j;
use xdp_bench::Table;
use xdp_compiler::passes::{BindCommunication, MigrateOwnership};
use xdp_compiler::{lower_owner_computes, FrontendOptions, Pass, PassManager, SeqProgram, SeqStmt};
use xdp_core::{ExecReport, KernelRegistry, SimConfig, SimExec};
use xdp_ir::build as b;
use xdp_ir::{DimDist, ElemType, ProcGrid, Program, VarId};
use xdp_runtime::Value;

fn source(n: i64, nprocs: usize, bd: DimDist) -> (SeqProgram, VarId, VarId) {
    let grid = ProcGrid::linear(nprocs);
    let mut s = SeqProgram::new();
    let a = s.declare(b::array(
        "A",
        ElemType::F64,
        vec![(1, n)],
        vec![DimDist::Block],
        grid.clone(),
    ));
    let bb = s.declare(b::array("B", ElemType::F64, vec![(1, n)], vec![bd], grid));
    let ai = b::sref(a, vec![b::at(b::iv("i"))]);
    let bi = b::sref(bb, vec![b::at(b::iv("i"))]);
    s.body = vec![SeqStmt::DoLoop {
        var: "i".into(),
        lo: b::c(1),
        hi: b::c(n),
        body: vec![SeqStmt::Assign {
            target: ai.clone(),
            rhs: b::val(ai).add(b::val(bi)),
        }],
    }];
    (s, a, bb)
}

fn execute(p: &Program, a: VarId, bb: VarId, nprocs: usize, n: i64) -> ExecReport {
    let mut exec = SimExec::new(
        Arc::new(p.clone()),
        KernelRegistry::standard(),
        SimConfig::new(nprocs),
    );
    exec.init_exclusive(a, |idx| Value::F64(idx[0] as f64));
    exec.init_exclusive(bb, |idx| Value::F64(100.0 * idx[0] as f64));
    let r = exec.run().expect("run");
    let g = exec.gather(a);
    for i in 1..=n {
        assert_eq!(g.get(&[i]).unwrap().as_f64(), 101.0 * i as f64, "A[{i}]");
    }
    r
}

fn main() {
    let nprocs = 4;
    let mut t = Table::new(
        "E1: A[i] = A[i] + B[i] — variants x alignment (all verified)",
        &[
            "n",
            "B dist",
            "variant",
            "messages",
            "wire bytes",
            "time",
            "speedup",
        ],
    );
    for &n in &[16i64, 64, 256] {
        for (bdname, bd) in [
            ("BLOCK (aligned)", DimDist::Block),
            ("CYCLIC (misaligned)", DimDist::Cyclic),
        ] {
            let (s, a, bb) = source(n, nprocs, bd);
            let naive = lower_owner_computes(&s, &FrontendOptions::default()).unwrap();
            let mut base = None;
            let mut add = |label: &str, p: &Program, t: &mut Table| {
                let r = execute(p, a, bb, nprocs, n);
                let b0 = *base.get_or_insert(r.virtual_time);
                t.row(&[
                    j::i(n),
                    j::s(bdname),
                    j::s(label),
                    j::u(r.net.messages),
                    j::u(r.net.wire_bytes),
                    j::f(r.virtual_time),
                    j::s(&format!("{:.2}x", b0 / r.virtual_time)),
                ]);
            };
            add("naive owner-computes", &naive, &mut t);
            let bound = BindCommunication.run(&naive).program;
            add("bound (delayed binding)", &bound, &mut t);
            let (opt, _) = PassManager::paper_pipeline().run(&naive);
            add("full pipeline", &opt, &mut t);
            let mig = MigrateOwnership::default().run(&naive).program;
            add("ownership migration", &mig, &mut t);
        }
    }
    t.print();
}
