//! E2 — segment-granularity sweep (§3.1): "The use of segments allows the
//! pipelining of a transfer of a section ... In many cases, this can
//! effectively reduce the total time by allowing a processor to overlap
//! one segment's transfer with computation on another segment."
//!
//! A two-processor producer/consumer pipeline: P0 produces an n-element
//! array segment by segment (fixed work per element) and transfers each
//! segment's ownership as soon as it is ready; P1 receives each segment
//! and consumes it (fixed work per element).
//!
//! Expected shape: a U-curve in segment size. One whole-array segment
//! serializes produce and consume (time ~ produce + transfer + consume);
//! one-element segments pipeline perfectly but pay per-message latency and
//! overheads n times; the optimum sits in between and moves toward coarser
//! segments as per-message cost grows.

use std::sync::Arc;
use xdp_bench::table::j;
use xdp_bench::Table;
use xdp_core::{KernelRegistry, SimConfig, SimExec};
use xdp_ir::build as b;
use xdp_ir::{CmpOp, DimDist, ElemType, ProcGrid, Program, VarId};
use xdp_machine::CostModel;
use xdp_runtime::Value;

/// Producer/consumer pipeline with `n/seg` segment transfers.
fn pipeline(n: i64, seg: i64, work_per_elem: i64) -> (Program, VarId) {
    assert!(n % seg == 0);
    let mut p = Program::new();
    let a = p.declare(b::array_seg(
        "A",
        ElemType::F64,
        vec![(1, n)],
        vec![DimDist::Block],
        ProcGrid::linear(2),
        vec![seg],
    ));
    // BLOCK over 2: P0 owns 1..n/2. Use only P0's half as the payload and
    // P1's half as the destination landing zone... simpler: collapsed on
    // P0, transferred wholesale to P1. Re-declare collapsed:
    p.decls[0].dist = Some(xdp_ir::Distribution::collapsed(1, 2));
    let c0 = b::iv("c").sub(b::c(1)).mul(b::c(seg)).add(b::c(1));
    let c1 = b::iv("c").mul(b::c(seg));
    let chunk = b::sref(a, vec![b::span(c0, c1)]);
    p.body = vec![
        // Producer: work on a segment, then hand it off.
        b::guarded(
            b::cmp(CmpOp::Eq, b::mypid(), b::c(0)),
            vec![b::do_loop(
                "c",
                b::c(1),
                b::c(n / seg),
                vec![
                    b::kernel_with("work", vec![chunk.clone()], vec![b::c(work_per_elem * seg)]),
                    b::send_own_val(chunk.clone()),
                ],
            )],
        ),
        // Consumer: receive each segment, then work on it.
        b::guarded(
            b::cmp(CmpOp::Eq, b::mypid(), b::c(1)),
            vec![b::do_loop(
                "c",
                b::c(1),
                b::c(n / seg),
                vec![
                    b::recv_own_val(chunk.clone()),
                    b::guarded(
                        b::await_(chunk.clone()),
                        vec![b::kernel_with(
                            "work",
                            vec![chunk.clone()],
                            vec![b::c(work_per_elem * seg)],
                        )],
                    ),
                ],
            )],
        ),
    ];
    (p, a)
}

fn main() {
    let n = 256i64;
    let work = 40i64; // flops per element on each side
    let mut t = Table::new(
        "E2: segment-pipelined ownership transfer (n=256, 2 procs)",
        &["alpha", "segment", "messages", "time", "vs best"],
    );
    for &alpha in &[20.0, 100.0, 400.0] {
        let cost = CostModel {
            alpha,
            ..CostModel::default_1993()
        };
        let mut rows = Vec::new();
        for &seg in &[1i64, 4, 16, 64, 256] {
            let (prog, a) = pipeline(n, seg, work);
            let mut exec = SimExec::new(
                Arc::new(prog),
                KernelRegistry::standard(),
                SimConfig::new(2).with_cost(cost),
            );
            exec.init_exclusive(a, |idx| Value::F64(idx[0] as f64));
            let r = exec.run().expect("pipeline");
            // All elements now on P1, incremented by both work kernels'
            // first-element touch: just verify ownership moved.
            let g = exec.gather(a);
            assert_eq!(g.owner(&[1]), Some(1));
            assert_eq!(g.owner(&[n]), Some(1));
            rows.push((seg, r.net.messages, r.virtual_time));
        }
        let best = rows.iter().map(|r| r.2).fold(f64::INFINITY, f64::min);
        for (seg, msgs, time) in rows {
            t.row(&[
                j::f(alpha),
                j::i(seg),
                j::u(msgs),
                j::f(time),
                j::s(&format!("{:.2}x", time / best)),
            ]);
        }
    }
    t.print();
    println!(
        "interpretation: the minimum is the compiler's segment-shape choice\n\
         (§3.1); it moves toward coarser segments as per-message cost grows."
    );
}
