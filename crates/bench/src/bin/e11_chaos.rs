//! E11 — chaos conformance and the cost of reliability.
//!
//! Sweeps the injected drop rate over the paper's communicating workloads
//! on the virtual-time simulator and reports what the ack/retry delivery
//! layer paid to hide each fault mix: retries, suppressed duplicates, and
//! the end-to-end slowdown relative to the fault-free run. Every row is
//! also a conformance check — the final global state under chaos must be
//! bit-identical to the clean run (the binary exits nonzero otherwise),
//! and the critical-path analyzer must attribute 100% of the virtual time
//! even when retry latency is on the path.
//!
//! A second table runs the threaded backend at the acceptance-bar fault
//! mix (10% drop) and checks real-parallel conformance plus wall-clock
//! overhead.
//!
//! Expected shape: virtual time grows smoothly with drop rate (each
//! retry adds one rto-scaled delay to the affected chain, nothing else
//! changes), and the delivered-message count stays constant across the
//! sweep — dedup makes duplicates and retransmissions invisible.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Instant;
use xdp_apps::fft3d::{Fft3dConfig, Stage};
use xdp_bench::table::j;
use xdp_bench::Table;
use xdp_core::{ExecReport, KernelRegistry, SimConfig, SimExec, ThreadConfig, ThreadExec};
use xdp_fault::{FaultPlan, LinkFault};
use xdp_ir::{Decl, ElemType, Program, Section, VarId};
use xdp_runtime::{Complex, Value};
use xdp_trace::TraceConfig;

const SWEEP: &[f64] = &[0.0, 0.05, 0.10, 0.20];

/// The E11 chaos mix at a given drop rate: every other fault class on.
fn chaos(seed: u64, drop: f64) -> FaultPlan {
    let mut plan = FaultPlan::uniform(
        seed,
        LinkFault {
            drop,
            dup: 0.10,
            reorder: 0.25,
            delay_p: 0.20,
            delay: 120.0,
        },
    );
    plan.rto = 500.0;
    plan
}

fn init_value(elem: ElemType, ord: i64) -> Value {
    match elem {
        ElemType::C64 => Value::C64(Complex::new((ord + 1) as f64, -(ord as f64) * 0.5)),
        _ => Value::F64((ord + 1) as f64),
    }
}

/// The final global state of every exclusive array.
type State = Vec<BTreeMap<Vec<i64>, (usize, Value)>>;

fn gather_state(
    decls: &[Decl],
    gather: impl Fn(VarId) -> BTreeMap<Vec<i64>, (usize, Value)>,
) -> State {
    decls
        .iter()
        .enumerate()
        .filter(|(_, d)| d.is_exclusive())
        .map(|(i, _)| gather(VarId(i as u32)))
        .collect()
}

fn sim_run(
    program: &Program,
    kernels: KernelRegistry,
    nprocs: usize,
    faults: FaultPlan,
) -> (State, ExecReport) {
    let decls = program.decls.clone();
    let mut exec = SimExec::new(
        Arc::new(program.clone()),
        kernels,
        SimConfig::new(nprocs)
            .with_faults(faults)
            .with_trace(TraceConfig::full()),
    );
    for (i, d) in decls.iter().enumerate() {
        if d.is_exclusive() {
            let full = Section::new(d.bounds.clone());
            let elem = d.elem;
            exec.init_exclusive(VarId(i as u32), move |idx| {
                init_value(elem, full.ordinal_of(idx).unwrap_or(0))
            });
        }
    }
    let report = exec.run().expect("sim run");
    let state = gather_state(&decls, |v| exec.gather(v).values);
    (state, report)
}

fn thr_run(
    program: &Program,
    kernels: KernelRegistry,
    nprocs: usize,
    faults: FaultPlan,
) -> (State, f64) {
    let decls = program.decls.clone();
    let mut exec = ThreadExec::new(
        Arc::new(program.clone()),
        kernels,
        ThreadConfig::new(nprocs).with_faults(faults),
    );
    for (i, d) in decls.iter().enumerate() {
        if d.is_exclusive() {
            let full = Section::new(d.bounds.clone());
            let elem = d.elem;
            exec.init_exclusive(VarId(i as u32), move |idx| {
                init_value(elem, full.ordinal_of(idx).unwrap_or(0))
            });
        }
    }
    let t0 = Instant::now();
    exec.run().expect("threaded run");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    (gather_state(&decls, |v| exec.gather(v).values), wall_ms)
}

/// One workload: (label, program, kernel registry, machine size).
type App = (&'static str, Program, fn() -> KernelRegistry, usize);

/// The workload matrix: communicating apps only (a program that sends no
/// messages has nothing to fault).
fn apps() -> Vec<App> {
    let (fft_v5, _) = xdp_apps::fft3d::build(Fft3dConfig::new(4, 4), Stage::V5Planned);
    let (jacobi, _) = xdp_apps::halo2d::build_jacobi2d(8, 10, 4, 2);
    let (matvec, _) = xdp_apps::matvec::build_matvec(8, 4);
    vec![
        ("fft3d-v5", fft_v5, xdp_apps::app_kernels, 4),
        ("jacobi2d", jacobi, KernelRegistry::standard, 4),
        ("matvec", matvec, xdp_apps::matvec::matvec_kernels, 4),
    ]
}

fn main() {
    let mut failures = 0usize;

    let mut t = Table::new(
        "E11: sim chaos sweep (dup .10 reorder .25 delayp .20, rto 500)",
        &[
            "app",
            "drop%",
            "msgs",
            "retries",
            "dupsup",
            "lost",
            "virt-us",
            "slowdown",
            "identical",
        ],
    );
    for (label, program, kernels, nprocs) in apps() {
        let (clean, clean_report) = sim_run(&program, kernels(), nprocs, FaultPlan::none());
        for &drop in SWEEP {
            let (state, report) = sim_run(&program, kernels(), nprocs, chaos(11, drop));
            let identical = state == clean;
            if !identical {
                failures += 1;
            }
            if report.net.messages != clean_report.net.messages {
                eprintln!(
                    "e11: {label} drop={drop}: delivered {} messages, clean {}",
                    report.net.messages, clean_report.net.messages
                );
                failures += 1;
            }
            // Retry latency must be fully attributed by the analyzer.
            let cp = report.trace.critical_path(&HashMap::new());
            if (cp.attributed() - report.virtual_time).abs() > 1e-6 * report.virtual_time {
                eprintln!(
                    "e11: {label} drop={drop}: attributed {:.3} of {:.3}",
                    cp.attributed(),
                    report.virtual_time
                );
                failures += 1;
            }
            t.row(&[
                j::s(label),
                j::u((drop * 100.0).round() as u64),
                j::u(report.net.messages),
                j::u(report.faults.retries),
                j::u(report.faults.dup_suppressed),
                j::u(report.faults.lost),
                j::f(report.virtual_time),
                j::f(report.virtual_time / clean_report.virtual_time),
                j::s(if identical { "yes" } else { "NO" }),
            ]);
        }
    }
    t.print();

    let mut t2 = Table::new(
        "E11: threaded backend at the acceptance mix (drop .10)",
        &["app", "clean-ms", "chaos-ms", "identical"],
    );
    for (label, program, kernels, nprocs) in apps() {
        let (clean, clean_ms) = thr_run(&program, kernels(), nprocs, FaultPlan::none());
        let (state, chaos_ms) = thr_run(&program, kernels(), nprocs, chaos(23, 0.10));
        let identical = state == clean;
        if !identical {
            failures += 1;
        }
        t2.row(&[
            j::s(label),
            j::f(clean_ms),
            j::f(chaos_ms),
            j::s(if identical { "yes" } else { "NO" }),
        ]);
    }
    t2.print();

    if failures > 0 {
        eprintln!("e11: {failures} conformance failure(s)");
        std::process::exit(1);
    }
}
