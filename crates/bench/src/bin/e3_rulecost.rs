//! E3 — the run-time price of un-eliminated compute rules (§3.1), and what
//! compute-rule elimination saves.
//!
//! Two measurements:
//! 1. symbol-table query volume and segment scans of a guarded loop vs its
//!    localized form, as n grows;
//! 2. the `iown()` evaluation cost as a function of the number of segment
//!    descriptors (the paper notes "more efficient algorithms could be
//!    developed" — the scan is linear in #segments).

use std::sync::Arc;
use xdp_bench::table::j;
use xdp_bench::Table;
use xdp_compiler::passes::{ElideAccessibleChecks, LocalizeBounds};
use xdp_compiler::PassManager;
use xdp_core::{KernelRegistry, SimConfig, SimExec};
use xdp_ir::build as b;
use xdp_ir::{DimDist, ElemType, ProcGrid, Program, Section, Triplet};
use xdp_runtime::RtSymbolTable;

fn main() {
    let nprocs = 4;

    // --- 1: guarded vs localized loop --------------------------------------
    let mut t = Table::new(
        "E3a: compute-rule elimination — run-time checks removed",
        &[
            "n",
            "variant",
            "symtab queries",
            "segments scanned",
            "time",
            "speedup",
        ],
    );
    for &n in &[64i64, 256, 1024] {
        let mut p = Program::new();
        let a = p.declare(b::array(
            "A",
            ElemType::F64,
            vec![(1, n)],
            vec![DimDist::Block],
            ProcGrid::linear(nprocs),
        ));
        let ai = b::sref(a, vec![b::at(b::iv("i"))]);
        p.body = vec![b::do_loop(
            "i",
            b::c(1),
            b::c(n),
            vec![b::guarded(
                b::iown(ai.clone()),
                vec![b::assign(
                    ai.clone(),
                    b::val(ai.clone()).add(xdp_ir::ElemExpr::LitF(1.0)),
                )],
            )],
        )];
        let (localized, _) = PassManager::new()
            .add(LocalizeBounds)
            .add(ElideAccessibleChecks)
            .run(&p);
        let mut base = None;
        for (label, prog) in [("guarded", &p), ("localized", &localized)] {
            let mut exec = SimExec::new(
                Arc::new(prog.clone()),
                KernelRegistry::standard(),
                SimConfig::new(nprocs),
            );
            let r = exec.run().expect("run");
            let q: u64 = r.procs.iter().map(|p| p.symtab.queries).sum();
            let sc: u64 = r.procs.iter().map(|p| p.symtab.segments_scanned).sum();
            let b0 = *base.get_or_insert(r.virtual_time);
            t.row(&[
                j::i(n),
                j::s(label),
                j::u(q),
                j::u(sc),
                j::f(r.virtual_time),
                j::s(&format!("{:.2}x", b0 / r.virtual_time)),
            ]);
        }
    }
    t.print();

    // --- 2: iown() scan cost vs #segments ----------------------------------
    let mut t2 = Table::new(
        "E3b: iown() scan volume vs segment count (1024 elements on P0)",
        &[
            "segment size",
            "#segments",
            "descriptors scanned per full-array iown",
        ],
    );
    for &seg in &[1i64, 4, 16, 64, 256] {
        let decls = vec![b::array_seg(
            "A",
            ElemType::F64,
            vec![(1, 1024)],
            vec![DimDist::Block],
            ProcGrid::linear(1),
            vec![seg],
        )];
        let mut st = RtSymbolTable::build(0, &decls);
        let nsegs = st.entry(xdp_ir::VarId(0)).unwrap().segments.len();
        let before = st.stats.segments_scanned;
        let full = Section::new(vec![Triplet::range(1, 1024)]);
        assert!(st.iown(xdp_ir::VarId(0), &full));
        let scanned = st.stats.segments_scanned - before;
        t2.row(&[j::i(seg), j::i(nsegs as i64), j::u(scanned)]);
    }
    t2.print();
    println!(
        "interpretation: each surviving compute rule costs a symbol-table\n\
         lookup whose scan is linear in the segment count — eliminated rules\n\
         cost nothing."
    );
}
