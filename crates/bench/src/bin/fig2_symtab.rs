//! F2 — Figure 2 reproduced: the run-time XDP symbol table for
//! `A[1:4,1:8]` distributed `(*,BLOCK)` and `B[1:16,1:16]` distributed
//! `(BLOCK,CYCLIC)` over a 2x2 processor grid, with the paper's segment
//! shapes `(2,1)` and `(4,2)`.

use xdp_bench::table::j;
use xdp_bench::Table;
use xdp_ir::build as b;
use xdp_ir::{DimDist, ElemType, ProcGrid};
use xdp_runtime::RtSymbolTable;

fn main() {
    let decls = vec![
        b::array_seg(
            "A",
            ElemType::F64,
            vec![(1, 4), (1, 8)],
            vec![DimDist::Star, DimDist::Block],
            ProcGrid::linear(4),
            vec![2, 1],
        ),
        b::array_seg(
            "B",
            ElemType::F64,
            vec![(1, 16), (1, 16)],
            vec![DimDist::Block, DimDist::Cyclic],
            ProcGrid::grid2(2, 2),
            vec![4, 2],
        ),
    ];
    let mut t = Table::new(
        "F2: XDP symbol table structure (per processor)",
        &[
            "pid",
            "index",
            "symbol",
            "rank",
            "global shape",
            "partitioning",
            "segment shape",
            "#segments",
        ],
    );
    for pid in 0..4 {
        let st = RtSymbolTable::build(pid, &decls);
        for e in st.entries() {
            let shape: Vec<String> = e.bounds.iter().map(|x| x.count().to_string()).collect();
            let seg: Vec<String> = e
                .segment_shape
                .as_ref()
                .unwrap()
                .iter()
                .map(|x| x.to_string())
                .collect();
            t.row(&[
                j::i(pid as i64),
                j::i(e.var.index() as i64 + 1),
                j::s(&e.name),
                j::i(e.rank as i64),
                j::s(&format!("({})", shape.join(","))),
                j::s(&e.partitioning.to_string()),
                j::s(&format!("({})", seg.join(","))),
                j::i(e.owned_segment_count() as i64),
            ]);
        }
    }
    t.print();

    // The paper's figure: A has 4 segments of shape (2,1); B has 8 of
    // shape (4,2) — verify and show P3's descriptors as the run-time
    // (shaded) fields.
    let st3 = RtSymbolTable::build(3, &decls);
    for e in st3.entries() {
        match e.name.as_str() {
            "A" => assert_eq!(e.owned_segment_count(), 4),
            "B" => assert_eq!(e.owned_segment_count(), 8),
            _ => {}
        }
    }
    println!("P3 segment descriptors (the run-time-maintained fields):");
    for e in st3.entries() {
        for (i, seg) in e.segments.iter().enumerate() {
            println!(
                "  {}.segdesc[{i}]: status={:?} lbound/ubound/stride={}",
                e.name, seg.status, seg.section
            );
        }
    }
    println!("\ncounts match Figure 2: A -> 4 segments (2,1); B -> 8 segments (4,2)");
}
