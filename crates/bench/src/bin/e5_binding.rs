//! E5 — delayed communication binding (§3.2): identical programs with
//! rendezvous-by-name vs compile-time-bound destinations.
//!
//! Expected shape: identical results and message counts; bound messages
//! shed the wire name header and the matcher lookup, so wire bytes and
//! time drop — proportionally more for small messages, where the header
//! dominates the payload.

use std::sync::Arc;
use xdp_bench::table::j;
use xdp_bench::Table;
use xdp_compiler::passes::BindCommunication;
use xdp_compiler::{lower_owner_computes, FrontendOptions, Pass, SeqProgram, SeqStmt};
use xdp_core::{KernelRegistry, SimConfig, SimExec};
use xdp_ir::build as b;
use xdp_ir::{DimDist, ElemType, ProcGrid, Program, VarId};
use xdp_runtime::Value;

/// Section-level transfers of `width` elements per message: A[i-block] +=
/// B-sections, written directly so the message size is controllable.
fn sectioned(n: i64, nprocs: usize) -> (SeqProgram, VarId, VarId) {
    let grid = ProcGrid::linear(nprocs);
    let mut s = SeqProgram::new();
    let a = s.declare(b::array(
        "A",
        ElemType::F64,
        vec![(1, n)],
        vec![DimDist::Block],
        grid.clone(),
    ));
    let bb = s.declare(b::array(
        "B",
        ElemType::F64,
        vec![(1, n)],
        vec![DimDist::Cyclic],
        grid,
    ));
    let ai = b::sref(a, vec![b::at(b::iv("i"))]);
    let bi = b::sref(bb, vec![b::at(b::iv("i"))]);
    s.body = vec![SeqStmt::DoLoop {
        var: "i".into(),
        lo: b::c(1),
        hi: b::c(n),
        body: vec![SeqStmt::Assign {
            target: ai.clone(),
            rhs: b::val(ai).add(b::val(bi)),
        }],
    }];
    (s, a, bb)
}

fn main() {
    let nprocs = 4;
    let mut t = Table::new(
        "E5: rendezvous-by-name vs bound communication (verified identical)",
        &[
            "n",
            "variant",
            "messages",
            "payload B",
            "wire B",
            "header overhead",
            "time",
            "speedup",
        ],
    );
    for &n in &[16i64, 64, 256] {
        let (s, a, bb) = sectioned(n, nprocs);
        let naive = lower_owner_computes(&s, &FrontendOptions::default()).unwrap();
        let bound = BindCommunication.run(&naive).program;
        let mut base = None;
        for (label, prog) in [("unbound (name on wire)", &naive), ("bound (§3.2)", &bound)] {
            let mut exec = SimExec::new(
                Arc::new(prog.clone()),
                KernelRegistry::standard(),
                SimConfig::new(nprocs),
            );
            exec.init_exclusive(a, |idx| Value::F64(idx[0] as f64));
            exec.init_exclusive(bb, |idx| Value::F64(2.0 * idx[0] as f64));
            let r = exec.run().expect("run");
            let g = exec.gather(a);
            for i in 1..=n {
                assert_eq!(g.get(&[i]).unwrap().as_f64(), 3.0 * i as f64);
            }
            let b0 = *base.get_or_insert(r.virtual_time);
            let overhead = r.net.wire_bytes - r.net.payload_bytes;
            t.row(&[
                j::i(n),
                j::s(label),
                j::u(r.net.messages),
                j::u(r.net.payload_bytes),
                j::u(r.net.wire_bytes),
                j::s(&format!(
                    "{:.0}%",
                    100.0 * overhead as f64 / r.net.payload_bytes.max(1) as f64
                )),
                j::f(r.virtual_time),
                j::s(&format!("{:.2}x", b0 / r.virtual_time)),
            ]);
        }
    }
    t.print();

    fn count_unbound(p: &Program) -> usize {
        let mut n = 0;
        p.visit(&mut |s| {
            if matches!(
                s,
                xdp_ir::Stmt::Send {
                    dest: xdp_ir::DestSet::Unspecified,
                    ..
                }
            ) {
                n += 1;
            }
        });
        n
    }
    let (s, _, _) = sectioned(16, nprocs);
    let naive = lower_owner_computes(&s, &FrontendOptions::default()).unwrap();
    let bound = BindCommunication.run(&naive).program;
    println!(
        "static send statements unbound: naive {}, bound {}",
        count_unbound(&naive),
        count_unbound(&bound)
    );
}
