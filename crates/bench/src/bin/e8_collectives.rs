//! E8 — planned redistribution vs naive point-to-point migration.
//!
//! Two levels:
//!
//! 1. **IR level.** A `BLOCK -> CYCLIC` remap written as the §2.2
//!    per-element ownership-migration loop (one unbound message per moving
//!    element, name headers, matcher probes) against the same remap as one
//!    `redistribute` statement, whose planner-emitted schedule vectorizes
//!    each processor pair's elements into one strided-section message with
//!    a bound destination. Final contents must be bit-identical; the
//!    planned form must use strictly fewer messages and finish strictly
//!    earlier at every latency. The `LowerRedistribute` pass is also run on
//!    the naive program to confirm the compiler performs this rewrite
//!    itself.
//!
//! 2. **Schedule level.** The planner's two candidate strategies
//!    (direct-pairwise vs staged-bruck piece routing) across a latency
//!    sweep and three interconnects. Staging forwards bytes through
//!    intermediaries to cut per-processor message count from `P-1` to
//!    `log2 P` and shorten hop distances, so it wins exactly where
//!    per-message cost dominates: high `alpha`, distance-sensitive
//!    topologies. The crossover table below is reproduced in
//!    EXPERIMENTS.md.

use std::sync::Arc;
use xdp_bench::table::j;
use xdp_bench::Table;
use xdp_collectives::{plan, redistribution_pieces, run_sim, Strategy};
use xdp_compiler::passes::{LowerRedistribute, Pass};
use xdp_core::{KernelRegistry, SimConfig, SimExec};
use xdp_ir::build as b;
use xdp_ir::{
    BoolExpr, DimDist, Distribution, ElemType, ProcGrid, Program, Section, Stmt, Triplet, VarId,
};
use xdp_machine::{CostModel, Topology};
use xdp_runtime::Value;

const N: i64 = 256;
const P: usize = 8;

fn dists() -> (Distribution, Distribution) {
    (
        Distribution::new(vec![DimDist::Block], ProcGrid::linear(P)),
        Distribution::new(vec![DimDist::Cyclic], ProcGrid::linear(P)),
    )
}

/// The remap as a per-element ownership-migration loop over a witness
/// array carrying the target distribution.
fn naive_program() -> (Program, VarId) {
    let (src, dst) = dists();
    let mut p = Program::new();
    let a = p.declare(b::array_seg(
        "A",
        ElemType::F64,
        vec![(1, N)],
        src.dims().to_vec(),
        src.grid().clone(),
        vec![1],
    ));
    let w = p.declare(b::array(
        "W",
        ElemType::I64,
        vec![(1, N)],
        dst.dims().to_vec(),
        dst.grid().clone(),
    ));
    let ai = b::sref(a, vec![b::at(b::iv("i"))]);
    let wi = b::sref(w, vec![b::at(b::iv("i"))]);
    p.body = vec![b::do_loop(
        "i",
        b::c(1),
        b::c(N),
        vec![
            b::guarded(
                b::iown(ai.clone()).and(BoolExpr::Not(Box::new(b::iown(wi.clone())))),
                vec![b::send_own_val(ai.clone())],
            ),
            b::guarded(
                b::iown(wi).and(BoolExpr::Not(Box::new(b::iown(ai.clone())))),
                vec![b::recv_own_val(ai)],
            ),
        ],
    )];
    (p, a)
}

/// The same remap as one planned statement.
fn planned_program() -> (Program, VarId) {
    let (src, dst) = dists();
    let mut p = Program::new();
    let a = p.declare(b::array(
        "A",
        ElemType::F64,
        vec![(1, N)],
        src.dims().to_vec(),
        src.grid().clone(),
    ));
    p.body = vec![b::redistribute(a, dst)];
    (p, a)
}

fn run(p: &Program, a: VarId, cost: CostModel, topo: Topology) -> (Vec<f64>, f64, u64) {
    let mut exec = SimExec::new(
        Arc::new(p.clone()),
        KernelRegistry::standard(),
        SimConfig::new(P).with_cost(cost).with_topo(topo),
    );
    exec.init_exclusive(a, |idx| Value::F64((3 * idx[0]) as f64));
    let r = exec.run().expect("run");
    let g = exec.gather(a);
    let vals: Vec<f64> = (1..=N)
        .map(|i| g.get(&[i]).expect("covered").as_f64())
        .collect();
    (vals, r.virtual_time, r.net.messages)
}

fn main() {
    let (naive, na) = naive_program();
    let (planned, pa) = planned_program();

    // The compiler's LowerRedistribute pass performs the same rewrite.
    let lowered = LowerRedistribute.run(&naive);
    assert!(lowered.changed, "pass must recognize the migration nest");
    assert!(
        matches!(lowered.program.body[..], [Stmt::Redistribute { .. }]),
        "nest collapses to one statement"
    );

    let mut t1 = Table::new(
        &format!("E8a: BLOCK->CYCLIC remap, n={N}, P={P}"),
        &["alpha", "topology", "form", "messages", "time", "speedup"],
    );
    let cells: [(f64, &str, Topology); 5] = [
        (10.0, "uniform", Topology::Uniform),
        (100.0, "uniform", Topology::Uniform),
        (1000.0, "uniform", Topology::Uniform),
        (1000.0, "mesh 2x4", Topology::Mesh2D { rows: 2, cols: 4 }),
        (1000.0, "linear", Topology::Linear),
    ];
    for (alpha, tname, topo) in cells {
        let cost = CostModel {
            alpha,
            ..CostModel::default_1993()
        };
        let (v_naive, t_naive, m_naive) = run(&naive, na, cost, topo.clone());
        let (v_plan, t_plan, m_plan) = run(&planned, pa, cost, topo);
        assert_eq!(v_naive, v_plan, "final contents must be bit-identical");
        assert!(
            m_plan < m_naive,
            "planned must vectorize: {m_plan} vs {m_naive}"
        );
        assert!(
            t_plan < t_naive,
            "planned must be faster on {tname}: {t_plan} vs {t_naive}"
        );
        t1.row(&[
            j::f(alpha),
            j::s(tname),
            j::s("naive p2p"),
            j::u(m_naive),
            j::f(t_naive),
            j::s("1.00x"),
        ]);
        t1.row(&[
            j::f(alpha),
            j::s(tname),
            j::s("redistribute"),
            j::u(m_plan),
            j::f(t_plan),
            j::s(&format!("{:.2}x", t_naive / t_plan)),
        ]);
    }
    t1.print();
    println!();

    // ---- schedule level: direct vs staged crossover ----------------------
    let bounds = [Triplet::range(1, N)];
    let bsec = Section::new(bounds.to_vec());
    let (src, dst) = dists();
    let pieces = redistribution_pieces(&bounds, &src, &dst);
    println!(
        "pieces: {} ({} moving), {} elements\n",
        pieces.len(),
        pieces.iter().filter(|pc| pc.src != pc.dst).count(),
        pieces.iter().map(|pc| pc.sec.volume()).sum::<i64>()
    );

    let topos: [(&str, Topology); 3] = [
        ("uniform", Topology::Uniform),
        ("mesh 2x4", Topology::Mesh2D { rows: 2, cols: 4 }),
        ("linear", Topology::Linear),
    ];
    let mut t2 = Table::new(
        &format!("E8b: strategy crossover, n={N}, P={P}, hop_factor=1"),
        &[
            "alpha", "topology", "direct", "staged", "chosen", "measured",
        ],
    );
    for alpha in [1.0, 30.0, 300.0, 3000.0] {
        let cost = CostModel {
            alpha,
            cpu_overhead: 1.0, // latency-dominated regime: alpha carries the sweep
            hop_factor: 1.0,
            ..CostModel::default_1993()
        };
        for (name, topo) in &topos {
            let pl = plan(VarId(0), &bounds, 8, &src, &dst, &cost, topo, false);
            let cost_of = |s: Strategy| {
                pl.alternatives
                    .iter()
                    .find(|(st, _)| *st == s)
                    .map(|(_, c)| *c)
                    .unwrap_or(f64::NAN)
            };
            // Execute the chosen schedule on the simulated network and
            // check the prediction is honest.
            let mut data: Vec<Vec<f64>> = (0..P)
                .map(|pid| {
                    let mut v = vec![f64::NAN; N as usize];
                    for rect in src.owned_rects(&bounds, pid) {
                        for pt in rect.iter() {
                            v[(pt[0] - 1) as usize] = pt[0] as f64;
                        }
                    }
                    v
                })
                .collect();
            let (measured, stats) =
                run_sim(&pl.schedule, &bsec, &mut data, &cost, topo).expect("schedule replays");
            assert_eq!(stats.messages, pl.schedule.message_count() as u64);
            t2.row(&[
                j::f(alpha),
                j::s(name),
                j::f(cost_of(Strategy::DirectPairwise)),
                j::f(cost_of(Strategy::StagedBruck)),
                j::s(&pl.strategy.to_string()),
                j::f(measured),
            ]);
        }
    }
    t2.print();

    // The acceptance shape: distance-sensitive nets at high alpha stage.
    for topo in [Topology::Mesh2D { rows: 2, cols: 4 }, Topology::Linear] {
        let cost = CostModel {
            alpha: 3000.0,
            cpu_overhead: 1.0,
            hop_factor: 1.0,
            ..CostModel::default_1993()
        };
        let pl = plan(VarId(0), &bounds, 8, &src, &dst, &cost, &topo, false);
        assert_eq!(pl.strategy, Strategy::StagedBruck, "{topo:?} at alpha=3000");
    }
    let low = CostModel {
        alpha: 1.0,
        cpu_overhead: 1.0,
        hop_factor: 1.0,
        ..CostModel::default_1993()
    };
    let pl = plan(
        VarId(0),
        &bounds,
        8,
        &src,
        &dst,
        &low,
        &Topology::Uniform,
        false,
    );
    assert_eq!(pl.strategy, Strategy::DirectPairwise, "uniform at alpha=1");

    // ---- trace level: where the end-to-end time actually goes ------------
    // The message counts above say the planned form moves less; the
    // critical path says what that buys: the naive nest's serialized
    // per-element rendezvous shows up as wait/compute on the path, the
    // planned schedule as a single wire hop.
    let mut t3 = Table::new(
        &format!("E8c: critical-path decomposition, alpha=100, n={N}, P={P}"),
        &["form", "total", "compute", "wire", "wait", "hops"],
    );
    for (name, prog, var) in [("naive p2p", &naive, na), ("redistribute", &planned, pa)] {
        let cp = critical_path_of(prog, var);
        t3.row(&[
            j::s(name),
            j::f(cp.total),
            j::f(cp.compute),
            j::f(cp.wire),
            j::f(cp.wait),
            j::u(cp.hops as u64),
        ]);
    }
    t3.print();

    println!("\nall E8 assertions passed");
}

/// Run with full tracing and return the critical-path report; the
/// analyzer must attribute the entire virtual time.
fn critical_path_of(p: &Program, a: VarId) -> xdp_core::CriticalPathReport {
    let labels: std::collections::HashMap<u32, String> =
        xdp_ir::pretty::stmt_table(p).into_iter().collect();
    let mut exec = SimExec::new(
        Arc::new(p.clone()),
        KernelRegistry::standard(),
        SimConfig::new(P)
            .with_cost(CostModel::default_1993())
            .with_trace(xdp_core::TraceConfig::full()),
    );
    exec.init_exclusive(a, |idx| Value::F64((3 * idx[0]) as f64));
    let r = exec.run().expect("run");
    let cp = r.trace.critical_path(&labels);
    assert!(
        (cp.attributed() - r.virtual_time).abs() <= 1e-6 * r.virtual_time,
        "analyzer attributed {:.3} of {:.3}",
        cp.attributed(),
        r.virtual_time
    );
    cp
}
