//! `bench_check` — the trajectory regression gate.
//!
//! ```text
//! bench_check [--file BENCH_serve.json] [--allow 0.25]
//! ```
//!
//! Reads a benchmark trajectory, compares the newest run against the
//! most recent earlier run of the same experiment, and exits nonzero
//! when p99 latency or throughput degraded beyond the allowed fraction.
//! CI runs this right after the serving benchmarks append their rows.

use std::path::PathBuf;
use xdp_bench::trajectory::{baseline, check_last, load, Gate};

fn main() {
    let mut file = PathBuf::from("BENCH_serve.json");
    let mut allow = 0.25f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--file" => {
                file = PathBuf::from(args.next().unwrap_or_else(|| die("--file needs a path")))
            }
            "--allow" => {
                allow = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--allow needs a fraction, e.g. 0.25"))
            }
            "--help" | "-h" => {
                println!("usage: bench_check [--file BENCH_serve.json] [--allow 0.25]");
                return;
            }
            other => die(&format!("unknown argument `{other}`")),
        }
    }

    let runs = match load(&file) {
        Ok(runs) => runs,
        Err(e) => die(&e),
    };
    println!("bench_check: {} run(s) in {}", runs.len(), file.display());
    let violations = check_last(&runs, Gate { ratio: 1.0 + allow });
    if violations.is_empty() {
        match runs.last() {
            Some(last) => {
                let exp = last
                    .get("experiment")
                    .and_then(|v| v.as_str())
                    .unwrap_or("?");
                if baseline(&runs).is_some() {
                    println!(
                        "bench_check: `{exp}` within {:.0}% of baseline — ok",
                        allow * 100.0
                    );
                } else {
                    println!(
                        "bench_check: no baseline for `{exp}` — gate passes vacuously (first recorded run)"
                    );
                }
            }
            None => println!(
                "bench_check: no baseline — {} is empty or absent; gate passes vacuously",
                file.display()
            ),
        }
        return;
    }
    for v in &violations {
        eprintln!("bench_check: REGRESSION: {v}");
    }
    std::process::exit(1);
}

fn die(msg: &str) -> ! {
    eprintln!("bench_check: {msg}");
    std::process::exit(2);
}
