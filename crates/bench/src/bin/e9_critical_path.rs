//! E9 — critical-path decomposition of the 3-D FFT derivation.
//!
//! F4 shows *that* each derivation stage is faster; this experiment shows
//! *why*, by walking the happens-before graph of a fully traced run and
//! attributing every microsecond of end-to-end virtual time to compute,
//! wire, or wait — per stage, then per IR statement for the first and
//! last stages. The analyzer must account for 100% of the virtual time
//! (checked below); the per-statement ranking is the "top movement costs"
//! table cited in EXPERIMENTS.md E9.
//!
//! Expected shape: v0's path is dominated by wait (serialized per-element
//! rendezvous); the derivation first converts wait into overlapped wire
//! time, then (v5, planned redistribution) collapses wire time by
//! vectorizing the transpose into one message per processor pair.

use std::collections::HashMap;
use xdp_apps::fft3d::{build, run_program, Fft3dConfig, Stage};
use xdp_bench::table::j;
use xdp_bench::Table;
use xdp_core::{CriticalPathReport, SimConfig, TraceConfig};
use xdp_ir::pretty;
use xdp_machine::CostModel;

const N: i64 = 8;
const P: usize = 4;
const SEED: u64 = 42;

/// Run one stage with full tracing and return its critical-path report.
fn analyze(stage: Stage) -> CriticalPathReport {
    let cfg = Fft3dConfig::new(N, P);
    let cost = CostModel {
        unexpected_overhead: 0.0,
        ..CostModel::default_1993()
    };
    let (program, vars) = build(cfg, stage);
    let labels: HashMap<u32, String> = pretty::stmt_table(&program).into_iter().collect();
    let sim = SimConfig::new(P)
        .with_cost(cost)
        .with_trace(TraceConfig::full());
    let report = run_program(cfg, program, vars, sim, SEED).expect("stage run");
    let cp = report.trace.critical_path(&labels);
    let vt = report.virtual_time;
    assert!(
        (cp.attributed() - vt).abs() <= 1e-6 * vt,
        "{}: analyzer attributed {:.3} of {:.3}",
        stage.label(),
        cp.attributed(),
        vt
    );
    cp
}

fn main() {
    let mut t = Table::new(
        "E9: critical-path decomposition, 3-D FFT n=8 P=4 (virtual us)",
        &["stage", "total", "compute", "wire", "wait", "hops"],
    );
    let mut detail = Vec::new();
    for stage in Stage::all() {
        let cp = analyze(stage);
        t.row(&[
            j::s(stage.label()),
            j::f(cp.total),
            j::f(cp.compute),
            j::f(cp.wire),
            j::f(cp.wait),
            j::u(cp.hops as u64),
        ]);
        if matches!(stage, Stage::V0Naive | Stage::V5Planned) {
            detail.push((stage.label(), cp));
        }
    }
    t.print();

    // Before/after per-statement attribution: where the time went in the
    // naive program, and where it goes once the derivation is complete.
    for (label, cp) in detail {
        println!("-- {label} --");
        print!("{}", cp.render(5));
        println!();
    }
}
