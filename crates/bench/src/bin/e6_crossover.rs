//! E6 — when does ownership migration pay? The §2.2 loop executed k times:
//! owner-computes pays communication every round; migration pays ownership
//! traffic once and computes locally thereafter.
//!
//! Expected shape: migration overtakes owner-computes at small k (its
//! one-time cost is comparable to one round of value traffic) and the gap
//! grows linearly in k. A competing loop pinned to A's *original*
//! alignment moves the crossover: migration helps loop 1 but makes loop 2
//! remote, so the winner depends on the execution-count ratio.

use std::sync::Arc;
use xdp_bench::table::j;
use xdp_bench::Table;
use xdp_compiler::passes::MigrateOwnership;
use xdp_compiler::{lower_owner_computes, FrontendOptions, Pass, SeqProgram, SeqStmt};
use xdp_core::{KernelRegistry, SimConfig, SimExec};
use xdp_ir::build as b;
use xdp_ir::{DimDist, ElemType, ProcGrid, Program, VarId};
use xdp_runtime::Value;

fn source(n: i64, nprocs: usize) -> (SeqProgram, VarId, VarId) {
    let grid = ProcGrid::linear(nprocs);
    let mut s = SeqProgram::new();
    let a = s.declare(b::array(
        "A",
        ElemType::F64,
        vec![(1, n)],
        vec![DimDist::Block],
        grid.clone(),
    ));
    let bb = s.declare(b::array(
        "B",
        ElemType::F64,
        vec![(1, n)],
        vec![DimDist::Cyclic],
        grid,
    ));
    let ai = b::sref(a, vec![b::at(b::iv("i"))]);
    let bi = b::sref(bb, vec![b::at(b::iv("i"))]);
    s.body = vec![SeqStmt::DoLoop {
        var: "i".into(),
        lo: b::c(1),
        hi: b::c(n),
        body: vec![SeqStmt::Assign {
            target: ai.clone(),
            rhs: b::val(ai).add(b::val(bi)),
        }],
    }];
    (s, a, bb)
}

fn repeat(p: &Program, k: usize) -> Program {
    let mut out = p.clone();
    let body = out.body.clone();
    for _ in 1..k {
        out.body.extend(body.clone());
    }
    out
}

fn run(p: Program, a: VarId, bb: VarId, nprocs: usize) -> (f64, u64) {
    let mut exec = SimExec::new(
        Arc::new(p),
        KernelRegistry::standard(),
        SimConfig::new(nprocs),
    );
    exec.init_exclusive(a, |idx| Value::F64(idx[0] as f64));
    exec.init_exclusive(bb, |idx| Value::F64(idx[0] as f64));
    let r = exec.run().expect("run");
    (r.virtual_time, r.net.messages)
}

fn main() {
    let (n, nprocs) = (32i64, 4usize);
    let (s, a, bb) = source(n, nprocs);
    let naive = lower_owner_computes(&s, &FrontendOptions::default()).unwrap();
    let migrated = MigrateOwnership::default().run(&naive).program;

    let mut t = Table::new(
        "E6: repeated loop — owner-computes vs migrate-once (n=32, P=4)",
        &["k", "oc time", "oc msgs", "mig time", "mig msgs", "winner"],
    );
    for &k in &[1usize, 2, 4, 8, 16] {
        let (t_oc, m_oc) = run(repeat(&naive, k), a, bb, nprocs);
        let (t_mig, m_mig) = run(repeat(&migrated, k), a, bb, nprocs);
        t.row(&[
            j::i(k as i64),
            j::f(t_oc),
            j::u(m_oc),
            j::f(t_mig),
            j::u(m_mig),
            j::s(if t_mig < t_oc {
                "migration"
            } else {
                "owner-computes"
            }),
        ]);
    }
    t.print();
    println!(
        "owner-computes moves the misaligned values every round; migration\n\
         moves ownership once (the co-location refinement skips aligned\n\
         elements) and every later round is fully local."
    );
}
