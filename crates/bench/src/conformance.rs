//! Figure 1 conformance suite: one executable check per rule row of the
//! paper's "Rules governing execution on processor p" table.
//!
//! Each check builds the smallest program or symbol-table scenario that
//! exercises the rule and returns `Ok(())` or a description of the
//! violation. The `fig1_conformance` binary prints the table; the
//! integration tests assert every rule passes.

use std::sync::Arc;
use xdp_core::{Interp, KernelRegistry, RtError, SimConfig, SimExec};
use xdp_ir::build as b;
use xdp_ir::{DimDist, ElemType, ProcGrid, Program, Section, Triplet, VarId};
use xdp_runtime::symtab::SecState;
use xdp_runtime::Value;

type Check = fn() -> Result<(), String>;

/// All Figure 1 rules with their table text and check.
pub fn rules() -> Vec<(&'static str, &'static str, Check)> {
    vec![
        ("mypid", "returns the unique identifier of p", check_mypid),
        (
            "mylb(X,d)",
            "smallest owned index in dim d, MAXINT otherwise",
            check_mylb,
        ),
        (
            "myub(X,d)",
            "largest owned index in dim d, MININT otherwise",
            check_myub,
        ),
        ("iown(X)", "true iff X is owned by p", check_iown),
        (
            "accessible(X)",
            "owned and data accessible",
            check_accessible,
        ),
        (
            "await(X)",
            "false if unowned, else blocks until accessible",
            check_await,
        ),
        (
            "E ->",
            "initiate send of name and value of E",
            check_send_value,
        ),
        (
            "E -> S",
            "sends to the processors specified by S",
            check_send_dest,
        ),
        (
            "E =>",
            "blocks until accessible, sends ownership only",
            check_send_own,
        ),
        (
            "E -=>",
            "blocks until accessible, sends ownership and value",
            check_send_own_val,
        ),
        (
            "E <- X",
            "blocks until E accessible, receives value named X",
            check_recv_value,
        ),
        ("U <=", "receives ownership of unowned U", check_recv_own),
        (
            "U <=-",
            "receives ownership and value of unowned U",
            check_recv_own_val,
        ),
        (
            "state: accessible",
            "owned, no uncompleted receives",
            check_state_accessible,
        ),
        (
            "state: transitional",
            "owned with an uncompleted receive",
            check_state_transitional,
        ),
        (
            "state: unowned",
            "some element not owned by p",
            check_state_unowned,
        ),
        (
            "compute rules",
            "unowned reference makes the rule false everywhere",
            check_rule_unowned,
        ),
        (
            "multiple outstanding",
            "several sends/receives on one name are legal",
            check_multiple_outstanding,
        ),
    ]
}

fn decls_1d(n: i64, nprocs: usize) -> (Arc<Program>, VarId) {
    let mut p = Program::new();
    let a = p.declare(b::array_seg(
        "A",
        ElemType::F64,
        vec![(1, n)],
        vec![DimDist::Block],
        ProcGrid::linear(nprocs),
        vec![1],
    ));
    (Arc::new(p), a)
}

fn expect(cond: bool, what: &str) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(format!("violated: {what}"))
    }
}

fn check_mypid() -> Result<(), String> {
    let (p, _) = decls_1d(8, 4);
    let mut seen = std::collections::HashSet::new();
    for pid in 0..4 {
        let mut i = Interp::new(p.clone(), KernelRegistry::standard(), pid, 4, true);
        let v = i.env.eval_int(&b::mypid()).map_err(|e| e.to_string())?;
        expect(v == pid as i64, "mypid equals the processor id")?;
        seen.insert(v);
    }
    expect(seen.len() == 4, "mypid unique per processor")
}

fn check_mylb() -> Result<(), String> {
    let (p, a) = decls_1d(8, 4);
    let mut i1 = Interp::new(p.clone(), KernelRegistry::standard(), 1, 4, true);
    let full = b::sref(a, vec![b::all()]);
    let v = i1
        .env
        .eval_int(&b::mylb(full.clone(), 1))
        .map_err(|e| e.to_string())?;
    expect(v == 3, "P1's block of 8/4 starts at 3")?;
    // Query restricted to an unowned range -> MAXINT.
    let left = b::sref(a, vec![b::span(b::c(1), b::c(2))]);
    let v2 = i1
        .env
        .eval_int(&b::mylb(left, 1))
        .map_err(|e| e.to_string())?;
    expect(v2 == i64::MAX, "MAXINT when no element owned")
}

fn check_myub() -> Result<(), String> {
    let (p, a) = decls_1d(8, 4);
    let mut i1 = Interp::new(p.clone(), KernelRegistry::standard(), 1, 4, true);
    let full = b::sref(a, vec![b::all()]);
    let v = i1
        .env
        .eval_int(&b::myub(full, 1))
        .map_err(|e| e.to_string())?;
    expect(v == 4, "P1's block ends at 4")?;
    let left = b::sref(a, vec![b::span(b::c(1), b::c(2))]);
    let v2 = i1
        .env
        .eval_int(&b::myub(left, 1))
        .map_err(|e| e.to_string())?;
    expect(v2 == i64::MIN, "MININT when no element owned")
}

fn check_iown() -> Result<(), String> {
    let (p, a) = decls_1d(8, 4);
    let mut i1 = Interp::new(p.clone(), KernelRegistry::standard(), 1, 4, true);
    let own = Section::new(vec![Triplet::range(3, 4)]);
    let cross = Section::new(vec![Triplet::range(2, 3)]);
    expect(i1.env.symtab.iown(a, &own), "owned block reports iown")?;
    expect(
        !i1.env.symtab.iown(a, &cross),
        "partially owned section is not iown",
    )
}

fn check_accessible() -> Result<(), String> {
    let (p, a) = decls_1d(8, 4);
    let mut i1 = Interp::new(p.clone(), KernelRegistry::standard(), 1, 4, true);
    let own = Section::new(vec![Triplet::range(3, 4)]);
    expect(
        i1.env.symtab.accessible(a, &own),
        "quiescent owned section accessible",
    )?;
    i1.env
        .symtab
        .begin_value_recv(a, &own)
        .map_err(|e| e.to_string())?;
    expect(
        !i1.env.symtab.accessible(a, &own),
        "uncompleted receive makes it inaccessible",
    )
}

fn check_await() -> Result<(), String> {
    let (p, a) = decls_1d(8, 4);
    let mut i1 = Interp::new(p.clone(), KernelRegistry::standard(), 1, 4, true);
    let own_ref = b::sref(a, vec![b::span(b::c(3), b::c(4))]);
    let other_ref = b::sref(a, vec![b::span(b::c(1), b::c(2))]);
    use xdp_core::RuleVal;
    let r = i1
        .env
        .eval_rule(&b::await_(other_ref))
        .map_err(|e| e.to_string())?;
    expect(r == RuleVal::False, "await of unowned returns false")?;
    let r = i1
        .env
        .eval_rule(&b::await_(own_ref.clone()))
        .map_err(|e| e.to_string())?;
    expect(r == RuleVal::True, "await of accessible returns true")?;
    let own = Section::new(vec![Triplet::range(3, 4)]);
    i1.env
        .symtab
        .begin_value_recv(a, &own)
        .map_err(|e| e.to_string())?;
    let r = i1
        .env
        .eval_rule(&b::await_(own_ref))
        .map_err(|e| e.to_string())?;
    expect(
        matches!(r, RuleVal::Block(_, _)),
        "await of transitional blocks",
    )
}

/// Run one program on `nprocs` simulated processors with values A[i] = i.
fn run(
    program: Program,
    a: VarId,
    nprocs: usize,
) -> Result<(SimExec, xdp_core::ExecReport), String> {
    let mut exec = SimExec::new(
        Arc::new(program),
        KernelRegistry::standard(),
        SimConfig::new(nprocs),
    );
    exec.init_exclusive(a, |idx| Value::F64(idx[0] as f64));
    let r = exec.run().map_err(|e| e.to_string())?;
    Ok((exec, r))
}

fn two_proc_prog() -> (Program, VarId, VarId) {
    let mut p = Program::new();
    let grid = ProcGrid::linear(2);
    let a = p.declare(b::array_seg(
        "A",
        ElemType::F64,
        vec![(1, 4)],
        vec![DimDist::Block],
        grid.clone(),
        vec![1],
    ));
    let t = p.declare(b::array_seg(
        "T",
        ElemType::F64,
        vec![(0, 1)],
        vec![DimDist::Block],
        grid,
        vec![1],
    ));
    (p, a, t)
}

fn check_send_value() -> Result<(), String> {
    // P0 sends A[1:2]'s value; P1 receives it into T[1]... per-element.
    let (mut p, a, t) = two_proc_prog();
    let a1 = b::sref(a, vec![b::at(b::c(1))]);
    let tm = b::sref(t, vec![b::at(b::c(1))]);
    p.body = vec![
        b::guarded(b::iown(a1.clone()), vec![b::send(a1.clone())]),
        b::guarded(
            b::iown(tm.clone()),
            vec![
                b::recv_val(tm.clone(), a1.clone()),
                b::guarded(b::await_(tm.clone()), vec![]),
            ],
        ),
    ];
    let (exec, r) = run(p, a, 2)?;
    expect(r.net.messages == 1, "one message delivered")?;
    let g = exec.gather(t);
    expect(
        g.get(&[1]).map(|v| v.as_f64()) == Some(1.0),
        "value arrived intact",
    )?;
    // Sender still owns its data after a value send.
    let g = exec.gather(a);
    expect(
        g.owner(&[1]) == Some(0),
        "value send does not move ownership",
    )
}

fn check_send_dest() -> Result<(), String> {
    // Bound send: only the listed destination can claim it.
    let (mut p, a, t) = two_proc_prog();
    let a1 = b::sref(a, vec![b::at(b::c(1))]);
    let tm = b::sref(t, vec![b::at(b::mypid())]);
    p.body = vec![
        b::guarded(
            b::iown(a1.clone()),
            vec![b::send_to(a1.clone(), vec![b::c(1)])],
        ),
        b::guarded(
            b::cmp(xdp_ir::CmpOp::Eq, b::mypid(), b::c(1)),
            vec![
                b::recv_val(tm.clone(), a1.clone()),
                b::guarded(b::await_(tm.clone()), vec![]),
            ],
        ),
    ];
    let (exec, r) = run(p, a, 2)?;
    expect(r.net.bound_messages == 1, "message traveled bound")?;
    let g = exec.gather(t);
    expect(
        g.get(&[1]).map(|v| v.as_f64()) == Some(1.0),
        "bound value arrived",
    )
}

fn check_send_own() -> Result<(), String> {
    // `=>` moves ownership but NOT the value.
    let (mut p, a, _) = two_proc_prog();
    let a1 = b::sref(a, vec![b::at(b::c(1))]);
    p.body = vec![
        b::guarded(b::iown(a1.clone()), vec![b::send_own(a1.clone())]),
        b::guarded(
            b::cmp(xdp_ir::CmpOp::Eq, b::mypid(), b::c(1)),
            vec![
                b::recv_own(a1.clone()),
                b::guarded(b::await_(a1.clone()), vec![]),
            ],
        ),
    ];
    let (exec, _) = run(p, a, 2)?;
    let g = exec.gather(a);
    expect(g.owner(&[1]) == Some(1), "ownership moved to P1")?;
    expect(
        g.get(&[1]).map(|v| v.as_f64()) == Some(0.0),
        "value did not travel with `=>` (fresh storage)",
    )
}

fn check_send_own_val() -> Result<(), String> {
    let (mut p, a, _) = two_proc_prog();
    let a1 = b::sref(a, vec![b::at(b::c(1))]);
    p.body = vec![
        b::guarded(b::iown(a1.clone()), vec![b::send_own_val(a1.clone())]),
        b::guarded(
            b::cmp(xdp_ir::CmpOp::Eq, b::mypid(), b::c(1)),
            vec![
                b::recv_own_val(a1.clone()),
                b::guarded(b::await_(a1.clone()), vec![]),
            ],
        ),
    ];
    let (exec, _) = run(p, a, 2)?;
    let g = exec.gather(a);
    expect(g.owner(&[1]) == Some(1), "ownership moved")?;
    expect(
        g.get(&[1]).map(|v| v.as_f64()) == Some(1.0),
        "value moved too",
    )
}

fn check_recv_value() -> Result<(), String> {
    // The receive target must be owned; receiving into another's section
    // is an error.
    let (mut p, a, _) = two_proc_prog();
    let theirs = b::sref(a, vec![b::at(b::c(3))]); // P1's element
    p.body = vec![xdp_ir::Stmt::Recv {
        target: theirs.clone(),
        kind: xdp_ir::TransferKind::Value,
        name: Some(theirs),
        salt: None,
    }];
    let mut i = Interp::new(Arc::new(p), KernelRegistry::standard(), 0, 2, true);
    match i.step() {
        Err(RtError::Symtab(_)) => Ok(()),
        other => Err(format!("receive into unowned section accepted: {other:?}")),
    }
}

fn check_recv_own() -> Result<(), String> {
    // Ownership can only be received if the section was unowned.
    let (mut p, a, _) = two_proc_prog();
    let mine = b::sref(a, vec![b::at(b::c(1))]); // P0 already owns this
    p.body = vec![b::recv_own(mine)];
    let mut i = Interp::new(Arc::new(p), KernelRegistry::standard(), 0, 2, true);
    match i.step() {
        Err(RtError::Symtab(xdp_runtime::symtab::SymtabError::AlreadyOwned { .. })) => Ok(()),
        other => Err(format!(
            "ownership receive of owned section accepted: {other:?}"
        )),
    }
}

fn check_recv_own_val() -> Result<(), String> {
    check_send_own_val()
}

fn check_state_accessible() -> Result<(), String> {
    let (p, a) = decls_1d(8, 2);
    let mut i = Interp::new(p, KernelRegistry::standard(), 0, 2, true);
    let own = Section::new(vec![Triplet::range(1, 4)]);
    expect(
        i.env.symtab.state_of(a, &own) == SecState::Accessible,
        "quiescent owned section is accessible",
    )
}

fn check_state_transitional() -> Result<(), String> {
    let (p, a) = decls_1d(8, 2);
    let mut i = Interp::new(p, KernelRegistry::standard(), 0, 2, true);
    let own = Section::new(vec![Triplet::range(1, 2)]);
    i.env
        .symtab
        .begin_value_recv(a, &own)
        .map_err(|e| e.to_string())?;
    expect(
        i.env.symtab.state_of(a, &own) == SecState::Transitional,
        "initiated receive puts section in transitional",
    )?;
    // Checked runtime flags reads of transitional data (unpredictable).
    match i.env.read_section(a, &own) {
        Err(RtError::TransitionalRead { .. }) => Ok(()),
        other => Err(format!("transitional read not flagged: {other:?}")),
    }
}

fn check_state_unowned() -> Result<(), String> {
    let (p, a) = decls_1d(8, 2);
    let mut i = Interp::new(p, KernelRegistry::standard(), 0, 2, true);
    let cross = Section::new(vec![Triplet::range(4, 5)]);
    expect(
        i.env.symtab.state_of(a, &cross) == SecState::Unowned,
        "section with any unowned element is unowned",
    )
}

fn check_rule_unowned() -> Result<(), String> {
    // "a compute rule can always be executed on any processor without
    // error" — a rule referencing an unowned section is just false.
    let (p, a) = decls_1d(8, 2);
    let mut i1 = Interp::new(p, KernelRegistry::standard(), 1, 2, true);
    let p0s = b::sref(a, vec![b::span(b::c(1), b::c(4))]);
    use xdp_core::RuleVal;
    let r = i1
        .env
        .eval_rule(&b::iown(p0s.clone()))
        .map_err(|e| e.to_string())?;
    expect(
        r == RuleVal::False,
        "iown of unowned is false, not an error",
    )?;
    let r = i1
        .env
        .eval_rule(&b::accessible(p0s))
        .map_err(|e| e.to_string())?;
    expect(r == RuleVal::False, "accessible of unowned is false")
}

fn check_multiple_outstanding() -> Result<(), String> {
    // §2.7: several sends and receives outstanding on one name.
    let (mut p, a, t) = two_proc_prog();
    let a1 = b::sref(a, vec![b::at(b::c(1))]);
    let tm = b::sref(t, vec![b::at(b::mypid())]);
    p.body = vec![
        // P0 publishes its element twice under the same name.
        b::guarded(
            b::iown(a1.clone()),
            vec![b::send(a1.clone()), b::send(a1.clone())],
        ),
        // Both processors claim one copy each.
        b::recv_val(tm.clone(), a1.clone()),
        b::guarded(b::await_(tm.clone()), vec![]),
    ];
    let (exec, r) = run(p, a, 2)?;
    expect(r.net.messages == 2, "both sends matched")?;
    let g = exec.gather(t);
    expect(
        g.get(&[0]).map(|v| v.as_f64()) == Some(1.0)
            && g.get(&[1]).map(|v| v.as_f64()) == Some(1.0),
        "each claimant got a copy",
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn every_figure1_rule_holds() {
        for (rule, _, check) in super::rules() {
            check().unwrap_or_else(|e| panic!("rule `{rule}`: {e}"));
        }
    }
}
