//! Aligned-table printing with optional JSON-lines emission.

use serde_json::{Map, Value as Json};

/// A simple result table: add rows of (column, value) pairs; printing
/// aligns columns and, when `XDP_JSON=1`, emits each row as a JSON object.
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
    json_rows: Vec<Map<String, Json>>,
}

impl Table {
    /// A table with the given title and column headers.
    pub fn new(title: &str, columns: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            json_rows: Vec::new(),
        }
    }

    /// Append a row; values must match the column count.
    pub fn row(&mut self, values: &[Json]) {
        assert_eq!(values.len(), self.columns.len(), "row arity mismatch");
        let mut obj = Map::new();
        let mut cells = Vec::with_capacity(values.len());
        for (c, v) in self.columns.iter().zip(values) {
            obj.insert(c.clone(), v.clone());
            cells.push(match v {
                Json::Number(n) => {
                    if let Some(f) = n.as_f64() {
                        if n.is_f64() {
                            format!("{f:.1}")
                        } else {
                            n.to_string()
                        }
                    } else {
                        n.to_string()
                    }
                }
                Json::String(s) => s.clone(),
                other => other.to_string(),
            });
        }
        self.rows.push(cells);
        self.json_rows.push(obj);
    }

    /// Print the aligned table (and JSON lines when `XDP_JSON=1`).
    pub fn print(&self) {
        println!("== {} ==", self.title);
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("{}", header.join("  "));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            println!("{}", line.join("  "));
        }
        if std::env::var("XDP_JSON").is_ok_and(|v| v == "1") {
            for (i, obj) in self.json_rows.iter().enumerate() {
                let mut o = obj.clone();
                o.insert("experiment".into(), Json::String(self.title.clone()));
                o.insert("row".into(), Json::from(i));
                println!("{}", Json::Object(o));
            }
        }
        println!();
    }
}

/// Shorthand JSON constructors used by the experiment binaries.
pub mod j {
    use serde_json::Value as Json;

    pub fn s(v: &str) -> Json {
        Json::String(v.to_string())
    }
    pub fn i(v: impl Into<i64>) -> Json {
        Json::from(v.into())
    }
    pub fn u(v: u64) -> Json {
        Json::from(v)
    }
    pub fn f(v: f64) -> Json {
        Json::from(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_checked() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&[j::i(1), j::s("x")]);
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    #[should_panic]
    fn wrong_arity_panics() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&[j::i(1)]);
    }
}
