//! Aligned-table printing with optional JSON-lines emission.

use serde_json::{Map, Value as Json};

/// Version stamped into every JSON row as `xdp_json_version`, so
/// downstream collectors can detect schema changes.
pub const JSON_SCHEMA_VERSION: u64 = 1;

/// Is JSON-lines emission enabled? **This is the single definition of the
/// `XDP_JSON` contract**: any non-empty value other than `0` enables it
/// (`XDP_JSON=1`, `XDP_JSON=yes`, ...); unset, empty, or `0` disables it.
/// README, TUTORIAL, and EXPERIMENTS all defer to this rule.
pub fn json_enabled() -> bool {
    std::env::var("XDP_JSON").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// A simple result table: add rows of (column, value) pairs; printing
/// aligns columns and, when [`json_enabled`], emits each row as a JSON
/// object.
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
    json_rows: Vec<Map<String, Json>>,
}

impl Table {
    /// A table with the given title and column headers.
    pub fn new(title: &str, columns: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            json_rows: Vec::new(),
        }
    }

    /// Append a row; values must match the column count.
    pub fn row(&mut self, values: &[Json]) {
        assert_eq!(values.len(), self.columns.len(), "row arity mismatch");
        let mut obj = Map::new();
        let mut cells = Vec::with_capacity(values.len());
        for (c, v) in self.columns.iter().zip(values) {
            obj.insert(c.clone(), v.clone());
            cells.push(match v {
                Json::Number(n) => {
                    if let Some(f) = n.as_f64() {
                        if n.is_f64() {
                            format!("{f:.1}")
                        } else {
                            n.to_string()
                        }
                    } else {
                        n.to_string()
                    }
                }
                Json::String(s) => s.clone(),
                other => other.to_string(),
            });
        }
        self.rows.push(cells);
        self.json_rows.push(obj);
    }

    /// The aligned table as a string (title, header, rows, trailing blank
    /// line) — the one formatter shared by the experiment binaries and the
    /// `xdpc plan`/`xdpc place` reports, which route it through their own
    /// broken-pipe-safe writers.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(out, "== {} ==", self.title).unwrap();
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        writeln!(out, "{}", header.join("  ")).unwrap();
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            writeln!(out, "{}", line.join("  ")).unwrap();
        }
        out.push('\n');
        out
    }

    /// The JSON-lines form of the rows (one string per row), regardless of
    /// whether [`json_enabled`] — callers gate emission themselves.
    pub fn json_lines(&self) -> Vec<String> {
        self.json_rows
            .iter()
            .enumerate()
            .map(|(i, obj)| {
                let mut o = obj.clone();
                o.insert("experiment".into(), Json::String(self.title.clone()));
                o.insert("row".into(), Json::from(i));
                o.insert("xdp_json_version".into(), Json::from(JSON_SCHEMA_VERSION));
                Json::Object(o).to_string()
            })
            .collect()
    }

    /// Print the aligned table (and JSON lines when [`json_enabled`]).
    pub fn print(&self) {
        print!("{}", self.render());
        if json_enabled() {
            for line in self.json_lines() {
                println!("{line}");
            }
        }
    }
}

/// Shorthand JSON constructors used by the experiment binaries.
pub mod j {
    use serde_json::Value as Json;

    pub fn s(v: &str) -> Json {
        Json::String(v.to_string())
    }
    pub fn i(v: impl Into<i64>) -> Json {
        Json::from(v.into())
    }
    pub fn u(v: u64) -> Json {
        Json::from(v)
    }
    pub fn f(v: f64) -> Json {
        Json::from(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_checked() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&[j::i(1), j::s("x")]);
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    #[should_panic]
    fn wrong_arity_panics() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&[j::i(1)]);
    }

    #[test]
    fn render_aligns_columns_and_formats_numbers() {
        let mut t = Table::new("widths", &["name", "n", "time"]);
        t.row(&[j::s("a"), j::i(7), j::f(1.25)]);
        t.row(&[j::s("longer"), j::u(1234), j::f(10.0)]);
        let text = t.render();
        assert!(text.starts_with("== widths ==\n"), "{text}");
        // Every row is padded to the same width.
        let lines: Vec<&str> = text.lines().skip(1).filter(|l| !l.is_empty()).collect();
        assert_eq!(lines.len(), 3, "{text}");
        assert_eq!(lines[1].len(), lines[0].len(), "{text}");
        assert_eq!(lines[2].len(), lines[0].len(), "{text}");
        // Floats print with one decimal, integers without.
        assert!(lines[1].contains("1.2"), "{text}");
        assert!(lines[2].contains("10.0"), "{text}");
        assert!(lines[2].contains("1234"), "{text}");
        // Right-aligned: the short name is padded on the left.
        assert!(lines[1].starts_with("     a"), "{text:?}");
        // Trailing blank line so tables can be concatenated.
        assert!(text.ends_with("\n\n"), "{text:?}");
    }

    #[test]
    fn json_lines_stamp_experiment_row_and_version() {
        let mut t = Table::new("exp-name", &["k"]);
        t.row(&[j::i(1)]);
        t.row(&[j::i(2)]);
        let lines = t.json_lines();
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert_eq!(v.get("experiment").unwrap().as_str(), Some("exp-name"));
            assert_eq!(v.get("row").unwrap().as_u64(), Some(i as u64));
            assert_eq!(
                v.get("xdp_json_version").unwrap().as_u64(),
                Some(JSON_SCHEMA_VERSION),
                "{line}"
            );
            assert_eq!(v.get("k").unwrap().as_u64(), Some(i as u64 + 1));
        }
    }

    #[test]
    fn j_helpers_build_the_expected_json_types() {
        assert_eq!(j::s("x").as_str(), Some("x"));
        assert_eq!(j::i(-3).as_i64(), Some(-3));
        assert_eq!(j::u(3).as_u64(), Some(3));
        assert_eq!(j::f(0.5).as_f64(), Some(0.5));
    }

    // All env cases in one test: the process environment is shared, so
    // splitting these across tests would race under the parallel runner.
    #[test]
    fn json_enabled_accepts_any_nonempty_value_except_zero() {
        std::env::remove_var("XDP_JSON");
        assert!(!json_enabled());
        for (val, want) in [("", false), ("0", false), ("1", true), ("yes", true)] {
            std::env::set_var("XDP_JSON", val);
            assert_eq!(json_enabled(), want, "XDP_JSON={val:?}");
        }
        std::env::remove_var("XDP_JSON");
    }
}
