//! Element types and variable identities.

use std::fmt;

/// Identifies a declared variable by its index in the program's declaration
/// list (also its compile-time symbol-table index).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VarId(pub u32);

impl VarId {
    /// The declaration-list index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Element type of an array or scalar variable.
///
/// The paper's examples use Fortran reals and complex numbers (the 3-D FFT);
/// we also support integers for index-valued data.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ElemType {
    /// 64-bit signed integer.
    I64,
    /// 64-bit IEEE float.
    F64,
    /// Complex of two 64-bit floats.
    C64,
}

impl ElemType {
    /// Size of one element in bytes (used by the machine cost model).
    pub fn size_bytes(self) -> u64 {
        match self {
            ElemType::I64 | ElemType::F64 => 8,
            ElemType::C64 => 16,
        }
    }
}

impl fmt::Display for ElemType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElemType::I64 => write!(f, "integer"),
            ElemType::F64 => write!(f, "real"),
            ElemType::C64 => write!(f, "complex"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(ElemType::I64.size_bytes(), 8);
        assert_eq!(ElemType::C64.size_bytes(), 16);
    }

    #[test]
    fn display() {
        assert_eq!(VarId(3).to_string(), "v3");
        assert_eq!(ElemType::C64.to_string(), "complex");
    }
}
