//! Fortran-90 regular triplets `lb:ub:st`.
//!
//! A triplet denotes the arithmetic progression `lb, lb+st, lb+2*st, ... ≤ ub`
//! with a strictly positive stride. Triplets are the one-dimensional building
//! block of [`crate::section::Section`]s; the XDP paper assumes sections "are
//! defined by Fortran 90 triplet notation" (§2.1).

use std::fmt;

/// A one-dimensional regular section `lb:ub:st` with `st >= 1`.
///
/// The empty progression is represented canonically as `1:0:1` (any triplet
/// with `ub < lb` normalizes to it).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triplet {
    /// Lower bound (inclusive, first element of the progression).
    pub lb: i64,
    /// Upper bound (inclusive; the last element is the largest
    /// `lb + k*st <= ub`).
    pub ub: i64,
    /// Stride, always `>= 1`.
    pub st: i64,
}

impl Triplet {
    /// The canonical empty triplet.
    pub const EMPTY: Triplet = Triplet {
        lb: 1,
        ub: 0,
        st: 1,
    };

    /// `lb:ub:st`, normalized: empty ranges collapse to [`Triplet::EMPTY`],
    /// `ub` is clamped down to the last actual element, and a
    /// single-element triplet gets stride 1.
    ///
    /// # Panics
    /// Panics if `st < 1`; XDP sections use positive strides only.
    pub fn new(lb: i64, ub: i64, st: i64) -> Triplet {
        assert!(st >= 1, "triplet stride must be >= 1, got {st}");
        if ub < lb {
            return Triplet::EMPTY;
        }
        let count = (ub - lb) / st + 1;
        let last = lb + (count - 1) * st;
        if count == 1 {
            Triplet { lb, ub: lb, st: 1 }
        } else {
            Triplet { lb, ub: last, st }
        }
    }

    /// The degenerate triplet holding exactly `i`.
    pub fn point(i: i64) -> Triplet {
        Triplet {
            lb: i,
            ub: i,
            st: 1,
        }
    }

    /// `lb:ub:1`.
    pub fn range(lb: i64, ub: i64) -> Triplet {
        Triplet::new(lb, ub, 1)
    }

    /// Number of elements in the progression.
    pub fn count(&self) -> i64 {
        if self.ub < self.lb {
            0
        } else {
            (self.ub - self.lb) / self.st + 1
        }
    }

    /// True iff the progression has no elements.
    pub fn is_empty(&self) -> bool {
        self.ub < self.lb
    }

    /// True iff `i` is one of the progression's elements.
    pub fn contains(&self, i: i64) -> bool {
        i >= self.lb && i <= self.ub && (i - self.lb) % self.st == 0
    }

    /// The `k`-th element (0-based). `None` when out of range.
    pub fn nth(&self, k: i64) -> Option<i64> {
        if k < 0 || k >= self.count() {
            None
        } else {
            Some(self.lb + k * self.st)
        }
    }

    /// 0-based position of `i` within the progression, if present.
    pub fn index_of(&self, i: i64) -> Option<i64> {
        if self.contains(i) {
            Some((i - self.lb) / self.st)
        } else {
            None
        }
    }

    /// Iterate the progression's elements in increasing order.
    pub fn iter(&self) -> TripletIter {
        TripletIter {
            next: self.lb,
            t: *self,
        }
    }

    /// Intersection of two arithmetic progressions, itself a triplet.
    ///
    /// Solves `x ≡ lb1 (mod s1)`, `x ≡ lb2 (mod s2)` by CRT; the result has
    /// stride `lcm(s1, s2)` and runs over `[max(lb), min(ub)]`. Returns the
    /// empty triplet when the congruences are incompatible or the ranges are
    /// disjoint.
    pub fn intersect(&self, other: &Triplet) -> Triplet {
        if self.is_empty() || other.is_empty() {
            return Triplet::EMPTY;
        }
        let lo = self.lb.max(other.lb);
        let hi = self.ub.min(other.ub);
        if hi < lo {
            return Triplet::EMPTY;
        }
        // Solve x ≡ a1 (mod m1) and x ≡ a2 (mod m2).
        let (m1, m2) = (self.st, other.st);
        let (a1, a2) = (self.lb.rem_euclid(m1), other.lb.rem_euclid(m2));
        let (g, p, _q) = ext_gcd(m1, m2);
        if (a2 - a1) % g != 0 {
            return Triplet::EMPTY;
        }
        let lcm = m1 / g * m2;
        // x = a1 + m1 * p * ((a2 - a1) / g)  (mod lcm)
        let mut x = a1
            + mod_mul(
                m1,
                mod_mul(
                    p.rem_euclid(lcm / m1),
                    ((a2 - a1) / g).rem_euclid(lcm / m1),
                    lcm / m1,
                ),
                lcm,
            );
        x = x.rem_euclid(lcm);
        // Smallest solution >= lo.
        let first = if x >= lo {
            x - (x - lo) / lcm * lcm
        } else {
            x + (lo - x + lcm - 1) / lcm * lcm
        };
        if first > hi {
            return Triplet::EMPTY;
        }
        Triplet::new(first, hi, lcm)
    }

    /// Does `self` wholly contain `other` (every element of `other` is an
    /// element of `self`)?
    pub fn covers(&self, other: &Triplet) -> bool {
        if other.is_empty() {
            return true;
        }
        self.intersect(other).count() == other.count()
    }

    /// Translate the progression by `delta`.
    pub fn shift(&self, delta: i64) -> Triplet {
        if self.is_empty() {
            *self
        } else {
            Triplet {
                lb: self.lb + delta,
                ub: self.ub + delta,
                st: self.st,
            }
        }
    }
}

/// Iterator over a triplet's elements.
pub struct TripletIter {
    next: i64,
    t: Triplet,
}

impl Iterator for TripletIter {
    type Item = i64;
    fn next(&mut self) -> Option<i64> {
        if self.next > self.t.ub {
            None
        } else {
            let v = self.next;
            self.next += self.t.st;
            Some(v)
        }
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = if self.next > self.t.ub {
            0
        } else {
            ((self.t.ub - self.next) / self.t.st + 1) as usize
        };
        (left, Some(left))
    }
}

impl ExactSizeIterator for TripletIter {}

impl fmt::Debug for Triplet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Triplet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            write!(f, "<empty>")
        } else if self.lb == self.ub {
            write!(f, "{}", self.lb)
        } else if self.st == 1 {
            write!(f, "{}:{}", self.lb, self.ub)
        } else {
            write!(f, "{}:{}:{}", self.lb, self.ub, self.st)
        }
    }
}

/// Extended Euclid: returns `(g, x, y)` with `a*x + b*y = g = gcd(a, b)`.
fn ext_gcd(a: i64, b: i64) -> (i64, i64, i64) {
    if b == 0 {
        (a, 1, 0)
    } else {
        let (g, x, y) = ext_gcd(b, a % b);
        (g, y, x - (a / b) * y)
    }
}

/// `(a * b) mod m` without overflow for the i64 magnitudes we use.
fn mod_mul(a: i64, b: i64, m: i64) -> i64 {
    ((a as i128 * b as i128).rem_euclid(m as i128)) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_and_membership() {
        let t = Triplet::new(1, 10, 3); // 1,4,7,10
        assert_eq!(t.count(), 4);
        assert!(t.contains(7));
        assert!(!t.contains(8));
        assert!(!t.contains(13));
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![1, 4, 7, 10]);
    }

    #[test]
    fn normalization_clamps_ub() {
        let t = Triplet::new(1, 11, 3); // 1,4,7,10 -> ub clamps to 10
        assert_eq!(t, Triplet::new(1, 10, 3));
        assert_eq!(t.ub, 10);
    }

    #[test]
    fn empty_forms() {
        assert!(Triplet::new(5, 4, 1).is_empty());
        assert_eq!(Triplet::new(5, 4, 7), Triplet::EMPTY);
        assert_eq!(Triplet::EMPTY.count(), 0);
        assert_eq!(Triplet::EMPTY.iter().count(), 0);
    }

    #[test]
    fn single_element_normalizes_stride() {
        assert_eq!(Triplet::new(3, 5, 9), Triplet::point(3));
    }

    #[test]
    fn nth_and_index_of_roundtrip() {
        let t = Triplet::new(2, 20, 4);
        for k in 0..t.count() {
            let v = t.nth(k).unwrap();
            assert_eq!(t.index_of(v), Some(k));
        }
        assert_eq!(t.nth(-1), None);
        assert_eq!(t.nth(t.count()), None);
        assert_eq!(t.index_of(3), None);
    }

    #[test]
    fn intersect_same_stride() {
        let a = Triplet::new(1, 100, 2); // odds
        let b = Triplet::new(51, 200, 2); // odds from 51
        assert_eq!(a.intersect(&b), Triplet::new(51, 99, 2));
    }

    #[test]
    fn intersect_coprime_strides() {
        let a = Triplet::new(0, 100, 3); // 0,3,6,...
        let b = Triplet::new(0, 100, 5); // 0,5,10,...
        assert_eq!(a.intersect(&b), Triplet::new(0, 90, 15));
    }

    #[test]
    fn intersect_incompatible_congruence() {
        let a = Triplet::new(0, 100, 2); // evens
        let b = Triplet::new(1, 101, 2); // odds
        assert!(a.intersect(&b).is_empty());
    }

    #[test]
    fn intersect_offset_strides() {
        let a = Triplet::new(2, 50, 6); // 2,8,14,20,26,...  ≡2 mod 6
        let b = Triplet::new(8, 40, 4); // 8,12,16,20,...    ≡0 mod 4
                                        // common: ≡8 mod 12 -> 8,20,32 within [8,40]
        assert_eq!(a.intersect(&b), Triplet::new(8, 32, 12));
    }

    #[test]
    fn intersect_disjoint_ranges() {
        let a = Triplet::range(1, 10);
        let b = Triplet::range(11, 20);
        assert!(a.intersect(&b).is_empty());
    }

    #[test]
    fn intersect_brute_force_small() {
        // Exhaustive check against element-wise intersection.
        for lb1 in 0..5 {
            for st1 in 1..5 {
                for lb2 in 0..5 {
                    for st2 in 1..5 {
                        let a = Triplet::new(lb1, 24, st1);
                        let b = Triplet::new(lb2, 24, st2);
                        let got: Vec<i64> = a.intersect(&b).iter().collect();
                        let want: Vec<i64> = a.iter().filter(|i| b.contains(*i)).collect();
                        assert_eq!(got, want, "a={a} b={b}");
                    }
                }
            }
        }
    }

    #[test]
    fn covers() {
        let a = Triplet::new(1, 100, 1);
        assert!(a.covers(&Triplet::new(10, 50, 7)));
        assert!(!Triplet::new(1, 10, 2).covers(&Triplet::range(1, 2)));
        assert!(Triplet::new(1, 9, 2).covers(&Triplet::new(3, 7, 4)));
        // Everything covers empty.
        assert!(Triplet::EMPTY.covers(&Triplet::EMPTY));
        assert!(!Triplet::EMPTY.covers(&Triplet::point(1)));
    }

    #[test]
    fn shift() {
        assert_eq!(Triplet::new(1, 7, 3).shift(10), Triplet::new(11, 17, 3));
        assert!(Triplet::EMPTY.shift(5).is_empty());
    }

    #[test]
    fn display() {
        assert_eq!(Triplet::new(1, 8, 1).to_string(), "1:8");
        assert_eq!(Triplet::new(1, 8, 2).to_string(), "1:7:2");
        assert_eq!(Triplet::point(4).to_string(), "4");
        assert_eq!(Triplet::EMPTY.to_string(), "<empty>");
    }
}
