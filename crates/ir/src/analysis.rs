//! Compile-time analysis utilities.
//!
//! The paper's implementation assumes "a fixed, known processor grid and
//! partitioning as allowed in HPF" (§3) — loop bounds and array shapes are
//! compile-time constants. The passes therefore reason *exactly*: a
//! question like "does the owner of `B[i]` equal the owner of `A[i]` for
//! all i in 1..n" is decided by enumerating the iteration space and
//! consulting the distributions, not by a conservative approximation.

use crate::{
    Block, ElemExpr, IntExpr, Ownership, Program, Section, SectionRef, Stmt, Subscript, Triplet,
    VarId,
};
use std::collections::HashMap;

/// A compile-time binding environment for loop variables.
pub type Bindings = HashMap<String, i64>;

/// Evaluate an integer expression with every variable bound and no
/// processor-dependent intrinsics (`mypid`, `mylb`, `myub` make the result
/// `None` — they are run-time values).
pub fn eval_static(e: &IntExpr, env: &Bindings) -> Option<i64> {
    match e {
        IntExpr::Const(c) => Some(*c),
        IntExpr::Var(v) => env.get(v).copied(),
        IntExpr::MyPid | IntExpr::MyLb(..) | IntExpr::MyUb(..) => None,
        IntExpr::Neg(a) => Some(eval_static(a, env)?.saturating_neg()),
        IntExpr::Bin(op, a, b) => {
            let (a, b) = (eval_static(a, env)?, eval_static(b, env)?);
            use crate::IntBinOp::*;
            Some(match op {
                Add => a.saturating_add(b),
                Sub => a.saturating_sub(b),
                Mul => a.saturating_mul(b),
                Div => a / b,
                Mod => a.rem_euclid(b),
                Min => a.min(b),
                Max => a.max(b),
            })
        }
    }
}

/// Resolve a section reference to concrete bounds under `env`. `None` if
/// any subscript is not compile-time constant, if the reference's rank
/// does not match the declaration, or if the section reaches outside the
/// declared bounds — an out-of-bounds reference has no meaningful
/// compile-time placement, so analyses must bail rather than reason from
/// a nonsensical owner.
pub fn concrete_section(p: &Program, r: &SectionRef, env: &Bindings) -> Option<Section> {
    resolve_section(p, r, env, true)
}

/// Like [`concrete_section`] but without the containment requirement:
/// the section may reach outside the declared bounds. For shape probes
/// (e.g. the frontend's loop-invariance check) where only the extents
/// matter and the binding values are synthetic.
pub fn concrete_section_unbounded(p: &Program, r: &SectionRef, env: &Bindings) -> Option<Section> {
    resolve_section(p, r, env, false)
}

fn resolve_section(
    p: &Program,
    r: &SectionRef,
    env: &Bindings,
    check_bounds: bool,
) -> Option<Section> {
    let decl = p.decl(r.var);
    if r.subs.len() != decl.bounds.len() {
        return None;
    }
    let mut dims = Vec::with_capacity(r.subs.len());
    for (d, s) in r.subs.iter().enumerate() {
        let t = match s {
            Subscript::Point(e) => Triplet::point(eval_static(e, env)?),
            Subscript::All => decl.bounds[d],
            Subscript::Range(t) => Triplet::new(
                eval_static(&t.lb, env)?,
                eval_static(&t.ub, env)?,
                eval_static(&t.st, env)?,
            ),
        };
        if t.st <= 0 {
            return None;
        }
        let bound = decl.bounds[d];
        if check_bounds && t.lb <= t.ub && (t.lb < bound.lb || t.ub > bound.ub) {
            return None;
        }
        dims.push(t);
    }
    Some(Section::new(dims))
}

/// The single compile-time owner of a reference under `env`, if the
/// variable is exclusive and every element has the same owner.
pub fn static_owner(p: &Program, r: &SectionRef, env: &Bindings) -> Option<usize> {
    let decl = p.decl(r.var);
    if decl.ownership != Ownership::Exclusive {
        return None;
    }
    let dist = decl.dist.as_ref()?;
    let sec = concrete_section(p, r, env)?;
    if sec.is_empty() {
        return None;
    }
    let mut owner = None;
    for idx in sec.iter() {
        let o = dist.owner_of(&decl.bounds, &idx);
        match owner {
            None => owner = Some(o),
            Some(prev) if prev != o => return None,
            _ => {}
        }
    }
    owner
}

/// The constant iteration values of a unit-structured loop, if its bounds
/// are compile-time constants. Caps at `max_iters` to keep enumeration
/// sane.
pub fn loop_values(
    lo: &IntExpr,
    hi: &IntExpr,
    step: &IntExpr,
    env: &Bindings,
    max_iters: usize,
) -> Option<Vec<i64>> {
    let (lo, hi, step) = (
        eval_static(lo, env)?,
        eval_static(hi, env)?,
        eval_static(step, env)?,
    );
    if step == 0 {
        return None;
    }
    let mut out = Vec::new();
    let mut i = lo;
    while (step > 0 && i <= hi) || (step < 0 && i >= hi) {
        out.push(i);
        if out.len() > max_iters {
            return None;
        }
        i += step;
    }
    Some(out)
}

/// Compress a sorted, deduplicated index list into maximal constant-stride
/// triplets (greedy left to right).
pub fn compress_runs(sorted: &[i64]) -> Vec<Triplet> {
    let mut out = Vec::new();
    let mut k = 0;
    while k < sorted.len() {
        if k + 1 == sorted.len() {
            out.push(Triplet::point(sorted[k]));
            break;
        }
        let st = sorted[k + 1] - sorted[k];
        let mut j = k + 1;
        while j + 1 < sorted.len() && sorted[j + 1] - sorted[j] == st {
            j += 1;
        }
        out.push(Triplet::new(sorted[k], sorted[j], st.max(1)));
        k = j + 1;
    }
    out
}

/// How a statement touches a variable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessKind {
    Read,
    Write,
    /// Ownership leaves this processor (send `=>`/`-=>`).
    OwnOut,
    /// Ownership arrives (receive `<=`/`<=-`).
    OwnIn,
    /// Ownership queried (`iown`/`accessible`/`await`/`mylb`/`myub`).
    OwnQuery,
}

/// One recorded access.
#[derive(Clone, Debug)]
pub struct Access {
    pub var: VarId,
    pub r: SectionRef,
    pub kind: AccessKind,
}

fn collect_int(e: &IntExpr, out: &mut Vec<Access>) {
    match e {
        IntExpr::MyLb(r, _) | IntExpr::MyUb(r, _) => out.push(Access {
            var: r.var,
            r: (**r).clone(),
            kind: AccessKind::OwnQuery,
        }),
        IntExpr::Bin(_, a, b) => {
            collect_int(a, out);
            collect_int(b, out);
        }
        IntExpr::Neg(a) => collect_int(a, out),
        _ => {}
    }
}

fn collect_elem(e: &ElemExpr, out: &mut Vec<Access>) {
    match e {
        ElemExpr::Ref(r) => out.push(Access {
            var: r.var,
            r: r.clone(),
            kind: AccessKind::Read,
        }),
        ElemExpr::Bin(_, a, b) => {
            collect_elem(a, out);
            collect_elem(b, out);
        }
        ElemExpr::Neg(a) => collect_elem(a, out),
        ElemExpr::FromInt(i) => collect_int(i, out),
        _ => {}
    }
}

fn collect_bool(e: &crate::BoolExpr, out: &mut Vec<Access>) {
    use crate::BoolExpr::*;
    match e {
        Iown(r) | Accessible(r) | Await(r) => out.push(Access {
            var: r.var,
            r: r.clone(),
            kind: AccessKind::OwnQuery,
        }),
        Cmp(_, a, b) => {
            collect_int(a, out);
            collect_int(b, out);
        }
        And(a, b) | Or(a, b) => {
            collect_bool(a, out);
            collect_bool(b, out);
        }
        Not(a) => collect_bool(a, out),
        True | False => {}
    }
}

/// All accesses performed (transitively) by a statement.
pub fn accesses(stmt: &Stmt, out: &mut Vec<Access>) {
    match stmt {
        Stmt::Assign { target, rhs } => {
            out.push(Access {
                var: target.var,
                r: target.clone(),
                kind: AccessKind::Write,
            });
            collect_elem(rhs, out);
        }
        Stmt::ScalarAssign { value, .. } => collect_int(value, out),
        Stmt::Kernel { args, int_args, .. } => {
            for a in args {
                // Kernels may read and write any argument.
                out.push(Access {
                    var: a.var,
                    r: a.clone(),
                    kind: AccessKind::Read,
                });
                out.push(Access {
                    var: a.var,
                    r: a.clone(),
                    kind: AccessKind::Write,
                });
            }
            for e in int_args {
                collect_int(e, out);
            }
        }
        Stmt::Send {
            sec,
            kind,
            dest,
            salt,
        } => {
            if let Some(e) = salt {
                collect_int(e, out);
            }
            out.push(Access {
                var: sec.var,
                r: sec.clone(),
                kind: AccessKind::Read,
            });
            if kind.moves_ownership() {
                out.push(Access {
                    var: sec.var,
                    r: sec.clone(),
                    kind: AccessKind::OwnOut,
                });
            }
            if let crate::DestSet::Pids(es) = dest {
                for e in es {
                    collect_int(e, out);
                }
            }
        }
        Stmt::Recv {
            target,
            kind,
            name,
            salt,
        } => {
            if let Some(e) = salt {
                collect_int(e, out);
            }
            out.push(Access {
                var: target.var,
                r: target.clone(),
                kind: AccessKind::Write,
            });
            if kind.moves_ownership() {
                out.push(Access {
                    var: target.var,
                    r: target.clone(),
                    kind: AccessKind::OwnIn,
                });
            }
            if let Some(n) = name {
                // The name is only a tag; record as a query-free mention.
                let _ = n;
            }
        }
        Stmt::Guarded { rule, body } => {
            collect_bool(rule, out);
            for s in body {
                accesses(s, out);
            }
        }
        Stmt::DoLoop {
            lo, hi, step, body, ..
        } => {
            collect_int(lo, out);
            collect_int(hi, out);
            collect_int(step, out);
            for s in body {
                accesses(s, out);
            }
        }
        Stmt::Barrier => {}
        Stmt::Redistribute { var, .. } => {
            // A collective rewrite of the variable's entire placement:
            // reads and rewrites everything, moves ownership both ways.
            let whole = SectionRef::scalar(*var);
            for kind in [
                AccessKind::Read,
                AccessKind::Write,
                AccessKind::OwnOut,
                AccessKind::OwnIn,
            ] {
                out.push(Access {
                    var: *var,
                    r: whole.clone(),
                    kind,
                });
            }
        }
    }
}

/// All accesses in a block.
pub fn block_accesses(block: &Block) -> Vec<Access> {
    let mut out = Vec::new();
    for s in block {
        accesses(s, &mut out);
    }
    out
}

/// Does any receive statement anywhere in the program target variable
/// `var`? (Used by accessibility-check elimination: with no receives, a
/// section can never be transitional.)
pub fn program_has_recv_on(p: &Program, var: VarId) -> bool {
    let mut found = false;
    p.visit(&mut |s| {
        if let Stmt::Recv { target, .. } = s {
            if target.var == var {
                found = true;
            }
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build as b;
    use crate::{DimDist, ElemType, ProcGrid};

    fn prog() -> (Program, VarId, VarId) {
        let mut p = Program::new();
        let grid = ProcGrid::linear(4);
        let a = p.declare(b::array(
            "A",
            ElemType::F64,
            vec![(1, 16)],
            vec![DimDist::Block],
            grid.clone(),
        ));
        let c = p.declare(b::array(
            "C",
            ElemType::F64,
            vec![(1, 16)],
            vec![DimDist::Cyclic],
            grid,
        ));
        (p, a, c)
    }

    #[test]
    fn eval_static_rejects_runtime_intrinsics() {
        let env = Bindings::from([("i".to_string(), 5)]);
        assert_eq!(eval_static(&b::iv("i").add(b::c(2)), &env), Some(7));
        assert_eq!(eval_static(&b::mypid(), &env), None);
        assert_eq!(eval_static(&b::iv("j"), &env), None);
    }

    #[test]
    fn concrete_sections_and_owners() {
        let (p, a, c) = prog();
        let env = Bindings::from([("i".to_string(), 5)]);
        let ai = b::sref(a, vec![b::at(b::iv("i"))]);
        let sec = concrete_section(&p, &ai, &env).unwrap();
        assert_eq!(sec, Section::new(vec![Triplet::point(5)]));
        // A block: 16/4 = 4 per proc; A[5] on P1. C cyclic: C[5] on P0.
        assert_eq!(static_owner(&p, &ai, &env), Some(1));
        let ci = b::sref(c, vec![b::at(b::iv("i"))]);
        assert_eq!(static_owner(&p, &ci, &env), Some(0));
        // Spanning section has no single owner.
        let span = b::sref(a, vec![b::span(b::c(1), b::c(16))]);
        assert_eq!(static_owner(&p, &span, &env), None);
        // All-subscript resolves to full bounds.
        let all = concrete_section(&p, &b::sref(a, vec![b::all()]), &env).unwrap();
        assert_eq!(all.volume(), 16);
    }

    #[test]
    fn loop_values_enumerates() {
        let env = Bindings::new();
        assert_eq!(
            loop_values(&b::c(1), &b::c(7), &b::c(2), &env, 100),
            Some(vec![1, 3, 5, 7])
        );
        assert_eq!(
            loop_values(&b::c(1), &b::iv("n"), &b::c(1), &env, 100),
            None
        );
        assert_eq!(loop_values(&b::c(1), &b::c(1000), &b::c(1), &env, 10), None);
        assert_eq!(
            loop_values(&b::c(3), &b::c(1), &b::c(-1), &env, 100),
            Some(vec![3, 2, 1])
        );
    }

    #[test]
    fn compress_runs_finds_triplets() {
        assert_eq!(compress_runs(&[1, 2, 3, 4]), vec![Triplet::range(1, 4)]);
        assert_eq!(compress_runs(&[2, 4, 6]), vec![Triplet::new(2, 6, 2)]);
        assert_eq!(
            compress_runs(&[1, 2, 3, 7, 9, 11]),
            vec![Triplet::range(1, 3), Triplet::new(7, 11, 2)]
        );
        assert_eq!(compress_runs(&[5]), vec![Triplet::point(5)]);
        assert_eq!(compress_runs(&[]), Vec::<Triplet>::new());
    }

    #[test]
    fn accesses_classify() {
        let (_, a, c) = prog();
        let ai = b::sref(a, vec![b::at(b::c(1))]);
        let ci = b::sref(c, vec![b::at(b::c(1))]);
        let s = b::guarded(
            b::iown(ai.clone()),
            vec![
                b::send_own_val(ai.clone()),
                b::recv_own_val(ci.clone()),
                b::assign(ai.clone(), b::val(ci.clone())),
            ],
        );
        let mut acc = Vec::new();
        accesses(&s, &mut acc);
        let kinds: Vec<AccessKind> = acc.iter().map(|x| x.kind).collect();
        assert!(kinds.contains(&AccessKind::OwnQuery));
        assert!(kinds.contains(&AccessKind::OwnOut));
        assert!(kinds.contains(&AccessKind::OwnIn));
        assert!(kinds.contains(&AccessKind::Read));
        assert!(kinds.contains(&AccessKind::Write));
    }

    #[test]
    fn recv_detection() {
        let (mut p, a, c) = prog();
        let ci = b::sref(c, vec![b::at(b::c(1))]);
        p.body = vec![b::recv_own_val(ci)];
        assert!(program_has_recv_on(&p, c));
        assert!(!program_has_recv_on(&p, a));
    }
}
