//! Processor grids.
//!
//! Our reference implementation, like the paper's (§3), assumes "a fixed,
//! known processor grid": a rank-g rectangular grid of processors with
//! row-major linearization to processor ids `0..nprocs`.

use std::fmt;

/// A rectangular processor grid, e.g. `2x2` or a linear array of 4.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ProcGrid {
    dims: Vec<usize>,
}

impl ProcGrid {
    /// Build a grid from per-axis extents. Every extent must be >= 1.
    pub fn new(dims: Vec<usize>) -> ProcGrid {
        assert!(!dims.is_empty(), "processor grid needs at least one axis");
        assert!(dims.iter().all(|&d| d >= 1), "grid extents must be >= 1");
        ProcGrid { dims }
    }

    /// A 1-D grid (linear processor array) of `n` processors.
    pub fn linear(n: usize) -> ProcGrid {
        ProcGrid::new(vec![n])
    }

    /// A 2-D `rows x cols` grid.
    pub fn grid2(rows: usize, cols: usize) -> ProcGrid {
        ProcGrid::new(vec![rows, cols])
    }

    /// Number of grid axes.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Per-axis extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Extent of axis `a`.
    pub fn extent(&self, a: usize) -> usize {
        self.dims[a]
    }

    /// Total number of processors.
    pub fn nprocs(&self) -> usize {
        self.dims.iter().product()
    }

    /// Row-major linearization of grid coordinates to a pid.
    pub fn pid_of(&self, coords: &[usize]) -> usize {
        assert_eq!(coords.len(), self.rank(), "coordinate rank mismatch");
        let mut pid = 0;
        for (c, d) in coords.iter().zip(&self.dims) {
            assert!(c < d, "grid coordinate {c} out of range {d}");
            pid = pid * d + c;
        }
        pid
    }

    /// Inverse of [`ProcGrid::pid_of`].
    pub fn coords_of(&self, pid: usize) -> Vec<usize> {
        assert!(pid < self.nprocs(), "pid {pid} out of range");
        let mut coords = vec![0; self.rank()];
        let mut rem = pid;
        for a in (0..self.rank()).rev() {
            coords[a] = rem % self.dims[a];
            rem /= self.dims[a];
        }
        coords
    }

    /// All pids, in order.
    pub fn pids(&self) -> impl Iterator<Item = usize> {
        0..self.nprocs()
    }
}

impl fmt::Display for ProcGrid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let strs: Vec<String> = self.dims.iter().map(|d| d.to_string()).collect();
        write!(f, "{}", strs.join("x"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_grid() {
        let g = ProcGrid::linear(4);
        assert_eq!(g.nprocs(), 4);
        assert_eq!(g.pid_of(&[2]), 2);
        assert_eq!(g.coords_of(3), vec![3]);
    }

    #[test]
    fn grid2_row_major() {
        let g = ProcGrid::grid2(2, 2);
        assert_eq!(g.nprocs(), 4);
        // Row-major: P0=(0,0) P1=(0,1) P2=(1,0) P3=(1,1).
        assert_eq!(g.pid_of(&[0, 0]), 0);
        assert_eq!(g.pid_of(&[0, 1]), 1);
        assert_eq!(g.pid_of(&[1, 0]), 2);
        assert_eq!(g.pid_of(&[1, 1]), 3);
        for pid in g.pids() {
            assert_eq!(g.pid_of(&g.coords_of(pid)), pid);
        }
    }

    #[test]
    fn rectangular() {
        let g = ProcGrid::new(vec![2, 3, 4]);
        assert_eq!(g.nprocs(), 24);
        assert_eq!(g.coords_of(23), vec![1, 2, 3]);
        assert_eq!(g.pid_of(&[1, 2, 3]), 23);
    }

    #[test]
    #[should_panic]
    fn out_of_range_coord_panics() {
        ProcGrid::grid2(2, 2).pid_of(&[2, 0]);
    }

    #[test]
    fn display() {
        assert_eq!(ProcGrid::grid2(2, 4).to_string(), "2x4");
    }
}
