//! # xdp-ir — the IL+XDP intermediate language
//!
//! This crate defines the intermediate language that the XDP methodology
//! (Bala, Ferrante & Carter, PPoPP '93) extends: typed array variables,
//! Fortran-90 triplet *sections*, HPF-style *distributions* over processor
//! grids, and the XDP statement forms — guarded (compute-rule) statements,
//! data/ownership *send* and *receive* statements, and the `iown` /
//! `accessible` / `await` / `mylb` / `myub` / `mypid` intrinsics.
//!
//! The crate is purely syntactic + geometric: it knows how to describe
//! programs and how ownership of array elements maps onto processors, but it
//! does not execute anything. Execution lives in `xdp-core`; the run-time
//! symbol table in `xdp-runtime`; optimization in `xdp-compiler`.
//!
//! ## Layout
//!
//! * [`triplet`] / [`section`] — regular-section algebra (`lb:ub:st`).
//! * [`grid`] — processor grids with row-major pid linearization.
//! * [`dist`] — HPF distributions (`*`, `BLOCK`, `CYCLIC`, `CYCLIC(b)`)
//!   and the ownership maps they induce.
//! * [`types`] — element types and variable identities.
//! * [`expr`] — integer, boolean (compute-rule) and element expressions.
//! * [`stmt`] — XDP statements and whole programs.
//! * [`build`] — ergonomic builders used by the compiler and tests.
//! * [`pretty`] — pretty-printer emitting the paper's concrete notation.

pub mod analysis;
pub mod build;
pub mod dist;
pub mod expr;
pub mod grid;
pub mod pretty;
pub mod section;
pub mod stmt;
pub mod triplet;
pub mod types;
pub mod validate;

pub use dist::{DimDist, Distribution};
pub use expr::{
    BoolExpr, CmpOp, ElemBinOp, ElemExpr, IntBinOp, IntExpr, SectionRef, Subscript, TripletExpr,
};
pub use grid::ProcGrid;
pub use section::Section;
pub use stmt::{block_stmt_ids, Block, Decl, DestSet, Ownership, Program, Stmt, TransferKind};
pub use triplet::Triplet;
pub use types::{ElemType, VarId};
pub use validate::validate;
