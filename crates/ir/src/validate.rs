//! Static well-formedness checks for IL+XDP programs.
//!
//! The XDP philosophy is *not* to check at run time (§2.5); these are the
//! compile-time checks a front end would run once: subscript ranks match
//! declarations, constant processor ids are in range, transfer statements
//! name exclusive variables, and loop variables do not collide with
//! declared array names.

use crate::expr::{BoolExpr, ElemExpr, IntExpr, SectionRef, Subscript};
use crate::stmt::{DestSet, Ownership, Program, Stmt};

/// Collect static diagnostics; an empty result means the program is
/// well-formed (not necessarily deadlock-free — that is behaviour, not
/// form).
pub fn validate(p: &Program) -> Vec<String> {
    let mut v = Validator {
        p,
        out: Vec::new(),
        nprocs: machine_size(p),
    };
    for (i, d) in p.decls.iter().enumerate() {
        if d.ownership == Ownership::Exclusive && d.dist.is_none() {
            v.out
                .push(format!("exclusive array `{}` has no distribution", d.name));
        }
        if let Some(shape) = &d.segment_shape {
            if shape.len() != d.rank() {
                v.out.push(format!(
                    "array `{}`: segment shape rank {} != array rank {}",
                    d.name,
                    shape.len(),
                    d.rank()
                ));
            }
            if shape.iter().any(|&s| s < 1) {
                v.out
                    .push(format!("array `{}`: segment extents must be >= 1", d.name));
            }
        }
        let _ = i;
    }
    for s in &p.body {
        v.stmt(s);
    }
    v.out
}

fn machine_size(p: &Program) -> Option<usize> {
    p.decls
        .iter()
        .filter_map(|d| d.dist.as_ref().map(|x| x.nprocs()))
        .max()
}

struct Validator<'a> {
    p: &'a Program,
    out: Vec<String>,
    nprocs: Option<usize>,
}

impl<'a> Validator<'a> {
    fn sref(&mut self, r: &SectionRef, ctx: &str) {
        let decl = self.p.decl(r.var);
        if r.subs.len() != decl.rank() {
            self.out.push(format!(
                "{ctx}: `{}` subscripted with {} dimension(s), declared rank {}",
                decl.name,
                r.subs.len(),
                decl.rank()
            ));
        }
        for s in &r.subs {
            match s {
                Subscript::Point(e) => self.int(e, ctx),
                Subscript::Range(t) => {
                    self.int(&t.lb, ctx);
                    self.int(&t.ub, ctx);
                    self.int(&t.st, ctx);
                }
                Subscript::All => {}
            }
        }
    }

    fn transfer_sref(&mut self, r: &SectionRef, ctx: &str) {
        self.sref(r, ctx);
        if self.p.decl(r.var).ownership == Ownership::Universal {
            self.out.push(format!(
                "{ctx}: `{}` is universal; transfers require exclusive sections",
                self.p.decl(r.var).name
            ));
        }
    }

    fn int(&mut self, e: &IntExpr, ctx: &str) {
        match e {
            IntExpr::MyLb(r, d) | IntExpr::MyUb(r, d) => {
                self.sref(r, ctx);
                let rank = self.p.decl(r.var).rank() as u32;
                if *d == 0 || *d > rank {
                    self.out.push(format!(
                        "{ctx}: mylb/myub dimension {d} out of range 1..={rank}"
                    ));
                }
                if self.p.decl(r.var).ownership == Ownership::Universal {
                    self.out.push(format!(
                        "{ctx}: intrinsic on universal `{}`",
                        self.p.decl(r.var).name
                    ));
                }
            }
            IntExpr::Bin(_, a, b) => {
                self.int(a, ctx);
                self.int(b, ctx);
            }
            IntExpr::Neg(a) => self.int(a, ctx),
            _ => {}
        }
    }

    fn rule(&mut self, e: &BoolExpr, ctx: &str) {
        match e {
            BoolExpr::Iown(r) | BoolExpr::Accessible(r) | BoolExpr::Await(r) => {
                self.sref(r, ctx);
                if self.p.decl(r.var).ownership == Ownership::Universal {
                    self.out.push(format!(
                        "{ctx}: intrinsic on universal `{}`",
                        self.p.decl(r.var).name
                    ));
                }
            }
            BoolExpr::Cmp(_, a, b) => {
                self.int(a, ctx);
                self.int(b, ctx);
            }
            BoolExpr::And(a, b) | BoolExpr::Or(a, b) => {
                self.rule(a, ctx);
                self.rule(b, ctx);
            }
            BoolExpr::Not(a) => self.rule(a, ctx),
            BoolExpr::True | BoolExpr::False => {}
        }
    }

    fn elem(&mut self, e: &ElemExpr, ctx: &str) {
        match e {
            ElemExpr::Ref(r) => self.sref(r, ctx),
            ElemExpr::Bin(_, a, b) => {
                self.elem(a, ctx);
                self.elem(b, ctx);
            }
            ElemExpr::Neg(a) => self.elem(a, ctx),
            ElemExpr::FromInt(i) => self.int(i, ctx),
            _ => {}
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Assign { target, rhs } => {
                self.sref(target, "assignment target");
                self.elem(rhs, "assignment rhs");
            }
            Stmt::ScalarAssign { var, value } => {
                if self.p.lookup(var).is_some() {
                    self.out.push(format!(
                        "scalar assignment to `{var}` shadows a declared array"
                    ));
                }
                self.int(value, "scalar assignment");
            }
            Stmt::Kernel { args, int_args, .. } => {
                for a in args {
                    self.sref(a, "kernel argument");
                }
                for e in int_args {
                    self.int(e, "kernel parameter");
                }
            }
            Stmt::Send {
                sec, dest, salt, ..
            } => {
                self.transfer_sref(sec, "send");
                if let DestSet::Pids(es) = dest {
                    for e in es {
                        self.int(e, "send destination");
                        if let (Some(np), Some(c)) = (self.nprocs, e.as_const()) {
                            if c < 0 || c >= np as i64 {
                                self.out
                                    .push(format!("send destination {c} out of range 0..{np}"));
                            }
                        }
                    }
                }
                if let Some(e) = salt {
                    self.int(e, "send salt");
                }
            }
            Stmt::Recv {
                target, name, salt, ..
            } => {
                self.transfer_sref(target, "receive target");
                if let Some(n) = name {
                    self.transfer_sref(n, "receive name");
                }
                if let Some(e) = salt {
                    self.int(e, "receive salt");
                }
            }
            Stmt::Guarded { rule, body } => {
                self.rule(rule, "compute rule");
                for s in body {
                    self.stmt(s);
                }
            }
            Stmt::DoLoop {
                var,
                lo,
                hi,
                step,
                body,
            } => {
                if self.p.lookup(var).is_some() {
                    self.out
                        .push(format!("loop variable `{var}` shadows a declared array"));
                }
                self.int(lo, "loop bound");
                self.int(hi, "loop bound");
                self.int(step, "loop step");
                for s in body {
                    self.stmt(s);
                }
            }
            Stmt::Barrier => {}
            Stmt::Redistribute { var, dist } => {
                let d = self.p.decl(*var);
                if !d.is_exclusive() {
                    self.out
                        .push(format!("redistribute of universal variable `{}`", d.name));
                }
                if dist.rank() != d.rank() {
                    self.out.push(format!(
                        "redistribute of `{}` (rank {}) with a rank-{} distribution",
                        d.name,
                        d.rank(),
                        dist.rank()
                    ));
                }
                if let Some(np) = self.nprocs {
                    if dist.nprocs() != np {
                        self.out.push(format!(
                            "redistribute of `{}` onto {} processors on a {np}-processor machine",
                            d.name,
                            dist.nprocs()
                        ));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build as b;
    use crate::{DimDist, ElemType, ProcGrid};

    fn base() -> (Program, crate::VarId, crate::VarId) {
        let mut p = Program::new();
        let grid = ProcGrid::linear(4);
        let a = p.declare(b::array(
            "A",
            ElemType::F64,
            vec![(1, 8), (1, 8)],
            vec![DimDist::Block, DimDist::Star],
            grid,
        ));
        let u = p.declare(b::universal_array("U", ElemType::F64, vec![(1, 8)]));
        (p, a, u)
    }

    #[test]
    fn clean_program_validates() {
        let (mut p, a, _) = base();
        let r = b::sref(a, vec![b::at(b::c(1)), b::all()]);
        p.body = vec![b::guarded(b::iown(r.clone()), vec![b::send(r)])];
        assert!(validate(&p).is_empty(), "{:?}", validate(&p));
    }

    #[test]
    fn rank_mismatch_detected() {
        let (mut p, a, _) = base();
        let bad = b::sref(a, vec![b::at(b::c(1))]); // rank 2 array, 1 sub
        p.body = vec![b::send(bad)];
        let d = validate(&p);
        assert!(d.iter().any(|m| m.contains("declared rank 2")), "{d:?}");
    }

    #[test]
    fn universal_transfers_and_intrinsics_detected() {
        let (mut p, _, u) = base();
        let ur = b::sref(u, vec![b::all()]);
        p.body = vec![b::send(ur.clone()), b::guarded(b::iown(ur.clone()), vec![])];
        let d = validate(&p);
        assert!(
            d.iter().any(|m| m.contains("transfers require exclusive")),
            "{d:?}"
        );
        assert!(
            d.iter().any(|m| m.contains("intrinsic on universal")),
            "{d:?}"
        );
    }

    #[test]
    fn bad_destination_and_dim_detected() {
        let (mut p, a, _) = base();
        let r = b::sref(a, vec![b::at(b::c(1)), b::all()]);
        p.body = vec![
            b::send_to(r.clone(), vec![b::c(9)]),
            b::assign(
                b::sref(a, vec![b::at(b::mylb(r.clone(), 3)), b::all()]),
                xdp_ir_elem_lit(),
            ),
        ];
        let d = validate(&p);
        assert!(d.iter().any(|m| m.contains("out of range 0..4")), "{d:?}");
        assert!(
            d.iter().any(|m| m.contains("dimension 3 out of range")),
            "{d:?}"
        );
    }

    fn xdp_ir_elem_lit() -> ElemExpr {
        ElemExpr::LitF(1.0)
    }

    #[test]
    fn loop_var_shadowing_detected() {
        let (mut p, a, _) = base();
        let r = b::sref(a, vec![b::at(b::c(1)), b::all()]);
        p.body = vec![b::do_loop("A", b::c(1), b::c(2), vec![b::send(r)])];
        let d = validate(&p);
        assert!(
            d.iter().any(|m| m.contains("shadows a declared array")),
            "{d:?}"
        );
    }

    #[test]
    fn segment_shape_rank_detected() {
        let (mut p, _, _) = base();
        p.decls[0].segment_shape = Some(vec![2]); // rank-2 array
        let d = validate(&p);
        assert!(d.iter().any(|m| m.contains("segment shape rank")), "{d:?}");
    }
}
