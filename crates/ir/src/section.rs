//! Rank-k regular sections: cross products of [`Triplet`]s.
//!
//! A *section* of a variable is "either a scalar variable or some subset of
//! an array's elements" (§2.1); here, the subset is the cross product of one
//! triplet per dimension — the regular sections of Fortran 90. Sections are
//! the unit of XDP data and ownership transfer and the argument of every
//! intrinsic.

use crate::triplet::Triplet;
use std::fmt;

/// A regular array section: one triplet per dimension.
///
/// Scalars are rank-0 sections (empty triplet vector) with exactly one
/// element.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Section {
    dims: Vec<Triplet>,
}

impl Section {
    /// Build a section from per-dimension triplets.
    pub fn new(dims: Vec<Triplet>) -> Section {
        Section { dims }
    }

    /// The rank-0 scalar section (a single element, no indices).
    pub fn scalar() -> Section {
        Section { dims: Vec::new() }
    }

    /// A single point `[i1, i2, ...]`.
    pub fn point(idx: &[i64]) -> Section {
        Section {
            dims: idx.iter().map(|&i| Triplet::point(i)).collect(),
        }
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Per-dimension triplets.
    pub fn dims(&self) -> &[Triplet] {
        &self.dims
    }

    /// The triplet for dimension `d` (0-based).
    pub fn dim(&self, d: usize) -> Triplet {
        self.dims[d]
    }

    /// Replace dimension `d`'s triplet, returning a new section.
    pub fn with_dim(&self, d: usize, t: Triplet) -> Section {
        let mut dims = self.dims.clone();
        dims[d] = t;
        Section { dims }
    }

    /// Total number of elements (product of per-dim counts; 1 for scalars).
    pub fn volume(&self) -> i64 {
        self.dims.iter().map(|t| t.count()).product()
    }

    /// True iff the section has no elements.
    pub fn is_empty(&self) -> bool {
        self.dims.iter().any(|t| t.is_empty())
    }

    /// Per-dimension element counts (the section's *shape*).
    pub fn extents(&self) -> Vec<i64> {
        self.dims.iter().map(|t| t.count()).collect()
    }

    /// True iff `idx` is an element of the section.
    pub fn contains(&self, idx: &[i64]) -> bool {
        idx.len() == self.rank() && self.dims.iter().zip(idx).all(|(t, &i)| t.contains(i))
    }

    /// Dimension-wise intersection (the intersection of regular sections is
    /// regular).
    pub fn intersect(&self, other: &Section) -> Section {
        assert_eq!(self.rank(), other.rank(), "rank mismatch in intersect");
        if self.is_empty() || other.is_empty() {
            return Section::new(self.dims.iter().map(|_| Triplet::EMPTY).collect());
        }
        Section {
            dims: self
                .dims
                .iter()
                .zip(&other.dims)
                .map(|(a, b)| a.intersect(b))
                .collect(),
        }
    }

    /// Does `self` wholly contain `other`?
    pub fn covers(&self, other: &Section) -> bool {
        if other.is_empty() {
            return true;
        }
        assert_eq!(self.rank(), other.rank(), "rank mismatch in covers");
        self.dims.iter().zip(&other.dims).all(|(a, b)| a.covers(b))
    }

    /// Is the union of `parts` exactly `self`, assuming the parts are
    /// pairwise disjoint? (The §3.1 `iown()` algorithm: intersect the query
    /// with every segment; because segments partition the local data, the
    /// union covers the query iff the intersection volumes sum to the query
    /// volume.)
    pub fn covered_by_disjoint(&self, parts: &[Section]) -> bool {
        let total: i64 = parts.iter().map(|p| self.intersect(p).volume()).sum();
        total == self.volume()
    }

    /// Is the union of (possibly overlapping) `parts` a superset of `self`?
    /// Exact but enumerative; intended for tests and small sections.
    pub fn covered_by(&self, parts: &[Section]) -> bool {
        self.iter()
            .all(|idx| parts.iter().any(|p| p.contains(&idx)))
    }

    /// True iff the two sections share at least one element.
    pub fn overlaps(&self, other: &Section) -> bool {
        !self.intersect(other).is_empty()
    }

    /// Iterate all elements in row-major (last dimension fastest) order.
    pub fn iter(&self) -> SectionIter<'_> {
        SectionIter::new(self)
    }

    /// Row-major ordinal of `idx` within the section, if present.
    pub fn ordinal_of(&self, idx: &[i64]) -> Option<i64> {
        if !self.contains(idx) {
            return None;
        }
        let mut ord = 0i64;
        for (t, &i) in self.dims.iter().zip(idx) {
            ord = ord * t.count() + t.index_of(i).unwrap();
        }
        Some(ord)
    }

    /// The `ord`-th element in row-major order.
    pub fn nth(&self, ord: i64) -> Option<Vec<i64>> {
        if ord < 0 || ord >= self.volume() {
            return None;
        }
        let mut idx = vec![0i64; self.rank()];
        let mut rem = ord;
        for d in (0..self.rank()).rev() {
            let c = self.dims[d].count();
            idx[d] = self.dims[d].nth(rem % c).unwrap();
            rem /= c;
        }
        Some(idx)
    }

    /// Translate by a per-dimension delta.
    pub fn shift(&self, delta: &[i64]) -> Section {
        assert_eq!(delta.len(), self.rank());
        Section {
            dims: self
                .dims
                .iter()
                .zip(delta)
                .map(|(t, &d)| t.shift(d))
                .collect(),
        }
    }

    /// Do `self` and `other` have the same shape (conformable for
    /// element-wise assignment)?
    pub fn conformable(&self, other: &Section) -> bool {
        self.volume() == other.volume()
            && (self.extents() == other.extents()
                || self.volume() <= 1
                || squeeze(&self.extents()) == squeeze(&other.extents()))
    }
}

/// Drop unit dimensions (Fortran conformability ignores them).
fn squeeze(ext: &[i64]) -> Vec<i64> {
    ext.iter().copied().filter(|&e| e != 1).collect()
}

/// Row-major iterator over a section's element indices.
pub struct SectionIter<'a> {
    sec: &'a Section,
    next_ord: i64,
    volume: i64,
}

impl<'a> SectionIter<'a> {
    fn new(sec: &'a Section) -> Self {
        SectionIter {
            sec,
            next_ord: 0,
            volume: sec.volume(),
        }
    }
}

impl<'a> Iterator for SectionIter<'a> {
    type Item = Vec<i64>;
    fn next(&mut self) -> Option<Vec<i64>> {
        if self.next_ord >= self.volume {
            None
        } else {
            let v = self.sec.nth(self.next_ord);
            self.next_ord += 1;
            v
        }
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.volume - self.next_ord).max(0) as usize;
        (left, Some(left))
    }
}

impl<'a> ExactSizeIterator for SectionIter<'a> {}

impl fmt::Debug for Section {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Section {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, t) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sec(dims: &[(i64, i64, i64)]) -> Section {
        Section::new(
            dims.iter()
                .map(|&(l, u, s)| Triplet::new(l, u, s))
                .collect(),
        )
    }

    #[test]
    fn volume_and_extents() {
        let s = sec(&[(1, 4, 1), (1, 8, 2)]);
        assert_eq!(s.volume(), 16);
        assert_eq!(s.extents(), vec![4, 4]);
        assert_eq!(Section::scalar().volume(), 1);
    }

    #[test]
    fn contains() {
        let s = sec(&[(1, 4, 1), (1, 8, 2)]);
        assert!(s.contains(&[2, 3]));
        assert!(!s.contains(&[2, 4]));
        assert!(!s.contains(&[5, 3]));
        assert!(Section::scalar().contains(&[]));
    }

    #[test]
    fn intersect_2d() {
        let a = sec(&[(1, 4, 1), (1, 8, 1)]);
        let b = sec(&[(3, 6, 1), (5, 12, 1)]);
        assert_eq!(a.intersect(&b), sec(&[(3, 4, 1), (5, 8, 1)]));
    }

    #[test]
    fn intersect_empty_when_any_dim_empty() {
        let a = sec(&[(1, 4, 1), (1, 8, 1)]);
        let b = sec(&[(5, 6, 1), (5, 12, 1)]);
        assert!(a.intersect(&b).is_empty());
        assert_eq!(a.intersect(&b).volume(), 0);
    }

    #[test]
    fn paper_iown_example() {
        // §3.1: C[1:4,1:8] (BLOCK,BLOCK) on 2x2, P3 owns rows 3:4, cols 5:8,
        // segmented 2x1 -> wait, paper says 1x2 segments; its four segments:
        // (3:4,5), (3:4,6), (3:4,7), (3:4,8) under 2x1 shape. Query
        // iown(C[1,5:7]) on P3 must be FALSE (row 1 unowned); the paper's
        // walk-through queries the *intersections* {(1,5),(1,6),(1,7),null}
        // against a P3 that owns row 1 — we reproduce the covering logic.
        let query = sec(&[(1, 1, 1), (5, 7, 1)]);
        let segs = vec![
            sec(&[(1, 2, 1), (5, 5, 1)]),
            sec(&[(1, 2, 1), (6, 6, 1)]),
            sec(&[(1, 2, 1), (7, 7, 1)]),
            sec(&[(1, 2, 1), (8, 8, 1)]),
        ];
        assert!(query.covered_by_disjoint(&segs));
        assert!(query.covered_by(&segs));
        // Remove one segment: no longer covered.
        assert!(!query.covered_by_disjoint(&segs[..2]));
    }

    #[test]
    fn covered_by_disjoint_matches_enumeration() {
        let q = sec(&[(2, 7, 1), (1, 5, 2)]);
        let parts = vec![sec(&[(1, 4, 1), (1, 5, 2)]), sec(&[(5, 8, 1), (1, 5, 2)])];
        assert!(q.covered_by_disjoint(&parts));
        assert!(q.covered_by(&parts));
        let parts2 = vec![sec(&[(1, 4, 1), (1, 5, 2)])];
        assert!(!q.covered_by_disjoint(&parts2));
        assert!(!q.covered_by(&parts2));
    }

    #[test]
    fn ordinal_roundtrip() {
        let s = sec(&[(1, 3, 1), (2, 8, 3)]);
        for ord in 0..s.volume() {
            let idx = s.nth(ord).unwrap();
            assert_eq!(s.ordinal_of(&idx), Some(ord));
        }
        assert_eq!(s.nth(s.volume()), None);
        assert_eq!(s.ordinal_of(&[1, 3]), None);
    }

    #[test]
    fn iter_row_major() {
        let s = sec(&[(1, 2, 1), (5, 7, 2)]);
        let got: Vec<Vec<i64>> = s.iter().collect();
        assert_eq!(got, vec![vec![1, 5], vec![1, 7], vec![2, 5], vec![2, 7]]);
    }

    #[test]
    fn conformable() {
        assert!(sec(&[(1, 4, 1)]).conformable(&sec(&[(11, 14, 1)])));
        assert!(sec(&[(1, 4, 1)]).conformable(&sec(&[(1, 1, 1), (1, 4, 1)])));
        assert!(!sec(&[(1, 4, 1)]).conformable(&sec(&[(1, 5, 1)])));
        assert!(sec(&[(1, 1, 1)]).conformable(&Section::scalar()));
    }

    #[test]
    fn shift() {
        let s = sec(&[(1, 4, 1), (2, 8, 2)]);
        assert_eq!(s.shift(&[10, -1]), sec(&[(11, 14, 1), (1, 7, 2)]));
    }

    #[test]
    fn display() {
        assert_eq!(sec(&[(1, 4, 1), (5, 5, 1)]).to_string(), "[1:4,5]");
        assert_eq!(Section::scalar().to_string(), "[]");
    }
}
