//! XDP statements and programs.
//!
//! The statement forms follow §2.5–§2.7 of the paper:
//!
//! * data send `E ->` / `E -> S`, ownership send `E =>`, combined `E -=>`;
//! * data receive `E <- X`, ownership receive `U <=`, combined `U <=-`;
//! * compute-rule guarded statements `rule : { ... }`;
//! * ordinary IL statements (assignments, do-loops, kernel calls).
//!
//! Programs are SPMD: the whole [`Program`] is loaded onto every processor.

use crate::dist::Distribution;
use crate::expr::{BoolExpr, ElemExpr, IntExpr, SectionRef};
use crate::types::{ElemType, VarId};

/// Whether a variable's elements are exclusively owned (one processor each)
/// or universally owned (each processor has its own copy) — §2.1.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Ownership {
    /// Every element exclusively owned by a single processor; tracked in the
    /// run-time symbol table; transferable.
    Exclusive,
    /// Every processor has a private copy; values may diverge; never
    /// communicated directly.
    Universal,
}

/// What a transfer statement moves (§2.6–§2.7).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TransferKind {
    /// `->` / `<-`: the value only.
    Value,
    /// `=>` / `<=`: the ownership only.
    Ownership,
    /// `-=>` / `<=-`: ownership and value together.
    OwnershipValue,
}

impl TransferKind {
    /// Does this transfer move ownership?
    pub fn moves_ownership(self) -> bool {
        !matches!(self, TransferKind::Value)
    }
    /// Does this transfer move the data value?
    pub fn moves_value(self) -> bool {
        !matches!(self, TransferKind::Ownership)
    }
}

/// Destination annotation of a send.
///
/// A bare `E ->` has destination [`DestSet::Unspecified`]: the message goes
/// to whichever processor initiates a matching receive (rendezvous by name).
/// The compiler's delayed communication binding (§3.2) may later annotate
/// the send with explicit receiver pids.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DestSet {
    /// `E ->` — matched at run time purely by name.
    Unspecified,
    /// `E -> S` — explicit processor id expressions (singleton = point to
    /// point, several = multicast).
    Pids(Vec<IntExpr>),
}

/// A sequence of statements.
pub type Block = Vec<Stmt>;

/// An IL+XDP statement.
#[derive(Clone, PartialEq, Debug)]
pub enum Stmt {
    /// Element-wise assignment `target = rhs` over conformable sections.
    Assign { target: SectionRef, rhs: ElemExpr },
    /// Assignment to a universally owned integer scalar.
    ScalarAssign { var: String, value: IntExpr },
    /// Invocation of a named local kernel, e.g. `fft1D(A[i,*,k])`.
    /// `int_args` passes scalar parameters (e.g. a synthetic work cost).
    Kernel {
        name: String,
        args: Vec<SectionRef>,
        int_args: Vec<IntExpr>,
    },
    /// Send statement: `sec ->` (Value, Unspecified), `sec -> S` (Value,
    /// Pids), `sec =>` (Ownership), `sec -=>` (OwnershipValue).
    /// Ownership sends block until `sec` is accessible (§2.6).
    /// `salt` is the compiler-generated message type (§4's auxiliary
    /// send/receive linking structure); `None` = plain name matching.
    Send {
        sec: SectionRef,
        kind: TransferKind,
        dest: DestSet,
        salt: Option<IntExpr>,
    },
    /// Receive statement: `target <- name` (Value), `target <=`
    /// (Ownership), `target <=-` (OwnershipValue). For ownership receives
    /// the received name is the target itself (`U <= ` / `U <=-`), so
    /// `name` is `None`. `salt` must mirror the matching send's.
    Recv {
        target: SectionRef,
        kind: TransferKind,
        name: Option<SectionRef>,
        salt: Option<IntExpr>,
    },
    /// Compute-rule guarded block: `rule : { body }`.
    Guarded { rule: BoolExpr, body: Block },
    /// `do var = lo, hi [, step] { body }`.
    DoLoop {
        var: String,
        lo: IntExpr,
        hi: IntExpr,
        step: IntExpr,
        body: Block,
    },
    /// Global barrier — a run-time extension used to delimit program phases
    /// in tests and experiments. The paper leaves all synchronization to the
    /// compiler; the barrier is one of the primitives a compiler may bind
    /// (it is never inserted by the optimization passes themselves).
    Barrier,
    /// Collective redistribution: move exclusive variable `var` from its
    /// current distribution to `dist`. Semantically equal to the explicit
    /// ownership-migration loop nest (`-=>` / `<=-` per element, as in §4's
    /// FFT), but represented as one node so the `xdp-collectives` planner
    /// can choose the message schedule. Every processor must execute the
    /// statement (it is a collective).
    Redistribute { var: VarId, dist: Distribution },
}

impl Stmt {
    /// The name the receive matches on: the explicit `name` for value
    /// receives, the target itself for ownership receives.
    pub fn recv_match_name(target: &SectionRef, name: &Option<SectionRef>) -> SectionRef {
        name.clone().unwrap_or_else(|| target.clone())
    }

    /// Shallow child blocks (for traversal utilities).
    pub fn child_blocks(&self) -> Vec<&Block> {
        match self {
            Stmt::Guarded { body, .. } | Stmt::DoLoop { body, .. } => vec![body],
            _ => vec![],
        }
    }

    /// Visit every statement in this subtree, preorder.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Stmt)) {
        f(self);
        match self {
            Stmt::Guarded { body, .. } | Stmt::DoLoop { body, .. } => {
                for s in body {
                    s.visit(f);
                }
            }
            _ => {}
        }
    }

    /// Number of statements in this subtree (self included) — the width
    /// of the preorder-id range the statement occupies.
    pub fn subtree_size(&self) -> usize {
        let mut n = 0usize;
        self.visit(&mut |_| n += 1);
        n
    }
}

/// Preorder statement ids for the statements of a block whose first
/// statement has id `base`.
///
/// Statement ids number every statement of a program in preorder:
/// `Program.body[0]` is 0 and a compound statement with id `g` gives its
/// first child id `g + 1`. The ids of `block[k]` is therefore `base` plus
/// the subtree sizes of the preceding siblings. Executors use this to tag
/// every trace event with the statement that caused it without storing
/// ids in the IR itself.
pub fn block_stmt_ids(base: u32, block: &[Stmt]) -> Vec<u32> {
    let mut ids = Vec::with_capacity(block.len());
    let mut next = base;
    for s in block {
        ids.push(next);
        next += s.subtree_size() as u32;
    }
    ids
}

/// Visit every statement in a block, preorder.
pub fn visit_block<'a>(block: &'a Block, f: &mut impl FnMut(&'a Stmt)) {
    for s in block {
        s.visit(f);
    }
}

/// A variable declaration.
#[derive(Clone, PartialEq, Debug)]
pub struct Decl {
    /// Source-level name (`A`, `B`, `T`, ...).
    pub name: String,
    /// Element type.
    pub elem: ElemType,
    /// Global index bounds, one triplet (`lb:ub`, stride 1) per dimension.
    /// Empty for scalars.
    pub bounds: Vec<crate::triplet::Triplet>,
    /// Exclusive or universal ownership.
    pub ownership: Ownership,
    /// Initial distribution (exclusive variables only).
    pub dist: Option<Distribution>,
    /// Per-dimension *local* segment shape chosen by the compiler (§3.1);
    /// `None` means one segment per owned rectangle.
    pub segment_shape: Option<Vec<i64>>,
}

impl Decl {
    /// Array rank (0 for scalars).
    pub fn rank(&self) -> usize {
        self.bounds.len()
    }

    /// Is this an exclusive variable (tracked in the run-time symbol
    /// table)?
    pub fn is_exclusive(&self) -> bool {
        self.ownership == Ownership::Exclusive
    }
}

/// A whole SPMD program: declarations plus a statement block, loaded
/// identically onto every processor.
#[derive(Clone, PartialEq, Debug)]
pub struct Program {
    /// Declarations; `VarId(i)` names `decls[i]`.
    pub decls: Vec<Decl>,
    /// The program body.
    pub body: Block,
}

impl Program {
    /// Empty program.
    pub fn new() -> Program {
        Program {
            decls: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Add a declaration, returning its id.
    pub fn declare(&mut self, decl: Decl) -> VarId {
        assert!(
            self.decls.iter().all(|d| d.name != decl.name),
            "duplicate declaration of {}",
            decl.name
        );
        if decl.ownership == Ownership::Exclusive {
            assert!(
                decl.dist.is_some(),
                "exclusive variable {} needs a distribution",
                decl.name
            );
            if let Some(d) = &decl.dist {
                assert_eq!(
                    d.rank(),
                    decl.bounds.len(),
                    "distribution rank mismatch for {}",
                    decl.name
                );
            }
        }
        let id = VarId(self.decls.len() as u32);
        self.decls.push(decl);
        id
    }

    /// The declaration behind a [`VarId`].
    pub fn decl(&self, v: VarId) -> &Decl {
        &self.decls[v.index()]
    }

    /// Find a variable by source name.
    pub fn lookup(&self, name: &str) -> Option<VarId> {
        self.decls
            .iter()
            .position(|d| d.name == name)
            .map(|i| VarId(i as u32))
    }

    /// Visit every statement, preorder.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Stmt)) {
        visit_block(&self.body, f);
    }

    /// Count statements of each broad kind — used by pass reports and
    /// tests ("the optimized program has no guards / fewer sends").
    pub fn stmt_census(&self) -> StmtCensus {
        let mut c = StmtCensus::default();
        self.visit(&mut |s| match s {
            Stmt::Assign { .. } | Stmt::ScalarAssign { .. } => c.assigns += 1,
            Stmt::Kernel { .. } => c.kernels += 1,
            Stmt::Send { .. } => c.sends += 1,
            Stmt::Recv { .. } => c.recvs += 1,
            Stmt::Guarded { .. } => c.guards += 1,
            Stmt::DoLoop { .. } => c.loops += 1,
            Stmt::Barrier => c.barriers += 1,
            Stmt::Redistribute { .. } => c.redistributes += 1,
        });
        c
    }
}

impl Default for Program {
    fn default() -> Self {
        Program::new()
    }
}

/// Statement counts per kind.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct StmtCensus {
    pub assigns: usize,
    pub kernels: usize,
    pub sends: usize,
    pub recvs: usize,
    pub guards: usize,
    pub loops: usize,
    pub barriers: usize,
    pub redistributes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::DimDist;
    use crate::expr::Subscript;
    use crate::grid::ProcGrid;
    use crate::triplet::Triplet;

    fn decl_1d(name: &str, n: i64, nprocs: usize) -> Decl {
        Decl {
            name: name.into(),
            elem: ElemType::F64,
            bounds: vec![Triplet::range(1, n)],
            ownership: Ownership::Exclusive,
            dist: Some(Distribution::new(
                vec![DimDist::Block],
                ProcGrid::linear(nprocs),
            )),
            segment_shape: None,
        }
    }

    #[test]
    fn declare_and_lookup() {
        let mut p = Program::new();
        let a = p.declare(decl_1d("A", 16, 4));
        let b = p.declare(decl_1d("B", 16, 4));
        assert_eq!(p.lookup("A"), Some(a));
        assert_eq!(p.lookup("B"), Some(b));
        assert_eq!(p.lookup("C"), None);
        assert_eq!(p.decl(a).name, "A");
    }

    #[test]
    #[should_panic]
    fn duplicate_declaration_panics() {
        let mut p = Program::new();
        p.declare(decl_1d("A", 16, 4));
        p.declare(decl_1d("A", 16, 4));
    }

    #[test]
    #[should_panic]
    fn exclusive_without_distribution_panics() {
        let mut p = Program::new();
        p.declare(Decl {
            name: "A".into(),
            elem: ElemType::F64,
            bounds: vec![Triplet::range(1, 4)],
            ownership: Ownership::Exclusive,
            dist: None,
            segment_shape: None,
        });
    }

    #[test]
    fn census_counts_nested() {
        let mut p = Program::new();
        let a = p.declare(decl_1d("A", 16, 4));
        let aref = SectionRef::new(a, vec![Subscript::Point(IntExpr::Var("i".into()))]);
        p.body = vec![Stmt::DoLoop {
            var: "i".into(),
            lo: IntExpr::Const(1),
            hi: IntExpr::Const(16),
            step: IntExpr::Const(1),
            body: vec![Stmt::Guarded {
                rule: BoolExpr::Iown(aref.clone()),
                body: vec![
                    Stmt::Send {
                        sec: aref.clone(),
                        kind: TransferKind::Value,
                        dest: DestSet::Unspecified,
                        salt: None,
                    },
                    Stmt::Assign {
                        target: aref.clone(),
                        rhs: ElemExpr::Ref(aref.clone()),
                    },
                ],
            }],
        }];
        let c = p.stmt_census();
        assert_eq!(c.loops, 1);
        assert_eq!(c.guards, 1);
        assert_eq!(c.sends, 1);
        assert_eq!(c.assigns, 1);
        assert_eq!(c.recvs, 0);
    }

    #[test]
    fn preorder_ids_skip_subtrees() {
        let mut p = Program::new();
        let a = p.declare(decl_1d("A", 16, 4));
        let aref = SectionRef::new(a, vec![Subscript::Point(IntExpr::Var("i".into()))]);
        let send = Stmt::Send {
            sec: aref.clone(),
            kind: TransferKind::Value,
            dest: DestSet::Unspecified,
            salt: None,
        };
        // s0: do loop; s1: guard; s2: send; s3: barrier (top level).
        let guard = Stmt::Guarded {
            rule: BoolExpr::Iown(aref.clone()),
            body: vec![send.clone()],
        };
        let lp = Stmt::DoLoop {
            var: "i".into(),
            lo: IntExpr::Const(1),
            hi: IntExpr::Const(16),
            step: IntExpr::Const(1),
            body: vec![guard.clone()],
        };
        assert_eq!(send.subtree_size(), 1);
        assert_eq!(guard.subtree_size(), 2);
        assert_eq!(lp.subtree_size(), 3);
        let body = vec![lp, Stmt::Barrier];
        assert_eq!(block_stmt_ids(0, &body), vec![0, 3]);
        assert_eq!(block_stmt_ids(1, &[guard.clone(), send]), vec![1, 3]);
    }

    #[test]
    fn transfer_kind_flags() {
        assert!(TransferKind::OwnershipValue.moves_ownership());
        assert!(TransferKind::OwnershipValue.moves_value());
        assert!(!TransferKind::Value.moves_ownership());
        assert!(!TransferKind::Ownership.moves_value());
    }

    #[test]
    fn recv_match_name() {
        let t = SectionRef::scalar(VarId(0));
        let n = SectionRef::scalar(VarId(1));
        assert_eq!(Stmt::recv_match_name(&t, &Some(n.clone())), n);
        assert_eq!(Stmt::recv_match_name(&t, &None), t);
    }
}
