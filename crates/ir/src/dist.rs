//! HPF-style data distributions and the ownership maps they induce.
//!
//! The paper's reference implementation assumes "a fixed, known processor
//! grid and partitioning as allowed in HPF" (§3). A [`Distribution`] gives
//! each array dimension a [`DimDist`] — collapsed (`*`), `BLOCK`, `CYCLIC`,
//! or `CYCLIC(b)` — and maps the distributed dimensions, in order, onto the
//! axes of a [`ProcGrid`].
//!
//! Different arrays in one program may view the same processors through
//! different logical grids (Figure 2 distributes `A` as `(*,BLOCK)` over a
//! linearized view of 4 processors while `B` uses a 2x2 grid); only the
//! total processor count must agree.
//!
//! Ownership here is the *initial, compile-time* ownership. Run-time
//! ownership transfer (the `-=>` / `<=-` statements) mutates the run-time
//! symbol table in `xdp-runtime`, not the `Distribution`.

use crate::grid::ProcGrid;
use crate::section::Section;
use crate::triplet::Triplet;
use std::fmt;

/// Distribution of a single array dimension.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DimDist {
    /// `*` — collapsed: the dimension is not partitioned.
    Star,
    /// `BLOCK` — contiguous chunks of size `ceil(n / np)`.
    Block,
    /// `CYCLIC` — round-robin single elements.
    Cyclic,
    /// `CYCLIC(b)` — round-robin blocks of `b` elements.
    BlockCyclic(i64),
}

impl DimDist {
    /// Does this dimension consume a processor-grid axis?
    pub fn is_distributed(&self) -> bool {
        !matches!(self, DimDist::Star)
    }
}

impl fmt::Display for DimDist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DimDist::Star => write!(f, "*"),
            DimDist::Block => write!(f, "BLOCK"),
            DimDist::Cyclic => write!(f, "CYCLIC"),
            DimDist::BlockCyclic(b) => write!(f, "CYCLIC({b})"),
        }
    }
}

/// HPF-style alignment: own elements exactly as a base array owns the
/// mapped index (`ALIGN T(i, j) WITH A(j - c)` — ownership of `T[i,j]`
/// follows `A[j - c]`, with `T`'s dim 0 unconstrained). The compiler's
/// message-vectorization pass aligns communication temporaries with the
/// array whose owner consumes them.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Alignment {
    /// The distribution of the base array.
    pub base: Distribution,
    /// The base array's full per-dimension bounds.
    pub base_bounds: Vec<Triplet>,
    /// For each of *this* array's dimensions: `Some((base_dim, offset))`
    /// maps index `i` to base index `i - offset` in `base_dim`; `None`
    /// leaves the dimension unconstrained (every distributed base
    /// dimension must be mapped).
    pub map: Vec<Option<(usize, i64)>>,
}

/// A full distribution: one [`DimDist`] per array dimension plus the
/// processor grid the distributed dimensions map onto, or an alignment to
/// another array's distribution.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Distribution {
    dims: Vec<DimDist>,
    grid: ProcGrid,
    align: Option<Box<Alignment>>,
}

impl Distribution {
    /// Build a distribution. The number of non-`*` dimensions must equal the
    /// grid rank (HPF maps distributed dimensions to grid axes in order).
    /// Exception: an all-`*` distribution may pair with any linear grid —
    /// the grid then only records the machine size, and pid 0 owns the whole
    /// array by convention.
    pub fn new(dims: Vec<DimDist>, grid: ProcGrid) -> Distribution {
        let ndist = dims.iter().filter(|d| d.is_distributed()).count();
        assert!(
            ndist == grid.rank() || (ndist == 0 && grid.rank() == 1),
            "distribution has {ndist} distributed dims but grid {grid} has rank {}",
            grid.rank()
        );
        for d in &dims {
            if let DimDist::BlockCyclic(b) = d {
                assert!(*b >= 1, "CYCLIC({b}) block size must be >= 1");
            }
        }
        Distribution {
            dims,
            grid,
            align: None,
        }
    }

    /// Fully unpartitioned: every dimension collapsed, owned in full by
    /// processor 0 of an `nprocs`-processor machine.
    pub fn collapsed(rank: usize, nprocs: usize) -> Distribution {
        Distribution {
            dims: vec![DimDist::Star; rank],
            grid: ProcGrid::linear(nprocs),
            align: None,
        }
    }

    /// Align identically-ranked arrays: element `i` is owned by the owner
    /// of `base[i - offset]` under `base`'s distribution over
    /// `base_bounds`.
    pub fn aligned(
        base: Distribution,
        base_bounds: Vec<Triplet>,
        offset: Vec<i64>,
    ) -> Distribution {
        assert_eq!(offset.len(), base.rank());
        let map = offset
            .iter()
            .enumerate()
            .map(|(d, &o)| Some((d, o)))
            .collect();
        Distribution::aligned_map(base, base_bounds, map)
    }

    /// General alignment: per-dimension map into the base array's index
    /// space. Every *distributed* base dimension must be the image of some
    /// mapped dimension, otherwise ownership would be underdetermined.
    pub fn aligned_map(
        base: Distribution,
        base_bounds: Vec<Triplet>,
        map: Vec<Option<(usize, i64)>>,
    ) -> Distribution {
        assert!(
            base.align.is_none(),
            "cannot align to an aligned distribution"
        );
        assert_eq!(base_bounds.len(), base.rank());
        for (bd, dd) in base.dims.iter().enumerate() {
            if dd.is_distributed() {
                assert!(
                    map.iter().flatten().any(|&(d, _)| d == bd),
                    "distributed base dim {bd} is not mapped"
                );
            }
        }
        // The aligned array's own dims/grid are only descriptive; ownership
        // is entirely delegated. Use Star placeholders of this rank.
        let rank = map.len();
        Distribution {
            dims: vec![DimDist::Star; rank],
            grid: base.grid.clone(),
            align: Some(Box::new(Alignment {
                base,
                base_bounds,
                map,
            })),
        }
    }

    /// The alignment, if any.
    pub fn alignment(&self) -> Option<&Alignment> {
        self.align.as_deref()
    }

    /// True iff no dimension is distributed (pid 0 owns everything).
    pub fn is_collapsed(&self) -> bool {
        self.dims.iter().all(|d| !d.is_distributed())
    }

    /// Per-dimension distributions.
    pub fn dims(&self) -> &[DimDist] {
        &self.dims
    }

    /// The logical processor grid.
    pub fn grid(&self) -> &ProcGrid {
        &self.grid
    }

    /// Array rank this distribution applies to.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total processors in the logical grid.
    pub fn nprocs(&self) -> usize {
        self.grid.nprocs()
    }

    /// The grid axis that array dimension `d` maps to, if distributed.
    pub fn grid_axis(&self, d: usize) -> Option<usize> {
        if !self.dims[d].is_distributed() {
            return None;
        }
        Some(self.dims[..d].iter().filter(|x| x.is_distributed()).count())
    }

    /// Grid coordinate owning index `i` of a dimension with full range
    /// `bound` under `dd`, on an axis of `np` processors.
    fn coord_of(dd: DimDist, bound: Triplet, i: i64, np: usize) -> usize {
        let n = bound.count();
        let off = i - bound.lb;
        debug_assert!(off >= 0 && off < n, "index {i} outside bound {bound}");
        let np = np as i64;
        let c = match dd {
            DimDist::Star => 0,
            DimDist::Block => {
                let chunk = (n + np - 1) / np;
                off / chunk
            }
            DimDist::Cyclic => off % np,
            DimDist::BlockCyclic(b) => (off / b) % np,
        };
        c as usize
    }

    /// Owned global indices for grid coordinate `c` in a dimension with full
    /// range `bound` under `dd` on an axis of `np` processors. A list of
    /// triplets: one for `*`/`BLOCK`/`CYCLIC`, one per block for
    /// `CYCLIC(b)`.
    fn owned_in_dim(dd: DimDist, bound: Triplet, c: usize, np: usize) -> Vec<Triplet> {
        let n = bound.count();
        let np_ = np as i64;
        let c = c as i64;
        match dd {
            DimDist::Star => vec![bound],
            DimDist::Block => {
                let chunk = (n + np_ - 1) / np_;
                let lb = bound.lb + c * chunk;
                let ub = (lb + chunk - 1).min(bound.ub);
                if lb > bound.ub {
                    vec![]
                } else {
                    vec![Triplet::range(lb, ub)]
                }
            }
            DimDist::Cyclic => {
                let lb = bound.lb + c;
                if lb > bound.ub {
                    vec![]
                } else {
                    vec![Triplet::new(lb, bound.ub, np_)]
                }
            }
            DimDist::BlockCyclic(b) => {
                let mut out = Vec::new();
                let mut j = 0i64;
                loop {
                    let start = bound.lb + (c + j * np_) * b;
                    if start > bound.ub {
                        break;
                    }
                    out.push(Triplet::range(start, (start + b - 1).min(bound.ub)));
                    j += 1;
                }
                out
            }
        }
    }

    /// The pid (in the distribution's logical grid) that initially owns the
    /// element at global index `idx` of an array with per-dim full ranges
    /// `bounds`.
    pub fn owner_of(&self, bounds: &[Triplet], idx: &[i64]) -> usize {
        assert_eq!(idx.len(), self.rank());
        assert_eq!(bounds.len(), self.rank());
        if let Some(a) = &self.align {
            // Unmapped base dims are non-distributed; any in-bounds index
            // works for them.
            let mut base_idx: Vec<i64> = a.base_bounds.iter().map(|t| t.lb).collect();
            for (d, m) in a.map.iter().enumerate() {
                if let Some((bd, off)) = m {
                    base_idx[*bd] = idx[d] - off;
                }
            }
            return a.base.owner_of(&a.base_bounds, &base_idx);
        }
        let mut coords = Vec::with_capacity(self.grid.rank());
        for (d, dd) in self.dims.iter().enumerate() {
            if dd.is_distributed() {
                let axis = coords.len();
                let np = self.grid.extent(axis);
                coords.push(Self::coord_of(*dd, bounds[d], idx[d], np));
            }
        }
        if coords.is_empty() {
            // All-* exclusive array: owned by pid 0 by convention.
            return 0;
        }
        self.grid.pid_of(&coords)
    }

    /// Owned triplets for `pid` in array dimension `d`.
    pub fn owned_triplets(&self, bounds: &[Triplet], pid: usize, d: usize) -> Vec<Triplet> {
        if let Some(a) = &self.align {
            return match a.map[d] {
                // Mapped dim: base ownership shifted into this index space
                // and clipped to these bounds.
                Some((bd, off)) => a
                    .base
                    .owned_triplets(&a.base_bounds, pid, bd)
                    .into_iter()
                    .map(|t| t.shift(off).intersect(&bounds[d]))
                    .filter(|t| !t.is_empty())
                    .collect(),
                // Unconstrained dim: owned in full wherever the mapped
                // dims say this pid owns anything.
                None => vec![bounds[d]],
            };
        }
        let dd = self.dims[d];
        match self.grid_axis(d) {
            None => {
                // Collapsed dim: owned in full by every pid that owns
                // anything in the distributed dims (the caller combines via
                // cross product). For an all-`*` distribution only pid 0
                // owns anything.
                if self.is_collapsed() && pid != 0 {
                    vec![]
                } else {
                    vec![bounds[d]]
                }
            }
            Some(axis) => {
                let coords = self.grid.coords_of(pid);
                Self::owned_in_dim(dd, bounds[d], coords[axis], self.grid.extent(axis))
            }
        }
    }

    /// The rectangular pieces of `pid`'s initial partition, as global-index
    /// sections: the cross product of per-dimension owned triplet lists.
    ///
    /// `*` / `BLOCK` / `CYCLIC` dims contribute one triplet each, so most
    /// partitions are a single regular section; `CYCLIC(b)` dims contribute
    /// one triplet per block, multiplying the rectangle count.
    pub fn owned_rects(&self, bounds: &[Triplet], pid: usize) -> Vec<Section> {
        assert!(pid < self.nprocs(), "pid {pid} out of range");
        if self.rank() == 0 {
            // Rank-0 scalar: a single element, owned by pid 0.
            return if pid == 0 {
                vec![Section::scalar()]
            } else {
                vec![]
            };
        }
        let per_dim: Vec<Vec<Triplet>> = (0..self.rank())
            .map(|d| self.owned_triplets(bounds, pid, d))
            .collect();
        if per_dim.iter().any(|v| v.is_empty()) {
            return vec![];
        }
        let mut rects = vec![Vec::<Triplet>::new()];
        for dim_list in &per_dim {
            let mut next = Vec::with_capacity(rects.len() * dim_list.len());
            for r in &rects {
                for t in dim_list {
                    let mut r2 = r.clone();
                    r2.push(*t);
                    next.push(r2);
                }
            }
            rects = next;
        }
        rects.into_iter().map(Section::new).collect()
    }

    /// Total number of elements initially owned by `pid`.
    pub fn owned_volume(&self, bounds: &[Triplet], pid: usize) -> i64 {
        self.owned_rects(bounds, pid)
            .iter()
            .map(|r| r.volume())
            .sum()
    }

    /// Does `pid` initially own every element of `sec`?
    pub fn owns_section(&self, bounds: &[Triplet], pid: usize, sec: &Section) -> bool {
        sec.covered_by_disjoint(&self.owned_rects(bounds, pid))
    }

    /// The set of pids that initially own at least one element of `sec`.
    pub fn owners_of_section(&self, bounds: &[Triplet], sec: &Section) -> Vec<usize> {
        let mut out = Vec::new();
        for pid in 0..self.nprocs() {
            if self
                .owned_rects(bounds, pid)
                .iter()
                .any(|r| r.overlaps(sec))
            {
                out.push(pid);
            }
        }
        out
    }
}

impl fmt::Display for Distribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(a) = &self.align {
            // Self-contained alignment form, parseable by xdp-lang:
            //   align (BLOCK) onto 4 bounds [1:16] map (d0+1,*)
            write!(f, "align (")?;
            for (i, d) in a.base.dims.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{d}")?;
            }
            write!(f, ") onto {} bounds [", a.base.grid)?;
            for (i, t) in a.base_bounds.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{t}")?;
            }
            write!(f, "] map (")?;
            for (i, m) in a.map.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                match m {
                    None => write!(f, "*")?,
                    Some((bd, off)) => {
                        write!(f, "d{bd}")?;
                        match off.cmp(&0) {
                            std::cmp::Ordering::Greater => write!(f, "+{off}")?,
                            std::cmp::Ordering::Less => write!(f, "{off}")?,
                            std::cmp::Ordering::Equal => {}
                        }
                    }
                }
            }
            return write!(f, ")");
        }
        write!(f, "(")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ") onto {}", self.grid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(lb: i64, ub: i64) -> Triplet {
        Triplet::range(lb, ub)
    }

    /// Figure 2's array A: A[1:4,1:8] distributed (*,BLOCK) over 4 procs.
    fn fig2_a() -> (Distribution, Vec<Triplet>) {
        (
            Distribution::new(vec![DimDist::Star, DimDist::Block], ProcGrid::linear(4)),
            vec![b(1, 4), b(1, 8)],
        )
    }

    /// Figure 2's array B: B[1:16,1:16] distributed (BLOCK,CYCLIC) over 2x2.
    fn fig2_b() -> (Distribution, Vec<Triplet>) {
        (
            Distribution::new(vec![DimDist::Block, DimDist::Cyclic], ProcGrid::grid2(2, 2)),
            vec![b(1, 16), b(1, 16)],
        )
    }

    #[test]
    fn fig2_a_partition() {
        let (d, bounds) = fig2_a();
        // Each of the 4 procs owns 2 columns (8 cols / 4 procs), all rows.
        for pid in 0..4 {
            let rects = d.owned_rects(&bounds, pid);
            assert_eq!(rects.len(), 1);
            let lo = 1 + 2 * pid as i64;
            assert_eq!(
                rects[0],
                Section::new(vec![b(1, 4), b(lo, lo + 1)]),
                "pid {pid}"
            );
            assert_eq!(d.owned_volume(&bounds, pid), 8);
        }
        assert_eq!(d.owner_of(&bounds, &[3, 5]), 2);
    }

    #[test]
    fn fig2_b_partition() {
        let (d, bounds) = fig2_b();
        // P3 = grid (1,1): rows 9:16 block, cols 2:16:2 cyclic.
        let rects = d.owned_rects(&bounds, 3);
        assert_eq!(rects.len(), 1);
        assert_eq!(
            rects[0],
            Section::new(vec![b(9, 16), Triplet::new(2, 16, 2)])
        );
        assert_eq!(d.owned_volume(&bounds, 3), 64);
        assert_eq!(d.owner_of(&bounds, &[10, 4]), 3);
        assert_eq!(d.owner_of(&bounds, &[10, 5]), 2);
        assert_eq!(d.owner_of(&bounds, &[1, 1]), 0);
        assert_eq!(d.owner_of(&bounds, &[1, 2]), 1);
    }

    #[test]
    fn ownership_partitions_every_element() {
        // Every element is owned by exactly one pid, and owner_of agrees
        // with owned_rects — for a mix of distributions.
        let cases: Vec<(Distribution, Vec<Triplet>)> = vec![
            fig2_a(),
            fig2_b(),
            (
                Distribution::new(
                    vec![DimDist::Cyclic, DimDist::BlockCyclic(3)],
                    ProcGrid::grid2(2, 3),
                ),
                vec![b(1, 7), b(0, 16)],
            ),
            (
                Distribution::new(vec![DimDist::Block], ProcGrid::linear(3)),
                vec![b(1, 10)],
            ),
            (Distribution::collapsed(2, 4), vec![b(1, 3), b(1, 3)]),
        ];
        for (d, bounds) in cases {
            let full = Section::new(bounds.clone());
            let mut total = 0i64;
            for pid in 0..d.nprocs() {
                let rects = d.owned_rects(&bounds, pid);
                for r in &rects {
                    for idx in r.iter() {
                        assert_eq!(d.owner_of(&bounds, &idx), pid, "dist {d} idx {idx:?}");
                    }
                    total += r.volume();
                }
            }
            assert_eq!(total, full.volume(), "dist {d}");
        }
    }

    #[test]
    fn block_uneven_trailing_processor() {
        // 10 elements over 4 procs: chunk = 3 -> 3,3,3,1.
        let d = Distribution::new(vec![DimDist::Block], ProcGrid::linear(4));
        let bounds = vec![b(1, 10)];
        assert_eq!(d.owned_volume(&bounds, 0), 3);
        assert_eq!(d.owned_volume(&bounds, 3), 1);
        // 9 elements over 4 procs with chunk 3: last proc owns nothing.
        let bounds = vec![b(1, 9)];
        assert_eq!(d.owned_volume(&bounds, 3), 0);
        assert!(d.owned_rects(&bounds, 3).is_empty());
    }

    #[test]
    fn owns_section_and_owners() {
        let (d, bounds) = fig2_a();
        let sec = Section::new(vec![b(1, 4), b(3, 4)]); // P1's columns
        assert!(d.owns_section(&bounds, 1, &sec));
        assert!(!d.owns_section(&bounds, 0, &sec));
        let span = Section::new(vec![b(1, 4), b(2, 5)]); // P0..P2
        assert_eq!(d.owners_of_section(&bounds, &span), vec![0, 1, 2]);
    }

    #[test]
    fn collapsed_owned_by_p0() {
        let d = Distribution::collapsed(1, 4);
        let bounds = vec![b(1, 5)];
        assert_eq!(d.owner_of(&bounds, &[3]), 0);
        assert_eq!(d.owned_volume(&bounds, 0), 5);
        for pid in 1..4 {
            assert!(d.owned_rects(&bounds, pid).is_empty());
        }
    }

    #[test]
    fn rank0_scalar_owned_by_p0() {
        let d = Distribution::collapsed(0, 3);
        assert_eq!(d.owned_rects(&[], 0), vec![Section::scalar()]);
        assert!(d.owned_rects(&[], 1).is_empty());
        assert_eq!(d.owner_of(&[], &[]), 0);
    }

    #[test]
    fn block_cyclic_rects() {
        // CYCLIC(2) of 1:8 over 2 procs: P0 gets 1:2, 5:6; P1 gets 3:4, 7:8.
        let d = Distribution::new(vec![DimDist::BlockCyclic(2)], ProcGrid::linear(2));
        let bounds = vec![b(1, 8)];
        let r0 = d.owned_rects(&bounds, 0);
        assert_eq!(r0.len(), 2);
        assert_eq!(r0[0], Section::new(vec![b(1, 2)]));
        assert_eq!(r0[1], Section::new(vec![b(5, 6)]));
    }

    #[test]
    #[should_panic]
    fn rank_mismatch_panics() {
        Distribution::new(vec![DimDist::Block, DimDist::Cyclic], ProcGrid::linear(4));
    }

    #[test]
    fn display() {
        let (d, _) = fig2_b();
        assert_eq!(d.to_string(), "(BLOCK,CYCLIC) onto 2x2");
    }

    #[test]
    fn aligned_distribution_shifts_ownership() {
        // A[1:8] BLOCK over 4 procs; T[2:9] aligned with A at offset +1:
        // T[i] lives with A[i-1].
        let a = Distribution::new(vec![DimDist::Block], ProcGrid::linear(4));
        let abounds = vec![b(1, 8)];
        let t = Distribution::aligned(a.clone(), abounds.clone(), vec![1]);
        let tbounds = vec![b(2, 9)];
        for i in 2..=9 {
            assert_eq!(
                t.owner_of(&tbounds, &[i]),
                a.owner_of(&abounds, &[i - 1]),
                "i={i}"
            );
        }
        // Owned rects partition T's bounds.
        let mut total = 0;
        for pid in 0..4 {
            for r in t.owned_rects(&tbounds, pid) {
                for idx in r.iter() {
                    assert_eq!(t.owner_of(&tbounds, &idx), pid);
                    total += 1;
                }
            }
        }
        assert_eq!(total, 8);
        // Clipping: T bounds narrower than the shifted base partition.
        let narrow = vec![b(4, 5)];
        let mut owned = 0;
        for pid in 0..4 {
            owned += t
                .owned_rects(&narrow, pid)
                .iter()
                .map(|r| r.volume())
                .sum::<i64>();
        }
        assert_eq!(owned, 2);
    }
}
