//! Ergonomic builders for constructing IL+XDP programs in Rust.
//!
//! The compiler frontend, tests, and examples all construct programs through
//! these helpers; they keep the paper's examples close to their published
//! form. Naming mirrors the notation: [`iown`], [`await_`], [`send`],
//! [`send_own_val`], [`recv_val`], ...

use crate::dist::{DimDist, Distribution};
use crate::expr::{BoolExpr, CmpOp, ElemExpr, IntExpr, SectionRef, Subscript, TripletExpr};
use crate::grid::ProcGrid;
use crate::stmt::{Block, Decl, DestSet, Ownership, Stmt, TransferKind};
use crate::triplet::Triplet;
use crate::types::{ElemType, VarId};

/// Integer constant.
pub fn c(v: i64) -> IntExpr {
    IntExpr::Const(v)
}

/// Integer (universal scalar / loop) variable.
pub fn iv(name: &str) -> IntExpr {
    IntExpr::Var(name.to_string())
}

/// `mypid`.
pub fn mypid() -> IntExpr {
    IntExpr::MyPid
}

/// `mylb(X, d)` with 1-based dimension `d` as in the paper.
pub fn mylb(x: SectionRef, d: u32) -> IntExpr {
    IntExpr::MyLb(Box::new(x), d)
}

/// `myub(X, d)` with 1-based dimension `d`.
pub fn myub(x: SectionRef, d: u32) -> IntExpr {
    IntExpr::MyUb(Box::new(x), d)
}

/// Point subscript.
pub fn at(e: IntExpr) -> Subscript {
    Subscript::Point(e)
}

/// Whole-dimension subscript `*`.
pub fn all() -> Subscript {
    Subscript::All
}

/// Range subscript `lb:ub`.
pub fn span(lb: IntExpr, ub: IntExpr) -> Subscript {
    Subscript::Range(TripletExpr { lb, ub, st: c(1) })
}

/// Range subscript `lb:ub:st`.
pub fn span_st(lb: IntExpr, ub: IntExpr, st: IntExpr) -> Subscript {
    Subscript::Range(TripletExpr { lb, ub, st })
}

/// Section reference `var[subs...]`.
pub fn sref(var: VarId, subs: Vec<Subscript>) -> SectionRef {
    SectionRef::new(var, subs)
}

/// Element-wise use of a section.
pub fn val(r: SectionRef) -> ElemExpr {
    ElemExpr::Ref(r)
}

/// `iown(X)`.
pub fn iown(x: SectionRef) -> BoolExpr {
    BoolExpr::Iown(x)
}

/// `accessible(X)`.
pub fn accessible(x: SectionRef) -> BoolExpr {
    BoolExpr::Accessible(x)
}

/// `await(X)` (named with a trailing underscore; `await` is reserved).
pub fn await_(x: SectionRef) -> BoolExpr {
    BoolExpr::Await(x)
}

/// Integer comparison rule.
pub fn cmp(op: CmpOp, a: IntExpr, b: IntExpr) -> BoolExpr {
    BoolExpr::Cmp(op, a, b)
}

/// `rule : { body }`.
pub fn guarded(rule: BoolExpr, body: Block) -> Stmt {
    Stmt::Guarded { rule, body }
}

/// `do var = lo, hi { body }` (unit step).
pub fn do_loop(var: &str, lo: IntExpr, hi: IntExpr, body: Block) -> Stmt {
    Stmt::DoLoop {
        var: var.to_string(),
        lo,
        hi,
        step: c(1),
        body,
    }
}

/// `do var = lo, hi, step { body }`.
pub fn do_loop_step(var: &str, lo: IntExpr, hi: IntExpr, step: IntExpr, body: Block) -> Stmt {
    Stmt::DoLoop {
        var: var.to_string(),
        lo,
        hi,
        step,
        body,
    }
}

/// `target = rhs`.
pub fn assign(target: SectionRef, rhs: ElemExpr) -> Stmt {
    Stmt::Assign { target, rhs }
}

/// `var = value` for a universal integer scalar.
pub fn set(var: &str, value: IntExpr) -> Stmt {
    Stmt::ScalarAssign {
        var: var.to_string(),
        value,
    }
}

/// Kernel call `name(args...)`.
pub fn kernel(name: &str, args: Vec<SectionRef>) -> Stmt {
    Stmt::Kernel {
        name: name.to_string(),
        args,
        int_args: Vec::new(),
    }
}

/// Kernel call with scalar parameters.
pub fn kernel_with(name: &str, args: Vec<SectionRef>, int_args: Vec<IntExpr>) -> Stmt {
    Stmt::Kernel {
        name: name.to_string(),
        args,
        int_args,
    }
}

/// `E ->` — value send to unspecified destination.
pub fn send(sec: SectionRef) -> Stmt {
    Stmt::Send {
        sec,
        kind: TransferKind::Value,
        dest: DestSet::Unspecified,
        salt: None,
    }
}

/// `E -> S` — value send to explicit pids.
pub fn send_to(sec: SectionRef, pids: Vec<IntExpr>) -> Stmt {
    Stmt::Send {
        sec,
        kind: TransferKind::Value,
        dest: DestSet::Pids(pids),
        salt: None,
    }
}

/// `E =>` — ownership-only send.
pub fn send_own(sec: SectionRef) -> Stmt {
    Stmt::Send {
        sec,
        kind: TransferKind::Ownership,
        dest: DestSet::Unspecified,
        salt: None,
    }
}

/// `E -=>` — ownership-and-value send.
pub fn send_own_val(sec: SectionRef) -> Stmt {
    Stmt::Send {
        sec,
        kind: TransferKind::OwnershipValue,
        dest: DestSet::Unspecified,
        salt: None,
    }
}

/// `E -=> S` — ownership-and-value send with a bound destination
/// (produced by the communication-binding pass).
pub fn send_own_val_to(sec: SectionRef, pids: Vec<IntExpr>) -> Stmt {
    Stmt::Send {
        sec,
        kind: TransferKind::OwnershipValue,
        dest: DestSet::Pids(pids),
        salt: None,
    }
}

/// `E ->` with a compiler-generated message type (salt).
pub fn send_salted(sec: SectionRef, salt: IntExpr) -> Stmt {
    Stmt::Send {
        sec,
        kind: TransferKind::Value,
        dest: DestSet::Unspecified,
        salt: Some(salt),
    }
}

/// `E <- X` with a compiler-generated message type (salt).
pub fn recv_val_salted(target: SectionRef, name: SectionRef, salt: IntExpr) -> Stmt {
    Stmt::Recv {
        target,
        kind: TransferKind::Value,
        name: Some(name),
        salt: Some(salt),
    }
}

/// `E <- X` — value receive of the message named `X` into `E`.
pub fn recv_val(target: SectionRef, name: SectionRef) -> Stmt {
    Stmt::Recv {
        target,
        kind: TransferKind::Value,
        name: Some(name),
        salt: None,
    }
}

/// `U <=` — ownership-only receive.
pub fn recv_own(target: SectionRef) -> Stmt {
    Stmt::Recv {
        target,
        kind: TransferKind::Ownership,
        name: None,
        salt: None,
    }
}

/// `U <=-` — ownership-and-value receive.
pub fn recv_own_val(target: SectionRef) -> Stmt {
    Stmt::Recv {
        target,
        kind: TransferKind::OwnershipValue,
        name: None,
        salt: None,
    }
}

/// `redistribute V (DIMS) onto GRID` — collective redistribution of an
/// exclusive array to a new distribution.
pub fn redistribute(var: VarId, dist: Distribution) -> Stmt {
    Stmt::Redistribute { var, dist }
}

/// Declaration helper: exclusive array with a distribution.
pub fn array(
    name: &str,
    elem: ElemType,
    bounds: Vec<(i64, i64)>,
    dims: Vec<DimDist>,
    grid: ProcGrid,
) -> Decl {
    Decl {
        name: name.to_string(),
        elem,
        bounds: bounds.iter().map(|&(l, u)| Triplet::range(l, u)).collect(),
        ownership: Ownership::Exclusive,
        dist: Some(Distribution::new(dims, grid)),
        segment_shape: None,
    }
}

/// Declaration helper: exclusive array with an explicit segment shape.
pub fn array_seg(
    name: &str,
    elem: ElemType,
    bounds: Vec<(i64, i64)>,
    dims: Vec<DimDist>,
    grid: ProcGrid,
    segment_shape: Vec<i64>,
) -> Decl {
    let mut d = array(name, elem, bounds, dims, grid);
    d.segment_shape = Some(segment_shape);
    d
}

/// Declaration helper: universal (replicated, per-processor-copy) array.
pub fn universal_array(name: &str, elem: ElemType, bounds: Vec<(i64, i64)>) -> Decl {
    Decl {
        name: name.to_string(),
        elem,
        bounds: bounds.iter().map(|&(l, u)| Triplet::range(l, u)).collect(),
        ownership: Ownership::Universal,
        dist: None,
        segment_shape: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stmt::Program;

    #[test]
    fn build_paper_simple_example() {
        // The §2.2 straightforward translation of `A[i] = A[i] + B[i]`.
        let n = 16;
        let nprocs = 4;
        let mut p = Program::new();
        let grid = ProcGrid::linear(nprocs);
        let a = p.declare(array(
            "A",
            ElemType::F64,
            vec![(1, n)],
            vec![DimDist::Block],
            grid.clone(),
        ));
        let b = p.declare(array(
            "B",
            ElemType::F64,
            vec![(1, n)],
            vec![DimDist::Block],
            grid.clone(),
        ));
        let t = p.declare(array(
            "T",
            ElemType::F64,
            vec![(1, nprocs as i64)],
            vec![DimDist::Block],
            grid,
        ));

        let ai = sref(a, vec![at(iv("i"))]);
        let bi = sref(b, vec![at(iv("i"))]);
        let tm = sref(t, vec![at(mypid())]);

        p.body = vec![do_loop(
            "i",
            c(1),
            c(n),
            vec![
                guarded(iown(bi.clone()), vec![send(bi.clone())]),
                guarded(
                    iown(ai.clone()),
                    vec![
                        recv_val(tm.clone(), bi.clone()),
                        guarded(
                            await_(tm.clone()),
                            vec![assign(ai.clone(), val(ai.clone()).add(val(tm.clone())))],
                        ),
                    ],
                ),
            ],
        )];

        let census = p.stmt_census();
        assert_eq!(census.loops, 1);
        assert_eq!(census.guards, 3);
        assert_eq!(census.sends, 1);
        assert_eq!(census.recvs, 1);
        assert_eq!(census.assigns, 1);
    }
}
