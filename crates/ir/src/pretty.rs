//! Pretty-printer emitting the paper's concrete notation.
//!
//! Round-trips with the `xdp-lang` parser; every example prints programs
//! through this module so derivation stages can be compared against the
//! paper's listings.

use crate::expr::{BoolExpr, ElemBinOp, ElemExpr, IntBinOp, IntExpr, SectionRef, Subscript};
use crate::stmt::{Block, DestSet, Program, Stmt, TransferKind};
use std::fmt::Write;

/// Pretty-print a whole program, declarations included.
pub fn program(p: &Program) -> String {
    let mut out = String::new();
    for d in &p.decls {
        let bounds: Vec<String> = d.bounds.iter().map(|t| t.to_string()).collect();
        let dims = if bounds.is_empty() {
            String::new()
        } else {
            format!("[{}]", bounds.join(","))
        };
        let _ = write!(out, "{} {}{}", d.elem, d.name, dims);
        match (&d.dist, d.ownership) {
            (Some(dist), _) => {
                let _ = write!(out, " distribute {dist}");
            }
            (None, crate::stmt::Ownership::Universal) => {
                let _ = write!(out, " universal");
            }
            _ => {}
        }
        if let Some(seg) = &d.segment_shape {
            let s: Vec<String> = seg.iter().map(|x| x.to_string()).collect();
            let _ = write!(out, " segment ({})", s.join(","));
        }
        out.push('\n');
    }
    if !p.decls.is_empty() {
        out.push('\n');
    }
    out.push_str(&block(p, &p.body, 0));
    out
}

/// Pretty-print a statement block at the given indent level.
pub fn block(p: &Program, b: &Block, indent: usize) -> String {
    let mut out = String::new();
    for s in b {
        out.push_str(&stmt(p, s, indent));
    }
    out
}

fn pad(indent: usize) -> String {
    "  ".repeat(indent)
}

/// Pretty-print one statement.
pub fn stmt(p: &Program, s: &Stmt, indent: usize) -> String {
    let ind = pad(indent);
    match s {
        Stmt::Assign { target, rhs } => {
            format!("{ind}{} = {}\n", section_ref(p, target), elem_expr(p, rhs))
        }
        Stmt::ScalarAssign { var, value } => {
            format!("{ind}{var} = {}\n", int_expr(p, value))
        }
        Stmt::Kernel {
            name,
            args,
            int_args,
        } => {
            let mut parts: Vec<String> = args.iter().map(|a| section_ref(p, a)).collect();
            parts.extend(int_args.iter().map(|e| int_expr(p, e)));
            format!("{ind}{name}({})\n", parts.join(", "))
        }
        Stmt::Send {
            sec,
            kind,
            dest,
            salt,
        } => {
            let arrow = match kind {
                TransferKind::Value => "->",
                TransferKind::Ownership => "=>",
                TransferKind::OwnershipValue => "-=>",
            };
            let salt_str = salt
                .as_ref()
                .map(|e| format!(" #{}", int_expr(p, e)))
                .unwrap_or_default();
            match dest {
                DestSet::Unspecified => {
                    format!("{ind}{} {arrow}{salt_str}\n", section_ref(p, sec))
                }
                DestSet::Pids(pids) => {
                    let ps: Vec<String> = pids.iter().map(|e| int_expr(p, e)).collect();
                    format!(
                        "{ind}{} {arrow} {{{}}}{salt_str}\n",
                        section_ref(p, sec),
                        ps.join(",")
                    )
                }
            }
        }
        Stmt::Recv {
            target,
            kind,
            name,
            salt,
        } => {
            let salt_str = salt
                .as_ref()
                .map(|e| format!(" #{}", int_expr(p, e)))
                .unwrap_or_default();
            match kind {
                TransferKind::Value => {
                    let nm = Stmt::recv_match_name(target, name);
                    format!(
                        "{ind}{} <- {}{salt_str}\n",
                        section_ref(p, target),
                        section_ref(p, &nm)
                    )
                }
                TransferKind::Ownership => {
                    format!("{ind}{} <={salt_str}\n", section_ref(p, target))
                }
                TransferKind::OwnershipValue => {
                    format!("{ind}{} <=-{salt_str}\n", section_ref(p, target))
                }
            }
        }
        Stmt::Guarded { rule, body } => {
            let mut out = format!("{ind}{} : {{\n", bool_expr(p, rule));
            out.push_str(&block(p, body, indent + 1));
            out.push_str(&format!("{ind}}}\n"));
            out
        }
        Stmt::DoLoop {
            var,
            lo,
            hi,
            step,
            body,
        } => {
            let step_str = match step.as_const() {
                Some(1) => String::new(),
                _ => format!(", {}", int_expr(p, step)),
            };
            let mut out = format!(
                "{ind}do {var} = {}, {}{step_str} {{\n",
                int_expr(p, lo),
                int_expr(p, hi)
            );
            out.push_str(&block(p, body, indent + 1));
            out.push_str(&format!("{ind}}}\n"));
            out
        }
        Stmt::Barrier => format!("{ind}barrier\n"),
        Stmt::Redistribute { var, dist } => {
            format!("{ind}redistribute {} {dist}\n", p.decl(*var).name)
        }
    }
}

/// One-line summary of a statement: the first line of its pretty form
/// (compound statements show their header, e.g. `do i = 1, 16 {`).
pub fn stmt_summary(p: &Program, s: &Stmt) -> String {
    stmt(p, s, 0).lines().next().unwrap_or_default().to_string()
}

/// `(preorder id, one-line summary)` for every statement of the program,
/// in id order. The ids match `crate::stmt::block_stmt_ids` and are what
/// executors stamp on trace events, so this table labels trace reports.
pub fn stmt_table(p: &Program) -> Vec<(u32, String)> {
    fn walk(p: &Program, block: &Block, base: u32, out: &mut Vec<(u32, String)>) {
        for (s, sid) in block.iter().zip(crate::stmt::block_stmt_ids(base, block)) {
            out.push((sid, stmt_summary(p, s)));
            for child in s.child_blocks() {
                walk(p, child, sid + 1, out);
            }
        }
    }
    let mut out = Vec::new();
    walk(p, &p.body, 0, &mut out);
    out
}

/// Pretty-print a section reference, e.g. `A[i,*,1:4:2]`.
pub fn section_ref(p: &Program, r: &SectionRef) -> String {
    let name = &p.decl(r.var).name;
    if r.subs.is_empty() {
        return name.clone();
    }
    let subs: Vec<String> = r
        .subs
        .iter()
        .map(|s| match s {
            Subscript::Point(e) => int_expr(p, e),
            Subscript::All => "*".to_string(),
            Subscript::Range(t) => {
                let st = match t.st.as_const() {
                    Some(1) => String::new(),
                    _ => format!(":{}", int_expr(p, &t.st)),
                };
                format!("{}:{}{st}", int_expr(p, &t.lb), int_expr(p, &t.ub))
            }
        })
        .collect();
    format!("{name}[{}]", subs.join(","))
}

/// Pretty-print an integer expression.
pub fn int_expr(p: &Program, e: &IntExpr) -> String {
    match e {
        IntExpr::Const(v) => v.to_string(),
        IntExpr::Var(v) => v.clone(),
        IntExpr::MyPid => "mypid".to_string(),
        IntExpr::MyLb(s, d) => format!("mylb({}, {d})", section_ref(p, s)),
        IntExpr::MyUb(s, d) => format!("myub({}, {d})", section_ref(p, s)),
        IntExpr::Neg(a) => format!("(-{})", int_expr(p, a)),
        IntExpr::Bin(op, a, b) => {
            let (a, b) = (int_expr(p, a), int_expr(p, b));
            match op {
                IntBinOp::Add => format!("({a} + {b})"),
                IntBinOp::Sub => format!("({a} - {b})"),
                IntBinOp::Mul => format!("({a} * {b})"),
                IntBinOp::Div => format!("({a} / {b})"),
                IntBinOp::Mod => format!("({a} % {b})"),
                IntBinOp::Min => format!("min({a}, {b})"),
                IntBinOp::Max => format!("max({a}, {b})"),
            }
        }
    }
}

/// Pretty-print a compute rule.
pub fn bool_expr(p: &Program, e: &BoolExpr) -> String {
    match e {
        BoolExpr::True => "true".to_string(),
        BoolExpr::False => "false".to_string(),
        BoolExpr::Iown(s) => format!("iown({})", section_ref(p, s)),
        BoolExpr::Accessible(s) => format!("accessible({})", section_ref(p, s)),
        BoolExpr::Await(s) => format!("await({})", section_ref(p, s)),
        BoolExpr::Cmp(op, a, b) => {
            format!("{} {op} {}", int_expr(p, a), int_expr(p, b))
        }
        BoolExpr::And(a, b) => {
            format!("({} && {})", bool_expr(p, a), bool_expr(p, b))
        }
        BoolExpr::Or(a, b) => {
            format!("({} || {})", bool_expr(p, a), bool_expr(p, b))
        }
        BoolExpr::Not(a) => format!("!{}", bool_expr(p, a)),
    }
}

/// Pretty-print an element expression.
pub fn elem_expr(p: &Program, e: &ElemExpr) -> String {
    match e {
        ElemExpr::Ref(r) => section_ref(p, r),
        ElemExpr::LitF(v) => format!("{v:?}"),
        ElemExpr::LitI(v) => v.to_string(),
        ElemExpr::FromInt(i) => int_expr(p, i),
        ElemExpr::Neg(a) => format!("(-{})", elem_expr(p, a)),
        ElemExpr::Bin(op, a, b) => {
            let (a, b) = (elem_expr(p, a), elem_expr(p, b));
            match op {
                ElemBinOp::Add => format!("({a} + {b})"),
                ElemBinOp::Sub => format!("({a} - {b})"),
                ElemBinOp::Mul => format!("({a} * {b})"),
                ElemBinOp::Div => format!("({a} / {b})"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build as b;
    use crate::dist::DimDist;
    use crate::grid::ProcGrid;
    use crate::stmt::Program;
    use crate::types::ElemType;

    #[test]
    fn prints_paper_notation() {
        let mut p = Program::new();
        let grid = ProcGrid::linear(4);
        let a = p.declare(b::array(
            "A",
            ElemType::F64,
            vec![(1, 16)],
            vec![DimDist::Block],
            grid,
        ));
        let ai = b::sref(a, vec![b::at(b::iv("i"))]);
        p.body = vec![b::do_loop(
            "i",
            b::c(1),
            b::c(16),
            vec![
                b::guarded(b::iown(ai.clone()), vec![b::send_own_val(ai.clone())]),
                b::recv_own_val(ai.clone()),
            ],
        )];
        let s = program(&p);
        assert!(s.contains("real A[1:16] distribute (BLOCK) onto 4"), "{s}");
        assert!(s.contains("do i = 1, 16 {"), "{s}");
        assert!(s.contains("iown(A[i]) : {"), "{s}");
        assert!(s.contains("A[i] -=>"), "{s}");
        assert!(s.contains("A[i] <=-"), "{s}");
    }

    #[test]
    fn prints_sends_and_ranges() {
        let mut p = Program::new();
        let grid = ProcGrid::linear(2);
        let a = p.declare(b::array(
            "A",
            ElemType::C64,
            vec![(1, 4), (1, 8)],
            vec![DimDist::Star, DimDist::Block],
            grid,
        ));
        let sec = b::sref(a, vec![b::all(), b::span_st(b::c(1), b::iv("n"), b::c(2))]);
        p.body = vec![
            b::send_to(sec.clone(), vec![b::c(0), b::mypid()]),
            b::recv_val(sec.clone(), sec.clone()),
            Stmt::Barrier,
        ];
        let s = program(&p);
        assert!(s.contains("A[*,1:n:2] -> {0,mypid}"), "{s}");
        assert!(s.contains("A[*,1:n:2] <- A[*,1:n:2]"), "{s}");
        assert!(s.contains("barrier"), "{s}");
    }

    #[test]
    fn prints_redistribute_including_aligned_form() {
        use crate::dist::Distribution;
        use crate::triplet::Triplet;
        let mut p = Program::new();
        let grid = ProcGrid::linear(4);
        let a = p.declare(b::array(
            "A",
            ElemType::F64,
            vec![(1, 16)],
            vec![DimDist::Block],
            grid.clone(),
        ));
        let t = p.declare(b::array(
            "T",
            ElemType::F64,
            vec![(1, 16)],
            vec![DimDist::Block],
            grid.clone(),
        ));
        let cyc = Distribution::new(vec![DimDist::Cyclic], grid);
        p.body = vec![
            b::redistribute(a, cyc.clone()),
            b::redistribute(
                t,
                Distribution::aligned(cyc, vec![Triplet::range(1, 16)], vec![2]),
            ),
        ];
        let s = program(&p);
        assert!(s.contains("redistribute A (CYCLIC) onto 4"), "{s}");
        assert!(
            s.contains("redistribute T align (CYCLIC) onto 4 bounds [1:16] map (d0+2)"),
            "{s}"
        );
    }

    #[test]
    fn stmt_table_numbers_preorder() {
        let mut p = Program::new();
        let grid = ProcGrid::linear(4);
        let a = p.declare(b::array(
            "A",
            ElemType::F64,
            vec![(1, 16)],
            vec![DimDist::Block],
            grid,
        ));
        let ai = b::sref(a, vec![b::at(b::iv("i"))]);
        p.body = vec![
            b::do_loop(
                "i",
                b::c(1),
                b::c(16),
                vec![
                    b::guarded(b::iown(ai.clone()), vec![b::send_own_val(ai.clone())]),
                    b::recv_own_val(ai.clone()),
                ],
            ),
            Stmt::Barrier,
        ];
        let t = stmt_table(&p);
        let ids: Vec<u32> = t.iter().map(|(i, _)| *i).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert_eq!(t[0].1, "do i = 1, 16 {");
        assert_eq!(t[1].1, "iown(A[i]) : {");
        assert_eq!(t[2].1, "A[i] -=>");
        assert_eq!(t[3].1, "A[i] <=-");
        assert_eq!(t[4].1, "barrier");
    }

    #[test]
    fn prints_rules() {
        let mut p = Program::new();
        let grid = ProcGrid::linear(2);
        let a = p.declare(b::array(
            "A",
            ElemType::F64,
            vec![(1, 4)],
            vec![DimDist::Block],
            grid,
        ));
        let s = b::sref(a, vec![b::at(b::c(1))]);
        let rule = b::iown(s.clone()).and(b::cmp(crate::expr::CmpOp::Le, b::iv("i"), b::c(4)));
        assert_eq!(bool_expr(&p, &rule), "(iown(A[1]) && i <= 4)");
        assert_eq!(
            bool_expr(&p, &BoolExpr::Not(Box::new(b::accessible(s.clone())))),
            "!accessible(A[1])"
        );
        assert_eq!(int_expr(&p, &b::mylb(s, 1)), "mylb(A[1], 1)");
    }
}
