//! Expressions: integer index expressions, boolean compute rules, and
//! element-valued expressions.
//!
//! Compute rules (§2.4) are side-effect-free boolean expressions built from
//! the XDP intrinsics (`iown`, `accessible`, `await`) plus ordinary integer
//! comparisons and connectives. A reference to an unowned section inside a
//! compute rule makes the whole rule false, so rules can run anywhere.

use crate::types::VarId;
use std::fmt;

/// Integer-valued expressions: loop variables, intrinsics, arithmetic.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum IntExpr {
    /// Integer literal.
    Const(i64),
    /// A universally owned integer scalar — loop induction variables and
    /// helper scalars; each processor has its own copy (§2.2's `i`).
    Var(String),
    /// The executing processor's unique id (§2.3).
    MyPid,
    /// `mylb(X, d)`: smallest owned index of `X` in dimension `d`
    /// (1-based, as in the paper), `MAXINT` if none owned.
    MyLb(Box<SectionRef>, u32),
    /// `myub(X, d)`: largest owned index, `MININT` if none owned.
    MyUb(Box<SectionRef>, u32),
    /// Binary arithmetic.
    Bin(IntBinOp, Box<IntExpr>, Box<IntExpr>),
    /// Negation.
    Neg(Box<IntExpr>),
}

/// Binary integer operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum IntBinOp {
    Add,
    Sub,
    Mul,
    /// Truncating division (Fortran-style).
    Div,
    /// Euclidean remainder.
    Mod,
    Min,
    Max,
}

#[allow(clippy::should_implement_trait)] // builder sugar, deliberately named like the operators
impl IntExpr {
    /// Convenience: `self + other`.
    pub fn add(self, other: IntExpr) -> IntExpr {
        IntExpr::Bin(IntBinOp::Add, Box::new(self), Box::new(other))
    }
    /// Convenience: `self - other`.
    pub fn sub(self, other: IntExpr) -> IntExpr {
        IntExpr::Bin(IntBinOp::Sub, Box::new(self), Box::new(other))
    }
    /// Convenience: `self * other`.
    pub fn mul(self, other: IntExpr) -> IntExpr {
        IntExpr::Bin(IntBinOp::Mul, Box::new(self), Box::new(other))
    }

    /// Constant-fold if the expression contains no variables or intrinsics.
    pub fn as_const(&self) -> Option<i64> {
        match self {
            IntExpr::Const(c) => Some(*c),
            IntExpr::Neg(e) => e.as_const().map(|v| -v),
            IntExpr::Bin(op, a, b) => {
                let (a, b) = (a.as_const()?, b.as_const()?);
                Some(match op {
                    IntBinOp::Add => a + b,
                    IntBinOp::Sub => a - b,
                    IntBinOp::Mul => a * b,
                    IntBinOp::Div => a / b,
                    IntBinOp::Mod => a.rem_euclid(b),
                    IntBinOp::Min => a.min(b),
                    IntBinOp::Max => a.max(b),
                })
            }
            _ => None,
        }
    }

    /// Algebraic simplification: constant folding plus the unit/zero
    /// identities (`x+0`, `x-0`, `x*1`, `x*0`, `0+x`, `1*x`, `x/1`).
    pub fn simplify(&self) -> IntExpr {
        if let Some(c) = self.as_const() {
            return IntExpr::Const(c);
        }
        match self {
            IntExpr::Bin(op, a, b) => {
                let (a, b) = (a.simplify(), b.simplify());
                match (op, &a, &b) {
                    (IntBinOp::Add, x, IntExpr::Const(0)) => x.clone(),
                    (IntBinOp::Add, IntExpr::Const(0), x) => x.clone(),
                    (IntBinOp::Sub, x, IntExpr::Const(0)) => x.clone(),
                    (IntBinOp::Mul, x, IntExpr::Const(1)) => x.clone(),
                    (IntBinOp::Mul, IntExpr::Const(1), x) => x.clone(),
                    (IntBinOp::Mul, _, IntExpr::Const(0)) => IntExpr::Const(0),
                    (IntBinOp::Mul, IntExpr::Const(0), _) => IntExpr::Const(0),
                    (IntBinOp::Div, x, IntExpr::Const(1)) => x.clone(),
                    _ => IntExpr::Bin(*op, Box::new(a), Box::new(b)),
                }
            }
            IntExpr::Neg(a) => match a.simplify() {
                IntExpr::Neg(inner) => *inner,
                other => IntExpr::Neg(Box::new(other)),
            },
            other => other.clone(),
        }
    }

    /// Does the expression mention variable `name`?
    pub fn uses_var(&self, name: &str) -> bool {
        match self {
            IntExpr::Var(v) => v == name,
            IntExpr::Bin(_, a, b) => a.uses_var(name) || b.uses_var(name),
            IntExpr::Neg(e) => e.uses_var(name),
            IntExpr::MyLb(s, _) | IntExpr::MyUb(s, _) => s.uses_var(name),
            IntExpr::Const(_) | IntExpr::MyPid => false,
        }
    }

    /// Substitute `name := replacement` throughout.
    pub fn subst(&self, name: &str, replacement: &IntExpr) -> IntExpr {
        match self {
            IntExpr::Var(v) if v == name => replacement.clone(),
            IntExpr::Var(_) | IntExpr::Const(_) | IntExpr::MyPid => self.clone(),
            IntExpr::Bin(op, a, b) => IntExpr::Bin(
                *op,
                Box::new(a.subst(name, replacement)),
                Box::new(b.subst(name, replacement)),
            ),
            IntExpr::Neg(e) => IntExpr::Neg(Box::new(e.subst(name, replacement))),
            IntExpr::MyLb(s, d) => IntExpr::MyLb(Box::new(s.subst(name, replacement)), *d),
            IntExpr::MyUb(s, d) => IntExpr::MyUb(Box::new(s.subst(name, replacement)), *d),
        }
    }
}

/// A per-dimension subscript of a section reference.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Subscript {
    /// A single index, e.g. `A[i]`.
    Point(IntExpr),
    /// A triplet range, e.g. `A[1:n:2]`.
    Range(TripletExpr),
    /// The whole dimension, `A[*]`.
    All,
}

/// A triplet whose bounds are expressions.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct TripletExpr {
    pub lb: IntExpr,
    pub ub: IntExpr,
    pub st: IntExpr,
}

/// A (possibly symbolic) reference to a section of a variable:
/// the variable plus one subscript per dimension.
///
/// Scalars are referenced with an empty subscript list.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct SectionRef {
    pub var: VarId,
    pub subs: Vec<Subscript>,
}

impl SectionRef {
    /// Reference a scalar variable.
    pub fn scalar(var: VarId) -> SectionRef {
        SectionRef {
            var,
            subs: Vec::new(),
        }
    }

    /// Reference with the given subscripts.
    pub fn new(var: VarId, subs: Vec<Subscript>) -> SectionRef {
        SectionRef { var, subs }
    }

    /// Does any subscript mention variable `name`?
    pub fn uses_var(&self, name: &str) -> bool {
        self.subs.iter().any(|s| match s {
            Subscript::Point(e) => e.uses_var(name),
            Subscript::Range(t) => {
                t.lb.uses_var(name) || t.ub.uses_var(name) || t.st.uses_var(name)
            }
            Subscript::All => false,
        })
    }

    /// Substitute a variable in every subscript.
    pub fn subst(&self, name: &str, replacement: &IntExpr) -> SectionRef {
        SectionRef {
            var: self.var,
            subs: self
                .subs
                .iter()
                .map(|s| match s {
                    Subscript::Point(e) => Subscript::Point(e.subst(name, replacement)),
                    Subscript::Range(t) => Subscript::Range(TripletExpr {
                        lb: t.lb.subst(name, replacement),
                        ub: t.ub.subst(name, replacement),
                        st: t.st.subst(name, replacement),
                    }),
                    Subscript::All => Subscript::All,
                })
                .collect(),
        }
    }
}

/// Comparison operators for compute rules.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Boolean expressions — the compute-rule language (§2.4) plus the
/// intrinsic predicates of §2.3.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum BoolExpr {
    True,
    False,
    /// `iown(X)`: executing processor owns all elements of `X`.
    Iown(SectionRef),
    /// `accessible(X)`: owned and no uncompleted receive.
    Accessible(SectionRef),
    /// `await(X)`: false if unowned; otherwise block until accessible,
    /// then true. The only blocking intrinsic.
    Await(SectionRef),
    /// Integer comparison.
    Cmp(CmpOp, IntExpr, IntExpr),
    And(Box<BoolExpr>, Box<BoolExpr>),
    Or(Box<BoolExpr>, Box<BoolExpr>),
    Not(Box<BoolExpr>),
}

impl BoolExpr {
    /// Conjunction helper.
    pub fn and(self, other: BoolExpr) -> BoolExpr {
        BoolExpr::And(Box::new(self), Box::new(other))
    }

    /// Substitute an integer variable throughout.
    pub fn subst(&self, name: &str, replacement: &IntExpr) -> BoolExpr {
        match self {
            BoolExpr::True | BoolExpr::False => self.clone(),
            BoolExpr::Iown(s) => BoolExpr::Iown(s.subst(name, replacement)),
            BoolExpr::Accessible(s) => BoolExpr::Accessible(s.subst(name, replacement)),
            BoolExpr::Await(s) => BoolExpr::Await(s.subst(name, replacement)),
            BoolExpr::Cmp(op, a, b) => {
                BoolExpr::Cmp(*op, a.subst(name, replacement), b.subst(name, replacement))
            }
            BoolExpr::And(a, b) => BoolExpr::And(
                Box::new(a.subst(name, replacement)),
                Box::new(b.subst(name, replacement)),
            ),
            BoolExpr::Or(a, b) => BoolExpr::Or(
                Box::new(a.subst(name, replacement)),
                Box::new(b.subst(name, replacement)),
            ),
            BoolExpr::Not(a) => BoolExpr::Not(Box::new(a.subst(name, replacement))),
        }
    }

    /// Does this rule (transitively) contain a blocking `await`?
    pub fn contains_await(&self) -> bool {
        match self {
            BoolExpr::Await(_) => true,
            BoolExpr::And(a, b) | BoolExpr::Or(a, b) => a.contains_await() || b.contains_await(),
            BoolExpr::Not(a) => a.contains_await(),
            _ => false,
        }
    }
}

/// Binary operators on element values.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ElemBinOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// Element-valued expressions, evaluated element-wise over conformable
/// sections in an [`crate::stmt::Stmt::Assign`].
#[derive(Clone, PartialEq, Debug)]
pub enum ElemExpr {
    /// A section reference; yields that section's elements in row-major
    /// order. All `Ref`s in one expression must be conformable with the
    /// assignment target.
    Ref(SectionRef),
    /// A literal (real) constant, broadcast.
    LitF(f64),
    /// A literal integer constant, broadcast.
    LitI(i64),
    /// An integer expression (e.g. `mypid`), broadcast.
    FromInt(IntExpr),
    /// Element-wise binary operation.
    Bin(ElemBinOp, Box<ElemExpr>, Box<ElemExpr>),
    /// Element-wise negation.
    Neg(Box<ElemExpr>),
}

#[allow(clippy::should_implement_trait)] // builder sugar, deliberately named like the operators
impl ElemExpr {
    /// Convenience: `self + other`.
    pub fn add(self, other: ElemExpr) -> ElemExpr {
        ElemExpr::Bin(ElemBinOp::Add, Box::new(self), Box::new(other))
    }
    /// Convenience: `self * other`.
    pub fn mul(self, other: ElemExpr) -> ElemExpr {
        ElemExpr::Bin(ElemBinOp::Mul, Box::new(self), Box::new(other))
    }

    /// All section references in the expression, left to right.
    pub fn refs(&self) -> Vec<&SectionRef> {
        let mut out = Vec::new();
        self.collect_refs(&mut out);
        out
    }

    fn collect_refs<'a>(&'a self, out: &mut Vec<&'a SectionRef>) {
        match self {
            ElemExpr::Ref(r) => out.push(r),
            ElemExpr::Bin(_, a, b) => {
                a.collect_refs(out);
                b.collect_refs(out);
            }
            ElemExpr::Neg(a) => a.collect_refs(out),
            _ => {}
        }
    }

    /// Substitute an integer variable in all subscripts.
    pub fn subst(&self, name: &str, replacement: &IntExpr) -> ElemExpr {
        match self {
            ElemExpr::Ref(r) => ElemExpr::Ref(r.subst(name, replacement)),
            ElemExpr::LitF(_) | ElemExpr::LitI(_) => self.clone(),
            ElemExpr::FromInt(e) => ElemExpr::FromInt(e.subst(name, replacement)),
            ElemExpr::Bin(op, a, b) => ElemExpr::Bin(
                *op,
                Box::new(a.subst(name, replacement)),
                Box::new(b.subst(name, replacement)),
            ),
            ElemExpr::Neg(a) => ElemExpr::Neg(Box::new(a.subst(name, replacement))),
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

impl CmpOp {
    /// Apply the comparison.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(n: &str) -> IntExpr {
        IntExpr::Var(n.into())
    }

    #[test]
    fn const_folding() {
        let e = IntExpr::Const(3)
            .add(IntExpr::Const(4))
            .mul(IntExpr::Const(2));
        assert_eq!(e.as_const(), Some(14));
        assert_eq!(var("i").add(IntExpr::Const(1)).as_const(), None);
        assert_eq!(
            IntExpr::Bin(
                IntBinOp::Mod,
                Box::new(IntExpr::Const(-7)),
                Box::new(IntExpr::Const(4))
            )
            .as_const(),
            Some(1)
        );
    }

    #[test]
    fn simplify_identities() {
        let i = var("i");
        assert_eq!(i.clone().add(IntExpr::Const(0)).simplify(), i);
        assert_eq!(i.clone().mul(IntExpr::Const(1)).simplify(), i);
        assert_eq!(
            i.clone().mul(IntExpr::Const(0)).simplify(),
            IntExpr::Const(0)
        );
        assert_eq!(i.clone().sub(IntExpr::Const(0)).simplify(), i);
        assert_eq!(
            IntExpr::Neg(Box::new(IntExpr::Neg(Box::new(i.clone())))).simplify(),
            i
        );
        // Nested: (i + 0) * 1 -> i; constants fold.
        assert_eq!(
            i.clone()
                .add(IntExpr::Const(0))
                .mul(IntExpr::Const(1))
                .simplify(),
            i
        );
        assert_eq!(
            IntExpr::Const(3).add(IntExpr::Const(4)).simplify(),
            IntExpr::Const(7)
        );
        // Non-simplifiable stays put.
        let e = i.clone().add(IntExpr::Const(2));
        assert_eq!(e.simplify(), e);
    }

    #[test]
    fn subst_int() {
        let e = var("i").add(IntExpr::Const(1));
        let s = e.subst("i", &IntExpr::MyPid);
        assert_eq!(s, IntExpr::MyPid.add(IntExpr::Const(1)));
        assert!(!s.uses_var("i"));
    }

    #[test]
    fn subst_section_ref() {
        let r = SectionRef::new(VarId(0), vec![Subscript::Point(var("i")), Subscript::All]);
        assert!(r.uses_var("i"));
        let r2 = r.subst("i", &IntExpr::Const(5));
        assert!(!r2.uses_var("i"));
        assert_eq!(r2.subs[0], Subscript::Point(IntExpr::Const(5)));
    }

    #[test]
    fn bool_subst_and_await_detection() {
        let r = SectionRef::new(VarId(1), vec![Subscript::Point(var("k"))]);
        let rule = BoolExpr::Iown(r.clone()).and(BoolExpr::Await(r));
        assert!(rule.contains_await());
        let rule2 = rule.subst("k", &IntExpr::Const(2));
        match &rule2 {
            BoolExpr::And(a, _) => match a.as_ref() {
                BoolExpr::Iown(s) => {
                    assert_eq!(s.subs[0], Subscript::Point(IntExpr::Const(2)))
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
        assert!(!BoolExpr::Iown(SectionRef::scalar(VarId(0))).contains_await());
    }

    #[test]
    fn elem_refs() {
        let a = SectionRef::new(VarId(0), vec![Subscript::Point(var("i"))]);
        let b = SectionRef::new(VarId(1), vec![Subscript::Point(var("i"))]);
        let e = ElemExpr::Ref(a.clone()).add(ElemExpr::Ref(b.clone()));
        let refs = e.refs();
        assert_eq!(refs.len(), 2);
        assert_eq!(refs[0], &a);
        assert_eq!(refs[1], &b);
    }

    #[test]
    fn cmp_eval() {
        assert!(CmpOp::Le.eval(3, 3));
        assert!(CmpOp::Lt.eval(2, 3));
        assert!(!CmpOp::Gt.eval(2, 3));
        assert!(CmpOp::Ne.eval(2, 3));
    }
}
