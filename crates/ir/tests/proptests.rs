//! Property-based tests for the xdp-ir geometric core: triplet/section
//! algebra laws and the ownership-partition invariant of HPF distributions.

use proptest::prelude::*;
use xdp_ir::{DimDist, Distribution, ProcGrid, Section, Triplet};

fn triplet_strategy() -> impl Strategy<Value = Triplet> {
    (-20i64..20, 0i64..40, 1i64..6).prop_map(|(lb, len, st)| Triplet::new(lb, lb + len, st))
}

fn section_strategy(rank: usize) -> impl Strategy<Value = Section> {
    prop::collection::vec(triplet_strategy(), rank).prop_map(Section::new)
}

proptest! {
    #[test]
    fn triplet_intersect_matches_enumeration(a in triplet_strategy(), b in triplet_strategy()) {
        let got: Vec<i64> = a.intersect(&b).iter().collect();
        let want: Vec<i64> = a.iter().filter(|i| b.contains(*i)).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn triplet_intersect_commutative(a in triplet_strategy(), b in triplet_strategy()) {
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
    }

    #[test]
    fn triplet_intersect_idempotent(a in triplet_strategy()) {
        prop_assert_eq!(a.intersect(&a), a);
    }

    #[test]
    fn triplet_covers_iff_all_elements(a in triplet_strategy(), b in triplet_strategy()) {
        let want = b.iter().all(|i| a.contains(i));
        prop_assert_eq!(a.covers(&b), want);
    }

    #[test]
    fn triplet_count_matches_iter(a in triplet_strategy()) {
        prop_assert_eq!(a.count() as usize, a.iter().count());
    }

    #[test]
    fn section_intersect_matches_enumeration(
        a in section_strategy(2),
        b in section_strategy(2),
    ) {
        let isec = a.intersect(&b);
        for idx in a.iter() {
            prop_assert_eq!(isec.contains(&idx), b.contains(&idx));
        }
        prop_assert!(isec.volume() <= a.volume().min(b.volume()));
    }

    #[test]
    fn section_ordinal_roundtrip(s in section_strategy(3)) {
        prop_assume!(s.volume() > 0 && s.volume() < 500);
        for ord in 0..s.volume() {
            let idx = s.nth(ord).unwrap();
            prop_assert_eq!(s.ordinal_of(&idx), Some(ord));
        }
    }

    #[test]
    fn section_covers_consistent_with_intersect(
        a in section_strategy(2),
        b in section_strategy(2),
    ) {
        prop_assert_eq!(a.covers(&b), a.intersect(&b).volume() == b.volume());
    }
}

fn dimdist_strategy() -> impl Strategy<Value = DimDist> {
    prop_oneof![
        Just(DimDist::Block),
        Just(DimDist::Cyclic),
        (1i64..4).prop_map(DimDist::BlockCyclic),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every element of a distributed array is owned by exactly one pid,
    /// owner_of agrees with owned_rects, and the rects are pairwise
    /// disjoint.
    #[test]
    fn distribution_partitions_elements(
        d0 in dimdist_strategy(),
        d1 in dimdist_strategy(),
        star0 in any::<bool>(),
        p0 in 1usize..4,
        p1 in 1usize..4,
        n0 in 1i64..12,
        n1 in 1i64..12,
        lb0 in -3i64..4,
    ) {
        let dims = if star0 {
            vec![DimDist::Star, d1]
        } else {
            vec![d0, d1]
        };
        let grid = if star0 {
            ProcGrid::linear(p1)
        } else {
            ProcGrid::grid2(p0, p1)
        };
        let dist = Distribution::new(dims, grid);
        let bounds = vec![
            Triplet::range(lb0, lb0 + n0 - 1),
            Triplet::range(1, n1),
        ];
        let mut seen = std::collections::HashMap::new();
        for pid in 0..dist.nprocs() {
            let rects = dist.owned_rects(&bounds, pid);
            // Pairwise disjoint rects.
            for i in 0..rects.len() {
                for j in (i + 1)..rects.len() {
                    prop_assert!(!rects[i].overlaps(&rects[j]));
                }
            }
            for r in &rects {
                for idx in r.iter() {
                    prop_assert_eq!(dist.owner_of(&bounds, &idx), pid);
                    let prev = seen.insert(idx.clone(), pid);
                    prop_assert!(prev.is_none(), "element owned twice");
                }
            }
        }
        prop_assert_eq!(seen.len() as i64, n0 * n1);
    }

    /// Collapsed distributions put the whole iteration space on pid 0 and
    /// nothing anywhere else — the `nprocs`-preserving serial placement
    /// the placement search starts from.
    #[test]
    fn collapsed_owned_by_pid0_only(
        p in 1usize..6,
        n0 in 1i64..10,
        n1 in 1i64..10,
    ) {
        let dist = Distribution::collapsed(2, p);
        prop_assert!(dist.is_collapsed());
        prop_assert_eq!(dist.nprocs(), p);
        let bounds = vec![Triplet::range(1, n0), Triplet::range(1, n1)];
        for pid in 0..p {
            let vol: i64 = dist
                .owned_rects(&bounds, pid)
                .iter()
                .map(|s| s.volume())
                .sum();
            prop_assert_eq!(vol, if pid == 0 { n0 * n1 } else { 0 });
        }
        prop_assert_eq!(dist.owner_of(&bounds, &[1, 1]), 0);
    }

    /// Aligned arrays partition their own (offset) index space, and every
    /// element is owned by the owner of the mapped base element.
    #[test]
    fn aligned_partitions_and_tracks_base(
        d0 in dimdist_strategy(),
        p in 1usize..5,
        n in 2i64..10,
        off0 in -2i64..3,
        off1 in -2i64..3,
    ) {
        let base = Distribution::new(vec![d0, DimDist::Star], ProcGrid::linear(p));
        let bb = vec![Triplet::range(1, n), Triplet::range(1, n)];
        let dist = Distribution::aligned(base.clone(), bb.clone(), vec![off0, off1]);
        let bounds = vec![
            Triplet::range(1 + off0, n + off0),
            Triplet::range(1 + off1, n + off1),
        ];
        let mut seen = std::collections::HashMap::new();
        for pid in 0..p {
            for r in dist.owned_rects(&bounds, pid) {
                for idx in r.iter() {
                    prop_assert_eq!(dist.owner_of(&bounds, &idx), pid);
                    prop_assert_eq!(base.owner_of(&bb, &[idx[0] - off0, idx[1] - off1]), pid);
                    let prev = seen.insert(idx.clone(), pid);
                    prop_assert!(prev.is_none(), "element owned twice");
                }
            }
        }
        prop_assert_eq!(seen.len() as i64, n * n);
    }

    /// `aligned_map` collapsing a base dimension: a rank-1 array aligned
    /// to the rows of a rank-2 base (the `y[r] ~ M[r,*]` shape used by
    /// the placed matrix-vector product).
    #[test]
    fn aligned_map_row_vector_partitions(
        d0 in dimdist_strategy(),
        p in 1usize..5,
        n in 1i64..12,
    ) {
        let base = Distribution::new(vec![d0, DimDist::Star], ProcGrid::linear(p));
        let bb = vec![Triplet::range(1, n), Triplet::range(1, n)];
        let dist = Distribution::aligned_map(base.clone(), bb.clone(), vec![Some((0, 0))]);
        let bounds = vec![Triplet::range(1, n)];
        let mut seen = std::collections::HashMap::new();
        for pid in 0..p {
            for r in dist.owned_rects(&bounds, pid) {
                for idx in r.iter() {
                    prop_assert_eq!(dist.owner_of(&bounds, &idx), pid);
                    prop_assert_eq!(base.owner_of(&bb, &[idx[0], 1]), pid);
                    let prev = seen.insert(idx.clone(), pid);
                    prop_assert!(prev.is_none(), "element owned twice");
                }
            }
        }
        prop_assert_eq!(seen.len() as i64, n);
    }

    /// owns_section is exactly "every element's owner is pid".
    #[test]
    fn owns_section_matches_elementwise(
        d0 in dimdist_strategy(),
        p in 1usize..5,
        n in 1i64..16,
        qlb in 1i64..16,
        qlen in 0i64..8,
        qst in 1i64..3,
    ) {
        let dist = Distribution::new(vec![d0], ProcGrid::linear(p));
        let bounds = vec![Triplet::range(1, n)];
        let q = Triplet::new(qlb, (qlb + qlen).min(n), qst);
        prop_assume!(!q.is_empty() && q.ub <= n);
        let qsec = Section::new(vec![q]);
        for pid in 0..p {
            let want = qsec
                .iter()
                .all(|idx| dist.owner_of(&bounds, &idx) == pid);
            prop_assert_eq!(dist.owns_section(&bounds, pid, &qsec), want);
        }
    }
}
