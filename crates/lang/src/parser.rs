//! Recursive-descent parser with local backtracking.
//!
//! Statements terminate at newlines (or `}`), which keeps the receive form
//! `U <=` unambiguous against `<=` comparisons in compute rules.

use crate::lexer::{lex, Token, TokenKind};
use std::fmt;
use xdp_ir::{
    BoolExpr, CmpOp, Decl, DestSet, DimDist, Distribution, ElemBinOp, ElemExpr, ElemType, IntBinOp,
    IntExpr, Ownership, ProcGrid, Program, SectionRef, Stmt, Subscript, TransferKind, Triplet,
    TripletExpr,
};

/// A parse error with its source line.
#[derive(Clone, PartialEq, Debug)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<crate::lexer::LexError> for ParseError {
    fn from(e: crate::lexer::LexError) -> ParseError {
        ParseError {
            line: e.line,
            message: e.message,
        }
    }
}

/// Parse a whole program: declarations, then statements.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        program: Program::new(),
    };
    p.skip_newlines();
    while p.peek_type_keyword() {
        let d = p.decl()?;
        p.program.declare(d);
        p.end_of_stmt()?;
        p.skip_newlines();
    }
    let body = p.stmts_until(&TokenKind::Eof)?;
    p.program.body = body;
    Ok(p.program)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    program: Program,
}

type PResult<T> = Result<T, ParseError>;

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.toks[self.pos].kind
    }

    fn line(&self) -> usize {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.toks[self.pos].kind.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        k
    }

    fn err<T>(&self, message: impl Into<String>) -> PResult<T> {
        Err(ParseError {
            line: self.line(),
            message: message.into(),
        })
    }

    fn expect(&mut self, k: &TokenKind) -> PResult<()> {
        if self.peek() == k {
            self.bump();
            Ok(())
        } else {
            self.err(format!(
                "expected {}, found {}",
                k.name(),
                self.peek().name()
            ))
        }
    }

    fn eat(&mut self, k: &TokenKind) -> bool {
        if self.peek() == k {
            self.bump();
            true
        } else {
            false
        }
    }

    fn skip_newlines(&mut self) {
        while matches!(self.peek(), TokenKind::Newline) {
            self.bump();
        }
    }

    fn ident(&mut self) -> PResult<String> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {}", other.name())),
        }
    }

    fn int_lit(&mut self) -> PResult<i64> {
        match *self.peek() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(v)
            }
            ref other => self.err(format!("expected integer, found {}", other.name())),
        }
    }

    fn peek_ident(&self, s: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(x) if x == s)
    }

    fn eat_ident(&mut self, s: &str) -> bool {
        if self.peek_ident(s) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn peek_type_keyword(&self) -> bool {
        matches!(self.peek(), TokenKind::Ident(s)
            if s == "real" || s == "integer" || s == "complex")
    }

    fn end_of_stmt(&mut self) -> PResult<()> {
        match self.peek() {
            TokenKind::Newline | TokenKind::Semi => {
                self.bump();
                Ok(())
            }
            TokenKind::Eof | TokenKind::RBrace => Ok(()),
            other => self.err(format!("expected end of statement, found {}", other.name())),
        }
    }

    // ----- declarations ---------------------------------------------------

    fn decl(&mut self) -> PResult<Decl> {
        let ty = self.ident()?;
        let elem = match ty.as_str() {
            "real" => ElemType::F64,
            "integer" => ElemType::I64,
            "complex" => ElemType::C64,
            other => return self.err(format!("unknown type `{other}`")),
        };
        let name = self.ident()?;
        let mut bounds = Vec::new();
        if self.eat(&TokenKind::LBracket) {
            loop {
                let lb = self.int_lit()?;
                let ub = if self.eat(&TokenKind::Colon) {
                    self.int_lit()?
                } else {
                    lb
                };
                bounds.push(Triplet::range(lb, ub));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RBracket)?;
        }
        let mut ownership = Ownership::Exclusive;
        let mut dist = None;
        if self.eat_ident("universal") {
            ownership = Ownership::Universal;
        } else if self.eat_ident("distribute") {
            dist = Some(self.distribution()?);
        } else {
            return self.err("declaration needs `distribute (...) onto ...` or `universal`");
        }
        if let Some(d) = &dist {
            if d.rank() != bounds.len() {
                return self.err(format!(
                    "distribution rank mismatch for `{name}`: {} bounds but {} dimensions",
                    bounds.len(),
                    d.rank()
                ));
            }
        }
        let mut segment_shape = None;
        if self.eat_ident("segment") {
            self.expect(&TokenKind::LParen)?;
            let mut shape = Vec::new();
            loop {
                shape.push(self.int_lit()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
            segment_shape = Some(shape);
        }
        Ok(Decl {
            name,
            elem,
            bounds,
            ownership,
            dist,
            segment_shape,
        })
    }

    /// `(BLOCK,CYCLIC) onto 2x2` or an `align ...` clause.
    fn distribution(&mut self) -> PResult<Distribution> {
        if self.peek_ident("align") {
            return self.aligned_dist();
        }
        self.expect(&TokenKind::LParen)?;
        let mut dims = Vec::new();
        loop {
            dims.push(self.dim_dist()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        if !self.eat_ident("onto") {
            return self.err("expected `onto` after distribution dims");
        }
        let grid = self.grid()?;
        self.check_dist_grid(&dims, &grid)?;
        Ok(Distribution::new(dims, grid))
    }

    /// Pre-validate the invariants [`Distribution::new`] asserts, so
    /// malformed source surfaces as a parse error rather than a panic.
    fn check_dist_grid(&self, dims: &[DimDist], grid: &ProcGrid) -> PResult<()> {
        let ndist = dims.iter().filter(|d| d.is_distributed()).count();
        if !(ndist == grid.rank() || (ndist == 0 && grid.rank() == 1)) {
            return self.err(format!(
                "distribution has {ndist} distributed dims but grid {grid} has rank {}",
                grid.rank()
            ));
        }
        Ok(())
    }

    /// `align (BLOCK) onto 4 bounds [1:16] map (d0+1,*)` — ownership
    /// delegated to a base distribution through a dimension map.
    fn aligned_dist(&mut self) -> PResult<Distribution> {
        self.bump(); // align
        self.expect(&TokenKind::LParen)?;
        let mut dims = Vec::new();
        loop {
            dims.push(self.dim_dist()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        if !self.eat_ident("onto") {
            return self.err("expected `onto` in align clause");
        }
        let grid = self.grid()?;
        if !self.eat_ident("bounds") {
            return self.err("expected `bounds` in align clause");
        }
        self.expect(&TokenKind::LBracket)?;
        let mut bounds = Vec::new();
        loop {
            let lb = self.int_lit()?;
            let ub = if self.eat(&TokenKind::Colon) {
                self.int_lit()?
            } else {
                lb
            };
            bounds.push(Triplet::range(lb, ub));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RBracket)?;
        if !self.eat_ident("map") {
            return self.err("expected `map` in align clause");
        }
        self.expect(&TokenKind::LParen)?;
        let mut map = Vec::new();
        loop {
            if self.eat(&TokenKind::Star) {
                map.push(None);
            } else {
                let name = self.ident()?;
                let Some(bd) = name.strip_prefix('d').and_then(|x| x.parse::<usize>().ok()) else {
                    return self.err(format!("expected `d<k>` in align map, got `{name}`"));
                };
                let off = if self.eat(&TokenKind::Plus) {
                    self.int_lit()?
                } else if self.eat(&TokenKind::Minus) {
                    -self.int_lit()?
                } else {
                    0
                };
                map.push(Some((bd, off)));
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        self.check_dist_grid(&dims, &grid)?;
        let base = Distribution::new(dims, grid);
        if bounds.len() != base.rank() {
            return self.err(format!(
                "align clause has {} bounds but the base distribution has rank {}",
                bounds.len(),
                base.rank()
            ));
        }
        for &(bd, _) in map.iter().flatten() {
            if bd >= base.rank() {
                return self.err(format!(
                    "align map refers to base dim d{bd} but the base has rank {}",
                    base.rank()
                ));
            }
        }
        for (bd, dd) in base.dims().iter().enumerate() {
            if dd.is_distributed() && !map.iter().flatten().any(|&(d, _)| d == bd) {
                return self.err(format!(
                    "distributed base dim {bd} is not mapped in the align clause"
                ));
            }
        }
        Ok(Distribution::aligned_map(base, bounds, map))
    }

    fn dim_dist(&mut self) -> PResult<DimDist> {
        if self.eat(&TokenKind::Star) {
            return Ok(DimDist::Star);
        }
        let name = self.ident()?;
        match name.as_str() {
            "BLOCK" => Ok(DimDist::Block),
            "CYCLIC" => {
                if self.eat(&TokenKind::LParen) {
                    let b = self.int_lit()?;
                    self.expect(&TokenKind::RParen)?;
                    if b < 1 {
                        return self.err(format!("CYCLIC({b}) block size must be >= 1"));
                    }
                    Ok(DimDist::BlockCyclic(b))
                } else {
                    Ok(DimDist::Cyclic)
                }
            }
            other => self.err(format!("unknown distribution `{other}`")),
        }
    }

    /// Grid syntax `4` or `2x2` or `2x2x4` (the `x` glues to the following
    /// digits during lexing, so split identifiers like `x2x4`).
    fn grid(&mut self) -> PResult<ProcGrid> {
        let first = self.int_lit()?;
        if first < 1 {
            return self.err(format!("grid extent {first} must be >= 1"));
        }
        let mut dims = vec![first as usize];
        if let TokenKind::Ident(s) = self.peek().clone() {
            if s.starts_with('x') {
                let parts: Vec<&str> = s.split('x').collect();
                if parts[0].is_empty() && parts[1..].iter().all(|p| p.parse::<usize>().is_ok()) {
                    self.bump();
                    for p in &parts[1..] {
                        dims.push(p.parse().unwrap());
                    }
                }
            }
        }
        if let Some(bad) = dims.iter().find(|&&e| e < 1) {
            return self.err(format!("grid extent {bad} must be >= 1"));
        }
        Ok(ProcGrid::new(dims))
    }

    // ----- statements -----------------------------------------------------

    fn stmts_until(&mut self, end: &TokenKind) -> PResult<Vec<Stmt>> {
        let mut out = Vec::new();
        self.skip_newlines();
        while self.peek() != end {
            out.push(self.stmt()?);
            self.skip_newlines();
        }
        Ok(out)
    }

    fn stmt(&mut self) -> PResult<Stmt> {
        if self.peek_ident("do") {
            return self.do_loop();
        }
        if self.eat_ident("barrier") {
            self.end_of_stmt()?;
            return Ok(Stmt::Barrier);
        }
        if self.eat_ident("redistribute") {
            let name = self.ident()?;
            let Some(var) = self.program.lookup(&name) else {
                return self.err(format!("redistribute of undeclared array `{name}`"));
            };
            let dist = self.distribution()?;
            let rank = self.program.decl(var).bounds.len();
            if dist.rank() != rank {
                return self.err(format!(
                    "redistribute of `{name}`: array has rank {rank} but distribution has rank {}",
                    dist.rank()
                ));
            }
            self.end_of_stmt()?;
            return Ok(Stmt::Redistribute { var, dist });
        }
        // Guarded statement: `<rule> : { ... }` — try with backtracking.
        let save = self.pos;
        if let Ok(rule) = self.bool_expr() {
            if self.eat(&TokenKind::Colon) {
                self.expect(&TokenKind::LBrace)?;
                let body = self.stmts_until(&TokenKind::RBrace)?;
                self.expect(&TokenKind::RBrace)?;
                self.end_of_stmt()?;
                return Ok(Stmt::Guarded { rule, body });
            }
        }
        self.pos = save;

        // Kernel call / scalar assign dispatch on a leading identifier.
        if let TokenKind::Ident(name) = self.peek().clone() {
            let next = &self.toks[self.pos + 1].kind;
            if *next == TokenKind::LParen {
                return self.kernel_call(&name);
            }
            if *next == TokenKind::Eq && self.program.lookup(&name).is_none() {
                self.bump();
                self.bump();
                let value = self.int_expr()?;
                self.end_of_stmt()?;
                return Ok(Stmt::ScalarAssign { var: name, value });
            }
        }

        // Section-reference statements: send, receive, assignment.
        let sec = self.section_ref()?;
        let kind_tok = self.bump();
        match kind_tok {
            TokenKind::Arrow | TokenKind::OwnArrow | TokenKind::OwnValArrow => {
                let kind = match kind_tok {
                    TokenKind::Arrow => TransferKind::Value,
                    TokenKind::OwnArrow => TransferKind::Ownership,
                    _ => TransferKind::OwnershipValue,
                };
                let mut dest = DestSet::Unspecified;
                if self.eat(&TokenKind::LBrace) {
                    let mut pids = Vec::new();
                    loop {
                        pids.push(self.int_expr()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(&TokenKind::RBrace)?;
                    dest = DestSet::Pids(pids);
                }
                let salt = if self.eat(&TokenKind::Hash) {
                    Some(self.int_expr()?)
                } else {
                    None
                };
                self.end_of_stmt()?;
                Ok(Stmt::Send {
                    sec,
                    kind,
                    dest,
                    salt,
                })
            }
            TokenKind::RecvArrow => {
                let name = self.section_ref()?;
                let salt = if self.eat(&TokenKind::Hash) {
                    Some(self.int_expr()?)
                } else {
                    None
                };
                self.end_of_stmt()?;
                Ok(Stmt::Recv {
                    target: sec,
                    kind: TransferKind::Value,
                    name: Some(name),
                    salt,
                })
            }
            TokenKind::RecvOwnArrow | TokenKind::RecvOwnValArrow => {
                let kind = if kind_tok == TokenKind::RecvOwnArrow {
                    TransferKind::Ownership
                } else {
                    TransferKind::OwnershipValue
                };
                let salt = if self.eat(&TokenKind::Hash) {
                    Some(self.int_expr()?)
                } else {
                    None
                };
                self.end_of_stmt()?;
                Ok(Stmt::Recv {
                    target: sec,
                    kind,
                    name: None,
                    salt,
                })
            }
            TokenKind::Eq => {
                let rhs = self.elem_expr()?;
                self.end_of_stmt()?;
                Ok(Stmt::Assign { target: sec, rhs })
            }
            other => self.err(format!(
                "expected `->`, `=>`, `-=>`, `<-`, `<=`, `<=-` or `=`, found {}",
                other.name()
            )),
        }
    }

    fn do_loop(&mut self) -> PResult<Stmt> {
        self.bump(); // do
        let var = self.ident()?;
        self.expect(&TokenKind::Eq)?;
        let lo = self.int_expr()?;
        self.expect(&TokenKind::Comma)?;
        let hi = self.int_expr()?;
        let step = if self.eat(&TokenKind::Comma) {
            self.int_expr()?
        } else {
            IntExpr::Const(1)
        };
        let body = if self.eat(&TokenKind::LBrace) {
            let b = self.stmts_until(&TokenKind::RBrace)?;
            self.expect(&TokenKind::RBrace)?;
            b
        } else {
            // Fortran style: statements until `enddo`.
            self.end_of_stmt()?;
            let mut b = Vec::new();
            self.skip_newlines();
            while !self.peek_ident("enddo") {
                if matches!(self.peek(), TokenKind::Eof) {
                    return self.err("unterminated do-loop (missing `enddo`)");
                }
                b.push(self.stmt()?);
                self.skip_newlines();
            }
            self.bump(); // enddo
            b
        };
        self.end_of_stmt()?;
        Ok(Stmt::DoLoop {
            var,
            lo,
            hi,
            step,
            body,
        })
    }

    fn kernel_call(&mut self, name: &str) -> PResult<Stmt> {
        let name = name.to_string();
        self.bump(); // ident
        self.expect(&TokenKind::LParen)?;
        let mut args = Vec::new();
        let mut int_args = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                // A declared variable begins a section argument; anything
                // else is a scalar parameter.
                let is_section = matches!(self.peek(), TokenKind::Ident(s)
                    if self.program.lookup(s).is_some());
                if is_section {
                    args.push(self.section_ref()?);
                } else {
                    int_args.push(self.int_expr()?);
                }
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        self.end_of_stmt()?;
        Ok(Stmt::Kernel {
            name,
            args,
            int_args,
        })
    }

    // ----- section references ----------------------------------------------

    fn section_ref(&mut self) -> PResult<SectionRef> {
        let line = self.line();
        let name = self.ident()?;
        let var = self.program.lookup(&name).ok_or(ParseError {
            line,
            message: format!("undeclared variable `{name}`"),
        })?;
        let mut subs = Vec::new();
        if self.eat(&TokenKind::LBracket) {
            loop {
                subs.push(self.subscript()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RBracket)?;
        }
        Ok(SectionRef::new(var, subs))
    }

    fn subscript(&mut self) -> PResult<Subscript> {
        if self.eat(&TokenKind::Star) {
            return Ok(Subscript::All);
        }
        let lb = self.int_expr()?;
        if self.eat(&TokenKind::Colon) {
            let ub = self.int_expr()?;
            let st = if self.eat(&TokenKind::Colon) {
                self.int_expr()?
            } else {
                IntExpr::Const(1)
            };
            Ok(Subscript::Range(TripletExpr { lb, ub, st }))
        } else {
            Ok(Subscript::Point(lb))
        }
    }

    // ----- integer expressions ----------------------------------------------

    fn int_expr(&mut self) -> PResult<IntExpr> {
        self.int_additive()
    }

    fn int_additive(&mut self) -> PResult<IntExpr> {
        let mut lhs = self.int_multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => IntBinOp::Add,
                TokenKind::Minus => IntBinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.int_multiplicative()?;
            lhs = IntExpr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn int_multiplicative(&mut self) -> PResult<IntExpr> {
        let mut lhs = self.int_primary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => IntBinOp::Mul,
                TokenKind::Slash => IntBinOp::Div,
                TokenKind::Percent => IntBinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.int_primary()?;
            lhs = IntExpr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn int_primary(&mut self) -> PResult<IntExpr> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(IntExpr::Const(v))
            }
            TokenKind::Minus => {
                self.bump();
                Ok(IntExpr::Neg(Box::new(self.int_primary()?)))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.int_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => match name.as_str() {
                "mypid" => {
                    self.bump();
                    Ok(IntExpr::MyPid)
                }
                "mylb" | "myub" => {
                    self.bump();
                    self.expect(&TokenKind::LParen)?;
                    let sec = self.section_ref()?;
                    self.expect(&TokenKind::Comma)?;
                    let d = self.int_lit()? as u32;
                    self.expect(&TokenKind::RParen)?;
                    Ok(if name == "mylb" {
                        IntExpr::MyLb(Box::new(sec), d)
                    } else {
                        IntExpr::MyUb(Box::new(sec), d)
                    })
                }
                "min" | "max" => {
                    self.bump();
                    self.expect(&TokenKind::LParen)?;
                    let a = self.int_expr()?;
                    self.expect(&TokenKind::Comma)?;
                    let b = self.int_expr()?;
                    self.expect(&TokenKind::RParen)?;
                    let op = if name == "min" {
                        IntBinOp::Min
                    } else {
                        IntBinOp::Max
                    };
                    Ok(IntExpr::Bin(op, Box::new(a), Box::new(b)))
                }
                _ => {
                    self.bump();
                    Ok(IntExpr::Var(name))
                }
            },
            other => self.err(format!(
                "expected integer expression, found {}",
                other.name()
            )),
        }
    }

    // ----- compute rules ------------------------------------------------------

    fn bool_expr(&mut self) -> PResult<BoolExpr> {
        let mut lhs = self.bool_and()?;
        while self.eat(&TokenKind::OrOr) {
            let rhs = self.bool_and()?;
            lhs = BoolExpr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bool_and(&mut self) -> PResult<BoolExpr> {
        let mut lhs = self.bool_atom()?;
        while self.eat(&TokenKind::AndAnd) {
            let rhs = self.bool_atom()?;
            lhs = BoolExpr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bool_atom(&mut self) -> PResult<BoolExpr> {
        match self.peek().clone() {
            TokenKind::Bang => {
                self.bump();
                Ok(BoolExpr::Not(Box::new(self.bool_atom()?)))
            }
            TokenKind::Ident(name) if name == "iown" || name == "accessible" || name == "await" => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let sec = self.section_ref()?;
                self.expect(&TokenKind::RParen)?;
                Ok(match name.as_str() {
                    "iown" => BoolExpr::Iown(sec),
                    "accessible" => BoolExpr::Accessible(sec),
                    _ => BoolExpr::Await(sec),
                })
            }
            TokenKind::Ident(name) if name == "true" => {
                self.bump();
                Ok(BoolExpr::True)
            }
            TokenKind::Ident(name) if name == "false" => {
                self.bump();
                Ok(BoolExpr::False)
            }
            TokenKind::LParen => {
                // Either a parenthesized rule or a parenthesized integer
                // expression beginning a comparison — backtrack to decide.
                let save = self.pos;
                self.bump();
                if let Ok(inner) = self.bool_expr() {
                    if self.eat(&TokenKind::RParen) {
                        return Ok(inner);
                    }
                }
                self.pos = save;
                self.comparison()
            }
            _ => self.comparison(),
        }
    }

    fn comparison(&mut self) -> PResult<BoolExpr> {
        let lhs = self.int_expr()?;
        let op = match self.peek() {
            TokenKind::EqEq => CmpOp::Eq,
            TokenKind::NotEq => CmpOp::Ne,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::RecvOwnArrow => CmpOp::Le, // `<=` in rule position
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::GtEq => CmpOp::Ge,
            other => {
                return self.err(format!(
                    "expected comparison operator, found {}",
                    other.name()
                ))
            }
        };
        self.bump();
        let rhs = self.int_expr()?;
        Ok(BoolExpr::Cmp(op, lhs, rhs))
    }

    // ----- element expressions -------------------------------------------------

    fn elem_expr(&mut self) -> PResult<ElemExpr> {
        let mut lhs = self.elem_multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => ElemBinOp::Add,
                TokenKind::Minus => ElemBinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.elem_multiplicative()?;
            lhs = ElemExpr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn elem_multiplicative(&mut self) -> PResult<ElemExpr> {
        let mut lhs = self.elem_primary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => ElemBinOp::Mul,
                TokenKind::Slash => ElemBinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.elem_primary()?;
            lhs = ElemExpr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn elem_primary(&mut self) -> PResult<ElemExpr> {
        match self.peek().clone() {
            TokenKind::Float(v) => {
                self.bump();
                Ok(ElemExpr::LitF(v))
            }
            TokenKind::Int(v) => {
                self.bump();
                Ok(ElemExpr::LitI(v))
            }
            TokenKind::Minus => {
                self.bump();
                Ok(ElemExpr::Neg(Box::new(self.elem_primary()?)))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.elem_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if self.program.lookup(&name).is_some() {
                    Ok(ElemExpr::Ref(self.section_ref()?))
                } else {
                    // mypid / loop variables / mylb-style intrinsics: an
                    // integer *primary* broadcast element-wise. (Only a
                    // primary — `mypid + A[i]` must combine at the element
                    // level, where `A` is an array reference.)
                    Ok(ElemExpr::FromInt(self.int_primary()?))
                }
            }
            other => self.err(format!(
                "expected element expression, found {}",
                other.name()
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdp_ir::pretty;

    /// Pretty-print, reparse, pretty-print again: text fixpoint.
    fn roundtrip(src: &str) -> String {
        let p1 = parse_program(src).expect("first parse");
        let text1 = pretty::program(&p1);
        let p2 = parse_program(&text1).expect("reparse");
        let text2 = pretty::program(&p2);
        assert_eq!(text1, text2, "pretty/parse not a fixpoint");
        text1
    }

    #[test]
    fn parses_paper_simple_example() {
        let src = r#"
real A[1:16] distribute (BLOCK) onto 4
real B[1:16] distribute (BLOCK) onto 4
real T[0:3] distribute (BLOCK) onto 4 segment (1)

do i = 1, 16 {
  iown(B[i]) : { B[i] -> }
  iown(A[i]) : {
    T[mypid] <- B[i]
    await(T[mypid]) : { A[i] = A[i] + T[mypid] }
  }
}
"#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.decls.len(), 3);
        let c = p.stmt_census();
        assert_eq!(c.loops, 1);
        assert_eq!(c.guards, 3);
        assert_eq!(c.sends, 1);
        assert_eq!(c.recvs, 1);
        roundtrip(src);
    }

    #[test]
    fn parses_redistribute() {
        let src = r#"
real A[1:16,1:16] distribute (BLOCK,*) onto 4

redistribute A (*,CYCLIC) onto 4
redistribute A (BLOCK,BLOCK) onto 2x2
"#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.stmt_census().redistributes, 2);
        let Stmt::Redistribute { var, dist } = &p.body[0] else {
            panic!("expected redistribute, got {:?}", p.body[0]);
        };
        assert_eq!(p.decl(*var).name, "A");
        assert_eq!(dist.to_string(), "(*,CYCLIC) onto 4");
        assert!(xdp_ir::validate(&p).is_empty());
        roundtrip(src);

        let bad = parse_program("redistribute Z (BLOCK) onto 4\n");
        assert!(bad.unwrap_err().to_string().contains("undeclared"));
    }

    #[test]
    fn rank_mismatched_declaration_is_a_parse_error() {
        // Must surface as a named error, not a downstream declare panic.
        let bad = parse_program("real A[1:8,1:8] distribute (BLOCK) onto 4\n");
        let msg = bad.unwrap_err().to_string();
        assert!(msg.contains("rank mismatch"), "{msg}");
        assert!(msg.contains("2 bounds but 1 dimensions"), "{msg}");
    }

    #[test]
    fn parses_paper_fft_fragment_with_enddo() {
        // §4's Loop3 verbatim (Fortran-style loops).
        let src = r#"
complex A[1:4,1:4,1:4] distribute (*,*,BLOCK) onto 4 segment (4,1,1)

do p = 1, 4
  iown(A[*,*,p]) : {
    do n = 1, 4
      A[*,n,p] -=>
    enddo
    do n = 1, 4
      A[*,p,n] <=-
    enddo
  }
enddo
"#;
        let p = parse_program(src).unwrap();
        let c = p.stmt_census();
        assert_eq!(c.loops, 3);
        assert_eq!(c.sends, 1);
        assert_eq!(c.recvs, 1);
        let text = pretty::program(&p);
        assert!(text.contains("A[*,n,p] -=>"), "{text}");
        assert!(text.contains("A[*,p,n] <=-"), "{text}");
    }

    #[test]
    fn parses_ownership_migration_fragment() {
        let src = r#"
real A[1:16] distribute (BLOCK) onto 4 segment (1)
real B[1:16] distribute (CYCLIC) onto 4

do i = 1, 16 {
  iown(A[i]) : { A[i] -=> }
  iown(B[i]) : { A[i] <=- }
  await(A[i]) : { A[i] = A[i] + B[i] }
}
"#;
        let text = roundtrip(src);
        assert!(text.contains("A[i] -=>"));
        assert!(text.contains("A[i] <=-"));
        assert!(text.contains("await(A[i]) : {"));
    }

    #[test]
    fn parses_rules_and_expressions() {
        let src = r#"
real A[1:8] distribute (BLOCK) onto 2

(iown(A[1:4]) && !(mypid == 0)) : {
  A[2] = 0.5 * (A[1] + A[3])
}
i = mypid + 1
do k = mylb(A[*], 1), myub(A[*], 1), 2 {
  A[k] = 2.0
}
"#;
        let p = parse_program(src).unwrap();
        let text = pretty::program(&p);
        assert!(text.contains("&& !mypid == 0"), "{text}");
        assert!(text.contains("mylb(A[*], 1)"), "{text}");
        assert!(text.contains(", 2 {"), "{text}");
        roundtrip(src);
    }

    #[test]
    fn parses_2d_grid_and_cyclic_block() {
        let src = "real B[1:16,1:16] distribute (BLOCK,CYCLIC) onto 2x2 segment (4,2)\n";
        let p = parse_program(src).unwrap();
        let d = p.decl(p.lookup("B").unwrap());
        assert_eq!(d.dist.as_ref().unwrap().grid().dims(), &[2, 2]);
        assert_eq!(d.segment_shape, Some(vec![4, 2]));
        let src2 = "real C[1:8] distribute (CYCLIC(2)) onto 4\n";
        let p2 = parse_program(src2).unwrap();
        let d2 = p2.decl(p2.lookup("C").unwrap());
        assert_eq!(d2.dist.as_ref().unwrap().dims()[0], DimDist::BlockCyclic(2));
    }

    #[test]
    fn parses_sends_with_dest_and_salt() {
        let src = r#"
real B[1:8] distribute (BLOCK) onto 2
real T[0:1] distribute (BLOCK) onto 2

B[1:4] -> {1} #7
T[mypid] <- B[1:4] #7
B[5:8] =>
barrier
"#;
        let p = parse_program(src).unwrap();
        let text = pretty::program(&p);
        assert!(text.contains("B[1:4] -> {1} #7"), "{text}");
        assert!(text.contains("T[mypid] <- B[1:4] #7"), "{text}");
        assert!(text.contains("B[5:8] =>"), "{text}");
        assert!(text.contains("barrier"), "{text}");
        roundtrip(src);
    }

    #[test]
    fn kernel_calls_with_mixed_args() {
        let src = r#"
complex A[1:4,1:4] distribute (*,BLOCK) onto 4

do k = 1, 4 {
  fft1d(A[*,k])
  work_data(A[*,k], 100)
}
"#;
        let p = parse_program(src).unwrap();
        let mut kernels = 0;
        p.visit(&mut |s| {
            if let Stmt::Kernel {
                name,
                args,
                int_args,
            } = s
            {
                kernels += 1;
                if name == "work_data" {
                    assert_eq!(args.len(), 1);
                    assert_eq!(int_args.len(), 1);
                }
            }
        });
        assert_eq!(kernels, 2);
        roundtrip(src);
    }

    #[test]
    fn error_reporting() {
        let e = parse_program("real A[1:4] distribute (BLOCK) onto 2\nA[1] <~\n").unwrap_err();
        assert!(e.line >= 2, "{e}");
        let e2 = parse_program("whatever ->\n").unwrap_err();
        assert!(
            e2.message.contains("undeclared") || e2.message.contains("expected"),
            "{e2}"
        );
        let e3 = parse_program("real A distribute (BLOCK) onto\n").unwrap_err();
        assert!(e3.line == 1, "{e3}");
    }

    #[test]
    fn malformed_distributions_err_instead_of_panicking() {
        // Distributed-dims vs grid-rank mismatch.
        let e = parse_program("real A[1:4,1:4] distribute (BLOCK,BLOCK) onto 4\n").unwrap_err();
        assert!(e.message.contains("distributed dims"), "{e}");
        // Zero block size.
        let e = parse_program("real A[1:4] distribute (CYCLIC(0)) onto 2\n").unwrap_err();
        assert!(e.message.contains("block size"), "{e}");
        // Zero grid extent.
        let e = parse_program("real A[1:4] distribute (BLOCK) onto 0\n").unwrap_err();
        assert!(e.message.contains("grid extent"), "{e}");
        // Align clause: bounds arity mismatch.
        let e = parse_program(
            "real A[1:4] distribute align (BLOCK) onto 2 bounds [1:4,1:4] map (d0)\n",
        )
        .unwrap_err();
        assert!(e.message.contains("bounds"), "{e}");
        // Align clause: out-of-range base dim.
        let e =
            parse_program("real A[1:4] distribute align (BLOCK) onto 2 bounds [1:4] map (d3)\n")
                .unwrap_err();
        assert!(e.message.contains("d3"), "{e}");
        // Align clause: distributed base dim left unmapped.
        let e = parse_program("real A[1:4] distribute align (BLOCK) onto 2 bounds [1:4] map (*)\n")
            .unwrap_err();
        assert!(e.message.contains("not mapped"), "{e}");
        // Redistribute rank mismatch against the declared array.
        let e = parse_program(
            "real A[1:4] distribute (BLOCK) onto 2\nredistribute A (BLOCK,BLOCK) onto 2x2\n",
        )
        .unwrap_err();
        assert!(e.message.contains("rank"), "{e}");
    }

    #[test]
    fn le_comparison_vs_ownership_recv() {
        let src = r#"
real A[1:8] distribute (BLOCK) onto 2
integer U[1:8] distribute (BLOCK) onto 2

(mypid <= 1) : {
  A[1:4] <=
}
"#;
        let p = parse_program(src).unwrap();
        let text = pretty::program(&p);
        assert!(text.contains("mypid <= 1 : {"), "{text}");
        assert!(text.contains("A[1:4] <="), "{text}");
        roundtrip(src);
    }
}
