//! Tokenizer for the IL+XDP concrete syntax.
//!
//! Newlines are significant (they terminate statements, which keeps
//! `U <=` receives unambiguous against `<=` comparisons); `//` comments
//! run to end of line.

use std::fmt;

/// Token kinds.
#[derive(Clone, PartialEq, Debug)]
pub enum TokenKind {
    Ident(String),
    Int(i64),
    Float(f64),
    /// `->`
    Arrow,
    /// `=>`
    OwnArrow,
    /// `-=>`
    OwnValArrow,
    /// `<-`
    RecvArrow,
    /// `<=` in receive position (also less-or-equal in expressions; the
    /// parser decides by context).
    RecvOwnArrow,
    /// `<=-`
    RecvOwnValArrow,
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Colon,
    Semi,
    Hash,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    EqEq,
    NotEq,
    Lt,
    Gt,
    GtEq,
    AndAnd,
    OrOr,
    Bang,
    Newline,
    Eof,
}

impl TokenKind {
    /// Human-readable name for diagnostics.
    pub fn name(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Int(v) => format!("integer {v}"),
            TokenKind::Float(v) => format!("float {v}"),
            TokenKind::Newline => "newline".to_string(),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("{other:?}"),
        }
    }
}

/// A token with its line number (1-based).
#[derive(Clone, PartialEq, Debug)]
pub struct Token {
    pub kind: TokenKind,
    pub line: usize,
}

/// Lexer errors.
#[derive(Clone, PartialEq, Debug)]
pub struct LexError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize a source string.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1;
    let push = |out: &mut Vec<Token>, kind: TokenKind, line: usize| {
        out.push(Token { kind, line });
    };
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                // Collapse runs of newlines into one token.
                if !matches!(
                    out.last().map(|t: &Token| &t.kind),
                    Some(TokenKind::Newline) | None
                ) {
                    push(&mut out, TokenKind::Newline, line);
                }
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                push(&mut out, TokenKind::LParen, line);
                i += 1;
            }
            ')' => {
                push(&mut out, TokenKind::RParen, line);
                i += 1;
            }
            '{' => {
                push(&mut out, TokenKind::LBrace, line);
                i += 1;
            }
            '}' => {
                push(&mut out, TokenKind::RBrace, line);
                i += 1;
            }
            '[' => {
                push(&mut out, TokenKind::LBracket, line);
                i += 1;
            }
            ']' => {
                push(&mut out, TokenKind::RBracket, line);
                i += 1;
            }
            ',' => {
                push(&mut out, TokenKind::Comma, line);
                i += 1;
            }
            ':' => {
                push(&mut out, TokenKind::Colon, line);
                i += 1;
            }
            ';' => {
                push(&mut out, TokenKind::Semi, line);
                i += 1;
            }
            '#' => {
                push(&mut out, TokenKind::Hash, line);
                i += 1;
            }
            '*' => {
                push(&mut out, TokenKind::Star, line);
                i += 1;
            }
            '+' => {
                push(&mut out, TokenKind::Plus, line);
                i += 1;
            }
            '%' => {
                push(&mut out, TokenKind::Percent, line);
                i += 1;
            }
            '/' => {
                push(&mut out, TokenKind::Slash, line);
                i += 1;
            }
            '-' => {
                if src[i..].starts_with("-=>") {
                    push(&mut out, TokenKind::OwnValArrow, line);
                    i += 3;
                } else if src[i..].starts_with("->") {
                    push(&mut out, TokenKind::Arrow, line);
                    i += 2;
                } else {
                    push(&mut out, TokenKind::Minus, line);
                    i += 1;
                }
            }
            '=' => {
                if src[i..].starts_with("==") {
                    push(&mut out, TokenKind::EqEq, line);
                    i += 2;
                } else if src[i..].starts_with("=>") {
                    push(&mut out, TokenKind::OwnArrow, line);
                    i += 2;
                } else {
                    push(&mut out, TokenKind::Eq, line);
                    i += 1;
                }
            }
            '<' => {
                if src[i..].starts_with("<=-") {
                    push(&mut out, TokenKind::RecvOwnValArrow, line);
                    i += 3;
                } else if src[i..].starts_with("<=") {
                    push(&mut out, TokenKind::RecvOwnArrow, line);
                    i += 2;
                } else if src[i..].starts_with("<-") {
                    push(&mut out, TokenKind::RecvArrow, line);
                    i += 2;
                } else {
                    push(&mut out, TokenKind::Lt, line);
                    i += 1;
                }
            }
            '>' => {
                if src[i..].starts_with(">=") {
                    push(&mut out, TokenKind::GtEq, line);
                    i += 2;
                } else {
                    push(&mut out, TokenKind::Gt, line);
                    i += 1;
                }
            }
            '!' => {
                if src[i..].starts_with("!=") {
                    push(&mut out, TokenKind::NotEq, line);
                    i += 2;
                } else {
                    push(&mut out, TokenKind::Bang, line);
                    i += 1;
                }
            }
            '&' => {
                if src[i..].starts_with("&&") {
                    push(&mut out, TokenKind::AndAnd, line);
                    i += 2;
                } else {
                    return Err(LexError {
                        line,
                        message: "stray `&`".into(),
                    });
                }
            }
            '|' => {
                if src[i..].starts_with("||") {
                    push(&mut out, TokenKind::OrOr, line);
                    i += 2;
                } else {
                    return Err(LexError {
                        line,
                        message: "stray `|`".into(),
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i + 1 < bytes.len()
                    && bytes[i] == b'.'
                    && (bytes[i + 1] as char).is_ascii_digit()
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let save = i;
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                            i += 1;
                        }
                    } else {
                        i = save;
                    }
                }
                let text = &src[start..i];
                if is_float {
                    push(
                        &mut out,
                        TokenKind::Float(text.parse().map_err(|e| LexError {
                            line,
                            message: format!("bad float `{text}`: {e}"),
                        })?),
                        line,
                    );
                } else {
                    push(
                        &mut out,
                        TokenKind::Int(text.parse().map_err(|e| LexError {
                            line,
                            message: format!("bad integer `{text}`: {e}"),
                        })?),
                        line,
                    );
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                push(&mut out, TokenKind::Ident(src[start..i].to_string()), line);
            }
            other => {
                return Err(LexError {
                    line,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    push(&mut out, TokenKind::Eof, line);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn arrows_lex_greedily() {
        use TokenKind::*;
        assert_eq!(
            kinds("-> => -=> <- <= <=-"),
            vec![
                Arrow,
                OwnArrow,
                OwnValArrow,
                RecvArrow,
                RecvOwnArrow,
                RecvOwnValArrow,
                Eof
            ]
        );
    }

    #[test]
    fn operators_and_numbers() {
        use TokenKind::*;
        assert_eq!(
            kinds("a == 3 != 4.5 >= x && !y || 1e3"),
            vec![
                Ident("a".into()),
                EqEq,
                Int(3),
                NotEq,
                Float(4.5),
                GtEq,
                Ident("x".into()),
                AndAnd,
                Bang,
                Ident("y".into()),
                OrOr,
                Float(1000.0),
                Eof
            ]
        );
    }

    #[test]
    fn comments_and_newlines() {
        use TokenKind::*;
        assert_eq!(
            kinds("a // comment\n\n\nb"),
            vec![Ident("a".into()), Newline, Ident("b".into()), Eof]
        );
    }

    #[test]
    fn section_notation() {
        use TokenKind::*;
        assert_eq!(
            kinds("A[1:8:2,*]"),
            vec![
                Ident("A".into()),
                LBracket,
                Int(1),
                Colon,
                Int(8),
                Colon,
                Int(2),
                Comma,
                Star,
                RBracket,
                Eof
            ]
        );
    }

    #[test]
    fn lex_errors_carry_lines() {
        let e = lex("ok\n  @").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains('@'));
    }

    #[test]
    fn minus_vs_arrows() {
        use TokenKind::*;
        assert_eq!(
            kinds("a - b"),
            vec![Ident("a".into()), Minus, Ident("b".into()), Eof]
        );
        assert_eq!(kinds("a -=> "), vec![Ident("a".into()), OwnValArrow, Eof]);
    }
}
