//! # xdp-lang — concrete syntax for IL+XDP
//!
//! A lexer and recursive-descent parser for the paper's notation, so its
//! listings can be fed to the system verbatim (modulo 0-based processor
//! ids). The grammar covers everything the pretty-printer
//! (`xdp_ir::pretty`) emits, and round-trips with it:
//!
//! ```text
//! real A[1:16] distribute (BLOCK) onto 4
//! real B[1:16] distribute (CYCLIC) onto 4
//!
//! do i = 1, 16 {
//!   iown(B[i]) : { B[i] -> }
//!   iown(A[i]) : {
//!     A[i] <- B[i]
//!     await(A[i]) : { A[i] = (A[i] + B[i]) }
//!   }
//! }
//! ```
//!
//! Fortran-style `do ... enddo` loop bodies are accepted as well as braced
//! ones, and `//` comments are skipped, so the paper's program fragments
//! parse directly.

//! ```
//! let src = "real A[1:8] distribute (BLOCK) onto 2\n\nA[1:4] ->\n";
//! let program = xdp_lang::parse_program(src).unwrap();
//! assert_eq!(program.decls.len(), 1);
//! assert_eq!(program.stmt_census().sends, 1);
//! ```

pub mod lexer;
pub mod parser;

pub use lexer::{lex, LexError, Token, TokenKind};
pub use parser::{parse_program, ParseError};
