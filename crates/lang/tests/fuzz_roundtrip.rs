//! Property test: randomly generated well-formed programs survive
//! pretty-print -> parse -> pretty-print as a text fixpoint.
//!
//! The program strategies live in `xdp_verify::gen` so every crate
//! property-tests against the same shapes; this file keeps the
//! language-level oracle (the fixpoint) plus named regression tests for
//! cases proptest found historically (the same programs live as `.xdp`
//! seed corpus files under `crates/verify/corpus/`).

use proptest::prelude::*;
use xdp_ir::build as b;
use xdp_ir::{pretty, DimDist, ElemExpr, ElemType, ProcGrid, Program, VarId};
use xdp_verify::gen;

fn assert_fixpoint(p: &Program) {
    let text1 = pretty::program(p);
    let reparsed = xdp_lang::parse_program(&text1)
        .unwrap_or_else(|e| panic!("parse failed: {e}\n---\n{text1}"));
    let text2 = pretty::program(&reparsed);
    assert_eq!(text1, text2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pretty_parse_fixpoint(p in gen::program()) {
        assert_fixpoint(&p);
    }
}

/// Found by proptest 2026-07: two nested `do i` loops shadowing the same
/// loop variable around a self-referencing assignment. The inner loop
/// header used to re-declare `i` in a way the parser round-tripped with
/// different spacing.
#[test]
fn regression_nested_shadowed_do_loop() {
    let mut p = Program::new();
    let grid = ProcGrid::linear(4);
    let a = p.declare(b::array(
        "A",
        ElemType::F64,
        vec![(1, 12)],
        vec![DimDist::Block],
        grid.clone(),
    ));
    p.declare(b::array(
        "B",
        ElemType::C64,
        vec![(1, 12)],
        vec![DimDist::Cyclic],
        grid.clone(),
    ));
    p.declare(b::array(
        "C",
        ElemType::I64,
        vec![(1, 12)],
        vec![DimDist::BlockCyclic(2)],
        grid,
    ));
    let a1 = b::sref(a, vec![b::at(b::c(1))]);
    p.body = vec![b::do_loop(
        "i",
        b::c(1),
        b::c(1),
        vec![b::do_loop(
            "i",
            b::c(1),
            b::c(1),
            vec![b::assign(
                a1.clone(),
                ElemExpr::FromInt(b::mypid()).add(b::val(a1)),
            )],
        )],
    )];
    assert_eq!(a, VarId(0));
    assert_fixpoint(&p);
}

/// The executable generator's output must also be in-language, not just
/// IR-validatable (a handful of seeds; the exhaustive sweep lives in
/// `xdp-verify`'s own tests).
#[test]
fn executable_programs_are_in_language() {
    for seed in [7u64, 8, 9] {
        assert_fixpoint(&gen::executable_program(seed).program);
    }
}
