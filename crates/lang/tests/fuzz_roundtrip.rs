//! Property test: randomly generated well-formed programs survive
//! pretty-print -> parse -> pretty-print as a text fixpoint.

use proptest::prelude::*;
use xdp_ir::build as b;
use xdp_ir::{
    pretty, BoolExpr, CmpOp, DestSet, DimDist, ElemExpr, ElemType, IntExpr, ProcGrid, Program,
    SectionRef, Stmt, Subscript, TransferKind, VarId,
};

const NPROCS: usize = 4;
const NVARS: u32 = 3;
const N: i64 = 12;

fn int_expr(depth: u32) -> BoxedStrategy<IntExpr> {
    let leaf = prop_oneof![
        (1i64..N).prop_map(IntExpr::Const),
        Just(IntExpr::MyPid),
        Just(IntExpr::Var("i".into())),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = int_expr(depth - 1);
    prop_oneof![
        4 => leaf,
        1 => (sub.clone(), sub.clone()).prop_map(|(a, b2)| a.add(b2)),
        1 => (sub.clone(), sub).prop_map(|(a, b2)| a.mul(b2)),
    ]
    .boxed()
}

fn subscript() -> BoxedStrategy<Subscript> {
    prop_oneof![
        2 => int_expr(1).prop_map(Subscript::Point),
        1 => Just(Subscript::All),
        1 => (1i64..N / 2, 1i64..N, 1i64..3).prop_map(|(lo, hi, st)| {
            b::span_st(b::c(lo), b::c(lo + hi % (N - lo)), b::c(st))
        }),
    ]
    .boxed()
}

fn section_ref() -> BoxedStrategy<SectionRef> {
    (0..NVARS, subscript())
        .prop_map(|(v, s)| SectionRef::new(VarId(v), vec![s]))
        .boxed()
}

fn bool_expr(depth: u32) -> BoxedStrategy<BoolExpr> {
    let leaf = prop_oneof![
        section_ref().prop_map(BoolExpr::Iown),
        section_ref().prop_map(BoolExpr::Accessible),
        section_ref().prop_map(BoolExpr::Await),
        (int_expr(1), int_expr(1)).prop_map(|(a, b2)| BoolExpr::Cmp(CmpOp::Le, a, b2)),
        (int_expr(1), int_expr(1)).prop_map(|(a, b2)| BoolExpr::Cmp(CmpOp::Eq, a, b2)),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = bool_expr(depth - 1);
    prop_oneof![
        3 => leaf,
        1 => (sub.clone(), sub.clone()).prop_map(|(a, b2)| a.and(b2)),
        1 => sub.prop_map(|a| BoolExpr::Not(Box::new(a))),
    ]
    .boxed()
}

fn elem_expr(depth: u32) -> BoxedStrategy<ElemExpr> {
    let leaf = prop_oneof![
        section_ref().prop_map(ElemExpr::Ref),
        (0i64..100).prop_map(|v| ElemExpr::LitF(v as f64 / 4.0)),
        (0i64..100).prop_map(ElemExpr::LitI),
        int_expr(1).prop_map(ElemExpr::FromInt),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = elem_expr(depth - 1);
    prop_oneof![
        3 => leaf,
        1 => (sub.clone(), sub).prop_map(|(a, b2)| a.add(b2)),
    ]
    .boxed()
}

fn stmt(depth: u32) -> BoxedStrategy<Stmt> {
    let leaf = prop_oneof![
        (section_ref(), elem_expr(1)).prop_map(|(t, r)| b::assign(t, r)),
        section_ref().prop_map(b::send),
        section_ref().prop_map(b::send_own),
        section_ref().prop_map(b::send_own_val),
        (section_ref(), int_expr(1)).prop_map(|(s, e)| b::send_salted(s, e)),
        (section_ref(), 0i64..NPROCS as i64).prop_map(|(s, q)| Stmt::Send {
            sec: s,
            kind: TransferKind::Value,
            dest: DestSet::Pids(vec![IntExpr::Const(q)]),
            salt: None,
        }),
        (section_ref(), section_ref()).prop_map(|(t, n)| b::recv_val(t, n)),
        section_ref().prop_map(b::recv_own),
        section_ref().prop_map(b::recv_own_val),
        section_ref().prop_map(|s| b::kernel("fft1d", vec![s])),
        Just(Stmt::Barrier),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = stmt(depth - 1);
    prop_oneof![
        4 => leaf,
        1 => (bool_expr(1), prop::collection::vec(sub.clone(), 1..3))
            .prop_map(|(rule, body)| b::guarded(rule, body)),
        1 => (int_expr(0), prop::collection::vec(sub, 1..3))
            .prop_map(|(hi, body)| b::do_loop("i", b::c(1), hi, body)),
    ]
    .boxed()
}

fn program() -> BoxedStrategy<Program> {
    prop::collection::vec(stmt(2), 1..6)
        .prop_map(|body| {
            let mut p = Program::new();
            let grid = ProcGrid::linear(NPROCS);
            p.declare(b::array(
                "A",
                ElemType::F64,
                vec![(1, N)],
                vec![DimDist::Block],
                grid.clone(),
            ));
            p.declare(b::array(
                "B",
                ElemType::C64,
                vec![(1, N)],
                vec![DimDist::Cyclic],
                grid.clone(),
            ));
            p.declare(b::array(
                "C",
                ElemType::I64,
                vec![(1, N)],
                vec![DimDist::BlockCyclic(2)],
                grid,
            ));
            p.body = body;
            p
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pretty_parse_fixpoint(p in program()) {
        let text1 = pretty::program(&p);
        let reparsed = xdp_lang::parse_program(&text1)
            .unwrap_or_else(|e| panic!("parse failed: {e}\n---\n{text1}"));
        let text2 = pretty::program(&reparsed);
        prop_assert_eq!(text1, text2);
    }
}
