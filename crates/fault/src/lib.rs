//! # xdp-fault — deterministic fault injection for the XDP transports
//!
//! The paper's operational rules assume the 1993 multicomputer's guarantee
//! that every initiated send eventually pairs with its blocking receive.
//! A production-scale runtime cannot: links drop, delay, duplicate, and
//! reorder messages. This crate supplies the two halves the executors need
//! to keep XDP's semantics on an unreliable transport:
//!
//! * a **fault plan** ([`FaultPlan`]) — per-link drop / duplicate / delay /
//!   reorder probabilities plus the retry policy, parseable from the CLI's
//!   `--faults` spec;
//! * a **deterministic injector** ([`Injector`]) — every decision is a pure
//!   function of `(seed, src, seq, attempt)`, so a replay with the same
//!   seed makes the same decisions regardless of thread interleaving or
//!   executor backend;
//! * the **delivery taxonomy** ([`RecvFailure`], [`FaultStats`],
//!   [`FaultEvent`]) shared by `ThreadNet` and `SimNet`: named diagnoses
//!   (lost vs. late vs. truly deadlocked), counters, and the retry /
//!   drop / dup-suppressed events the tracer turns into `TraceKind`s.
//!
//! The reliable-delivery protocol itself (sequence numbers, receiver-side
//! dedup, ack-on-claim, exponential backoff) lives in the transports — it
//! needs their locks and clocks — but both implement the same contract:
//! with `drop < 1` and enough retries, a faulty run delivers exactly the
//! multiset of messages a fault-free run delivers.

pub mod inject;
pub mod plan;
pub mod stats;

pub use inject::{Decision, Injector};
pub use plan::{FaultPlan, LinkFault, PlanParseError};
pub use stats::{FaultEvent, FaultEventKind, FaultStats};

/// Why a receive did not return a message: the named diagnosis the
/// executors surface instead of a blanket "deadlock".
#[derive(Clone, PartialEq, Debug)]
pub enum RecvFailure {
    /// The deadline elapsed with no eligible message — the message may be
    /// late, still retrying, or the sender never sent it.
    Timeout,
    /// Every retry of the only matching message was dropped: the message
    /// is permanently lost (dead-lettered after `attempts` transmissions).
    Lost {
        /// Transmission attempts made before giving up.
        attempts: u32,
    },
}

impl std::fmt::Display for RecvFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvFailure::Timeout => write!(f, "timed out"),
            RecvFailure::Lost { attempts } => {
                write!(f, "permanently lost after {attempts} attempts")
            }
        }
    }
}
