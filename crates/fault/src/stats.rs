//! Counters and events shared by both fault-injecting transports.

/// Aggregate fault/delivery counters for one run.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct FaultStats {
    /// Transmission attempts dropped by injection.
    pub injected_drops: u64,
    /// Duplicate copies injected.
    pub injected_dups: u64,
    /// Attempts delayed by injection.
    pub injected_delays: u64,
    /// Attempts reordered past queued traffic.
    pub injected_reorders: u64,
    /// Retransmissions performed by the delivery layer.
    pub retries: u64,
    /// Duplicate copies suppressed by receiver-side dedup.
    pub dup_suppressed: u64,
    /// Messages dead-lettered after exhausting retries.
    pub lost: u64,
}

impl FaultStats {
    /// Did injection perturb this run at all?
    pub fn any_injected(&self) -> bool {
        self.injected_drops > 0
            || self.injected_dups > 0
            || self.injected_delays > 0
            || self.injected_reorders > 0
    }

    /// One-line human summary for CLI / experiment output.
    pub fn summary(&self) -> String {
        format!(
            "drops {} dups {} delays {} reorders {} | retries {} dup-suppressed {} lost {}",
            self.injected_drops,
            self.injected_dups,
            self.injected_delays,
            self.injected_reorders,
            self.retries,
            self.dup_suppressed,
            self.lost
        )
    }
}

/// What a single fault event was.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum FaultEventKind {
    /// The delivery layer retransmitted (this is transmission `attempt`,
    /// 0-based; the original send was attempt 0).
    Retry { attempt: u32 },
    /// Injection dropped a transmission attempt.
    DropInjected,
    /// Injection added a duplicate copy.
    DupInjected,
    /// Receiver-side dedup suppressed a duplicate.
    DupSuppressed,
    /// The message was dead-lettered after `attempts` transmissions.
    Lost { attempts: u32 },
}

/// One fault event, timestamped in the backend's time units, attributed to
/// the sending processor and the message's rendezvous tag.
#[derive(Clone, PartialEq, Debug)]
pub struct FaultEvent {
    /// Event time (wall µs threaded, virtual units simulated).
    pub t: f64,
    pub kind: FaultEventKind,
    /// Sending processor.
    pub src: usize,
    /// Per-sender sequence number (1-based).
    pub seq: u64,
    /// Rendezvous tag, rendered (`var@sec` form).
    pub tag: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_mentions_every_counter() {
        let s = FaultStats {
            injected_drops: 1,
            injected_dups: 2,
            injected_delays: 3,
            injected_reorders: 4,
            retries: 5,
            dup_suppressed: 6,
            lost: 7,
        };
        let line = s.summary();
        for n in ["1", "2", "3", "4", "5", "6", "7"] {
            assert!(line.contains(n), "summary missing {n}: {line}");
        }
        assert!(s.any_injected());
        assert!(!FaultStats::default().any_injected());
    }
}
