//! Fault plans: what the network does to messages, and the retry policy
//! that makes delivery reliable anyway.

use std::collections::HashMap;

/// Per-link fault probabilities. All probabilities are in `[0, 1]`.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct LinkFault {
    /// Probability a transmission attempt is dropped on the wire.
    pub drop: f64,
    /// Probability a delivered attempt is duplicated (a second copy is
    /// injected; receiver-side dedup must suppress it).
    pub dup: f64,
    /// Probability a delivered attempt is reordered past queued traffic.
    pub reorder: f64,
    /// Probability a delivered attempt is delayed by [`LinkFault::delay`].
    pub delay_p: f64,
    /// Extra transit time for delayed attempts, in the backend's time
    /// units (wall microseconds threaded, virtual units simulated).
    pub delay: f64,
}

impl LinkFault {
    /// No faults on this link.
    pub fn none() -> LinkFault {
        LinkFault::default()
    }

    /// Does this link perturb traffic at all?
    pub fn is_active(&self) -> bool {
        self.drop > 0.0 || self.dup > 0.0 || self.reorder > 0.0 || self.delay_p > 0.0
    }
}

/// A whole-network fault plan: the default link behaviour, per-source
/// overrides, targeted permanent kills, and the retry policy.
///
/// Time quantities (`rto`, `delay`) are in the executing backend's units:
/// wall-clock microseconds on `ThreadNet`, virtual time units on `SimNet`.
#[derive(Clone, PartialEq, Debug)]
pub struct FaultPlan {
    /// Seed for every injection decision (see [`crate::Injector`]).
    pub seed: u64,
    /// Faults applied to every link unless overridden.
    pub default: LinkFault,
    /// Per-sending-processor overrides.
    pub per_src: HashMap<usize, LinkFault>,
    /// Permanent kills: `(src, n)` drops *every* attempt of the `n`-th
    /// message (1-based) sent by processor `src` — the injected permanent
    /// loss the delivery layer must diagnose as lost, not deadlocked.
    pub kill: Vec<(usize, u64)>,
    /// Initial retry timeout (time units; see struct docs).
    pub rto: f64,
    /// Backoff multiplier applied to the retry timeout after each attempt.
    pub backoff: f64,
    /// Transmission attempts before a message is dead-lettered
    /// (1 original + `max_retries` retries).
    pub max_retries: u32,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            seed: 0,
            default: LinkFault::none(),
            per_src: HashMap::new(),
            kill: Vec::new(),
            rto: 400.0,
            backoff: 2.0,
            max_retries: 16,
        }
    }
}

/// A malformed `--faults` spec.
#[derive(Clone, PartialEq, Debug)]
pub struct PlanParseError(pub String);

impl std::fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad fault spec: {}", self.0)
    }
}

impl std::error::Error for PlanParseError {}

impl FaultPlan {
    /// The no-fault plan (delivery layer disabled).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Uniform faults on every link with the given seed.
    pub fn uniform(seed: u64, link: LinkFault) -> FaultPlan {
        FaultPlan {
            seed,
            default: link,
            ..FaultPlan::default()
        }
    }

    /// Does this plan perturb traffic at all? Transports bypass the whole
    /// delivery layer when it does not, so `FaultPlan::none()` is free.
    pub fn is_active(&self) -> bool {
        self.default.is_active()
            || self.per_src.values().any(LinkFault::is_active)
            || !self.kill.is_empty()
    }

    /// The fault profile for messages sent by `src`.
    pub fn link(&self, src: usize) -> LinkFault {
        self.per_src.get(&src).copied().unwrap_or(self.default)
    }

    /// Is `(src, seq)` permanently killed?
    pub fn killed(&self, src: usize, seq: u64) -> bool {
        self.kill.iter().any(|&(s, n)| s == src && n == seq)
    }

    /// Cumulative backoff delay before transmission attempt `attempt`
    /// (attempt 0 is the original send: delay 0).
    pub fn retry_delay(&self, attempt: u32) -> f64 {
        let mut total = 0.0;
        let mut step = self.rto;
        for _ in 0..attempt {
            total += step;
            step *= self.backoff;
        }
        total
    }

    /// Parse a CLI spec: comma-separated `key=value` pairs.
    ///
    /// ```text
    /// drop=0.1,dup=0.05,reorder=0.2,delayp=0.1,delay=200,seed=7
    /// rto=400,backoff=2,retries=16
    /// kill=SRC:N     permanently lose the N-th message sent by pid SRC
    ///                (repeatable)
    /// ```
    pub fn parse(spec: &str) -> Result<FaultPlan, PlanParseError> {
        let mut plan = FaultPlan::default();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let Some((key, val)) = part.split_once('=') else {
                return Err(PlanParseError(format!("`{part}` is not key=value")));
            };
            let (key, val) = (key.trim(), val.trim());
            let prob = |v: &str| -> Result<f64, PlanParseError> {
                v.parse::<f64>()
                    .ok()
                    .filter(|p| (0.0..=1.0).contains(p))
                    .ok_or_else(|| PlanParseError(format!("`{key}={v}` is not in [0,1]")))
            };
            let num = |v: &str| -> Result<f64, PlanParseError> {
                v.parse::<f64>()
                    .ok()
                    .filter(|x| *x >= 0.0)
                    .ok_or_else(|| PlanParseError(format!("`{key}={v}` is not a number >= 0")))
            };
            match key {
                "drop" => plan.default.drop = prob(val)?,
                "dup" => plan.default.dup = prob(val)?,
                "reorder" => plan.default.reorder = prob(val)?,
                "delayp" => plan.default.delay_p = prob(val)?,
                "delay" => plan.default.delay = num(val)?,
                "seed" => {
                    plan.seed = val
                        .parse()
                        .map_err(|_| PlanParseError(format!("`seed={val}` is not a u64")))?
                }
                "rto" => plan.rto = num(val)?,
                "backoff" => {
                    plan.backoff = num(val)?;
                    if plan.backoff < 1.0 {
                        return Err(PlanParseError(format!(
                            "`backoff={val}` must be >= 1 (retries must not accelerate)"
                        )));
                    }
                }
                "retries" => {
                    plan.max_retries = val
                        .parse()
                        .map_err(|_| PlanParseError(format!("`retries={val}` is not a u32")))?
                }
                "kill" => {
                    let parsed = val
                        .split_once(':')
                        .and_then(|(s, n)| Some((s.trim().parse().ok()?, n.trim().parse().ok()?)));
                    let Some((src, n)) = parsed else {
                        return Err(PlanParseError(format!(
                            "`kill={val}` must be SRC:N (pid and 1-based message number)"
                        )));
                    };
                    plan.kill.push((src, n));
                }
                other => return Err(PlanParseError(format!("unknown key `{other}`"))),
            }
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip_fields() {
        let p =
            FaultPlan::parse("drop=0.1,dup=0.05,reorder=0.2,delayp=0.5,delay=200,seed=7").unwrap();
        assert_eq!(p.seed, 7);
        assert_eq!(p.default.drop, 0.1);
        assert_eq!(p.default.dup, 0.05);
        assert_eq!(p.default.reorder, 0.2);
        assert_eq!(p.default.delay_p, 0.5);
        assert_eq!(p.default.delay, 200.0);
        assert!(p.is_active());
    }

    #[test]
    fn parse_retry_policy_and_kill() {
        let p = FaultPlan::parse("rto=100,backoff=3,retries=4,kill=2:5,kill=0:1").unwrap();
        assert_eq!(p.rto, 100.0);
        assert_eq!(p.backoff, 3.0);
        assert_eq!(p.max_retries, 4);
        assert!(p.killed(2, 5) && p.killed(0, 1) && !p.killed(1, 1));
        assert!(p.is_active(), "a kill alone activates the delivery layer");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("drop=1.5").is_err());
        assert!(FaultPlan::parse("drop").is_err());
        assert!(FaultPlan::parse("wibble=1").is_err());
        assert!(FaultPlan::parse("kill=zz").is_err());
        assert!(FaultPlan::parse("backoff=0.5").is_err());
    }

    #[test]
    fn empty_spec_is_inactive() {
        let p = FaultPlan::parse("").unwrap();
        assert!(!p.is_active());
        assert_eq!(p, FaultPlan::none());
    }

    #[test]
    fn retry_delay_compounds() {
        let p = FaultPlan::parse("rto=100,backoff=2").unwrap();
        assert_eq!(p.retry_delay(0), 0.0);
        assert_eq!(p.retry_delay(1), 100.0);
        assert_eq!(p.retry_delay(2), 300.0);
        assert_eq!(p.retry_delay(3), 700.0);
    }
}
