//! The deterministic injector: every fault decision is a pure function of
//! `(seed, src, seq, attempt)`.
//!
//! Both transports ask the injector the same question — "what happens to
//! transmission attempt `attempt` of message `(src, seq)`?" — and get the
//! same answer no matter which backend asks, in what order, or from which
//! thread. That is what makes a chaos run replayable: the `ThreadExec`
//! interleaving can differ arbitrarily between runs, but the set of
//! dropped/duplicated/delayed attempts cannot.

use rand_chacha::rand_core::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::plan::FaultPlan;

/// What the network does to one transmission attempt.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Decision {
    /// The attempt never arrives.
    pub drop: bool,
    /// A second copy of the attempt arrives (dedup must suppress it).
    pub dup: bool,
    /// The attempt jumps ahead of already-queued traffic at the receiver.
    pub reorder: bool,
    /// Extra transit time added to the attempt (0 when not delayed).
    pub extra_delay: f64,
}

impl Decision {
    /// Clean delivery: nothing injected.
    pub fn clean() -> Decision {
        Decision {
            drop: false,
            dup: false,
            reorder: false,
            extra_delay: 0.0,
        }
    }
}

/// Deterministic fault oracle for a [`FaultPlan`].
#[derive(Clone, Debug)]
pub struct Injector {
    plan: FaultPlan,
}

impl Injector {
    pub fn new(plan: FaultPlan) -> Injector {
        Injector { plan }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decide the fate of transmission attempt `attempt` (0 = original
    /// send) of the `seq`-th message (1-based) sent by processor `src`.
    pub fn decide(&self, src: usize, seq: u64, attempt: u32) -> Decision {
        if self.plan.killed(src, seq) {
            return Decision {
                drop: true,
                ..Decision::clean()
            };
        }
        let link = self.plan.link(src);
        if !link.is_active() {
            return Decision::clean();
        }
        // One private stream per (src, seq, attempt): mix the coordinates
        // into the seed with distinct odd multipliers (splitmix-style) so
        // neighbouring attempts get unrelated streams.
        let mixed = self
            .plan
            .seed
            .wrapping_add((src as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add(seq.wrapping_mul(0xbf58_476d_1ce4_e5b9))
            .wrapping_add((attempt as u64).wrapping_mul(0x94d0_49bb_1331_11eb));
        let mut rng = ChaCha8Rng::seed_from_u64(mixed);
        let mut coin = |p: f64| -> bool {
            if p <= 0.0 {
                // Still consume a draw so decisions for later fields do not
                // shift when an earlier probability is zero vs. nonzero.
                let _ = rng.next_u64();
                return false;
            }
            (rng.next_u64() as f64 / u64::MAX as f64) < p
        };
        let drop = coin(link.drop);
        let dup = coin(link.dup);
        let reorder = coin(link.reorder);
        let delayed = coin(link.delay_p);
        Decision {
            drop,
            dup: dup && !drop,
            reorder: reorder && !drop,
            extra_delay: if delayed && !drop { link.delay } else { 0.0 },
        }
    }

    /// The first attempt number that is *not* dropped, along with the
    /// decision for it, or `None` if every allowed attempt is dropped
    /// (the message is permanently lost). Used by the simulator, which
    /// can resolve the whole retry chain analytically at post time.
    pub fn first_delivery(&self, src: usize, seq: u64) -> Option<(u32, Decision)> {
        for attempt in 0..=self.plan.max_retries {
            let d = self.decide(src, seq, attempt);
            if !d.drop {
                return Some((attempt, d));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::LinkFault;

    fn chaotic_plan(seed: u64) -> FaultPlan {
        FaultPlan::uniform(
            seed,
            LinkFault {
                drop: 0.3,
                dup: 0.2,
                reorder: 0.2,
                delay_p: 0.5,
                delay: 100.0,
            },
        )
    }

    #[test]
    fn decisions_are_replayable() {
        let a = Injector::new(chaotic_plan(42));
        let b = Injector::new(chaotic_plan(42));
        for src in 0..4 {
            for seq in 1..50 {
                for attempt in 0..3 {
                    assert_eq!(a.decide(src, seq, attempt), b.decide(src, seq, attempt));
                }
            }
        }
    }

    #[test]
    fn seed_changes_decisions() {
        let a = Injector::new(chaotic_plan(1));
        let b = Injector::new(chaotic_plan(2));
        let differs = (0..4)
            .flat_map(|src| (1..100u64).map(move |seq| (src, seq)))
            .any(|(src, seq)| a.decide(src, seq, 0) != b.decide(src, seq, 0));
        assert!(
            differs,
            "different seeds should give different fault patterns"
        );
    }

    #[test]
    fn inactive_link_is_clean() {
        let inj = Injector::new(FaultPlan::none());
        assert_eq!(inj.decide(0, 1, 0), Decision::clean());
        assert_eq!(inj.first_delivery(3, 7), Some((0, Decision::clean())));
    }

    #[test]
    fn killed_messages_never_deliver() {
        let mut plan = FaultPlan::none();
        plan.kill.push((1, 3));
        let inj = Injector::new(plan);
        assert!(inj.decide(1, 3, 0).drop);
        assert!(inj.decide(1, 3, 9).drop);
        assert_eq!(inj.first_delivery(1, 3), None);
        assert_eq!(inj.first_delivery(1, 2), Some((0, Decision::clean())));
    }

    #[test]
    fn drop_rate_roughly_matches_probability() {
        let inj = Injector::new(chaotic_plan(7));
        let n = 2000;
        let drops = (1..=n).filter(|&seq| inj.decide(0, seq, 0).drop).count();
        let rate = drops as f64 / n as f64;
        assert!(
            (rate - 0.3).abs() < 0.05,
            "drop rate {rate} too far from configured 0.3"
        );
    }

    #[test]
    fn dropped_attempts_inject_nothing_else() {
        let inj = Injector::new(chaotic_plan(11));
        for seq in 1..500 {
            let d = inj.decide(2, seq, 0);
            if d.drop {
                assert!(!d.dup && !d.reorder && d.extra_delay == 0.0);
            }
        }
    }
}
