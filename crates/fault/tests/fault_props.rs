//! Property tests for the fault-injection layer: decisions are a pure
//! function of `(seed, src, seq, attempt)` regardless of query order, the
//! spec grammar round-trips, and the retry schedule is sane.

use proptest::prelude::*;
use xdp_fault::{FaultPlan, Injector, LinkFault};

fn arb_link() -> impl Strategy<Value = LinkFault> {
    (
        0.0f64..1.0,
        0.0f64..1.0,
        0.0f64..1.0,
        0.0f64..1.0,
        0.0f64..500.0,
    )
        .prop_map(|(drop, dup, reorder, delay_p, delay)| LinkFault {
            drop,
            dup,
            reorder,
            delay_p,
            delay,
        })
}

proptest! {
    // Replay determinism: the same (seed, src, seq, attempt) gives the
    // same decision no matter how many other decisions were drawn first,
    // in what order, or from which Injector instance. This is what makes
    // a fault run reproducible across thread interleavings.
    #[test]
    fn decisions_are_order_independent(
        seed in any::<u64>(),
        link in arb_link(),
        queries in prop::collection::vec(
            (0usize..8, 1u64..64, 1u32..6), 1..40),
    ) {
        let plan = FaultPlan::uniform(seed, link);
        let inj_a = Injector::new(plan.clone());
        let inj_b = Injector::new(plan);
        let forward: Vec<_> = queries
            .iter()
            .map(|&(src, seq, at)| inj_a.decide(src, seq, at))
            .collect();
        let backward: Vec<_> = queries
            .iter()
            .rev()
            .map(|&(src, seq, at)| inj_b.decide(src, seq, at))
            .collect();
        for (f, b) in forward.iter().zip(backward.iter().rev()) {
            prop_assert_eq!(f, b);
        }
    }

    // A drop never carries secondary faults: the attempt either vanishes
    // or is delivered (possibly duplicated/reordered/delayed), never both.
    #[test]
    fn dropped_attempts_have_no_side_faults(
        seed in any::<u64>(),
        link in arb_link(),
        src in 0usize..8,
        seq in 1u64..64,
        attempt in 1u32..6,
    ) {
        let inj = Injector::new(FaultPlan::uniform(seed, link));
        let d = inj.decide(src, seq, attempt);
        if d.drop {
            prop_assert!(!d.dup && !d.reorder && d.extra_delay == 0.0);
        }
    }

    // first_delivery agrees with the per-attempt decisions: it returns the
    // first non-dropped attempt within the retry budget, or None when
    // every attempt drops.
    #[test]
    fn first_delivery_matches_attempt_chain(
        seed in any::<u64>(),
        drop in 0.0f64..1.0,
        retries in 0u32..6,
        src in 0usize..4,
        seq in 1u64..32,
    ) {
        let mut plan = FaultPlan::uniform(seed, LinkFault { drop, ..LinkFault::default() });
        plan.max_retries = retries;
        let inj = Injector::new(plan.clone());
        let expect = (0..=retries)
            .find(|&a| !inj.decide(src, seq, a).drop);
        match (inj.first_delivery(src, seq), expect) {
            (Some((attempt, d)), Some(want)) => {
                prop_assert_eq!(attempt, want);
                prop_assert!(!d.drop);
            }
            (None, None) => {}
            (got, want) => {
                panic!("first_delivery {got:?}, expected attempt {want:?}");
            }
        }
    }

    // Parse round-trip: formatting a plan's scalar fields back into the
    // spec grammar re-parses to the same plan.
    #[test]
    fn parse_roundtrips(
        seed in any::<u64>(),
        drop in 0.0f64..1.0,
        dup in 0.0f64..1.0,
        reorder in 0.0f64..1.0,
        delayp in 0.0f64..1.0,
        delay in 0.0f64..1000.0,
        rto in 0.0f64..10_000.0,
        backoff in 1.0f64..8.0,
        retries in 0u32..64,
        kills in prop::collection::vec((0usize..8, 1u64..64), 0..4),
    ) {
        let mut spec = format!(
            "seed={seed},drop={drop},dup={dup},reorder={reorder},\
             delayp={delayp},delay={delay},rto={rto},backoff={backoff},\
             retries={retries}"
        );
        for (s, n) in &kills {
            spec.push_str(&format!(",kill={s}:{n}"));
        }
        let p = FaultPlan::parse(&spec).unwrap();
        prop_assert_eq!(p.seed, seed);
        prop_assert_eq!(p.default.drop, drop);
        prop_assert_eq!(p.default.dup, dup);
        prop_assert_eq!(p.default.reorder, reorder);
        prop_assert_eq!(p.default.delay_p, delayp);
        prop_assert_eq!(p.default.delay, delay);
        prop_assert_eq!(p.rto, rto);
        prop_assert_eq!(p.backoff, backoff);
        prop_assert_eq!(p.max_retries, retries);
        prop_assert_eq!(&p.kill, &kills);
    }

    // The retry schedule never accelerates and grows with each attempt.
    #[test]
    fn retry_delays_are_monotone(
        rto in 1.0f64..10_000.0,
        backoff in 1.0f64..8.0,
        attempt in 1u32..12,
    ) {
        let mut plan = FaultPlan::none();
        plan.rto = rto;
        plan.backoff = backoff;
        prop_assert_eq!(plan.retry_delay(0), 0.0);
        prop_assert!(plan.retry_delay(attempt) > plan.retry_delay(attempt - 1));
    }
}
