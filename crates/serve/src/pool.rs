//! The batched concurrent executor.
//!
//! A [`ServePool`] owns the compile cache and a fixed worker count.
//! [`run_batch`](ServePool::run_batch) fans a slice of requests across a
//! scoped thread pool: workers claim requests through an atomic cursor,
//! resolve each through the shared cache (the only lock in the system,
//! held just long enough to look up or compile), then execute on a
//! **private** [`SimExec`] instance. Per-run isolation is structural —
//! nothing but the immutable `Arc<Program>` is shared between runs — so
//! a request's [`Fingerprint`] is bit-identical whether it ran solo,
//! sequentially, or interleaved with the rest of a batch. The
//! conformance tests assert exactly that equality.
//!
//! Every pool also owns a [`MetricsRegistry`]: each request stamps its
//! latency decomposition (queue → resolve → execute), the cache counters
//! are mirrored as metric counters, and run reports fold their network
//! and fault totals in (see [`crate::metrics_view`]). An optional
//! [`FlightRecorder`] keeps bounded per-worker rings of recent requests
//! and dumps them when a request errors or crosses the armed slow
//! threshold.

use crate::cache::{CachedProgram, CompileCache, ServeError};
use crate::metrics_view::ServeMetrics;
use crate::registry::Registry;
use crate::spec::RequestSpec;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use xdp_compiler::Backend;
use xdp_core::{
    AsyncConfig, AsyncExec, ExecReport, ProcReport, Processor, SimConfig, SimExec, ThreadReport,
};
use xdp_ir::VarId;
use xdp_metrics::{FlightConfig, FlightRecord, FlightRecorder, MetricsRegistry, MetricsSnapshot};
use xdp_runtime::Value;
use xdp_trace::{Trace, TraceConfig};
use xdp_verify::Fingerprint;

/// One executed request's observable outcome.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Content hash of the request spec.
    pub key: u64,
    /// Did the compile cache serve this request without recompiling?
    pub cache_hit: bool,
    /// Simulated completion time of the run.
    pub virtual_time: f64,
    /// Wire messages during the run.
    pub messages: u64,
    /// The full observable fingerprint (memory + movement + states).
    pub fingerprint: Fingerprint,
    /// End-to-end wall latency of the request, microseconds (measured
    /// from enqueue when the request came through a batch).
    pub latency_us: u64,
    /// Wall time spent inside the compile pipeline (0 on a hit).
    pub compile_us: u64,
    /// Time spent queued before a worker claimed the request (0 outside
    /// `run_batch`).
    pub queue_us: u64,
    /// Time spent resolving through the cache — lock wait plus lookup,
    /// plus the compile itself on a miss.
    pub resolve_us: u64,
    /// Time spent executing on the private simulator.
    pub execute_us: u64,
}

/// Which machine executes requests.
///
/// * [`Sim`](PoolMachine::Sim) (default) — the deterministic virtual-time
///   simulator: `virtual_time` is the modelled completion time and runs
///   are bit-reproducible.
/// * [`Tasks`](PoolMachine::Tasks) — the async task-per-processor
///   executor: real parallel execution that scales to thousands of
///   simulated processors per request; `virtual_time` reports wall-clock
///   microseconds. Final memory, data movement, and message counts are
///   conformant with the simulator (the fingerprint's state digest is
///   wall-clock-ordered and therefore its own, weaker check).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PoolMachine {
    #[default]
    Sim,
    Tasks,
}

/// The serving pool: shared cache + registry behind one lock each, a
/// worker count for batch fan-out, and the pool's telemetry.
pub struct ServePool {
    workers: usize,
    machine: PoolMachine,
    cache: Mutex<CompileCache>,
    registry: Mutex<Registry>,
    metrics: ServeMetrics,
    flight: Option<FlightRecorder>,
}

impl ServePool {
    /// A pool with `workers` batch threads (min 1) and a compile cache
    /// bounded to `capacity` programs.
    pub fn new(workers: usize, capacity: usize) -> ServePool {
        ServePool {
            workers: workers.max(1),
            machine: PoolMachine::Sim,
            cache: Mutex::new(CompileCache::new(capacity)),
            registry: Mutex::new(Registry::new()),
            metrics: ServeMetrics::new(Arc::new(MetricsRegistry::new())),
            flight: None,
        }
    }

    /// Attach a flight recorder (builder style).
    pub fn with_flight(mut self, cfg: FlightConfig) -> ServePool {
        self.flight = Some(FlightRecorder::new(cfg));
        self
    }

    /// Select the execution machine (builder style).
    pub fn with_machine(mut self, machine: PoolMachine) -> ServePool {
        self.machine = machine;
        self
    }

    /// The pool's execution machine.
    pub fn machine(&self) -> PoolMachine {
        self.machine
    }

    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The pool's metrics registry (shared; snapshot or export at will).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        self.metrics.registry()
    }

    /// One consistent snapshot of every pool metric.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.registry().snapshot()
    }

    /// The attached flight recorder, if any.
    pub fn flight(&self) -> Option<&FlightRecorder> {
        self.flight.as_ref()
    }

    /// (Re)arm or disarm the flight recorder's slow-request trigger.
    /// No-op when no recorder is attached.
    pub fn set_slow_us(&self, us: Option<u64>) {
        if let Some(fr) = &self.flight {
            fr.set_slow_us(us);
        }
    }

    /// Snapshot of the cache counters.
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.cache.lock().unwrap().stats()
    }

    /// Run one closure with the cache locked (registration, listings).
    pub fn with_cache<T>(&self, f: impl FnOnce(&mut CompileCache) -> T) -> T {
        f(&mut self.cache.lock().unwrap())
    }

    /// Run one closure with the registry and cache locked together.
    pub fn with_registry<T>(&self, f: impl FnOnce(&mut Registry, &mut CompileCache) -> T) -> T {
        let mut reg = self.registry.lock().unwrap();
        let mut cache = self.cache.lock().unwrap();
        f(&mut reg, &mut cache)
    }

    /// Serve one request: resolve through the cache, execute in
    /// isolation.
    pub fn run_one(&self, spec: &RequestSpec) -> Result<RunOutcome, ServeError> {
        self.serve(spec, None, 0, Instant::now(), 0)
    }

    /// Serve a registered program by name.
    pub fn run_named(&self, name: &str) -> Result<RunOutcome, ServeError> {
        let spec = self
            .registry
            .lock()
            .unwrap()
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::Unknown(name.to_string()))?;
        self.serve(&spec, Some(name), 0, Instant::now(), 0)
    }

    /// Run a whole batch concurrently over the worker pool. Results come
    /// back in request order regardless of which worker served which
    /// request or in what interleaving.
    pub fn run_batch(&self, specs: &[RequestSpec]) -> Vec<Result<RunOutcome, ServeError>> {
        let mut slots: Vec<Option<Result<RunOutcome, ServeError>>> = Vec::new();
        slots.resize_with(specs.len(), || None);
        let slots = Mutex::new(slots);
        let cursor = AtomicUsize::new(0);
        let nworkers = self.workers.min(specs.len().max(1));
        let enqueued = Instant::now();
        self.metrics.queue_depth.set(specs.len() as i64);
        std::thread::scope(|scope| {
            for w in 0..nworkers {
                let cursor = &cursor;
                let slots = &slots;
                scope.spawn(move || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= specs.len() {
                        break;
                    }
                    let queue_us = enqueued.elapsed().as_micros() as u64;
                    self.metrics.queue_depth.sub(1);
                    let result = self.serve(&specs[i], None, w, enqueued, queue_us);
                    slots.lock().unwrap()[i] = Some(result);
                });
            }
        });
        self.metrics.queue_depth.set(0);
        slots
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|slot| slot.expect("every batch slot is filled"))
            .collect()
    }

    /// The one serving path behind `run_one`, `run_named`, and every
    /// batch worker: resolve, execute, stamp the latency decomposition,
    /// fold telemetry, feed the flight recorder.
    fn serve(
        &self,
        spec: &RequestSpec,
        name: Option<&str>,
        worker: usize,
        enqueued: Instant,
        queue_us: u64,
    ) -> Result<RunOutcome, ServeError> {
        let resolve_start = Instant::now();
        let resolved = {
            let mut cache = self.cache.lock().unwrap();
            let before = cache.stats();
            let resolved = cache.get_or_compile(spec);
            self.metrics.fold_cache_delta(before, cache.stats());
            resolved
        };
        let resolve_us = resolve_start.elapsed().as_micros() as u64;
        let (cached, hit) = match resolved {
            Ok(pair) => pair,
            Err(e) => {
                return Err(self.fail(e, spec, name, worker, queue_us, resolve_us, 0, enqueued))
            }
        };
        let compile_us = if hit { 0 } else { cached.compile_us };
        if !hit {
            self.metrics.compile_time.observe(compile_us);
            self.metrics.fold_compile(&cached.compiled.trace);
        }

        let exec_start = Instant::now();
        self.metrics.in_flight.add(1);
        let executed = execute(&cached, self.machine);
        self.metrics.in_flight.sub(1);
        let execute_us = exec_start.elapsed().as_micros() as u64;
        let (mut outcome, report) = match executed {
            Ok(pair) => pair,
            Err(e) => {
                return Err(self.fail(
                    e, spec, name, worker, queue_us, resolve_us, execute_us, enqueued,
                ))
            }
        };
        outcome.cache_hit = hit;
        outcome.compile_us = compile_us;
        outcome.queue_us = queue_us;
        outcome.resolve_us = resolve_us;
        outcome.execute_us = execute_us;
        outcome.latency_us = enqueued.elapsed().as_micros() as u64;

        self.metrics.req_ok.inc();
        self.metrics.latency.observe(outcome.latency_us);
        self.metrics.queue.observe(queue_us);
        self.metrics.resolve.observe(resolve_us);
        self.metrics.execute.observe(execute_us);
        let backend = cached.compiled.backend;
        self.metrics
            .latency_for(backend)
            .observe(outcome.latency_us);
        self.metrics.execute_for(backend).observe(execute_us);
        self.metrics.fold_report(&report);
        self.record_flight(
            outcome.key,
            name,
            worker,
            queue_us,
            resolve_us,
            execute_us,
            outcome.latency_us,
            None,
            report.trace,
        );
        Ok(outcome)
    }

    /// Failure path: count the error, feed the recorder, hand the error
    /// back.
    #[allow(clippy::too_many_arguments)]
    fn fail(
        &self,
        e: ServeError,
        spec: &RequestSpec,
        name: Option<&str>,
        worker: usize,
        queue_us: u64,
        resolve_us: u64,
        execute_us: u64,
        enqueued: Instant,
    ) -> ServeError {
        self.metrics.req_err.inc();
        self.record_flight(
            spec.content_hash(),
            name,
            worker,
            queue_us,
            resolve_us,
            execute_us,
            enqueued.elapsed().as_micros() as u64,
            Some(e.to_string()),
            Trace::default(),
        );
        e
    }

    #[allow(clippy::too_many_arguments)]
    fn record_flight(
        &self,
        key: u64,
        name: Option<&str>,
        worker: usize,
        queue_us: u64,
        compile_us: u64,
        execute_us: u64,
        latency_us: u64,
        error: Option<String>,
        trace: Trace,
    ) {
        let Some(fr) = &self.flight else { return };
        let before = fr.dumps();
        match fr.observe(FlightRecord {
            worker,
            key,
            name: name.map(str::to_string),
            queue_us,
            compile_us,
            execute_us,
            latency_us,
            error,
            trace,
        }) {
            Ok(_) => {
                self.metrics.flight_dumps.add(fr.dumps() - before);
            }
            Err(e) => eprintln!("flight recorder: {e}"),
        }
        let suppressed = fr.suppressed();
        let seen = self.metrics.flight_suppressed.get();
        if suppressed > seen {
            self.metrics.flight_suppressed.add(suppressed - seen);
        }
    }
}

/// Deterministic initial value for declaration ordinal `o` at `idx` —
/// the same convention as `xdp_verify`'s differential driver: integer-
/// valued (dyadic-exact arithmetic downstream) and index-dependent
/// (permutations are observable).
fn init_value(o: usize, idx: &[i64]) -> Value {
    let mut v = (o as i64 + 1) * 1000;
    for (k, x) in idx.iter().enumerate() {
        v += x * (k as i64 + 1);
    }
    Value::F64(v as f64)
}

/// Execute a cached program on a fresh, private machine instance.
/// Returns the outcome plus the full run report (the caller folds its
/// network/fault counters into metrics and may hand its trace to the
/// flight recorder without cloning).
fn execute(
    cached: &Arc<CachedProgram>,
    machine: PoolMachine,
) -> Result<(RunOutcome, ExecReport), ServeError> {
    let compiled = &cached.compiled;
    match machine {
        PoolMachine::Sim => {
            let mut cfg = SimConfig::new(compiled.nprocs).with_trace(TraceConfig::full());
            if let Some(b) = compiled.mem_budget {
                cfg.cost.mem_budget = Some(b);
            }
            if cached.faults.is_active() {
                cfg = cfg.with_faults(cached.faults.clone());
            }
            match compiled.backend {
                Backend::Interp => finish_run(
                    cached,
                    SimExec::new(compiled.program.clone(), xdp_apps::app_kernels(), cfg),
                ),
                Backend::Vm => finish_run(
                    cached,
                    xdp_vm::VmExec::sim(compiled.program.clone(), xdp_apps::app_kernels(), cfg),
                ),
            }
        }
        PoolMachine::Tasks => {
            let mut cfg = AsyncConfig::new(compiled.nprocs).with_trace(TraceConfig::full());
            if cached.faults.is_active() {
                cfg = cfg.with_faults(cached.faults.clone());
            }
            match compiled.backend {
                Backend::Interp => finish_run_tasks(
                    cached,
                    AsyncExec::new(compiled.program.clone(), xdp_apps::app_kernels(), cfg),
                ),
                Backend::Vm => finish_run_tasks(
                    cached,
                    xdp_vm::VmExec::tasks(compiled.program.clone(), xdp_apps::app_kernels(), cfg),
                ),
            }
        }
    }
}

/// Initialize, run, and fingerprint — identical for either backend (the
/// VM's conformance contract is what makes the cache-key split the only
/// observable difference).
fn finish_run<P: Processor>(
    cached: &Arc<CachedProgram>,
    mut exec: SimExec<P>,
) -> Result<(RunOutcome, ExecReport), ServeError> {
    let compiled = &cached.compiled;
    let decls: Vec<(usize, String)> = compiled
        .program
        .decls
        .iter()
        .enumerate()
        .map(|(o, d)| (o, d.name.clone()))
        .collect();
    for (o, _) in &decls {
        let o = *o;
        exec.init_exclusive(VarId(o as u32), move |idx| init_value(o, idx));
    }
    let report = exec.run().map_err(|e| ServeError::Run(e.to_string()))?;
    let mut fp = Fingerprint::default();
    for (o, name) in &decls {
        fp.record_memory(name, &exec.gather(VarId(*o as u32)));
    }
    fp.record_trace(&report.trace);
    fp.messages = report.net.messages;
    let outcome = RunOutcome {
        key: cached.key,
        cache_hit: false,
        virtual_time: report.virtual_time,
        messages: report.net.messages,
        fingerprint: fp,
        latency_us: 0,
        compile_us: 0,
        queue_us: 0,
        resolve_us: 0,
        execute_us: 0,
    };
    Ok((outcome, report))
}

/// [`finish_run`] for the async machine: same init/fingerprint protocol,
/// with the [`ThreadReport`] lifted into an [`ExecReport`] whose
/// `virtual_time` is wall-clock microseconds (per-processor virtual
/// clocks don't exist on a real-parallel machine).
fn finish_run_tasks<P: Processor>(
    cached: &Arc<CachedProgram>,
    mut exec: AsyncExec<P>,
) -> Result<(RunOutcome, ExecReport), ServeError> {
    let compiled = &cached.compiled;
    let decls: Vec<(usize, String)> = compiled
        .program
        .decls
        .iter()
        .enumerate()
        .map(|(o, d)| (o, d.name.clone()))
        .collect();
    for (o, _) in &decls {
        let o = *o;
        exec.init_exclusive(VarId(o as u32), move |idx| init_value(o, idx));
    }
    let report: ThreadReport = exec.run().map_err(|e| ServeError::Run(e.to_string()))?;
    let report = ExecReport {
        nprocs: compiled.nprocs,
        virtual_time: report.wall.as_secs_f64() * 1e6,
        procs: report
            .symtab
            .into_iter()
            .map(|symtab| ProcReport {
                symtab,
                ..ProcReport::default()
            })
            .collect(),
        net: report.net,
        trace: report.trace,
        faults: report.faults,
    };
    let mut fp = Fingerprint::default();
    for (o, name) in &decls {
        fp.record_memory(name, &exec.gather(VarId(*o as u32)));
    }
    fp.record_trace(&report.trace);
    fp.messages = report.net.messages;
    let outcome = RunOutcome {
        key: cached.key,
        cache_hit: false,
        virtual_time: report.virtual_time,
        messages: report.net.messages,
        fingerprint: fp,
        latency_us: 0,
        compile_us: 0,
        queue_us: 0,
        resolve_us: 0,
        execute_us: 0,
    };
    Ok((outcome, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdp_compiler::CompileOptions;

    fn spec(n: i64) -> RequestSpec {
        RequestSpec::new(format!(
            "real A[1:{n}] distribute (BLOCK) onto 2\n\
             do i = 1, {n}\n  iown(A[i]) : {{ A[i] = A[i] + 1.0 }}\nenddo\n"
        ))
    }

    #[test]
    fn run_one_hits_after_first_miss() {
        let pool = ServePool::new(2, 8);
        let a = pool.run_one(&spec(8)).unwrap();
        assert!(!a.cache_hit);
        assert!(a.compile_us > 0, "miss records real compile time");
        let b = pool.run_one(&spec(8)).unwrap();
        assert!(b.cache_hit);
        assert_eq!(b.compile_us, 0, "hit spends no compile time");
        assert_eq!(a.fingerprint, b.fingerprint, "same program, same outcome");
        assert_eq!(pool.cache_stats().compiles, 1);
    }

    #[test]
    fn batch_results_keep_request_order_and_match_solo() {
        let pool = ServePool::new(4, 8);
        let specs: Vec<RequestSpec> = vec![
            spec(8),
            spec(12),
            spec(8).with_opts(CompileOptions::default().optimized()),
            spec(8),
            spec(12),
        ];
        let solo: Vec<RunOutcome> = specs
            .iter()
            .map(|s| ServePool::new(1, 8).run_one(s).unwrap())
            .collect();
        let batch = pool.run_batch(&specs);
        assert_eq!(batch.len(), specs.len());
        for (i, (b, s)) in batch.iter().zip(&solo).enumerate() {
            let b = b.as_ref().unwrap();
            assert_eq!(b.key, specs[i].content_hash(), "slot {i} keeps its spec");
            assert_eq!(
                b.fingerprint, s.fingerprint,
                "slot {i}: batch must match solo"
            );
            assert_eq!(b.virtual_time, s.virtual_time);
        }
        // 3 distinct specs compiled once each, 2 served warm.
        assert_eq!(pool.cache_stats().compiles, 3);
        assert_eq!(pool.cache_stats().hits, 2);
    }

    #[test]
    fn batch_reports_bad_requests_in_place() {
        let pool = ServePool::new(2, 8);
        let specs = vec![
            spec(8),
            RequestSpec::new("real A[1:4] distribute (WAT) onto 2\n"),
        ];
        let out = pool.run_batch(&specs);
        assert!(out[0].is_ok());
        assert!(matches!(
            out[1].as_ref().unwrap_err(),
            ServeError::Compile(_)
        ));
        let snap = pool.metrics_snapshot();
        assert_eq!(
            snap.counter("xdp_requests_total", &[("outcome", "ok")]),
            Some(1)
        );
        assert_eq!(
            snap.counter("xdp_requests_total", &[("outcome", "error")]),
            Some(1)
        );
    }

    #[test]
    fn vm_backend_keys_separately_but_matches_interp_exactly() {
        let pool = ServePool::new(2, 8);
        let interp = spec(8);
        let vm = spec(8).with_opts(CompileOptions::default().with_backend(Backend::Vm));
        assert_ne!(interp.content_hash(), vm.content_hash());

        let a = pool.run_one(&interp).unwrap();
        let b = pool.run_one(&vm).unwrap();
        assert!(!b.cache_hit, "different backend, different cache entry");
        assert_eq!(a.fingerprint, b.fingerprint, "backends are conformant");
        assert_eq!(a.virtual_time, b.virtual_time);
        assert_eq!(pool.cache_stats().compiles, 2);

        let snap = pool.metrics_snapshot();
        for backend in ["interp", "vm"] {
            let h = snap
                .histogram("xdp_request_latency_us", &[("backend", backend)])
                .unwrap();
            assert_eq!(h.count, 1, "one {backend} request observed");
            let h = snap
                .histogram("xdp_request_execute_us", &[("backend", backend)])
                .unwrap();
            assert_eq!(h.count, 1);
        }
    }

    #[test]
    fn tasks_machine_is_conformant_with_the_simulator() {
        let sim = ServePool::new(2, 8);
        let tasks = ServePool::new(2, 8).with_machine(PoolMachine::Tasks);
        assert_eq!(tasks.machine(), PoolMachine::Tasks);
        for s in [
            spec(8),
            spec(8).with_opts(CompileOptions::default().with_backend(Backend::Vm)),
        ] {
            let a = sim.run_one(&s).unwrap();
            let b = tasks.run_one(&s).unwrap();
            // Memory, movement, and traffic must agree; the state digest
            // and virtual_time are timing-dependent on a real-parallel
            // machine.
            assert_eq!(a.fingerprint.memory_all(), b.fingerprint.memory_all());
            assert_eq!(a.fingerprint.movement, b.fingerprint.movement);
            assert_eq!(a.messages, b.messages);
        }
    }

    #[test]
    fn named_runs_resolve_through_registry() {
        let pool = ServePool::new(2, 8);
        pool.with_registry(|reg, cache| reg.register("adder", spec(8), cache))
            .unwrap();
        let out = pool.run_named("adder").unwrap();
        assert!(out.cache_hit, "registration pre-warms the cache");
        assert!(matches!(
            pool.run_named("nope"),
            Err(ServeError::Unknown(_))
        ));
    }

    #[test]
    fn metrics_mirror_the_serving_path() {
        let pool = ServePool::new(2, 2);
        pool.run_one(&spec(8)).unwrap();
        pool.run_one(&spec(8)).unwrap();
        pool.run_one(&spec(12)).unwrap();
        pool.run_one(&spec(16)).unwrap(); // capacity 2: evicts the LRU
        let snap = pool.metrics_snapshot();
        let stats = pool.cache_stats();
        assert_eq!(
            snap.counter("xdp_cache_hits_total", &[]),
            Some(stats.hits),
            "metric counters mirror cache stats"
        );
        assert_eq!(
            snap.counter("xdp_cache_misses_total", &[]),
            Some(stats.misses)
        );
        assert_eq!(
            snap.counter("xdp_cache_evictions_total", &[]),
            Some(stats.evictions)
        );
        assert!(stats.evictions > 0, "capacity 2 with 3 distinct must evict");
        assert_eq!(
            snap.counter("xdp_cache_compiles_total", &[]),
            Some(stats.compiles)
        );
        let lat = snap.histogram("xdp_request_latency_us", &[]).unwrap();
        assert_eq!(lat.count, 4, "one latency observation per ok request");
        let compile = snap.histogram("xdp_compile_us", &[]).unwrap();
        assert_eq!(compile.count, 3, "one compile-time observation per miss");
        // The corpus program is owner-local, so the net view exists but
        // may legitimately read zero.
        assert!(snap.counter("xdp_net_messages_total", &[]).is_some());
        assert_eq!(snap.gauge("xdp_inflight_runs", &[]), Some(0));
        assert_eq!(snap.gauge("xdp_queue_depth", &[]), Some(0));
    }

    #[test]
    fn latency_decomposition_sums_to_wall() {
        let pool = ServePool::new(2, 8);
        let specs: Vec<RequestSpec> = (0..12).map(|k| spec(8 + (k % 3))).collect();
        let out = pool.run_batch(&specs);
        let mut wall = 0u64;
        let mut parts = 0u64;
        for r in out {
            let r = r.unwrap();
            wall += r.latency_us;
            parts += r.queue_us + r.resolve_us + r.execute_us;
            assert!(r.latency_us >= r.execute_us, "wall covers execution");
        }
        assert!(wall > 0);
        let gap = wall.abs_diff(parts);
        assert!(
            gap * 20 <= wall,
            "queue+resolve+execute ({parts}) within 5% of wall ({wall})"
        );
    }

    #[test]
    fn flight_recorder_dumps_on_error() {
        let dir = std::env::temp_dir().join(format!("xdp-pool-flight-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let pool = ServePool::new(2, 8).with_flight(FlightConfig::new(&dir));
        pool.run_one(&spec(8)).unwrap();
        assert_eq!(pool.flight().unwrap().dumps(), 0, "ok request: no dump");
        let err = pool.run_one(&RequestSpec::new("real A[1:4] distribute (WAT) onto 2\n"));
        assert!(err.is_err());
        assert_eq!(pool.flight().unwrap().dumps(), 1, "error dumps the ring");
        assert_eq!(
            pool.metrics_snapshot()
                .counter("xdp_flight_dumps_total", &[]),
            Some(1)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
