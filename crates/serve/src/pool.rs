//! The batched concurrent executor.
//!
//! A [`ServePool`] owns the compile cache and a fixed worker count.
//! [`run_batch`](ServePool::run_batch) fans a slice of requests across a
//! scoped thread pool: workers claim requests through an atomic cursor,
//! resolve each through the shared cache (the only lock in the system,
//! held just long enough to look up or compile), then execute on a
//! **private** [`SimExec`] instance. Per-run isolation is structural —
//! nothing but the immutable `Arc<Program>` is shared between runs — so
//! a request's [`Fingerprint`] is bit-identical whether it ran solo,
//! sequentially, or interleaved with the rest of a batch. The
//! conformance tests assert exactly that equality.

use crate::cache::{CachedProgram, CompileCache, ServeError};
use crate::registry::Registry;
use crate::spec::RequestSpec;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use xdp_core::{SimConfig, SimExec};
use xdp_ir::VarId;
use xdp_runtime::Value;
use xdp_trace::TraceConfig;
use xdp_verify::Fingerprint;

/// One executed request's observable outcome.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Content hash of the request spec.
    pub key: u64,
    /// Did the compile cache serve this request without recompiling?
    pub cache_hit: bool,
    /// Simulated completion time of the run.
    pub virtual_time: f64,
    /// Wire messages during the run.
    pub messages: u64,
    /// The full observable fingerprint (memory + movement + states).
    pub fingerprint: Fingerprint,
    /// End-to-end wall latency of the request, microseconds.
    pub latency_us: u64,
    /// Wall time spent inside the compile pipeline (0 on a hit).
    pub compile_us: u64,
}

/// The serving pool: shared cache + registry behind one lock each, and a
/// worker count for batch fan-out.
pub struct ServePool {
    workers: usize,
    cache: Mutex<CompileCache>,
    registry: Mutex<Registry>,
}

impl ServePool {
    /// A pool with `workers` batch threads (min 1) and a compile cache
    /// bounded to `capacity` programs.
    pub fn new(workers: usize, capacity: usize) -> ServePool {
        ServePool {
            workers: workers.max(1),
            cache: Mutex::new(CompileCache::new(capacity)),
            registry: Mutex::new(Registry::new()),
        }
    }

    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Snapshot of the cache counters.
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.cache.lock().unwrap().stats()
    }

    /// Run one closure with the cache locked (registration, listings).
    pub fn with_cache<T>(&self, f: impl FnOnce(&mut CompileCache) -> T) -> T {
        f(&mut self.cache.lock().unwrap())
    }

    /// Run one closure with the registry and cache locked together.
    pub fn with_registry<T>(&self, f: impl FnOnce(&mut Registry, &mut CompileCache) -> T) -> T {
        let mut reg = self.registry.lock().unwrap();
        let mut cache = self.cache.lock().unwrap();
        f(&mut reg, &mut cache)
    }

    /// Serve one request: resolve through the cache, execute in
    /// isolation.
    pub fn run_one(&self, spec: &RequestSpec) -> Result<RunOutcome, ServeError> {
        let start = Instant::now();
        let compile_start = Instant::now();
        let (cached, hit) = self.cache.lock().unwrap().get_or_compile(spec)?;
        let compile_us = if hit {
            0
        } else {
            compile_start.elapsed().as_micros() as u64
        };
        let mut outcome = execute(&cached)?;
        outcome.cache_hit = hit;
        outcome.compile_us = compile_us;
        outcome.latency_us = start.elapsed().as_micros() as u64;
        Ok(outcome)
    }

    /// Serve a registered program by name.
    pub fn run_named(&self, name: &str) -> Result<RunOutcome, ServeError> {
        let start = Instant::now();
        let (cached, hit) = {
            let reg = self.registry.lock().unwrap();
            let mut cache = self.cache.lock().unwrap();
            reg.resolve(name, &mut cache)?
        };
        let mut outcome = execute(&cached)?;
        outcome.cache_hit = hit;
        outcome.latency_us = start.elapsed().as_micros() as u64;
        Ok(outcome)
    }

    /// Run a whole batch concurrently over the worker pool. Results come
    /// back in request order regardless of which worker served which
    /// request or in what interleaving.
    pub fn run_batch(&self, specs: &[RequestSpec]) -> Vec<Result<RunOutcome, ServeError>> {
        let mut slots: Vec<Option<Result<RunOutcome, ServeError>>> = Vec::new();
        slots.resize_with(specs.len(), || None);
        let slots = Mutex::new(slots);
        let cursor = AtomicUsize::new(0);
        let nworkers = self.workers.min(specs.len().max(1));
        std::thread::scope(|scope| {
            for _ in 0..nworkers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= specs.len() {
                        break;
                    }
                    let result = self.run_one(&specs[i]);
                    slots.lock().unwrap()[i] = Some(result);
                });
            }
        });
        slots
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|slot| slot.expect("every batch slot is filled"))
            .collect()
    }
}

/// Deterministic initial value for declaration ordinal `o` at `idx` —
/// the same convention as `xdp_verify`'s differential driver: integer-
/// valued (dyadic-exact arithmetic downstream) and index-dependent
/// (permutations are observable).
fn init_value(o: usize, idx: &[i64]) -> Value {
    let mut v = (o as i64 + 1) * 1000;
    for (k, x) in idx.iter().enumerate() {
        v += x * (k as i64 + 1);
    }
    Value::F64(v as f64)
}

/// Execute a cached program on a fresh, private simulator instance.
fn execute(cached: &Arc<CachedProgram>) -> Result<RunOutcome, ServeError> {
    let compiled = &cached.compiled;
    let mut cfg = SimConfig::new(compiled.nprocs).with_trace(TraceConfig::full());
    if cached.faults.is_active() {
        cfg = cfg.with_faults(cached.faults.clone());
    }
    let mut exec = SimExec::new(compiled.program.clone(), xdp_apps::app_kernels(), cfg);
    let decls: Vec<(usize, String)> = compiled
        .program
        .decls
        .iter()
        .enumerate()
        .map(|(o, d)| (o, d.name.clone()))
        .collect();
    for (o, _) in &decls {
        let o = *o;
        exec.init_exclusive(VarId(o as u32), move |idx| init_value(o, idx));
    }
    let report = exec.run().map_err(|e| ServeError::Run(e.to_string()))?;
    let mut fp = Fingerprint::default();
    for (o, name) in &decls {
        fp.record_memory(name, &exec.gather(VarId(*o as u32)));
    }
    fp.record_trace(&report.trace);
    fp.messages = report.net.messages;
    Ok(RunOutcome {
        key: cached.key,
        cache_hit: false,
        virtual_time: report.virtual_time,
        messages: report.net.messages,
        fingerprint: fp,
        latency_us: 0,
        compile_us: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdp_compiler::CompileOptions;

    fn spec(n: i64) -> RequestSpec {
        RequestSpec::new(format!(
            "real A[1:{n}] distribute (BLOCK) onto 2\n\
             do i = 1, {n}\n  iown(A[i]) : {{ A[i] = A[i] + 1.0 }}\nenddo\n"
        ))
    }

    #[test]
    fn run_one_hits_after_first_miss() {
        let pool = ServePool::new(2, 8);
        let a = pool.run_one(&spec(8)).unwrap();
        assert!(!a.cache_hit);
        let b = pool.run_one(&spec(8)).unwrap();
        assert!(b.cache_hit);
        assert_eq!(b.compile_us, 0, "hit spends no compile time");
        assert_eq!(a.fingerprint, b.fingerprint, "same program, same outcome");
        assert_eq!(pool.cache_stats().compiles, 1);
    }

    #[test]
    fn batch_results_keep_request_order_and_match_solo() {
        let pool = ServePool::new(4, 8);
        let specs: Vec<RequestSpec> = vec![
            spec(8),
            spec(12),
            spec(8).with_opts(CompileOptions::default().optimized()),
            spec(8),
            spec(12),
        ];
        let solo: Vec<RunOutcome> = specs
            .iter()
            .map(|s| ServePool::new(1, 8).run_one(s).unwrap())
            .collect();
        let batch = pool.run_batch(&specs);
        assert_eq!(batch.len(), specs.len());
        for (i, (b, s)) in batch.iter().zip(&solo).enumerate() {
            let b = b.as_ref().unwrap();
            assert_eq!(b.key, specs[i].content_hash(), "slot {i} keeps its spec");
            assert_eq!(
                b.fingerprint, s.fingerprint,
                "slot {i}: batch must match solo"
            );
            assert_eq!(b.virtual_time, s.virtual_time);
        }
        // 3 distinct specs compiled once each, 2 served warm.
        assert_eq!(pool.cache_stats().compiles, 3);
        assert_eq!(pool.cache_stats().hits, 2);
    }

    #[test]
    fn batch_reports_bad_requests_in_place() {
        let pool = ServePool::new(2, 8);
        let specs = vec![
            spec(8),
            RequestSpec::new("real A[1:4] distribute (WAT) onto 2\n"),
        ];
        let out = pool.run_batch(&specs);
        assert!(out[0].is_ok());
        assert!(matches!(
            out[1].as_ref().unwrap_err(),
            ServeError::Compile(_)
        ));
    }

    #[test]
    fn named_runs_resolve_through_registry() {
        let pool = ServePool::new(2, 8);
        pool.with_registry(|reg, cache| reg.register("adder", spec(8), cache))
            .unwrap();
        let out = pool.run_named("adder").unwrap();
        assert!(out.cache_hit, "registration pre-warms the cache");
        assert!(matches!(
            pool.run_named("nope"),
            Err(ServeError::Unknown(_))
        ));
    }
}
