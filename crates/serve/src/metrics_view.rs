//! Pre-registered metric handles for the serving hot path, plus folds
//! from the structures the rest of the workspace already produces.
//!
//! The dependency direction is deliberate: `xdp-machine`, `xdp-fault`,
//! and `xdp-compiler` know nothing about metrics. Every run already
//! returns its [`NetStats`], [`FaultStats`] and (at compile time) a
//! [`CompileTrace`] inside artifacts the pool holds anyway, so this
//! module *folds* those into the registry after the fact — the executors
//! stay observation-free and the serving layer is the single place
//! telemetry is defined.
//!
//! [`ServeMetrics`] is built once per [`crate::ServePool`]; acquiring a
//! handle locks the registry, but every update afterwards is a relaxed
//! atomic, so the batch workers never serialize on telemetry.

use std::sync::Arc;
use xdp_compiler::Backend;
use xdp_core::ExecReport;
use xdp_metrics::{Counter, Gauge, Histogram, MetricsRegistry};
use xdp_trace::CompileTrace;

/// Every fixed-label metric the pool updates per request, resolved once
/// at pool construction.
pub struct ServeMetrics {
    registry: Arc<MetricsRegistry>,

    // Request flow.
    pub req_ok: Arc<Counter>,
    pub req_err: Arc<Counter>,
    pub queue_depth: Arc<Gauge>,
    pub in_flight: Arc<Gauge>,

    // Latency and its decomposition (all microseconds).
    pub latency: Arc<Histogram>,
    pub queue: Arc<Histogram>,
    pub resolve: Arc<Histogram>,
    pub execute: Arc<Histogram>,

    // Per-backend splits of latency and execution time, so `xdpd stats`
    // can compare the interpreter and the VM side by side. Indexed by
    // [`backend_index`].
    latency_by_backend: [Arc<Histogram>; 2],
    execute_by_backend: [Arc<Histogram>; 2],

    // Compile cache.
    pub cache_hits: Arc<Counter>,
    pub cache_misses: Arc<Counter>,
    pub cache_evictions: Arc<Counter>,
    pub cache_compiles: Arc<Counter>,
    pub compile_time: Arc<Histogram>,

    // Network view (folded from `ExecReport::net`).
    pub net_messages: Arc<Counter>,
    pub net_payload_bytes: Arc<Counter>,
    pub net_wire_bytes: Arc<Counter>,
    pub net_bound: Arc<Counter>,
    pub net_unbound: Arc<Counter>,
    /// Per-run redistribution staging high-water mark (bytes); observed
    /// only for runs that actually redistributed something, so the
    /// histogram's count is the number of redistribute-carrying runs.
    pub redist_peak_bytes: Arc<Histogram>,

    // Fault view (folded from `ExecReport::faults`).
    pub fault_drops: Arc<Counter>,
    pub fault_dups: Arc<Counter>,
    pub fault_delays: Arc<Counter>,
    pub fault_reorders: Arc<Counter>,
    pub fault_retries: Arc<Counter>,
    pub fault_dup_suppressed: Arc<Counter>,
    pub fault_lost: Arc<Counter>,

    // Flight recorder activity.
    pub flight_dumps: Arc<Counter>,
    pub flight_suppressed: Arc<Counter>,
}

impl ServeMetrics {
    /// Register (or re-acquire) every fixed-label handle on `registry`.
    pub fn new(registry: Arc<MetricsRegistry>) -> ServeMetrics {
        let r = &registry;
        let injected = |kind| r.counter("xdp_fault_injected_total", &[("kind", kind)]);
        ServeMetrics {
            req_ok: r.counter("xdp_requests_total", &[("outcome", "ok")]),
            req_err: r.counter("xdp_requests_total", &[("outcome", "error")]),
            queue_depth: r.gauge("xdp_queue_depth", &[]),
            in_flight: r.gauge("xdp_inflight_runs", &[]),

            latency: r.histogram("xdp_request_latency_us", &[]),
            queue: r.histogram("xdp_request_queue_us", &[]),
            resolve: r.histogram("xdp_request_resolve_us", &[]),
            execute: r.histogram("xdp_request_execute_us", &[]),

            latency_by_backend: [Backend::Interp, Backend::Vm]
                .map(|b| r.histogram("xdp_request_latency_us", &[("backend", b.as_str())])),
            execute_by_backend: [Backend::Interp, Backend::Vm]
                .map(|b| r.histogram("xdp_request_execute_us", &[("backend", b.as_str())])),

            cache_hits: r.counter("xdp_cache_hits_total", &[]),
            cache_misses: r.counter("xdp_cache_misses_total", &[]),
            cache_evictions: r.counter("xdp_cache_evictions_total", &[]),
            cache_compiles: r.counter("xdp_cache_compiles_total", &[]),
            compile_time: r.histogram("xdp_compile_us", &[]),

            net_messages: r.counter("xdp_net_messages_total", &[]),
            net_payload_bytes: r.counter("xdp_net_payload_bytes_total", &[]),
            net_wire_bytes: r.counter("xdp_net_wire_bytes_total", &[]),
            net_bound: r.counter("xdp_net_messages_bound_total", &[]),
            net_unbound: r.counter("xdp_net_messages_unbound_total", &[]),
            redist_peak_bytes: r.histogram("xdp_redist_peak_bytes", &[]),

            fault_drops: injected("drop"),
            fault_dups: injected("dup"),
            fault_delays: injected("delay"),
            fault_reorders: injected("reorder"),
            fault_retries: r.counter("xdp_fault_retries_total", &[]),
            fault_dup_suppressed: r.counter("xdp_fault_dup_suppressed_total", &[]),
            fault_lost: r.counter("xdp_fault_lost_total", &[]),

            flight_dumps: r.counter("xdp_flight_dumps_total", &[]),
            flight_suppressed: r.counter("xdp_flight_suppressed_total", &[]),
            registry,
        }
    }

    /// The registry the handles live in.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The backend-labeled latency histogram for `backend`.
    pub fn latency_for(&self, backend: Backend) -> &Arc<Histogram> {
        &self.latency_by_backend[backend_index(backend)]
    }

    /// The backend-labeled execution-time histogram for `backend`.
    pub fn execute_for(&self, backend: Backend) -> &Arc<Histogram> {
        &self.execute_by_backend[backend_index(backend)]
    }

    /// Fold one finished run's network and fault counters into the
    /// registry. Called once per successful request, after latency is
    /// stamped — never on the execution path itself.
    pub fn fold_report(&self, report: &ExecReport) {
        let net = &report.net;
        self.net_messages.add(net.messages);
        self.net_payload_bytes.add(net.payload_bytes);
        self.net_wire_bytes.add(net.wire_bytes);
        self.net_bound.add(net.bound_messages);
        self.net_unbound.add(net.unbound_messages);
        if net.redist_peak_bytes > 0 {
            self.redist_peak_bytes.observe(net.redist_peak_bytes);
        }

        let f = &report.faults;
        self.fault_drops.add(f.injected_drops);
        self.fault_dups.add(f.injected_dups);
        self.fault_delays.add(f.injected_delays);
        self.fault_reorders.add(f.injected_reorders);
        self.fault_retries.add(f.retries);
        self.fault_dup_suppressed.add(f.dup_suppressed);
        self.fault_lost.add(f.lost);
    }

    /// Fold one compile's per-pass provenance: wall time and statement
    /// churn per pass name. Pass labels are dynamic, so this goes through
    /// the registry (compiles are rare by design — this is off the hot
    /// path by the same argument as the compile itself).
    pub fn fold_compile(&self, trace: &CompileTrace) {
        for p in &trace.passes {
            let labels = [("pass", p.name.as_str())];
            self.registry.counter("xdp_pass_runs_total", &labels).inc();
            if p.changed {
                self.registry
                    .counter("xdp_pass_changed_total", &labels)
                    .inc();
            }
            self.registry
                .counter("xdp_pass_stmts_removed_total", &labels)
                .add(p.removed.len() as u64);
            self.registry
                .counter("xdp_pass_stmts_added_total", &labels)
                .add(p.added.len() as u64);
            self.registry
                .histogram("xdp_pass_wall_us", &labels)
                .observe((p.wall_ms * 1000.0).round() as u64);
        }
    }

    /// Fold a cache-counter delta (computed by the pool around one
    /// `get_or_compile`, while it already holds the cache lock).
    pub fn fold_cache_delta(
        &self,
        before: crate::cache::CacheStats,
        after: crate::cache::CacheStats,
    ) {
        self.cache_hits.add(after.hits - before.hits);
        self.cache_misses.add(after.misses - before.misses);
        self.cache_evictions.add(after.evictions - before.evictions);
        self.cache_compiles.add(after.compiles - before.compiles);
    }
}

fn backend_index(backend: Backend) -> usize {
    match backend {
        Backend::Interp => 0,
        Backend::Vm => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdp_fault::FaultStats;
    use xdp_machine::NetStats;
    use xdp_trace::{PassTrace, Trace};

    fn report(messages: u64, retries: u64) -> ExecReport {
        ExecReport {
            nprocs: 2,
            virtual_time: 1.0,
            procs: Vec::new(),
            net: NetStats {
                messages,
                payload_bytes: 8 * messages,
                wire_bytes: 10 * messages,
                bound_messages: messages,
                ..NetStats::new(2)
            },
            trace: Trace::default(),
            faults: FaultStats {
                retries,
                ..FaultStats::default()
            },
        }
    }

    #[test]
    fn report_folds_accumulate() {
        let sm = ServeMetrics::new(Arc::new(MetricsRegistry::new()));
        sm.fold_report(&report(3, 1));
        sm.fold_report(&report(5, 0));
        let snap = sm.registry().snapshot();
        assert_eq!(snap.counter("xdp_net_messages_total", &[]), Some(8));
        assert_eq!(snap.counter("xdp_net_wire_bytes_total", &[]), Some(80));
        assert_eq!(snap.counter("xdp_fault_retries_total", &[]), Some(1));
        assert_eq!(
            snap.counter("xdp_fault_injected_total", &[("kind", "drop")]),
            Some(0)
        );
    }

    #[test]
    fn compile_folds_are_per_pass() {
        let sm = ServeMetrics::new(Arc::new(MetricsRegistry::new()));
        let mut trace = CompileTrace::default();
        trace.passes.push(PassTrace {
            name: "bind-sends".into(),
            wall_ms: 0.25,
            changed: true,
            removed: vec![(1, "send".into())],
            ..PassTrace::default()
        });
        sm.fold_compile(&trace);
        sm.fold_compile(&trace);
        let snap = sm.registry().snapshot();
        let labels = [("pass", "bind-sends")];
        assert_eq!(snap.counter("xdp_pass_runs_total", &labels), Some(2));
        assert_eq!(snap.counter("xdp_pass_changed_total", &labels), Some(2));
        assert_eq!(
            snap.counter("xdp_pass_stmts_removed_total", &labels),
            Some(2)
        );
        let h = snap.histogram("xdp_pass_wall_us", &labels).unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 500);
    }
}
