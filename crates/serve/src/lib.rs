//! # xdp-serve — the compile-once/run-many serving layer
//!
//! Everything upstream of this crate treats compilation as a per-run
//! event: `xdpc run` parses, lowers, optimizes, and places a program,
//! executes it once, and exits. Production traffic is shaped the other
//! way around — *few distinct programs, very many runs* — so this crate
//! adds the serving layer the paper's methodology implies but never
//! needed to build:
//!
//! * [`spec`] — a [`RequestSpec`] names one unit of work (source text +
//!   [`xdp_compiler::CompileOptions`] + fault spec) and hashes it with a
//!   process-stable 64-bit content hash;
//! * [`cache`] — a bounded-LRU [`CompileCache`] over the full
//!   parse→lower→opt→place pipeline, storing the compiled artifact and
//!   its `run_traced` pass provenance, with hit/miss/evict/compile
//!   counters that make "a hit skipped recompilation" checkable;
//! * [`registry`] — stable names over cache keys (`register` / `list` /
//!   `evict`), so clients of a long-lived `xdpd` need not resend source;
//! * [`pool`] — a [`ServePool`] that fans request batches across a
//!   bounded worker pool; every run executes on a private simulator
//!   instance, so batched outcomes are bit-identical to solo runs
//!   ([`xdp_verify::Fingerprint`] equality, asserted by the conformance
//!   tests);
//! * [`replay`] — the seeded load-replay driver behind `xdpd bench` and
//!   the `e13_serve` experiment (latency percentiles, throughput, hit
//!   rate, warm-recompile check, shared contract checks);
//! * [`metrics_view`] — the pool's telemetry: pre-registered
//!   [`xdp_metrics`] handles for the request path (latency decomposition,
//!   cache counters, queue depth) plus folds of every run's network and
//!   fault totals and every compile's per-pass provenance. An optional
//!   flight recorder dumps recent-request rings on errors or slow runs.
//!
//! ```
//! use xdp_serve::{RequestSpec, ServePool};
//!
//! let pool = ServePool::new(2, 8);
//! let spec = RequestSpec::new(
//!     "real A[1:8] distribute (BLOCK) onto 2\n\
//!      do i = 1, 8\n  iown(A[i]) : { A[i] = A[i] + 1.0 }\nenddo\n",
//! );
//! let cold = pool.run_one(&spec).unwrap();
//! let warm = pool.run_one(&spec).unwrap();
//! assert!(!cold.cache_hit && warm.cache_hit);
//! assert_eq!(cold.fingerprint, warm.fingerprint);
//! assert_eq!(pool.cache_stats().compiles, 1); // the hit did not recompile
//! ```

pub mod cache;
pub mod metrics_view;
pub mod pool;
pub mod registry;
pub mod replay;
pub mod spec;

pub use cache::{CacheStats, CachedProgram, CompileCache, ServeError};
pub use metrics_view::ServeMetrics;
pub use pool::{PoolMachine, RunOutcome, ServePool};
pub use registry::{RegisteredInfo, Registry};
pub use replay::{load_corpus, replay, request_mix, CorpusItem, ReplayConfig, ReplayReport};
pub use spec::{ContentHasher, RequestSpec};
