//! The load-replay driver behind `xdpd bench` and `e13_serve`.
//!
//! Replay builds a request corpus — every `.xdp` program in a directory
//! (plain and optimized variants), plus `xdp_verify`-generated programs
//! rendered back to source — then fires a seeded, weighted stream of
//! requests at a [`ServePool`] in batches and reports what a serving
//! operator would watch: latency percentiles, throughput, cache hit
//! rate, and the **warm-recompile count** (resubmitting every distinct
//! corpus item after the replay must not move the compile counter; a
//! nonzero value means a hit recompiled, which is the one thing a
//! compile cache must never do).
//!
//! Latency statistics come from the pool's own
//! `xdp_request_latency_us` histogram — the bench path and the live
//! `xdpd stats` path share one implementation, so a bench percentile and
//! an operator-facing percentile can never drift apart. The raw latency
//! vector is still carried on the report: `e14_metrics` uses it as the
//! sorted-vector oracle the histogram is checked against.
//!
//! The serving contract the binaries enforce lives here too
//! ([`ReplayReport::contract_violations`]): no errors, one compile per
//! distinct requested program, a warm hit rate, and zero warm
//! recompiles. Both `xdpd bench` and `e13_serve` fail on violations —
//! the daemon's exit code means the same thing as the experiment's.

use crate::cache::CacheStats;
use crate::pool::ServePool;
use crate::spec::RequestSpec;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde_json::{Map, Value as Json};
use std::path::PathBuf;
use std::time::Instant;
use xdp_compiler::{Backend, CompileOptions, SeqMode};
use xdp_metrics::{FlightConfig, HistSnapshot};
use xdp_verify::GenConfig;

/// One weighted corpus entry.
#[derive(Clone, Debug)]
pub struct CorpusItem {
    /// Display name (`file.xdp`, `file.xdp+opt`, `gen-3`, ...).
    pub name: String,
    pub spec: RequestSpec,
    /// Sampling weight in the request mix.
    pub weight: u32,
}

/// Replay shape: how many requests, over how many workers, from which
/// corpus.
#[derive(Clone, Debug)]
pub struct ReplayConfig {
    /// Total requests to replay.
    pub requests: usize,
    /// Pool worker threads.
    pub workers: usize,
    /// Requests per `run_batch` call.
    pub batch: usize,
    /// Compile-cache capacity (programs).
    pub capacity: usize,
    /// RNG seed for the request mix (and generated-program seeds).
    pub seed: u64,
    /// Number of `xdp_verify`-generated programs to add to the corpus.
    pub gen_count: usize,
    /// Directory of `.xdp` sources; empty name disables file loading.
    pub programs_dir: PathBuf,
    /// Flight-recorder output directory; `None` disables recording.
    pub flight_dir: Option<PathBuf>,
    /// Slow-request trigger for the recorder, microseconds.
    pub slow_us: Option<u64>,
    /// Execution backend every corpus spec is compiled for. Part of the
    /// cache key, so an interp replay and a vm replay never share
    /// entries.
    pub backend: Backend,
    /// Redistribution memory budget (bytes per processor) every corpus
    /// spec is compiled under. Part of the cache key.
    pub mem_budget: Option<u64>,
}

impl ReplayConfig {
    /// The `xdpd bench` defaults over a program directory.
    pub fn new(programs_dir: impl Into<PathBuf>) -> ReplayConfig {
        ReplayConfig {
            requests: 1000,
            workers: 4,
            batch: 64,
            capacity: 64,
            seed: 1993,
            gen_count: 6,
            programs_dir: programs_dir.into(),
            flight_dir: None,
            slow_us: None,
            backend: Backend::default(),
            mem_budget: None,
        }
    }
}

/// Per-corpus-item replay counters.
#[derive(Clone, Debug, Default)]
pub struct ProgramRow {
    pub name: String,
    pub runs: u64,
    pub hits: u64,
    pub mean_latency_us: f64,
}

/// Everything the replay measured.
#[derive(Clone, Debug)]
pub struct ReplayReport {
    pub requests: usize,
    /// The execution backend the whole replay ran on.
    pub backend: Backend,
    pub errors: usize,
    pub distinct: usize,
    /// Corpus items the seeded mix actually requested at least once
    /// (short replays may never draw a low-weight item).
    pub distinct_requested: usize,
    pub wall_s: f64,
    pub runs_per_sec: f64,
    pub p50_us: u64,
    pub p99_us: u64,
    pub mean_us: f64,
    /// The latency histogram the percentiles above came from — the same
    /// shard type `xdpd stats` exposes.
    pub latency_hist: HistSnapshot,
    /// Raw per-request latencies, unsorted, successful requests only.
    /// Kept as the oracle the histogram is validated against.
    pub latencies_us: Vec<u64>,
    /// Latency decomposition totals over successful requests (µs).
    pub total_queue_us: u64,
    pub total_resolve_us: u64,
    pub total_execute_us: u64,
    /// Sum of end-to-end wall latencies (µs); the decomposition above
    /// must account for it to within a few percent.
    pub total_wall_us: u64,
    /// Hit rate over the replay phase only (excludes the warm check).
    pub hit_rate: f64,
    /// Cache counters after the replay phase.
    pub stats: CacheStats,
    /// Compiles triggered by resubmitting every *requested* item once,
    /// post-replay. Must be 0 when `capacity >= distinct`: every one of
    /// these specs was compiled during the replay, so a nonzero count
    /// means a hit recompiled.
    pub warm_recompiles: u64,
    /// Flight-recorder dump files written during the replay.
    pub flight_dumps: u64,
    pub per_program: Vec<ProgramRow>,
}

impl ReplayReport {
    /// The serving contract both `xdpd bench` and `e13_serve` enforce.
    /// Empty means the replay is healthy; each entry is one violated
    /// invariant, human-readable.
    pub fn contract_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        if self.errors != 0 {
            v.push(format!("{} requests failed (want 0)", self.errors));
        }
        if self.stats.compiles != self.distinct_requested as u64 {
            v.push(format!(
                "{} compiles for {} distinct requested programs (want exactly one each)",
                self.stats.compiles, self.distinct_requested
            ));
        }
        if self.hit_rate < 0.90 {
            v.push(format!(
                "hit rate {:.3} below the 0.90 serving floor",
                self.hit_rate
            ));
        }
        if self.warm_recompiles != 0 {
            v.push(format!(
                "{} warm recompiles (a cache hit recompiled)",
                self.warm_recompiles
            ));
        }
        v
    }

    /// The report as one JSON object (one `BENCH_serve.json` trajectory
    /// row). `experiment` names the binary that produced it.
    pub fn to_json(&self, experiment: &str) -> Json {
        let unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let mut latency = Map::new();
        latency.insert("p50".into(), Json::from(self.p50_us));
        latency.insert("p90".into(), Json::from(self.latency_hist.p90()));
        latency.insert("p99".into(), Json::from(self.p99_us));
        latency.insert("mean".into(), Json::from(self.mean_us));
        latency.insert("max".into(), Json::from(self.latency_hist.max_exact()));
        let mut split = Map::new();
        split.insert("queue_us".into(), Json::from(self.total_queue_us));
        split.insert("resolve_us".into(), Json::from(self.total_resolve_us));
        split.insert("execute_us".into(), Json::from(self.total_execute_us));
        split.insert("wall_us".into(), Json::from(self.total_wall_us));
        let mut cache = Map::new();
        cache.insert("hit_rate".into(), Json::from(self.hit_rate));
        cache.insert("hits".into(), Json::from(self.stats.hits));
        cache.insert("misses".into(), Json::from(self.stats.misses));
        cache.insert("compiles".into(), Json::from(self.stats.compiles));
        cache.insert("evictions".into(), Json::from(self.stats.evictions));
        cache.insert("warm_recompiles".into(), Json::from(self.warm_recompiles));
        let per: Vec<Json> = self
            .per_program
            .iter()
            .map(|r| {
                let mut row = Map::new();
                row.insert("name".into(), Json::from(r.name.clone()));
                row.insert("runs".into(), Json::from(r.runs));
                row.insert("hits".into(), Json::from(r.hits));
                row.insert("mean_latency_us".into(), Json::from(r.mean_latency_us));
                Json::Object(row)
            })
            .collect();
        let mut root = Map::new();
        root.insert("experiment".into(), Json::from(experiment));
        root.insert("unix_ms".into(), Json::from(unix_ms));
        root.insert("backend".into(), Json::from(self.backend.as_str()));
        root.insert("requests".into(), Json::from(self.requests));
        root.insert("errors".into(), Json::from(self.errors));
        root.insert("distinct_programs".into(), Json::from(self.distinct));
        root.insert(
            "distinct_requested".into(),
            Json::from(self.distinct_requested),
        );
        root.insert("wall_s".into(), Json::from(self.wall_s));
        root.insert("runs_per_sec".into(), Json::from(self.runs_per_sec));
        root.insert("latency_us".into(), Json::Object(latency));
        root.insert("latency_split".into(), Json::Object(split));
        root.insert("cache".into(), Json::Object(cache));
        root.insert("flight_dumps".into(), Json::from(self.flight_dumps));
        root.insert("per_program".into(), Json::Array(per));
        Json::Object(root)
    }
}

/// Build the replay corpus: directory programs (plain weight 8,
/// optimized weight 4) plus generated programs (weight 1). Files load in
/// sorted name order so the corpus — and therefore the seeded request
/// mix — is reproducible.
pub fn load_corpus(cfg: &ReplayConfig) -> Result<Vec<CorpusItem>, String> {
    let mut corpus = Vec::new();
    if !cfg.programs_dir.as_os_str().is_empty() {
        let mut files: Vec<PathBuf> = std::fs::read_dir(&cfg.programs_dir)
            .map_err(|e| format!("cannot read {}: {e}", cfg.programs_dir.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "xdp"))
            .collect();
        files.sort();
        for path in files {
            let source = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            // Auto handles both notations: sequential sources (e.g.
            // seq_sum.xdp) lower through owner-computes, parallel
            // sources run as written.
            let mut auto = CompileOptions::default()
                .with_seq(SeqMode::Auto)
                .with_backend(cfg.backend);
            auto.mem_budget = cfg.mem_budget;
            corpus.push(CorpusItem {
                name: name.clone(),
                spec: RequestSpec::new(source.clone()).with_opts(auto.clone()),
                weight: 8,
            });
            corpus.push(CorpusItem {
                name: format!("{name}+opt"),
                spec: RequestSpec::new(source).with_opts(auto.optimized()),
                weight: 4,
            });
        }
    }
    for k in 0..cfg.gen_count {
        let tp = xdp_verify::gen::executable_program_with(
            &GenConfig::default(),
            cfg.seed.wrapping_add(k as u64),
        );
        let mut opts = CompileOptions::default().with_backend(cfg.backend);
        opts.mem_budget = cfg.mem_budget;
        corpus.push(CorpusItem {
            name: format!("gen-{k}"),
            spec: RequestSpec::new(xdp_ir::pretty::program(&tp.program)).with_opts(opts),
            weight: 1,
        });
    }
    if corpus.is_empty() {
        return Err("replay corpus is empty".to_string());
    }
    Ok(corpus)
}

/// Draw a seeded, weighted request mix of `n` corpus indices.
pub fn request_mix(corpus: &[CorpusItem], n: usize, seed: u64) -> Vec<usize> {
    let total: u64 = corpus.iter().map(|c| u64::from(c.weight)).sum();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut pick = rng.gen_range(0..total);
            for (i, item) in corpus.iter().enumerate() {
                let w = u64::from(item.weight);
                if pick < w {
                    return i;
                }
                pick -= w;
            }
            corpus.len() - 1
        })
        .collect()
}

/// Run the full replay: corpus → request mix → batched execution →
/// warm-recompile check. Returns the report and the pool (still warm,
/// for follow-up queries).
pub fn replay(cfg: &ReplayConfig) -> Result<(ReplayReport, ServePool), String> {
    let corpus = load_corpus(cfg)?;
    let mix = request_mix(&corpus, cfg.requests, cfg.seed);
    let mut pool = ServePool::new(cfg.workers, cfg.capacity);
    if let Some(dir) = &cfg.flight_dir {
        let mut fcfg = FlightConfig::new(dir);
        fcfg.slow_us = cfg.slow_us;
        pool = pool.with_flight(fcfg);
    }

    let mut latencies: Vec<u64> = Vec::with_capacity(cfg.requests);
    let mut per: Vec<(u64, u64, u64)> = vec![(0, 0, 0); corpus.len()]; // runs, hits, total us
    let (mut tq, mut tr, mut tx, mut tw) = (0u64, 0u64, 0u64, 0u64);
    let mut errors = 0usize;
    let started = Instant::now();
    for chunk in mix.chunks(cfg.batch.max(1)) {
        let specs: Vec<RequestSpec> = chunk.iter().map(|&i| corpus[i].spec.clone()).collect();
        for (&i, result) in chunk.iter().zip(pool.run_batch(&specs)) {
            match result {
                Ok(out) => {
                    latencies.push(out.latency_us);
                    tq += out.queue_us;
                    tr += out.resolve_us;
                    tx += out.execute_us;
                    tw += out.latency_us;
                    per[i].0 += 1;
                    per[i].1 += u64::from(out.cache_hit);
                    per[i].2 += out.latency_us;
                }
                Err(e) => {
                    errors += 1;
                    eprintln!("replay: {}: {e}", corpus[i].name);
                }
            }
        }
    }
    let wall_s = started.elapsed().as_secs_f64();
    let stats = pool.cache_stats();
    // One code path for latency stats: the pool's own histogram,
    // snapshotted *before* the warm check adds its own observations.
    let latency_hist = pool
        .metrics_snapshot()
        .histogram("xdp_request_latency_us", &[])
        .cloned()
        .unwrap_or_default();

    // Warm check: every item the replay actually served, one more time.
    // The cache already compiled each of these specs, so the compile
    // counter must not move (when the cache is big enough to hold the
    // whole corpus). Items the mix never drew are skipped — compiling
    // them now would be a first compile, not a recompile.
    let before = pool.cache_stats().compiles;
    for (item, &(runs, _, _)) in corpus.iter().zip(&per) {
        if runs == 0 {
            continue;
        }
        if let Err(e) = pool.run_one(&item.spec) {
            return Err(format!("warm check: {}: {e}", item.name));
        }
    }
    let warm_recompiles = pool.cache_stats().compiles - before;

    let report = ReplayReport {
        requests: cfg.requests,
        backend: cfg.backend,
        errors,
        distinct: corpus.len(),
        distinct_requested: per.iter().filter(|&&(runs, _, _)| runs > 0).count(),
        wall_s,
        runs_per_sec: if wall_s > 0.0 {
            (cfg.requests - errors) as f64 / wall_s
        } else {
            0.0
        },
        p50_us: latency_hist.p50(),
        p99_us: latency_hist.p99(),
        mean_us: latency_hist.mean(),
        latency_hist,
        latencies_us: latencies,
        total_queue_us: tq,
        total_resolve_us: tr,
        total_execute_us: tx,
        total_wall_us: tw,
        hit_rate: stats.hit_rate(),
        stats,
        warm_recompiles,
        flight_dumps: pool.flight().map_or(0, |fr| fr.dumps()),
        per_program: corpus
            .iter()
            .zip(&per)
            .map(|(item, &(runs, hits, total))| ProgramRow {
                name: item.name.clone(),
                runs,
                hits,
                mean_latency_us: if runs > 0 {
                    total as f64 / runs as f64
                } else {
                    0.0
                },
            })
            .collect(),
    };
    Ok((report, pool))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_only(requests: usize) -> ReplayConfig {
        ReplayConfig {
            requests,
            workers: 2,
            batch: 16,
            capacity: 16,
            seed: 7,
            gen_count: 3,
            programs_dir: PathBuf::new(),
            flight_dir: None,
            slow_us: None,
            backend: Backend::Interp,
            mem_budget: None,
        }
    }

    #[test]
    fn corpus_from_generated_programs_only() {
        let corpus = load_corpus(&gen_only(10)).unwrap();
        assert_eq!(corpus.len(), 3);
        assert!(corpus.iter().all(|c| c.name.starts_with("gen-")));
        // Same config, same corpus (generation is seeded).
        let again = load_corpus(&gen_only(10)).unwrap();
        for (a, b) in corpus.iter().zip(&again) {
            assert_eq!(a.spec.content_hash(), b.spec.content_hash());
        }
    }

    #[test]
    fn request_mix_is_seeded_and_weighted() {
        let corpus = vec![
            CorpusItem {
                name: "heavy".into(),
                spec: RequestSpec::new("x"),
                weight: 9,
            },
            CorpusItem {
                name: "light".into(),
                spec: RequestSpec::new("y"),
                weight: 1,
            },
        ];
        let mix = request_mix(&corpus, 1000, 42);
        assert_eq!(mix, request_mix(&corpus, 1000, 42), "seeded = reproducible");
        let heavy = mix.iter().filter(|&&i| i == 0).count();
        assert!(heavy > 800 && heavy < 980, "got {heavy}/1000 heavy");
    }

    #[test]
    fn replay_over_generated_corpus_hits_warm() {
        let (report, _pool) = replay(&gen_only(60)).unwrap();
        assert_eq!(report.errors, 0);
        assert_eq!(report.distinct, 3);
        assert_eq!(report.distinct_requested, 3, "equal weights, 60 draws");
        assert_eq!(
            report.warm_recompiles, 0,
            "warm resubmission must not compile"
        );
        assert_eq!(report.stats.compiles, 3, "one compile per distinct program");
        assert!(report.hit_rate > 0.9, "hit rate {}", report.hit_rate);
        assert_eq!(report.per_program.iter().map(|r| r.runs).sum::<u64>(), 60);
        assert!(
            report.contract_violations().is_empty(),
            "healthy replay passes the contract: {:?}",
            report.contract_violations()
        );
        let j = report.to_json("e13-serve");
        let warm = j.get("cache").and_then(|c| c.get("warm_recompiles"));
        assert_eq!(warm.and_then(|v| v.as_u64()), Some(0));
        assert_eq!(j.get("requests").and_then(|v| v.as_u64()), Some(60));
        assert!(j.get("unix_ms").and_then(|v| v.as_u64()).unwrap() > 0);
    }

    #[test]
    fn latency_stats_come_from_the_pool_histogram() {
        let (report, _pool) = replay(&gen_only(40)).unwrap();
        assert_eq!(report.latencies_us.len(), 40, "one raw latency per request");
        assert_eq!(
            report.latency_hist.count, 40,
            "histogram excludes the warm check"
        );
        assert_eq!(
            report.latency_hist.sum,
            report.latencies_us.iter().sum::<u64>(),
            "histogram total is exact"
        );
        assert_eq!(report.p50_us, report.latency_hist.p50());
        // Decomposition accounts for wall latency.
        let parts = report.total_queue_us + report.total_resolve_us + report.total_execute_us;
        let gap = report.total_wall_us.abs_diff(parts);
        assert!(
            gap * 20 <= report.total_wall_us,
            "split {parts} within 5% of wall {}",
            report.total_wall_us
        );
    }

    #[test]
    fn replay_on_the_vm_backend_is_healthy_and_labels_metrics() {
        let mut cfg = gen_only(40);
        cfg.backend = Backend::Vm;
        let (report, pool) = replay(&cfg).unwrap();
        assert_eq!(report.backend, Backend::Vm);
        assert!(
            report.contract_violations().is_empty(),
            "{:?}",
            report.contract_violations()
        );
        let j = report.to_json("test");
        assert_eq!(j.get("backend").and_then(|v| v.as_str()), Some("vm"));
        // Every request (replay + warm check) landed in the vm-labeled
        // histogram; the interp one never fired.
        let snap = pool.metrics_snapshot();
        let vm = snap
            .histogram("xdp_request_latency_us", &[("backend", "vm")])
            .unwrap();
        assert!(vm.count >= 40, "vm-labeled count {}", vm.count);
        let interp = snap
            .histogram("xdp_request_latency_us", &[("backend", "interp")])
            .unwrap();
        assert_eq!(interp.count, 0);
    }

    #[test]
    fn contract_violations_catch_unhealthy_reports() {
        let (mut report, _pool) = replay(&gen_only(30)).unwrap();
        report.errors = 2;
        report.hit_rate = 0.5;
        report.warm_recompiles = 1;
        let v = report.contract_violations();
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().any(|m| m.contains("2 requests failed")));
        assert!(v.iter().any(|m| m.contains("hit rate")));
        assert!(v.iter().any(|m| m.contains("warm recompiles")));
    }
}
