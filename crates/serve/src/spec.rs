//! Request specifications and their content hash — the compile-cache key.
//!
//! A [`RequestSpec`] is everything that can influence what the compile
//! pipeline produces and how the program will be executed: the source
//! text itself, the [`CompileOptions`] (machine size, optimization,
//! placement, sequential handling), and the transport-fault spec. Two
//! requests with equal specs are *provably* served by the same compiled
//! artifact; any field changing changes the [content hash](RequestSpec::content_hash).
//!
//! The hash is 64-bit FNV-1a over a tagged, length-prefixed encoding of
//! the fields (so `("ab", "c")` and `("a", "bc")` cannot collide), which
//! keeps the key stable across processes and runs — unlike
//! `std::hash::Hasher`, whose output is explicitly unspecified between
//! releases. The cache additionally stores the full spec per entry and
//! compares it on lookup, so even a 64-bit collision degrades to a miss,
//! never to serving the wrong program.

use xdp_compiler::{CompileOptions, SeqMode};
use xdp_fault::FaultPlan;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64-bit hasher over tagged fields.
#[derive(Clone, Debug)]
pub struct ContentHasher {
    state: u64,
}

impl ContentHasher {
    pub fn new() -> ContentHasher {
        ContentHasher { state: FNV_OFFSET }
    }

    fn bytes(&mut self, b: &[u8]) {
        for &x in b {
            self.state ^= u64::from(x);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Mix one field: a tag byte, the length, then the payload. The
    /// prefix makes field boundaries unambiguous.
    pub fn field(&mut self, tag: u8, payload: &[u8]) {
        self.bytes(&[tag]);
        self.bytes(&(payload.len() as u64).to_le_bytes());
        self.bytes(payload);
    }

    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for ContentHasher {
    fn default() -> ContentHasher {
        ContentHasher::new()
    }
}

/// One serveable unit of work: a program source plus everything that
/// parameterizes its compilation and execution.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct RequestSpec {
    /// The program source text (the `.xdp` notation).
    pub source: String,
    /// Compile-pipeline options (machine size, optimize, place, seq).
    pub opts: CompileOptions,
    /// Transport-fault spec in `FaultPlan::parse` syntax; empty = none.
    /// Kept as the canonical string so the key is reproducible from the
    /// request as received.
    pub faults: String,
}

impl RequestSpec {
    /// A spec with default options and no faults.
    pub fn new(source: impl Into<String>) -> RequestSpec {
        RequestSpec {
            source: source.into(),
            opts: CompileOptions::default(),
            faults: String::new(),
        }
    }

    /// Builder shorthand: replace the compile options.
    pub fn with_opts(mut self, opts: CompileOptions) -> RequestSpec {
        self.opts = opts;
        self
    }

    /// Builder shorthand: set the fault spec.
    pub fn with_faults(mut self, spec: impl Into<String>) -> RequestSpec {
        self.faults = spec.into();
        self
    }

    /// The 64-bit content hash identifying this spec in the cache.
    pub fn content_hash(&self) -> u64 {
        let mut h = ContentHasher::new();
        h.field(b'S', self.source.as_bytes());
        match self.opts.procs {
            None => h.field(b'P', b""),
            Some(n) => h.field(b'P', &(n as u64).to_le_bytes()),
        }
        h.field(b'O', &[u8::from(self.opts.optimize)]);
        h.field(b'A', &[u8::from(self.opts.place)]);
        let seq = match self.opts.seq {
            SeqMode::AsIs => 0u8,
            SeqMode::Lower => 1,
            SeqMode::Auto => 2,
        };
        h.field(b'Q', &[seq]);
        // Execution backend: a cached VM execution must never satisfy an
        // interpreter request (they are conformant, but provably so only
        // while the differential suite says so).
        h.field(b'B', self.opts.backend.as_str().as_bytes());
        match self.opts.mem_budget {
            None => h.field(b'M', b""),
            Some(b) => h.field(b'M', &b.to_le_bytes()),
        }
        h.field(b'F', self.faults.as_bytes());
        h.finish()
    }

    /// Parse the fault spec (empty = [`FaultPlan::none`]).
    pub fn fault_plan(&self) -> Result<FaultPlan, String> {
        if self.faults.is_empty() {
            return Ok(FaultPlan::none());
        }
        FaultPlan::parse(&self.faults).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_stable_and_field_sensitive() {
        let s = RequestSpec::new("real A[1:4] distribute (BLOCK) onto 2\n");
        let k = s.content_hash();
        assert_eq!(k, s.clone().content_hash(), "same spec, same key");

        let variants = [
            RequestSpec::new("real A[1:4] distribute (BLOCK) onto 2\n ")
                .with_opts(CompileOptions::default()),
            s.clone().with_opts(CompileOptions::default().with_procs(2)),
            s.clone().with_opts(CompileOptions::default().optimized()),
            s.clone().with_opts(CompileOptions::default().placed()),
            s.clone()
                .with_opts(CompileOptions::default().with_seq(SeqMode::Auto)),
            s.clone().with_faults("drop=0.1,seed=3"),
            s.clone()
                .with_opts(CompileOptions::default().with_backend(xdp_compiler::Backend::Vm)),
            s.clone()
                .with_opts(CompileOptions::default().with_mem_budget(1 << 20)),
        ];
        for v in variants {
            assert_ne!(k, v.content_hash(), "{v:?} must key differently");
        }
    }

    #[test]
    fn field_boundaries_are_unambiguous() {
        // Same concatenated bytes, different field split.
        let mut a = ContentHasher::new();
        a.field(1, b"ab");
        a.field(2, b"c");
        let mut b = ContentHasher::new();
        b.field(1, b"a");
        b.field(2, b"bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn fault_plans_parse_lazily() {
        assert!(!RequestSpec::new("x").fault_plan().unwrap().is_active());
        assert!(RequestSpec::new("x")
            .with_faults("drop=0.2,seed=1")
            .fault_plan()
            .unwrap()
            .is_active());
        assert!(RequestSpec::new("x")
            .with_faults("drop=banana")
            .fault_plan()
            .is_err());
    }
}
