//! E14 — serving telemetry validation.
//!
//! Exercises the observability stack end to end and checks that what it
//! reports is *true*:
//!
//! * **histogram fidelity** — the pool's `xdp_request_latency_us`
//!   histogram must put p50/p99 within one log-bucket of the
//!   sorted-vector oracle computed from the raw latencies the replay
//!   kept, and its count/sum must be exact;
//! * **latency decomposition** — per-request queue + resolve + execute
//!   must account for end-to-end wall latency to within 5% in aggregate;
//! * **flight recorder** — a deliberately slow request planted among
//!   fast ones must produce **exactly one** dump, and a failing request
//!   exactly one more (with the error recorded);
//! * **exposition** — the Prometheus text and JSON snapshots carry the
//!   expected families and version stamp;
//! * **trajectory** — the run appends one row to `BENCH_serve.json` and
//!   the regression gate stays green.
//!
//! ```text
//! e14_metrics [--requests N] [--programs DIR] [--out FILE]
//!             [--metrics-out FILE] [--flight-dir DIR]
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use xdp_bench::table::{j, Table};
use xdp_bench::trajectory;
use xdp_metrics::{bucket_index, FlightConfig, FLIGHT_DUMP_VERSION};
use xdp_serve::{replay, ReplayConfig, RequestSpec, ServePool};

fn opt_val<'a>(rest: &'a [String], name: &str) -> Option<&'a str> {
    rest.iter()
        .position(|a| a == name)
        .and_then(|i| rest.get(i + 1))
        .map(|s| s.as_str())
}

fn num<T: std::str::FromStr>(rest: &[String], name: &str, default: T) -> T {
    opt_val(rest, name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Nearest-rank quantile over a sorted slice — the oracle convention the
/// histogram is validated against.
fn oracle(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn block_loop(n: usize) -> RequestSpec {
    RequestSpec::new(format!(
        "real A[1:{n}] distribute (BLOCK) onto 2\n\
         do i = 1, {n}\n  iown(A[i]) : {{ A[i] = A[i] + 1.0 }}\nenddo\n"
    ))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ReplayConfig::new(opt_val(&args, "--programs").unwrap_or("xdp-programs"));
    // The corpus holds ~26 distinct programs and each costs one cold
    // miss, so the request count must be high enough for the warm
    // phase to clear the 0.90 hit-rate floor.
    cfg.requests = num(&args, "--requests", 400);
    cfg.workers = num(&args, "--workers", 4);
    cfg.batch = num(&args, "--batch", 32);
    cfg.capacity = num(&args, "--capacity", 64);
    cfg.seed = num(&args, "--seed", 1993);
    cfg.gen_count = num(&args, "--gen", 4);
    let out_path = opt_val(&args, "--out").unwrap_or("BENCH_serve.json");
    let metrics_out = opt_val(&args, "--metrics-out");
    let flight_dir = PathBuf::from(opt_val(&args, "--flight-dir").unwrap_or("flight-dumps"));

    let mut failures = 0usize;
    let mut check = |ok: bool, what: String| {
        println!("{}  {what}", if ok { "OK  " } else { "FAIL" });
        if !ok {
            failures += 1;
        }
    };

    // ---- Phase 1: replay; histogram vs oracle; decomposition. --------
    let (report, pool) = match replay(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("e14_metrics: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut sorted = report.latencies_us.clone();
    sorted.sort_unstable();
    let hist = &report.latency_hist;

    check(
        report.contract_violations().is_empty(),
        format!(
            "serving contract holds over {} requests {:?}",
            report.requests,
            report.contract_violations()
        ),
    );
    check(
        hist.count == sorted.len() as u64 && hist.sum == sorted.iter().sum::<u64>(),
        format!(
            "histogram count/sum exact (count {} of {}, sum {})",
            hist.count,
            sorted.len(),
            hist.sum
        ),
    );
    let mut quantile_rows = Vec::new();
    for (label, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)] {
        let got = hist.quantile(q);
        let want = oracle(&sorted, q);
        let db = (bucket_index(got) as i64 - bucket_index(want) as i64).abs();
        check(
            db <= 1,
            format!("{label}: histogram {got}us within one log-bucket of oracle {want}us"),
        );
        quantile_rows.push((label, got, want, db));
    }
    let parts = report.total_queue_us + report.total_resolve_us + report.total_execute_us;
    let gap = report.total_wall_us.abs_diff(parts);
    check(
        gap * 20 <= report.total_wall_us,
        format!(
            "queue+resolve+execute {}us accounts for wall {}us (gap {:.2}%)",
            parts,
            report.total_wall_us,
            100.0 * gap as f64 / report.total_wall_us.max(1) as f64
        ),
    );

    let mut t = Table::new(
        "e14-quantiles",
        &["q", "hist_us", "oracle_us", "bucket_gap"],
    );
    for (label, got, want, db) in &quantile_rows {
        t.row(&[j::s(label), j::u(*got), j::u(*want), j::u(*db as u64)]);
    }
    t.print();

    // ---- Phase 2: exposition formats. --------------------------------
    let snapshot = pool.metrics_snapshot();
    let prom = snapshot.to_prometheus();
    check(
        prom.contains("# TYPE xdp_request_latency_us histogram")
            && prom.contains("xdp_requests_total{outcome=\"ok\"}")
            && prom.contains("xdp_cache_hits_total"),
        "Prometheus exposition carries the serving families".to_string(),
    );
    let json = snapshot.to_json();
    check(
        json.get("xdp_metrics_version").and_then(|v| v.as_u64()) == Some(1),
        "JSON exposition is version-stamped".to_string(),
    );
    if let Some(path) = metrics_out {
        if let Err(e) = std::fs::write(path, format!("{json}\n")) {
            eprintln!("e14_metrics: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }

    // ---- Phase 3: the planted slow request. --------------------------
    let _ = std::fs::remove_dir_all(&flight_dir);
    let fpool = ServePool::new(1, 8).with_flight(FlightConfig::new(&flight_dir));
    let fast = block_loop(4);
    // Calibrate: grow the heavy program until its warm latency clears
    // the fast one by 8x, then arm the trigger halfway (in log space the
    // margin is >= 2x on both sides).
    let mut heavy_n = 512usize;
    let mut fast_max = 0u64;
    let mut slow_lat = 0u64;
    for _ in 0..6 {
        let slow = block_loop(heavy_n);
        fpool.run_one(&fast).unwrap();
        fpool.run_one(&slow).unwrap();
        fast_max = (0..8)
            .map(|_| fpool.run_one(&fast).unwrap().latency_us)
            .max()
            .unwrap_or(0);
        slow_lat = (0..3)
            .map(|_| fpool.run_one(&slow).unwrap().latency_us)
            .min()
            .unwrap_or(0);
        if slow_lat >= fast_max.saturating_mul(8) {
            break;
        }
        heavy_n *= 2;
    }
    let slow = block_loop(heavy_n);
    check(
        slow_lat >= fast_max.saturating_mul(8),
        format!("calibration: slow ({heavy_n} iters) {slow_lat}us >= 8x fast {fast_max}us"),
    );
    let dumps_before = fpool.flight().unwrap().dumps();
    check(
        dumps_before == 0,
        "calibration runs trigger no dumps".to_string(),
    );

    let threshold = slow_lat / 2;
    fpool.set_slow_us(Some(threshold));
    for _ in 0..8 {
        fpool.run_one(&fast).unwrap();
    }
    fpool.run_one(&slow).unwrap();
    let dumps = fpool.flight().unwrap().dumps();
    check(
        dumps == 1,
        format!(
            "planted slow request yields exactly one dump (got {dumps}, threshold {threshold}us)"
        ),
    );
    let dump_path = fpool.flight().unwrap().last_dump();
    let header_ok = dump_path.as_ref().is_some_and(|p| {
        std::fs::read_to_string(p)
            .ok()
            .and_then(|text| serde_json::from_str(text.lines().next().unwrap_or("")).ok())
            .and_then(|h| h.get("xdp_flight_version").and_then(|v| v.as_u64()))
            == Some(FLIGHT_DUMP_VERSION)
    });
    check(
        header_ok,
        format!(
            "dump {} has a versioned header",
            dump_path
                .as_ref()
                .map_or("<none>".into(), |p| p.display().to_string())
        ),
    );
    let chrome_ok = dump_path.as_ref().is_some_and(|p| {
        p.file_stem()
            .map(|s| flight_dir.join(format!("{}.trace.json", s.to_string_lossy())))
            .is_some_and(|t| t.exists())
    });
    check(
        chrome_ok,
        "dump has a replayable Chrome-trace twin".to_string(),
    );

    // A failing request triggers one more dump, carrying the error.
    let bad = RequestSpec::new("real A[1:4] distribute (WAT) onto 2\n");
    let _ = fpool.run_one(&bad);
    check(
        fpool.flight().unwrap().dumps() == 2,
        format!(
            "error dump recorded (total {})",
            fpool.flight().unwrap().dumps()
        ),
    );

    // ---- Phase 4: trajectory row + regression gate. ------------------
    match trajectory::append(Path::new(out_path), report.to_json("e14-metrics")) {
        Ok(n) => println!("appended run {n} to {out_path}"),
        Err(e) => {
            eprintln!("e14_metrics: {e}");
            return ExitCode::FAILURE;
        }
    }
    let gate = trajectory::load(Path::new(out_path))
        .map(|runs| trajectory::check_last(&runs, trajectory::Gate::default()))
        .unwrap_or_else(|e| vec![e]);
    check(
        gate.is_empty(),
        format!("bench trajectory regression gate green {gate:?}"),
    );

    if failures > 0 {
        eprintln!("e14_metrics: {failures} check(s) failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
