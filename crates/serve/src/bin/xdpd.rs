//! `xdpd` — the XDP serving daemon, driven in one-shot mode.
//!
//! Where `xdpc` compiles a program every time it runs one, `xdpd` is the
//! compile-once/run-many side of the toolchain: requests resolve through
//! a content-hashed compile cache and execute on a bounded worker pool.
//!
//! ```text
//! xdpd run FILE [--repeat N] [--optimize] [--backend interp|vm] [--procs N]
//!          [--faults SPEC] [--workers N] [--mem-budget B]
//! xdpd list [--programs DIR] [--gen N]
//! xdpd bench [--requests N] [--workers N] [--batch N] [--capacity N]
//!            [--seed N] [--gen N] [--programs DIR] [--backend interp|vm]
//!            [--out FILE] [--metrics-out FILE] [--slow-ms N] [--flight-dir DIR]
//!            [--mem-budget B]
//! xdpd stats [--requests N] [--programs DIR] [--gen N] [--backend interp|vm]
//!            [--format prom|json]
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use xdp_bench::table::{j, Table};
use xdp_bench::trajectory;
use xdp_compiler::{Backend, CompileOptions, SeqMode};
use xdp_serve::{load_corpus, replay, ReplayConfig, RequestSpec, ServePool};

const USAGE: &str = "\
xdpd — XDP serving daemon (compile-once/run-many)

USAGE:
    xdpd run FILE [--repeat N] [--optimize] [--backend interp|vm] [--procs N]
             [--faults SPEC] [--workers N] [--mem-budget B]
    xdpd list [--programs DIR] [--gen N]
    xdpd bench [--requests N] [--workers N] [--batch N] [--capacity N]
               [--seed N] [--gen N] [--programs DIR] [--backend interp|vm]
               [--out FILE] [--metrics-out FILE] [--slow-ms N] [--flight-dir DIR]
               [--mem-budget B]
    xdpd stats [--requests N] [--workers N] [--programs DIR] [--gen N]
               [--backend interp|vm] [--format prom|json]

`run` serves one program repeatedly through the compile cache (the first
request compiles, the rest hit). `list` registers a corpus and prints the
registry. `bench` replays a seeded weighted request mix, appends the
report to the benchmark trajectory (default BENCH_serve.json), and fails
on serving-contract violations; `--metrics-out` additionally writes the
pool's full metrics snapshot, and `--slow-ms`/`--flight-dir` arm the
flight recorder. `stats` serves a short replay and prints the resulting
telemetry in Prometheus text (default) or JSON exposition. `--backend vm`
compiles every request for the bytecode VM instead of the tree-walking
interpreter; latency histograms carry a backend label either way, so
`xdpd stats` splits the two. `--mem-budget B` compiles every request
under a per-processor redistribution memory budget of B bytes (binary
k/m/g suffixes accepted); the planner then picks the fastest
decomposition whose peak live-buffer footprint fits.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(|s| s.as_str()) else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    match cmd {
        "run" => cmd_run(rest),
        "list" => cmd_list(rest),
        "bench" => cmd_bench(rest),
        "stats" => cmd_stats(rest),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("xdpd: unknown command `{other}`\n");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn flag(rest: &[String], name: &str) -> bool {
    rest.iter().any(|a| a == name)
}

fn opt_val<'a>(rest: &'a [String], name: &str) -> Option<&'a str> {
    rest.iter()
        .position(|a| a == name)
        .and_then(|i| rest.get(i + 1))
        .map(|s| s.as_str())
}

fn num<T: std::str::FromStr>(rest: &[String], name: &str, default: T) -> T {
    opt_val(rest, name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Positive byte count with optional binary `k`/`m`/`g` suffix.
fn parse_bytes(v: &str) -> Option<u64> {
    let (digits, mult) = match v.char_indices().last() {
        Some((i, 'k')) | Some((i, 'K')) => (&v[..i], 1u64 << 10),
        Some((i, 'm')) | Some((i, 'M')) => (&v[..i], 1u64 << 20),
        Some((i, 'g')) | Some((i, 'G')) => (&v[..i], 1u64 << 30),
        _ => (v, 1),
    };
    digits
        .parse::<u64>()
        .ok()
        .and_then(|n| n.checked_mul(mult))
        .filter(|b| *b > 0)
}

/// `--mem-budget B` (default unbounded). A bad value is a usage error.
fn parse_mem_budget(rest: &[String]) -> Result<Option<u64>, ExitCode> {
    match opt_val(rest, "--mem-budget") {
        None => Ok(None),
        Some(v) => parse_bytes(v).map(Some).ok_or_else(|| {
            eprintln!(
                "xdpd: bad --mem-budget `{v}` (positive bytes, optionally with k/m/g suffix)"
            );
            ExitCode::from(2)
        }),
    }
}

/// `--backend interp|vm` (default interp). A bad name is a usage error.
fn parse_backend(rest: &[String]) -> Result<Backend, ExitCode> {
    match opt_val(rest, "--backend") {
        None => Ok(Backend::default()),
        Some(name) => Backend::parse(name).ok_or_else(|| {
            eprintln!("xdpd: bad --backend `{name}` (use interp or vm)");
            ExitCode::from(2)
        }),
    }
}

fn cmd_run(rest: &[String]) -> ExitCode {
    let Some(file) = rest.iter().find(|a| !a.starts_with("--")).cloned() else {
        eprintln!("xdpd: run needs a program file");
        return ExitCode::FAILURE;
    };
    let source = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => {
            // Same diagnostic contract as xdpc: exit 2 on unreadable input.
            eprintln!("xdpd: error: cannot read {file}: {e}");
            return ExitCode::from(2);
        }
    };
    let mut opts = CompileOptions::default().with_seq(SeqMode::Auto);
    opts.optimize = flag(rest, "--optimize");
    opts.procs = opt_val(rest, "--procs").and_then(|v| v.parse().ok());
    opts.backend = match parse_backend(rest) {
        Ok(b) => b,
        Err(code) => return code,
    };
    opts.mem_budget = match parse_mem_budget(rest) {
        Ok(b) => b,
        Err(code) => return code,
    };
    let mut spec = RequestSpec::new(source).with_opts(opts);
    if let Some(f) = opt_val(rest, "--faults") {
        spec = spec.with_faults(f);
    }
    let repeat: usize = num(rest, "--repeat", 3);
    let workers: usize = num(rest, "--workers", 2);

    let pool = ServePool::new(workers, 8);
    let specs = vec![spec; repeat.max(1)];
    let mut t = Table::new(
        "xdpd-run",
        &[
            "request",
            "cache",
            "compile_us",
            "latency_us",
            "vtime",
            "messages",
        ],
    );
    for (i, result) in pool.run_batch(&specs).iter().enumerate() {
        match result {
            Ok(out) => t.row(&[
                j::u(i as u64),
                j::s(if out.cache_hit { "hit" } else { "miss" }),
                j::u(out.compile_us),
                j::u(out.latency_us),
                j::f(out.virtual_time),
                j::u(out.messages),
            ]),
            Err(e) => {
                eprintln!("xdpd: error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    t.print();
    let stats = pool.cache_stats();
    println!(
        "cache: {} compiles, {} hits / {} lookups ({:.0}% hit rate)",
        stats.compiles,
        stats.hits,
        stats.hits + stats.misses,
        stats.hit_rate() * 100.0
    );
    ExitCode::SUCCESS
}

fn cmd_list(rest: &[String]) -> ExitCode {
    let mut cfg = ReplayConfig::new(opt_val(rest, "--programs").unwrap_or("xdp-programs"));
    cfg.gen_count = num(rest, "--gen", 0);
    let corpus = match load_corpus(&cfg) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("xdpd: error: {e}");
            return ExitCode::from(2);
        }
    };
    let pool = ServePool::new(1, corpus.len().max(1));
    for item in &corpus {
        let registered = pool.with_registry(|reg, cache| {
            reg.register(&item.name, item.spec.clone(), cache)
                .map(|_| ())
        });
        if let Err(e) = registered {
            eprintln!("xdpd: error: {}: {e}", item.name);
            return ExitCode::FAILURE;
        }
    }
    let rows = pool.with_registry(|reg, cache| reg.list(cache));
    let mut t = Table::new(
        "xdpd-registry",
        &["name", "key", "nprocs", "stmts", "passes", "cached"],
    );
    for r in rows {
        t.row(&[
            j::s(&r.name),
            j::s(&format!("{:016x}", r.key)),
            j::u(r.nprocs as u64),
            j::u(r.stmts as u64),
            j::u(r.passes as u64),
            j::s(if r.cached { "yes" } else { "no" }),
        ]);
    }
    t.print();
    ExitCode::SUCCESS
}

fn cmd_bench(rest: &[String]) -> ExitCode {
    let mut cfg = ReplayConfig::new(opt_val(rest, "--programs").unwrap_or("xdp-programs"));
    cfg.requests = num(rest, "--requests", cfg.requests);
    cfg.workers = num(rest, "--workers", cfg.workers);
    cfg.batch = num(rest, "--batch", cfg.batch);
    cfg.capacity = num(rest, "--capacity", cfg.capacity);
    cfg.seed = num(rest, "--seed", cfg.seed);
    cfg.gen_count = num(rest, "--gen", cfg.gen_count);
    cfg.backend = match parse_backend(rest) {
        Ok(b) => b,
        Err(code) => return code,
    };
    cfg.mem_budget = match parse_mem_budget(rest) {
        Ok(b) => b,
        Err(code) => return code,
    };
    cfg.flight_dir = opt_val(rest, "--flight-dir").map(PathBuf::from);
    if let Some(ms) = opt_val(rest, "--slow-ms").and_then(|v| v.parse::<u64>().ok()) {
        cfg.slow_us = Some(ms.saturating_mul(1000));
        if cfg.flight_dir.is_none() {
            cfg.flight_dir = Some(PathBuf::from("flight-dumps"));
        }
    }
    let out_path = opt_val(rest, "--out").unwrap_or("BENCH_serve.json");

    let (report, pool) = match replay(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xdpd: error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut t = Table::new(
        "xdpd-bench",
        &[
            "requests",
            "backend",
            "distinct",
            "errors",
            "runs_per_sec",
            "p50_us",
            "p99_us",
            "hit_rate",
            "compiles",
            "warm_recompiles",
            "flight_dumps",
        ],
    );
    t.row(&[
        j::u(report.requests as u64),
        j::s(report.backend.as_str()),
        j::u(report.distinct as u64),
        j::u(report.errors as u64),
        j::f(report.runs_per_sec),
        j::u(report.p50_us),
        j::u(report.p99_us),
        j::f(report.hit_rate),
        j::u(report.stats.compiles),
        j::u(report.warm_recompiles),
        j::u(report.flight_dumps),
    ]);
    t.print();
    match trajectory::append(Path::new(out_path), report.to_json("xdpd-bench")) {
        Ok(n) => println!("appended run {n} to {out_path}"),
        Err(e) => {
            eprintln!("xdpd: error: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(metrics_path) = opt_val(rest, "--metrics-out") {
        let snapshot = pool.metrics_snapshot();
        if let Err(e) = std::fs::write(metrics_path, format!("{}\n", snapshot.to_json())) {
            eprintln!("xdpd: error: cannot write {metrics_path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {metrics_path}");
    }
    // The same serving contract e13_serve enforces: a bench run that
    // errored, recompiled warm hits, or fell off the hit-rate floor
    // fails loudly instead of writing a healthy-looking report.
    let violations = report.contract_violations();
    for v in &violations {
        eprintln!("xdpd: contract violation: {v}");
    }
    if !violations.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn cmd_stats(rest: &[String]) -> ExitCode {
    let mut cfg = ReplayConfig::new(opt_val(rest, "--programs").unwrap_or("xdp-programs"));
    cfg.requests = num(rest, "--requests", 120);
    cfg.workers = num(rest, "--workers", 2);
    cfg.batch = num(rest, "--batch", 32);
    cfg.gen_count = num(rest, "--gen", cfg.gen_count);
    cfg.seed = num(rest, "--seed", cfg.seed);
    cfg.backend = match parse_backend(rest) {
        Ok(b) => b,
        Err(code) => return code,
    };
    let format = opt_val(rest, "--format").unwrap_or("prom");

    let (_, pool) = match replay(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xdpd: error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let snapshot = pool.metrics_snapshot();
    match format {
        "prom" => print!("{}", snapshot.to_prometheus()),
        "json" => println!("{}", snapshot.to_json()),
        other => {
            eprintln!("xdpd: unknown stats format `{other}` (want prom or json)");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
