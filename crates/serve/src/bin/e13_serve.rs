//! E13 — the serving-layer load replay.
//!
//! Replays a seeded, weighted mix of requests (every `xdp-programs/`
//! file, plain and optimized, plus `xdp_verify`-generated programs)
//! through a [`ServePool`] and checks the compile-once/run-many
//! contract:
//!
//! * every distinct program compiles **exactly once** (compiles ==
//!   distinct corpus size);
//! * the warm hit rate clears 90% — with ~20 distinct programs over
//!   1000 requests the cache should serve almost everything warm;
//! * resubmitting every distinct request after the replay moves the
//!   compile counter by **zero** (a hit provably skips recompilation);
//! * no request errors.
//!
//! The contract itself lives in
//! [`ReplayReport::contract_violations`](xdp_serve::ReplayReport::contract_violations)
//! — `xdpd bench` enforces the identical checks. Appends the full report
//! as one row of the `BENCH_serve.json` trajectory (override with
//! `--out`).

use std::path::Path;
use std::process::ExitCode;
use xdp_bench::table::{j, Table};
use xdp_bench::trajectory;
use xdp_serve::{replay, ReplayConfig};

fn opt_val<'a>(rest: &'a [String], name: &str) -> Option<&'a str> {
    rest.iter()
        .position(|a| a == name)
        .and_then(|i| rest.get(i + 1))
        .map(|s| s.as_str())
}

fn num<T: std::str::FromStr>(rest: &[String], name: &str, default: T) -> T {
    opt_val(rest, name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ReplayConfig::new(opt_val(&args, "--programs").unwrap_or("xdp-programs"));
    cfg.requests = num(&args, "--requests", 1000);
    cfg.workers = num(&args, "--workers", 4);
    cfg.batch = num(&args, "--batch", 64);
    cfg.capacity = num(&args, "--capacity", 64);
    cfg.seed = num(&args, "--seed", 1993);
    cfg.gen_count = num(&args, "--gen", 6);
    let out_path = opt_val(&args, "--out").unwrap_or("BENCH_serve.json");

    let (report, _pool) = match replay(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("e13_serve: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut summary = Table::new(
        "e13-serve",
        &[
            "requests",
            "distinct",
            "requested",
            "errors",
            "wall_s",
            "runs_per_sec",
            "p50_us",
            "p99_us",
            "mean_us",
            "hit_rate",
            "compiles",
            "warm_recompiles",
        ],
    );
    summary.row(&[
        j::u(report.requests as u64),
        j::u(report.distinct as u64),
        j::u(report.distinct_requested as u64),
        j::u(report.errors as u64),
        j::f(report.wall_s),
        j::f(report.runs_per_sec),
        j::u(report.p50_us),
        j::u(report.p99_us),
        j::f(report.mean_us),
        j::f(report.hit_rate),
        j::u(report.stats.compiles),
        j::u(report.warm_recompiles),
    ]);
    summary.print();

    let mut per = Table::new(
        "e13-serve-programs",
        &["program", "runs", "hits", "mean_latency_us"],
    );
    for row in &report.per_program {
        per.row(&[
            j::s(&row.name),
            j::u(row.runs),
            j::u(row.hits),
            j::f(row.mean_latency_us),
        ]);
    }
    per.print();

    match trajectory::append(Path::new(out_path), report.to_json("e13-serve")) {
        Ok(n) => println!("appended run {n} to {out_path}"),
        Err(e) => {
            eprintln!("e13_serve: {e}");
            return ExitCode::FAILURE;
        }
    }

    // The compile-once/run-many contract, shared with `xdpd bench`.
    let violations = report.contract_violations();
    if violations.is_empty() {
        println!("OK    serving contract holds (errors, compiles, hit rate, warm recompiles)");
        return ExitCode::SUCCESS;
    }
    for v in &violations {
        println!("FAIL  {v}");
    }
    eprintln!("e13_serve: {} contract violation(s)", violations.len());
    ExitCode::FAILURE
}
