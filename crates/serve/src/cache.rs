//! The content-hashed compile cache.
//!
//! `xdpd` exists because production traffic runs *few distinct programs
//! very many times*: the parse→lower→opt→place pipeline is paid once per
//! distinct [`RequestSpec`] and amortized over every subsequent run. The
//! cache is a bounded LRU keyed by [`RequestSpec::content_hash`]; each
//! entry stores the full spec (collision safety), the [`Compiled`]
//! artifact, its parsed [`FaultPlan`], and the `run_traced` provenance of
//! every pass that ran — so "this hit skipped recompilation" is not an
//! inference but a checkable fact: the stored [`CompileTrace`] is the one
//! recorded at miss time, and [`CacheStats::compiles`] does not move on a
//! hit.

use crate::spec::RequestSpec;
use std::collections::HashMap;
use std::sync::Arc;
use xdp_compiler::{compile, CompileError, Compiled};
use xdp_fault::FaultPlan;

/// Why a serve-layer operation failed.
#[derive(Clone, Debug)]
pub enum ServeError {
    /// The compile pipeline rejected the program.
    Compile(CompileError),
    /// The request's fault spec did not parse.
    BadFaults(String),
    /// A run failed at execution time.
    Run(String),
    /// A named program was not found in the registry.
    Unknown(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Compile(e) => write!(f, "compile: {e}"),
            ServeError::BadFaults(e) => write!(f, "bad fault spec: {e}"),
            ServeError::Run(e) => write!(f, "run: {e}"),
            ServeError::Unknown(name) => write!(f, "no program named `{name}`"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Cache observability counters. `hits + misses` equals lookups;
/// `compiles` moves only on a miss (a hit provably skips the pipeline);
/// `evictions` counts LRU displacements, not explicit removals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub compiles: u64,
}

impl CacheStats {
    /// Hit fraction over all lookups so far (0 when none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One cached compile: the artifact plus everything needed to run it and
/// to explain where it came from.
#[derive(Debug)]
pub struct CachedProgram {
    /// Content hash the entry is keyed by.
    pub key: u64,
    /// The full spec (compared on lookup; a 64-bit collision is a miss,
    /// never a wrong answer).
    pub spec: RequestSpec,
    /// The compiled program, machine size, and pass provenance.
    pub compiled: Compiled,
    /// The fault plan parsed once at compile time.
    pub faults: FaultPlan,
    /// Wall time the compile pipeline took, microseconds. Recorded at
    /// miss time; a hit reuses the artifact and spends none.
    pub compile_us: u64,
}

struct Entry {
    last_used: u64,
    cached: Arc<CachedProgram>,
}

/// A bounded LRU compile cache. Not internally synchronized — the serve
/// pool wraps it in a `Mutex` (compiles are rare by design; runs, the
/// hot path, never hold the lock).
pub struct CompileCache {
    capacity: usize,
    tick: u64,
    map: HashMap<u64, Entry>,
    stats: CacheStats,
}

impl CompileCache {
    /// A cache holding at most `capacity` compiled programs (min 1).
    pub fn new(capacity: usize) -> CompileCache {
        CompileCache {
            capacity: capacity.max(1),
            tick: 0,
            map: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Look up and touch an entry; counts a hit or a miss.
    pub fn lookup(&mut self, spec: &RequestSpec) -> Option<Arc<CachedProgram>> {
        self.tick += 1;
        let key = spec.content_hash();
        match self.map.get_mut(&key) {
            Some(e) if e.cached.spec == *spec => {
                e.last_used = self.tick;
                self.stats.hits += 1;
                Some(e.cached.clone())
            }
            _ => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// The cache's one write path: compile `spec` and insert the result,
    /// evicting the least-recently-used entry if the cache is full.
    /// Returns the cached artifact. Does **not** count a hit or miss —
    /// callers pair it with [`lookup`](Self::lookup) (see
    /// [`get_or_compile`](Self::get_or_compile)).
    pub fn compile_into(&mut self, spec: &RequestSpec) -> Result<Arc<CachedProgram>, ServeError> {
        let started = std::time::Instant::now();
        let faults = spec.fault_plan().map_err(ServeError::BadFaults)?;
        let compiled = compile(&spec.source, &spec.opts).map_err(ServeError::Compile)?;
        // `as_micros` floors; a sub-microsecond compile still counts as
        // time spent (`compile_us == 0` is reserved for cache hits).
        let compile_us = (started.elapsed().as_micros() as u64).max(1);
        self.stats.compiles += 1;
        let key = spec.content_hash();
        let cached = Arc::new(CachedProgram {
            key,
            spec: spec.clone(),
            compiled,
            faults,
            compile_us,
        });
        // A hash collision with a *different* spec overwrites the old
        // entry: correctness is preserved (lookup compares specs), and
        // with 64-bit keys this path is effectively unreachable.
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            self.evict_lru();
        }
        self.tick += 1;
        self.map.insert(
            key,
            Entry {
                last_used: self.tick,
                cached: cached.clone(),
            },
        );
        Ok(cached)
    }

    /// Serve `spec` from cache, compiling at most once. The `bool` is
    /// true on a cache hit (compilation skipped).
    pub fn get_or_compile(
        &mut self,
        spec: &RequestSpec,
    ) -> Result<(Arc<CachedProgram>, bool), ServeError> {
        if let Some(hit) = self.lookup(spec) {
            return Ok((hit, true));
        }
        Ok((self.compile_into(spec)?, false))
    }

    /// Drop the least-recently-used entry.
    fn evict_lru(&mut self) {
        if let Some(&key) = self
            .map
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| k)
        {
            self.map.remove(&key);
            self.stats.evictions += 1;
        }
    }

    /// Explicitly remove an entry (registry eviction; not counted as an
    /// LRU eviction). Returns whether it was resident.
    pub fn remove(&mut self, key: u64) -> bool {
        self.map.remove(&key).is_some()
    }

    /// Is the given key resident?
    pub fn contains(&self, key: u64) -> bool {
        self.map.contains_key(&key)
    }

    /// Read an entry without touching LRU order or counters (listings).
    pub fn peek(&self, key: u64) -> Option<Arc<CachedProgram>> {
        self.map.get(&key).map(|e| e.cached.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdp_compiler::CompileOptions;

    fn spec(n: i64) -> RequestSpec {
        RequestSpec::new(format!(
            "real A[1:{n}] distribute (BLOCK) onto 2\n\
             do i = 1, {n}\n  iown(A[i]) : {{ A[i] = A[i] + 1.0 }}\nenddo\n"
        ))
    }

    #[test]
    fn hit_skips_recompilation() {
        let mut c = CompileCache::new(4);
        let (a, hit) = c.get_or_compile(&spec(8)).unwrap();
        assert!(!hit);
        assert_eq!(c.stats().compiles, 1);
        let (b, hit) = c.get_or_compile(&spec(8)).unwrap();
        assert!(hit);
        assert_eq!(c.stats().compiles, 1, "hit must not recompile");
        assert!(Arc::ptr_eq(&a, &b), "hit serves the same artifact");
        assert_eq!(
            c.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0,
                compiles: 1
            }
        );
    }

    #[test]
    fn lru_capacity_is_respected() {
        let mut c = CompileCache::new(2);
        c.get_or_compile(&spec(4)).unwrap();
        c.get_or_compile(&spec(8)).unwrap();
        // Touch 4 so 8 becomes the LRU victim.
        c.get_or_compile(&spec(4)).unwrap();
        c.get_or_compile(&spec(12)).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
        assert!(c.contains(spec(4).content_hash()), "recently used survives");
        assert!(!c.contains(spec(8).content_hash()), "LRU entry evicted");
    }

    #[test]
    fn bad_programs_and_fault_specs_are_reported() {
        let mut c = CompileCache::new(2);
        let e = c
            .get_or_compile(&RequestSpec::new("real A[1:4] distribute (WAT) onto 2\n"))
            .unwrap_err();
        assert!(matches!(e, ServeError::Compile(_)), "{e}");
        let e = c
            .get_or_compile(&spec(4).with_faults("drop=banana"))
            .unwrap_err();
        assert!(matches!(e, ServeError::BadFaults(_)), "{e}");
        assert_eq!(c.stats().compiles, 0);
    }

    #[test]
    fn option_variants_occupy_distinct_entries() {
        let mut c = CompileCache::new(8);
        c.get_or_compile(&spec(8)).unwrap();
        c.get_or_compile(&spec(8).with_opts(CompileOptions::default().optimized()))
            .unwrap();
        c.get_or_compile(&spec(8).with_faults("drop=0.1,seed=1"))
            .unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.stats().compiles, 3);
    }
}
