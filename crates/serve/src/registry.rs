//! The program registry: stable names over cache keys.
//!
//! Clients of a long-lived `xdpd` don't want to ship source text with
//! every request. The registry maps a chosen name to a [`RequestSpec`]
//! (and therefore to a cache key); registering compiles the program
//! through the cache immediately, so a registered program's first real
//! request is already a hit. Eviction removes both the name and, when
//! resident, the cached artifact.

use crate::cache::{CompileCache, ServeError};
use crate::spec::RequestSpec;
use std::collections::BTreeMap;
use std::sync::Arc;

/// What `list` reports per registered program.
#[derive(Clone, Debug)]
pub struct RegisteredInfo {
    pub name: String,
    /// Content hash (the cache key).
    pub key: u64,
    /// Machine size the program compiled for.
    pub nprocs: usize,
    /// Statement count of the compiled program body.
    pub stmts: usize,
    /// Passes that ran at compile time.
    pub passes: usize,
    /// Is the artifact currently resident in the cache?
    pub cached: bool,
}

/// Named programs, backed by the compile cache.
#[derive(Default)]
pub struct Registry {
    entries: BTreeMap<String, RequestSpec>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Register (or replace) `name`, compiling through the cache so the
    /// artifact is warm. Returns the listing row for the new entry.
    pub fn register(
        &mut self,
        name: &str,
        spec: RequestSpec,
        cache: &mut CompileCache,
    ) -> Result<RegisteredInfo, ServeError> {
        let (cached, _) = cache.get_or_compile(&spec)?;
        self.entries.insert(name.to_string(), spec);
        Ok(info(name, &cached.spec, cache))
    }

    /// The spec registered under `name`.
    pub fn get(&self, name: &str) -> Option<&RequestSpec> {
        self.entries.get(name)
    }

    /// Resolve a name to its cached (compiling if evicted) artifact.
    pub fn resolve(
        &self,
        name: &str,
        cache: &mut CompileCache,
    ) -> Result<(Arc<crate::cache::CachedProgram>, bool), ServeError> {
        let spec = self
            .get(name)
            .ok_or_else(|| ServeError::Unknown(name.to_string()))?;
        cache.get_or_compile(spec)
    }

    /// Listing rows for every registered program, in name order.
    pub fn list(&self, cache: &CompileCache) -> Vec<RegisteredInfo> {
        self.entries
            .iter()
            .map(|(name, spec)| info(name, spec, cache))
            .collect()
    }

    /// Remove `name` and drop its cached artifact. Returns whether the
    /// name existed.
    pub fn evict(&mut self, name: &str, cache: &mut CompileCache) -> bool {
        match self.entries.remove(name) {
            Some(spec) => {
                cache.remove(spec.content_hash());
                true
            }
            None => false,
        }
    }
}

fn info(name: &str, spec: &RequestSpec, cache: &CompileCache) -> RegisteredInfo {
    let key = spec.content_hash();
    // Compile metadata is only available while resident; report zeros
    // for an evicted entry rather than recompiling in a listing.
    let (nprocs, stmts, passes) = (spec.opts.procs.unwrap_or(0), 0usize, 0usize);
    let mut row = RegisteredInfo {
        name: name.to_string(),
        key,
        nprocs,
        stmts,
        passes,
        cached: cache.contains(key),
    };
    if let Some(c) = cache_peek(cache, key) {
        row.nprocs = c.compiled.nprocs;
        row.stmts = c.compiled.program.body.len();
        row.passes = c.compiled.trace.passes.len();
    }
    row
}

/// Non-touching read used by listings (no LRU update, no counters).
fn cache_peek(cache: &CompileCache, key: u64) -> Option<Arc<crate::cache::CachedProgram>> {
    cache.peek(key)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(n: i64) -> RequestSpec {
        RequestSpec::new(format!(
            "real A[1:{n}] distribute (BLOCK) onto 2\n\
             do i = 1, {n}\n  iown(A[i]) : {{ A[i] = A[i] + 1.0 }}\nenddo\n"
        ))
    }

    #[test]
    fn register_list_evict_roundtrip() {
        let mut cache = CompileCache::new(8);
        let mut reg = Registry::new();
        let row = reg.register("adder", spec(8), &mut cache).unwrap();
        assert_eq!(row.name, "adder");
        assert_eq!(row.nprocs, 2);
        assert!(row.cached);
        assert!(row.stmts > 0);

        reg.register("adder12", spec(12), &mut cache).unwrap();
        let listing = reg.list(&cache);
        assert_eq!(listing.len(), 2);
        assert_eq!(listing[0].name, "adder");
        assert_eq!(listing[1].name, "adder12");

        // Registration pre-warms: the first resolve is already a hit.
        let (_, hit) = reg.resolve("adder", &mut cache).unwrap();
        assert!(hit);

        assert!(reg.evict("adder", &mut cache));
        assert!(!reg.evict("adder", &mut cache));
        assert!(!cache.contains(spec(8).content_hash()));
        assert!(matches!(
            reg.resolve("adder", &mut cache),
            Err(ServeError::Unknown(_))
        ));
    }

    #[test]
    fn register_rejects_bad_programs() {
        let mut cache = CompileCache::new(8);
        let mut reg = Registry::new();
        let e = reg
            .register(
                "bad",
                RequestSpec::new("real A[1:4] distribute (WAT) onto 2\n"),
                &mut cache,
            )
            .unwrap_err();
        assert!(matches!(e, ServeError::Compile(_)), "{e}");
        assert!(reg.is_empty());
    }
}
