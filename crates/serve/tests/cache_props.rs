//! Property tests for the compile-cache key and the LRU bound.
//!
//! The cache key must be **stable** (a pure function of the spec — the
//! whole point of a content hash is that the same request always lands
//! on the same entry, across processes and runs) and **sensitive**
//! (any field that can change what the pipeline produces changes the
//! key). The cache itself must never exceed its capacity and must keep
//! its counters consistent under arbitrary request sequences.

use proptest::prelude::*;
use xdp_compiler::{Backend, CompileOptions, SeqMode};
use xdp_serve::{CompileCache, RequestSpec};

fn arb_seq() -> impl Strategy<Value = SeqMode> {
    (0u8..3).prop_map(|k| match k {
        0 => SeqMode::AsIs,
        1 => SeqMode::Lower,
        _ => SeqMode::Auto,
    })
}

fn arb_opts() -> impl Strategy<Value = CompileOptions> {
    (
        prop::option::of(1usize..16),
        any::<bool>(),
        any::<bool>(),
        arb_seq(),
        any::<bool>(),
        prop::option::of(1u64..1 << 20),
    )
        .prop_map(
            |(procs, optimize, place, seq, vm, mem_budget)| CompileOptions {
                procs,
                optimize,
                place,
                seq,
                backend: if vm { Backend::Vm } else { Backend::Interp },
                mem_budget,
            },
        )
}

/// Printable-ASCII strings (the vendored proptest has no regex strategies).
fn arb_text(max: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(32u8..127, 0..max)
        .prop_map(|bytes| bytes.into_iter().map(char::from).collect())
}

fn arb_spec() -> impl Strategy<Value = RequestSpec> {
    (arb_text(64), arb_opts(), arb_text(16)).prop_map(|(source, opts, faults)| {
        RequestSpec::new(source).with_opts(opts).with_faults(faults)
    })
}

/// A small family of *valid* programs for exercising the LRU: extent and
/// grid size pick the program, the optimize flag doubles the key space.
fn valid_spec(n: i64, p: usize, optimize: bool) -> RequestSpec {
    let opts = CompileOptions {
        optimize,
        ..Default::default()
    };
    RequestSpec::new(format!(
        "real A[1:{n}] distribute (BLOCK) onto {p}\n\
         do i = 1, {n}\n  iown(A[i]) : {{ A[i] = A[i] + 1.0 }}\nenddo\n"
    ))
    .with_opts(opts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Stability: the key is a pure function of the spec.
    #[test]
    fn key_is_stable(spec in arb_spec()) {
        prop_assert_eq!(spec.content_hash(), spec.clone().content_hash());
    }

    // Sensitivity: every field perturbation moves the key.
    #[test]
    fn key_is_field_sensitive(spec in arb_spec()) {
        let k = spec.content_hash();
        let mut source = spec.clone();
        source.source.push('x');
        prop_assert_ne!(k, source.content_hash(), "source text must key");

        let mut procs = spec.clone();
        procs.opts.procs = Some(procs.opts.procs.map_or(1, |p| p + 1));
        prop_assert_ne!(k, procs.content_hash(), "machine size must key");

        let mut optimize = spec.clone();
        optimize.opts.optimize = !optimize.opts.optimize;
        prop_assert_ne!(k, optimize.content_hash(), "opt flag must key");

        let mut place = spec.clone();
        place.opts.place = !place.opts.place;
        prop_assert_ne!(k, place.content_hash(), "placement mode must key");

        let mut seq = spec.clone();
        seq.opts.seq = match seq.opts.seq {
            SeqMode::AsIs => SeqMode::Lower,
            SeqMode::Lower => SeqMode::Auto,
            SeqMode::Auto => SeqMode::AsIs,
        };
        prop_assert_ne!(k, seq.content_hash(), "seq mode must key");

        let mut budget = spec.clone();
        budget.opts.mem_budget = Some(budget.opts.mem_budget.map_or(1, |b| b + 1));
        prop_assert_ne!(k, budget.content_hash(), "mem budget must key");

        let mut faults = spec.clone();
        faults.faults.push('z');
        prop_assert_ne!(k, faults.content_hash(), "fault spec must key");
    }

    // Field boundaries are length-prefixed: moving a byte between source
    // and fault spec never preserves the key.
    #[test]
    fn key_does_not_confuse_field_boundaries(
        source_bytes in prop::collection::vec(97u8..123, 1..12),
        faults in arb_text(6),
    ) {
        let source: String = source_bytes.into_iter().map(char::from).collect();
        let a = RequestSpec::new(source.clone()).with_faults(faults.clone());
        let shifted = RequestSpec::new(source[..source.len() - 1].to_string())
            .with_faults(format!("{}{}", &source[source.len() - 1..], faults));
        prop_assert_ne!(a.content_hash(), shifted.content_hash());
    }
}

proptest! {
    // Compiling is the expensive part of each case; fewer cases, each
    // exercising a whole request sequence.
    #![proptest_config(ProptestConfig::with_cases(24))]

    // The LRU bound and counter book-keeping hold under any request
    // sequence drawn from a key space larger than the capacity.
    #[test]
    fn lru_bound_and_counters_hold(
        capacity in 1usize..5,
        requests in prop::collection::vec((1i64..5, 1usize..3, any::<bool>()), 1..40),
    ) {
        let mut cache = CompileCache::new(capacity);
        let mut compiles_seen = 0u64;
        for (k, p, optimize) in &requests {
            let spec = valid_spec(4 * k, *p, *optimize);
            let key = spec.content_hash();
            let resident_before = cache.contains(key);
            let (cached, hit) = cache.get_or_compile(&spec).unwrap();
            prop_assert_eq!(hit, resident_before, "hit iff already resident");
            prop_assert_eq!(cached.key, key);
            if !hit {
                compiles_seen += 1;
            }
            prop_assert!(cache.len() <= capacity, "len {} > capacity {capacity}", cache.len());
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.hits + stats.misses, requests.len() as u64);
        prop_assert_eq!(stats.compiles, compiles_seen);
        prop_assert_eq!(stats.compiles, stats.misses, "every miss compiles exactly once");
        // Everything compiled beyond capacity must have been displaced.
        prop_assert_eq!(stats.evictions, compiles_seen - cache.len() as u64);
    }

    // Recency is respected: in a capacity-2 cache, touching A then
    // inserting C evicts B, never A.
    #[test]
    fn lru_evicts_least_recently_used(seed_opt in any::<bool>()) {
        let mut cache = CompileCache::new(2);
        let a = valid_spec(4, 1, seed_opt);
        let b2 = valid_spec(8, 1, seed_opt);
        let c = valid_spec(12, 1, seed_opt);
        cache.get_or_compile(&a).unwrap();
        cache.get_or_compile(&b2).unwrap();
        cache.get_or_compile(&a).unwrap(); // touch A
        cache.get_or_compile(&c).unwrap(); // must displace B
        prop_assert!(cache.contains(a.content_hash()));
        prop_assert!(!cache.contains(b2.content_hash()));
        prop_assert!(cache.contains(c.content_hash()));
    }
}
