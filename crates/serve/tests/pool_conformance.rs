//! Concurrency conformance: batched execution is bit-identical to solo.
//!
//! For every program in `xdp-programs/` (plain and optimized) and a set
//! of `xdp_verify`-generated programs, N copies run through a concurrent
//! batch must produce exactly the same [`xdp_verify::Fingerprint`] —
//! memory image, movement multiset, state digest, and message count — as
//! a solo run on a fresh pool. Per-run isolation is the serving layer's
//! core correctness claim; this is the test that owns it.

use std::path::PathBuf;
use xdp_compiler::{CompileOptions, SeqMode};
use xdp_serve::{RequestSpec, ServePool};

fn programs_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../xdp-programs")
}

fn program_specs() -> Vec<(String, RequestSpec)> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(programs_dir())
        .expect("xdp-programs/ exists")
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "xdp"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no programs in {:?}", programs_dir());
    let mut specs = Vec::new();
    for path in files {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let source = std::fs::read_to_string(&path).unwrap();
        let auto = CompileOptions::default().with_seq(SeqMode::Auto);
        specs.push((
            name.clone(),
            RequestSpec::new(source.clone()).with_opts(auto.clone()),
        ));
        specs.push((
            format!("{name}+opt"),
            RequestSpec::new(source).with_opts(auto.optimized()),
        ));
    }
    specs
}

/// N concurrent copies of one spec == its solo fingerprint.
fn assert_batch_matches_solo(name: &str, spec: &RequestSpec, copies: usize) {
    let solo = ServePool::new(1, 4)
        .run_one(spec)
        .unwrap_or_else(|e| panic!("{name}: solo run failed: {e}"));
    let pool = ServePool::new(4, 4);
    let specs = vec![spec.clone(); copies];
    for (i, result) in pool.run_batch(&specs).into_iter().enumerate() {
        let out = result.unwrap_or_else(|e| panic!("{name}: batch run {i} failed: {e}"));
        assert_eq!(
            out.fingerprint, solo.fingerprint,
            "{name}: concurrent copy {i} diverged from solo"
        );
        assert_eq!(out.virtual_time, solo.virtual_time, "{name}: copy {i}");
        assert_eq!(out.messages, solo.messages, "{name}: copy {i}");
    }
}

#[test]
fn every_program_is_batch_solo_identical() {
    for (name, spec) in program_specs() {
        assert_batch_matches_solo(&name, &spec, 3);
    }
}

#[test]
fn mixed_batch_matches_per_spec_sequential_runs() {
    let specs = program_specs();
    // Sequential reference: each spec solo on a private pool.
    let reference: Vec<_> = specs
        .iter()
        .map(|(name, spec)| {
            ServePool::new(1, 4)
                .run_one(spec)
                .unwrap_or_else(|e| panic!("{name}: {e}"))
                .fingerprint
        })
        .collect();
    // One interleaved batch over everything, twice per spec, shared cache.
    let pool = ServePool::new(4, specs.len());
    let mut batch = Vec::new();
    for (_, spec) in &specs {
        batch.push(spec.clone());
    }
    for (_, spec) in &specs {
        batch.push(spec.clone());
    }
    let results = pool.run_batch(&batch);
    for (i, result) in results.into_iter().enumerate() {
        let (name, _) = &specs[i % specs.len()];
        let out = result.unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            out.fingerprint,
            reference[i % specs.len()],
            "{name}: interleaved run {i} diverged"
        );
    }
    // Second round of every spec was served warm.
    assert_eq!(pool.cache_stats().compiles, specs.len() as u64);
    assert_eq!(pool.cache_stats().hits, specs.len() as u64);
}

#[test]
fn generated_programs_are_batch_solo_identical() {
    for seed in [3u64, 11, 42] {
        let tp = xdp_verify::gen::executable_program_with(&xdp_verify::GenConfig::default(), seed);
        let spec = RequestSpec::new(xdp_ir::pretty::program(&tp.program));
        assert_batch_matches_solo(&format!("gen-{seed}"), &spec, 3);
    }
}

#[test]
fn faulty_runs_conform_too() {
    // Fault injection is seeded per plan, so a faulty run is as
    // deterministic as a lossless one — batched or not.
    let source = std::fs::read_to_string(programs_dir().join("simple.xdp")).unwrap();
    let spec = RequestSpec::new(source)
        .with_opts(CompileOptions::default().with_seq(SeqMode::Auto))
        .with_faults("drop=0.2,seed=7");
    assert_batch_matches_solo("simple.xdp+faults", &spec, 4);
}
